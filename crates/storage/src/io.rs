//! Metered, simulated disk I/O.
//!
//! The paper's experiments ran on a 4-disk array with 160–200 MB/s aggregate
//! sequential bandwidth, and most of its row-store results are I/O-bound.
//! Real disks are not available (or controllable) in this environment, so we
//! substitute a *metered page store*: tables are serialized into 32 KB pages
//! held in memory, every page that crosses the buffer pool is counted in
//! [`IoStats`], and a [`DiskModel`] converts the counts into modeled I/O
//! time. Queries then report `measured CPU time + modeled I/O time`, which
//! preserves the paper's I/O-vs-CPU cost structure (see DESIGN.md §4).
//!
//! Sequential vs random access matters to several experiments (index plans
//! pay seeks; heap scans do not), so [`IoSession`] detects non-consecutive
//! page misses *per file* and counts them as seeks: each file is an
//! independent stream on the modeled striped array, so interleaving reads of
//! two files costs two positioning seeks, not one per alternation.
//!
//! For morsel-driven parallel execution (see `cvr-core::morsel`) a session
//! can also run in **recording** mode ([`IoSession::recording`]): page
//! touches are appended to an [`IoLog`] instead of hitting the pool, and the
//! coordinator later [`IoSession::replay`]s the per-morsel logs in morsel
//! order — making the merged accounting deterministic and byte-identical to
//! a serial execution regardless of thread scheduling.

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Size of one disk page: 32 KB, the System X configuration in Section 6.2.
pub const PAGE_SIZE: u64 = 32 * 1024;

/// Number of pages needed to hold `bytes`.
pub fn pages_for(bytes: u64) -> u32 {
    bytes.div_ceil(PAGE_SIZE).max(1) as u32
}

/// Identifier of a stored file (heap file, column segment, index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

impl FileId {
    /// Allocate a fresh file id (process-wide unique).
    pub fn fresh() -> FileId {
        FileId(NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// Identifier of one page within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId {
    /// Owning file.
    pub file: FileId,
    /// Zero-based page number.
    pub page: u32,
}

/// The disk performance model used to convert [`IoStats`] into time.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Sequential bandwidth, bytes per second. Default 200 MB/s — the upper
    /// end of the paper's "160 - 200 MB/sec in aggregate for striped files".
    pub seq_bandwidth: f64,
    /// Latency charged per seek (non-sequential page miss). Default 4 ms.
    pub seek_latency: Duration,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel { seq_bandwidth: 200.0 * 1024.0 * 1024.0, seek_latency: Duration::from_millis(4) }
    }
}

impl DiskModel {
    /// Modeled time to perform the accesses recorded in `stats`.
    pub fn io_time(&self, stats: &IoStats) -> Duration {
        let transfer = Duration::from_secs_f64(stats.bytes_read as f64 / self.seq_bandwidth);
        transfer + self.seek_latency * stats.seeks as u32
    }
}

/// Counters of simulated disk traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages fetched from "disk" (buffer-pool misses).
    pub pages_read: u64,
    /// Bytes fetched from "disk".
    pub bytes_read: u64,
    /// Non-sequential page fetches.
    pub seeks: u64,
    /// Buffer-pool hits (not charged).
    pub pool_hits: u64,
}

impl IoStats {
    /// Accumulate another stats block into this one.
    pub fn add(&mut self, other: &IoStats) {
        self.pages_read += other.pages_read;
        self.bytes_read += other.bytes_read;
        self.seeks += other.seeks;
        self.pool_hits += other.pool_hits;
    }

    /// Traffic accrued since the `since` snapshot (saturating, so a stale
    /// snapshot can never wrap). Used by tracing spans, which observe the
    /// session's counters without ever charging them.
    pub fn delta(&self, since: &IoStats) -> IoStats {
        IoStats {
            pages_read: self.pages_read.saturating_sub(since.pages_read),
            bytes_read: self.bytes_read.saturating_sub(since.bytes_read),
            seeks: self.seeks.saturating_sub(since.seeks),
            pool_hits: self.pool_hits.saturating_sub(since.pool_hits),
        }
    }
}

/// A fixed-capacity buffer pool with CLOCK eviction.
///
/// The pool only tracks *which* pages are resident (the bytes themselves stay
/// in the owning table object); its job is deciding whether an access is a
/// hit (free) or a miss (charged to the session's [`IoStats`]). A capacity of
/// `u64::MAX` (see [`BufferPool::unbounded`]) makes every re-access free,
/// modeling a fully warm cache.
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    capacity_pages: usize,
}

#[derive(Debug)]
struct PoolInner {
    /// page -> slot index in `frames`.
    map: HashMap<PageId, usize>,
    /// Resident pages with their reference bit.
    frames: Vec<(PageId, bool)>,
    /// CLOCK hand.
    hand: usize,
}

impl BufferPool {
    /// Pool holding at most `capacity_bytes` of pages.
    pub fn new(capacity_bytes: u64) -> Arc<BufferPool> {
        let capacity_pages = (capacity_bytes / PAGE_SIZE).max(1) as usize;
        Arc::new(BufferPool {
            inner: Mutex::new(PoolInner {
                map: HashMap::with_capacity(capacity_pages.min(1 << 20)),
                frames: Vec::new(),
                hand: 0,
            }),
            capacity_pages,
        })
    }

    /// Pool that never evicts — models data fully resident in memory.
    pub fn unbounded() -> Arc<BufferPool> {
        Arc::new(BufferPool {
            inner: Mutex::new(PoolInner { map: HashMap::new(), frames: Vec::new(), hand: 0 }),
            capacity_pages: usize::MAX,
        })
    }

    /// Record an access to `page`; returns `true` on a pool hit.
    pub fn access(&self, page: PageId) -> bool {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&page) {
            inner.frames[slot].1 = true;
            return true;
        }
        // Miss: admit, evicting via CLOCK when full.
        if inner.frames.len() < self.capacity_pages {
            inner.frames.push((page, true));
            let slot = inner.frames.len() - 1;
            inner.map.insert(page, slot);
        } else {
            loop {
                let hand = inner.hand;
                let (victim, referenced) = inner.frames[hand];
                if referenced {
                    inner.frames[hand].1 = false;
                    inner.hand = (hand + 1) % self.capacity_pages.max(1);
                } else {
                    inner.map.remove(&victim);
                    inner.frames[hand] = (page, true);
                    inner.map.insert(page, hand);
                    inner.hand = (hand + 1) % self.capacity_pages.max(1);
                    break;
                }
            }
        }
        false
    }

    /// Drop every resident page (a "cold cache" reset between experiments).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.frames.clear();
        inner.hand = 0;
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }
}

/// Page touches recorded by a session in recording mode: `(page, on-disk
/// bytes)` pairs exactly as they would have been charged, segmented into
/// **ops** (one op per `charge_*` call on a stored column).
///
/// The segmentation is what lets [`IoSession::replay_interleaved`] put the
/// merged parallel accounting back into *serial plan order*: every morsel of
/// one query runs the same structural op sequence, so replaying op `k` of
/// every morsel (in morsel order) before op `k + 1` of any morsel
/// reconstructs the order a serial execution charges — column by column —
/// instead of interleaving files morsel by morsel, which would thrash a
/// bounded buffer pool that serial execution would not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoLog {
    entries: Vec<(PageId, u64)>,
    /// Start index of each op within `entries`.
    ops: Vec<usize>,
}

impl IoLog {
    /// All recorded touches, op boundaries ignored.
    pub fn entries(&self) -> &[(PageId, u64)] {
        &self.entries
    }

    /// Number of ops recorded.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The touches of op `k` (empty when `k` is out of range).
    pub fn op(&self, k: usize) -> &[(PageId, u64)] {
        match self.ops.get(k) {
            None => &[],
            Some(&start) => {
                let end = self.ops.get(k + 1).copied().unwrap_or(self.entries.len());
                &self.entries[start..end]
            }
        }
    }
}

/// Per-query I/O accounting handle.
///
/// Cheap to create; `Send` but not `Sync` (one per executing query or per
/// morsel worker). All storage and index access paths take `&IoSession` and
/// charge their page touches here.
pub struct IoSession {
    pool: Arc<BufferPool>,
    stats: Cell<IoStats>,
    /// Last page *missed* per file, for per-file sequentiality detection.
    last_fetch: RefCell<HashMap<FileId, u32>>,
    /// `Some` puts the session in recording mode: touches go to the log
    /// instead of the pool/stats.
    log: Option<RefCell<IoLog>>,
}

impl IoSession {
    /// New session over `pool`.
    pub fn new(pool: Arc<BufferPool>) -> IoSession {
        IoSession {
            pool,
            stats: Cell::new(IoStats::default()),
            last_fetch: RefCell::new(HashMap::new()),
            log: None,
        }
    }

    /// Convenience: session over a fresh unbounded pool (tests).
    pub fn unmetered() -> IoSession {
        IoSession::new(BufferPool::unbounded())
    }

    /// A recording session over `pool`: every [`IoSession::read_page`] call
    /// appends to an internal [`IoLog`] and charges nothing. Morsel workers
    /// use one recording session per morsel; the coordinator merges their
    /// accounting deterministically by [`IoSession::replay`]ing the logs in
    /// morsel order.
    pub fn recording(pool: Arc<BufferPool>) -> IoSession {
        IoSession {
            pool,
            stats: Cell::new(IoStats::default()),
            last_fetch: RefCell::new(HashMap::new()),
            log: Some(RefCell::new(IoLog::default())),
        }
    }

    /// True when this session records touches instead of charging them.
    pub fn is_recording(&self) -> bool {
        self.log.is_some()
    }

    /// Drain the recorded log (recording sessions; empty otherwise).
    pub fn take_log(&self) -> IoLog {
        match &self.log {
            Some(log) => std::mem::take(&mut log.borrow_mut()),
            None => IoLog::default(),
        }
    }

    /// Open a new op in the recorded log (no-op for live sessions). The
    /// storage layer calls this at the top of every `charge_*` entry point,
    /// so recorded logs segment along the plan's operation boundaries.
    pub fn begin_op(&self) {
        if let Some(log) = &self.log {
            let mut log = log.borrow_mut();
            let at = log.entries.len();
            log.ops.push(at);
        }
    }

    /// Replay a recorded log against this session, charging each touch as if
    /// it were issued here (duplicate boundary touches resolve to pool hits,
    /// per-file sequentiality is preserved).
    pub fn replay(&self, log: &IoLog) {
        for &(page, bytes) in log.entries() {
            self.read_page(page, bytes);
        }
    }

    /// Replay per-morsel logs **op-major**: op `k` of every log (in the
    /// given morsel order), then op `k + 1`. Because every morsel of a query
    /// executes the same structural op sequence, this reconstructs the
    /// serial plan's charge order — all fragments of one column scan arrive
    /// together, not interleaved with other columns — so the merged stats
    /// match a serial run even on a small, evicting buffer pool.
    pub fn replay_interleaved(&self, logs: &[IoLog]) {
        let max_ops = logs.iter().map(IoLog::num_ops).max().unwrap_or(0);
        for k in 0..max_ops {
            for log in logs {
                for &(page, bytes) in log.op(k) {
                    self.read_page(page, bytes);
                }
            }
        }
    }

    /// Touch `page` whose on-disk size is `bytes` (≤ [`PAGE_SIZE`]; the last
    /// page of a file may be short).
    pub fn read_page(&self, page: PageId, bytes: u64) {
        crate::fault::maybe_io_fault(page.file.0, page.page);
        if let Some(log) = &self.log {
            let mut log = log.borrow_mut();
            if log.ops.is_empty() {
                log.ops.push(0); // tolerate touches before any begin_op
            }
            log.entries.push((page, bytes));
            return;
        }
        let mut stats = self.stats.get();
        if self.pool.access(page) {
            stats.pool_hits += 1;
        } else {
            stats.pages_read += 1;
            stats.bytes_read += bytes;
            let mut last = self.last_fetch.borrow_mut();
            let sequential = last.get(&page.file) == Some(&page.page.wrapping_sub(1));
            if !sequential {
                stats.seeks += 1;
            }
            last.insert(page.file, page.page);
        }
        self.stats.set(stats);
    }

    /// Sequentially touch pages `[0, n)` of `file`, `total_bytes` long.
    pub fn read_file_sequential(&self, file: FileId, total_bytes: u64) {
        let n = pages_for(total_bytes);
        let mut remaining = total_bytes;
        for p in 0..n {
            let bytes = remaining.min(PAGE_SIZE);
            self.read_page(PageId { file, page: p }, bytes);
            remaining -= bytes;
        }
    }

    /// Stats accumulated so far.
    pub fn stats(&self) -> IoStats {
        self.stats.get()
    }

    /// Reset and return the accumulated stats.
    pub fn take_stats(&self) -> IoStats {
        let s = self.stats.get();
        self.stats.set(IoStats::default());
        self.last_fetch.borrow_mut().clear();
        s
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(file: u64, page: u32) -> PageId {
        PageId { file: FileId(file), page }
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for(0), 1); // every object occupies at least a page
    }

    #[test]
    fn session_charges_misses_only() {
        let pool = BufferPool::new(10 * PAGE_SIZE);
        let s = IoSession::new(pool);
        s.read_page(page(1, 0), PAGE_SIZE);
        s.read_page(page(1, 0), PAGE_SIZE);
        let stats = s.stats();
        assert_eq!(stats.pages_read, 1);
        assert_eq!(stats.pool_hits, 1);
        assert_eq!(stats.bytes_read, PAGE_SIZE);
    }

    #[test]
    fn sequential_scan_counts_one_seek() {
        let pool = BufferPool::new(100 * PAGE_SIZE);
        let s = IoSession::new(pool);
        s.read_file_sequential(FileId(7), 10 * PAGE_SIZE);
        let stats = s.stats();
        assert_eq!(stats.pages_read, 10);
        assert_eq!(stats.seeks, 1); // only the initial positioning
    }

    #[test]
    fn random_access_counts_seeks() {
        let pool = BufferPool::new(100 * PAGE_SIZE);
        let s = IoSession::new(pool);
        for p in [0u32, 5, 2, 9] {
            s.read_page(page(3, p), PAGE_SIZE);
        }
        assert_eq!(s.stats().seeks, 4);
    }

    #[test]
    fn clock_evicts_when_full() {
        let pool = BufferPool::new(2 * PAGE_SIZE); // 2 frames
        let s = IoSession::new(pool.clone());
        s.read_page(page(1, 0), PAGE_SIZE);
        s.read_page(page(1, 1), PAGE_SIZE);
        s.read_page(page(1, 2), PAGE_SIZE); // evicts something
        assert_eq!(pool.resident_pages(), 2);
        // Re-reading the full set of 3 can't all be hits.
        let before = s.stats().pages_read;
        s.read_page(page(1, 0), PAGE_SIZE);
        s.read_page(page(1, 1), PAGE_SIZE);
        s.read_page(page(1, 2), PAGE_SIZE);
        assert!(s.stats().pages_read > before);
    }

    #[test]
    fn unbounded_pool_caches_everything() {
        let s = IoSession::unmetered();
        for p in 0..1000 {
            s.read_page(page(1, p), PAGE_SIZE);
        }
        for p in 0..1000 {
            s.read_page(page(1, p), PAGE_SIZE);
        }
        let stats = s.stats();
        assert_eq!(stats.pages_read, 1000);
        assert_eq!(stats.pool_hits, 1000);
    }

    #[test]
    fn disk_model_times() {
        let m = DiskModel::default();
        let stats =
            IoStats { bytes_read: 200 * 1024 * 1024, pages_read: 6400, seeks: 0, pool_hits: 0 };
        let t = m.io_time(&stats);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        let with_seeks = IoStats { seeks: 250, ..stats };
        assert!((m.io_time(&with_seeks).as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn take_stats_resets() {
        let s = IoSession::unmetered();
        s.read_page(page(1, 0), 100);
        assert_eq!(s.take_stats().pages_read, 1);
        assert_eq!(s.stats(), IoStats::default());
    }

    #[test]
    fn pool_clear() {
        let pool = BufferPool::new(10 * PAGE_SIZE);
        let s = IoSession::new(pool.clone());
        s.read_page(page(1, 0), PAGE_SIZE);
        assert_eq!(pool.resident_pages(), 1);
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn file_ids_unique() {
        let a = FileId::fresh();
        let b = FileId::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn interleaved_files_are_independent_streams() {
        // Two files read in lockstep: each is sequential on its own stripe,
        // so only the two initial positioning seeks are charged.
        let s = IoSession::unmetered();
        for p in 0..10u32 {
            s.read_page(page(1, p), PAGE_SIZE);
            s.read_page(page(2, p), PAGE_SIZE);
        }
        assert_eq!(s.stats().seeks, 2);
        assert_eq!(s.stats().pages_read, 20);
    }

    #[test]
    fn recording_session_charges_nothing() {
        let pool = BufferPool::new(10 * PAGE_SIZE);
        let rec = IoSession::recording(pool.clone());
        assert!(rec.is_recording());
        rec.read_page(page(1, 0), PAGE_SIZE);
        rec.read_page(page(1, 1), 100);
        assert_eq!(rec.stats(), IoStats::default());
        assert_eq!(pool.resident_pages(), 0);
        let log = rec.take_log();
        assert_eq!(log.entries(), &[(page(1, 0), PAGE_SIZE), (page(1, 1), 100)]);
        assert!(rec.take_log().entries().is_empty(), "log drained");
    }

    #[test]
    fn op_major_replay_groups_fragments_by_op() {
        // Two morsels, each charging op A (file 1) then op B (file 2).
        // Op-major replay must order file 1's fragments together, like a
        // serial plan, not interleave the files morsel by morsel.
        let main = IoSession::unmetered();
        let mut logs = Vec::new();
        for half in 0..2u32 {
            let rec = IoSession::recording(main.pool().clone());
            rec.begin_op();
            for p in half * 3..(half + 1) * 3 {
                rec.read_page(page(1, p), PAGE_SIZE);
            }
            rec.begin_op();
            for p in half * 3..(half + 1) * 3 {
                rec.read_page(page(2, p), PAGE_SIZE);
            }
            let log = rec.take_log();
            assert_eq!(log.num_ops(), 2);
            assert_eq!(log.op(0).len(), 3);
            logs.push(log);
        }
        main.replay_interleaved(&logs);
        // Each file was read as one sequential stream: one seek per file.
        let stats = main.stats();
        assert_eq!(stats.pages_read, 12);
        assert_eq!(stats.seeks, 2);
    }

    #[test]
    fn replayed_split_logs_match_serial_stats() {
        // A 10-page sequential scan split into two recorded halves with a
        // duplicated boundary page replays to the exact serial stats.
        let serial = IoSession::unmetered();
        serial.read_file_sequential(FileId(9), 10 * PAGE_SIZE);

        let replayed = IoSession::unmetered();
        let first = IoSession::recording(replayed.pool().clone());
        let second = IoSession::recording(replayed.pool().clone());
        for p in 0..6u32 {
            first.read_page(page(9, p), PAGE_SIZE);
        }
        for p in 5..10u32 {
            second.read_page(page(9, p), PAGE_SIZE);
        }
        replayed.replay(&first.take_log());
        replayed.replay(&second.take_log());

        let (a, b) = (serial.stats(), replayed.stats());
        assert_eq!(a.bytes_read, b.bytes_read);
        assert_eq!(a.pages_read, b.pages_read);
        assert_eq!(a.seeks, b.seeks);
        assert_eq!(b.pool_hits, 1, "boundary page resolves to a hit");
    }

    #[test]
    fn sessions_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<IoSession>();
    }
}
