//! Metered, simulated disk I/O.
//!
//! The paper's experiments ran on a 4-disk array with 160–200 MB/s aggregate
//! sequential bandwidth, and most of its row-store results are I/O-bound.
//! Real disks are not available (or controllable) in this environment, so we
//! substitute a *metered page store*: tables are serialized into 32 KB pages
//! held in memory, every page that crosses the buffer pool is counted in
//! [`IoStats`], and a [`DiskModel`] converts the counts into modeled I/O
//! time. Queries then report `measured CPU time + modeled I/O time`, which
//! preserves the paper's I/O-vs-CPU cost structure (see DESIGN.md §4).
//!
//! Sequential vs random access matters to several experiments (index plans
//! pay seeks; heap scans do not), so [`IoSession`] detects non-consecutive
//! page misses per file and counts them as seeks.

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Size of one disk page: 32 KB, the System X configuration in Section 6.2.
pub const PAGE_SIZE: u64 = 32 * 1024;

/// Number of pages needed to hold `bytes`.
pub fn pages_for(bytes: u64) -> u32 {
    bytes.div_ceil(PAGE_SIZE).max(1) as u32
}

/// Identifier of a stored file (heap file, column segment, index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

impl FileId {
    /// Allocate a fresh file id (process-wide unique).
    pub fn fresh() -> FileId {
        FileId(NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// Identifier of one page within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId {
    /// Owning file.
    pub file: FileId,
    /// Zero-based page number.
    pub page: u32,
}

/// The disk performance model used to convert [`IoStats`] into time.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Sequential bandwidth, bytes per second. Default 200 MB/s — the upper
    /// end of the paper's "160 - 200 MB/sec in aggregate for striped files".
    pub seq_bandwidth: f64,
    /// Latency charged per seek (non-sequential page miss). Default 4 ms.
    pub seek_latency: Duration,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel { seq_bandwidth: 200.0 * 1024.0 * 1024.0, seek_latency: Duration::from_millis(4) }
    }
}

impl DiskModel {
    /// Modeled time to perform the accesses recorded in `stats`.
    pub fn io_time(&self, stats: &IoStats) -> Duration {
        let transfer = Duration::from_secs_f64(stats.bytes_read as f64 / self.seq_bandwidth);
        transfer + self.seek_latency * stats.seeks as u32
    }
}

/// Counters of simulated disk traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages fetched from "disk" (buffer-pool misses).
    pub pages_read: u64,
    /// Bytes fetched from "disk".
    pub bytes_read: u64,
    /// Non-sequential page fetches.
    pub seeks: u64,
    /// Buffer-pool hits (not charged).
    pub pool_hits: u64,
}

impl IoStats {
    /// Accumulate another stats block into this one.
    pub fn add(&mut self, other: &IoStats) {
        self.pages_read += other.pages_read;
        self.bytes_read += other.bytes_read;
        self.seeks += other.seeks;
        self.pool_hits += other.pool_hits;
    }
}

/// A fixed-capacity buffer pool with CLOCK eviction.
///
/// The pool only tracks *which* pages are resident (the bytes themselves stay
/// in the owning table object); its job is deciding whether an access is a
/// hit (free) or a miss (charged to the session's [`IoStats`]). A capacity of
/// `u64::MAX` (see [`BufferPool::unbounded`]) makes every re-access free,
/// modeling a fully warm cache.
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    capacity_pages: usize,
}

#[derive(Debug)]
struct PoolInner {
    /// page -> slot index in `frames`.
    map: HashMap<PageId, usize>,
    /// Resident pages with their reference bit.
    frames: Vec<(PageId, bool)>,
    /// CLOCK hand.
    hand: usize,
}

impl BufferPool {
    /// Pool holding at most `capacity_bytes` of pages.
    pub fn new(capacity_bytes: u64) -> Arc<BufferPool> {
        let capacity_pages = (capacity_bytes / PAGE_SIZE).max(1) as usize;
        Arc::new(BufferPool {
            inner: Mutex::new(PoolInner {
                map: HashMap::with_capacity(capacity_pages.min(1 << 20)),
                frames: Vec::new(),
                hand: 0,
            }),
            capacity_pages,
        })
    }

    /// Pool that never evicts — models data fully resident in memory.
    pub fn unbounded() -> Arc<BufferPool> {
        Arc::new(BufferPool {
            inner: Mutex::new(PoolInner { map: HashMap::new(), frames: Vec::new(), hand: 0 }),
            capacity_pages: usize::MAX,
        })
    }

    /// Record an access to `page`; returns `true` on a pool hit.
    pub fn access(&self, page: PageId) -> bool {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&page) {
            inner.frames[slot].1 = true;
            return true;
        }
        // Miss: admit, evicting via CLOCK when full.
        if inner.frames.len() < self.capacity_pages {
            inner.frames.push((page, true));
            let slot = inner.frames.len() - 1;
            inner.map.insert(page, slot);
        } else {
            loop {
                let hand = inner.hand;
                let (victim, referenced) = inner.frames[hand];
                if referenced {
                    inner.frames[hand].1 = false;
                    inner.hand = (hand + 1) % self.capacity_pages.max(1);
                } else {
                    inner.map.remove(&victim);
                    inner.frames[hand] = (page, true);
                    inner.map.insert(page, hand);
                    inner.hand = (hand + 1) % self.capacity_pages.max(1);
                    break;
                }
            }
        }
        false
    }

    /// Drop every resident page (a "cold cache" reset between experiments).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.frames.clear();
        inner.hand = 0;
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }
}

/// Per-query I/O accounting handle.
///
/// Cheap to create; not `Sync` (one per executing query). All storage and
/// index access paths take `&IoSession` and charge their page touches here.
pub struct IoSession {
    pool: Arc<BufferPool>,
    stats: Cell<IoStats>,
    /// Last page fetched per file, for sequentiality detection.
    last_fetch: Cell<Option<PageId>>,
}

impl IoSession {
    /// New session over `pool`.
    pub fn new(pool: Arc<BufferPool>) -> IoSession {
        IoSession { pool, stats: Cell::new(IoStats::default()), last_fetch: Cell::new(None) }
    }

    /// Convenience: session over a fresh unbounded pool (tests).
    pub fn unmetered() -> IoSession {
        IoSession::new(BufferPool::unbounded())
    }

    /// Touch `page` whose on-disk size is `bytes` (≤ [`PAGE_SIZE`]; the last
    /// page of a file may be short).
    pub fn read_page(&self, page: PageId, bytes: u64) {
        let mut stats = self.stats.get();
        if self.pool.access(page) {
            stats.pool_hits += 1;
        } else {
            stats.pages_read += 1;
            stats.bytes_read += bytes;
            let sequential = matches!(
                self.last_fetch.get(),
                Some(prev) if prev.file == page.file && page.page == prev.page.wrapping_add(1)
            );
            if !sequential {
                stats.seeks += 1;
            }
            self.last_fetch.set(Some(page));
        }
        self.stats.set(stats);
    }

    /// Sequentially touch pages `[0, n)` of `file`, `total_bytes` long.
    pub fn read_file_sequential(&self, file: FileId, total_bytes: u64) {
        let n = pages_for(total_bytes);
        let mut remaining = total_bytes;
        for p in 0..n {
            let bytes = remaining.min(PAGE_SIZE);
            self.read_page(PageId { file, page: p }, bytes);
            remaining -= bytes;
        }
    }

    /// Stats accumulated so far.
    pub fn stats(&self) -> IoStats {
        self.stats.get()
    }

    /// Reset and return the accumulated stats.
    pub fn take_stats(&self) -> IoStats {
        let s = self.stats.get();
        self.stats.set(IoStats::default());
        self.last_fetch.set(None);
        s
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(file: u64, page: u32) -> PageId {
        PageId { file: FileId(file), page }
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for(0), 1); // every object occupies at least a page
    }

    #[test]
    fn session_charges_misses_only() {
        let pool = BufferPool::new(10 * PAGE_SIZE);
        let s = IoSession::new(pool);
        s.read_page(page(1, 0), PAGE_SIZE);
        s.read_page(page(1, 0), PAGE_SIZE);
        let stats = s.stats();
        assert_eq!(stats.pages_read, 1);
        assert_eq!(stats.pool_hits, 1);
        assert_eq!(stats.bytes_read, PAGE_SIZE);
    }

    #[test]
    fn sequential_scan_counts_one_seek() {
        let pool = BufferPool::new(100 * PAGE_SIZE);
        let s = IoSession::new(pool);
        s.read_file_sequential(FileId(7), 10 * PAGE_SIZE);
        let stats = s.stats();
        assert_eq!(stats.pages_read, 10);
        assert_eq!(stats.seeks, 1); // only the initial positioning
    }

    #[test]
    fn random_access_counts_seeks() {
        let pool = BufferPool::new(100 * PAGE_SIZE);
        let s = IoSession::new(pool);
        for p in [0u32, 5, 2, 9] {
            s.read_page(page(3, p), PAGE_SIZE);
        }
        assert_eq!(s.stats().seeks, 4);
    }

    #[test]
    fn clock_evicts_when_full() {
        let pool = BufferPool::new(2 * PAGE_SIZE); // 2 frames
        let s = IoSession::new(pool.clone());
        s.read_page(page(1, 0), PAGE_SIZE);
        s.read_page(page(1, 1), PAGE_SIZE);
        s.read_page(page(1, 2), PAGE_SIZE); // evicts something
        assert_eq!(pool.resident_pages(), 2);
        // Re-reading the full set of 3 can't all be hits.
        let before = s.stats().pages_read;
        s.read_page(page(1, 0), PAGE_SIZE);
        s.read_page(page(1, 1), PAGE_SIZE);
        s.read_page(page(1, 2), PAGE_SIZE);
        assert!(s.stats().pages_read > before);
    }

    #[test]
    fn unbounded_pool_caches_everything() {
        let s = IoSession::unmetered();
        for p in 0..1000 {
            s.read_page(page(1, p), PAGE_SIZE);
        }
        for p in 0..1000 {
            s.read_page(page(1, p), PAGE_SIZE);
        }
        let stats = s.stats();
        assert_eq!(stats.pages_read, 1000);
        assert_eq!(stats.pool_hits, 1000);
    }

    #[test]
    fn disk_model_times() {
        let m = DiskModel::default();
        let stats =
            IoStats { bytes_read: 200 * 1024 * 1024, pages_read: 6400, seeks: 0, pool_hits: 0 };
        let t = m.io_time(&stats);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        let with_seeks = IoStats { seeks: 250, ..stats };
        assert!((m.io_time(&with_seeks).as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn take_stats_resets() {
        let s = IoSession::unmetered();
        s.read_page(page(1, 0), 100);
        assert_eq!(s.take_stats().pages_read, 1);
        assert_eq!(s.stats(), IoStats::default());
    }

    #[test]
    fn pool_clear() {
        let pool = BufferPool::new(10 * PAGE_SIZE);
        let s = IoSession::new(pool.clone());
        s.read_page(page(1, 0), PAGE_SIZE);
        assert_eq!(pool.resident_pages(), 1);
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn file_ids_unique() {
        let a = FileId::fresh();
        let b = FileId::fresh();
        assert_ne!(a, b);
    }
}
