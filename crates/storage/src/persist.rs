//! Durable on-disk snapshots: checksummed segment files + atomic manifests.
//!
//! Everything upstream of this module lives in memory — every process start
//! regenerates SSB from scratch. This module gives the store a crash-safe
//! persistence substrate:
//!
//! * **Segment files** — one file per encoded column (or raw heap/index
//!   image), laid out as `magic | format | kind | enc | rows | payload_len |
//!   payload | crc64`. The CRC covers every byte before it, so torn writes
//!   and bit flips are detected before a single value is decoded.
//! * **Manifest** — `MANIFEST-<generation>` lists every segment with its
//!   file name, geometry, and a *pinned copy* of its CRC; the manifest
//!   carries its own trailing CRC. A snapshot is visible iff its manifest
//!   rename completed, so the rename is the commit point (write temp →
//!   fsync file → rename → fsync dir).
//! * **Recovery** — [`load_latest`] walks generations newest-first and
//!   returns the first one that validates end-to-end; a damaged newest
//!   generation falls back to its predecessor (counted in
//!   [`LoadReport::fallbacks`]) instead of ever decoding corrupt bytes.
//!
//! The write path threads through the [`fault`](crate::fault) layer: torn
//! writes, bit flips, fsync failures, and `crash:<label>` abort points are
//! all injectable, which is what the `crash` bench harness exercises.
//!
//! This is deliberately a *snapshot* store, not a log: generations are
//! immutable once committed, which is exactly the segment-swap seam a
//! delta-store/tuple-mover write path needs (swap = write new generation,
//! flip manifest).

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use cvr_data::{star_schema, ColumnData, SsbConfig, SsbTables, TableData, TableSchema};

use crate::encode::{Column, IntColumn, Run, StrColumn};
use crate::fault;
use crate::packed::PackedInts;

/// Segment file magic (8 bytes, includes format family).
pub const SEGMENT_MAGIC: &[u8; 8] = b"CVRSEG1\0";
/// Manifest file magic.
pub const MANIFEST_MAGIC: &[u8; 8] = b"CVRMAN1\0";
/// On-disk format version for both segments and manifests.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed segment header size: magic(8) + format(4) + kind(1) + enc(1) +
/// pad(2) + rows(8) + payload_len(8).
const SEGMENT_HEADER_BYTES: usize = 32;
/// Trailing checksum size.
const CRC_BYTES: usize = 8;

/// Errors from the persistence layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// Underlying filesystem failure (including injected fsync failures).
    Io(String),
    /// On-disk bytes failed validation — checksum mismatch, bad magic,
    /// impossible geometry, or values that violate a codec invariant.
    /// Corrupt data is *never* partially decoded.
    Corrupt {
        /// Human-readable description of what failed to validate.
        detail: String,
    },
    /// The data directory holds no committed snapshot at all.
    NoSnapshot,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(detail) => write!(f, "persist i/o error: {detail}"),
            PersistError::Corrupt { detail } => write!(f, "snapshot corrupt: {detail}"),
            PersistError::NoSnapshot => write!(f, "no snapshot found"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

fn corrupt(detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt { detail: detail.into() }
}

// ---------------------------------------------------------------------------
// CRC64 (reflected ECMA-182), hand-rolled: no external checksum crates.
// ---------------------------------------------------------------------------

const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

fn crc64_table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u64; 256];
        let mut i = 0u64;
        while i < 256 {
            let mut crc = i;
            for _ in 0..8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ CRC64_POLY } else { crc >> 1 };
            }
            table[i as usize] = crc;
            i += 1;
        }
        table
    })
}

/// CRC64/XZ (reflected ECMA-182) over `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let table = crc64_table();
    let mut crc = !0u64;
    for &b in bytes {
        crc = table[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Little-endian put/take helpers.
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked cursor over untrusted bytes; every overrun is a typed
/// [`PersistError::Corrupt`], never a panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or_else(|| corrupt("length overflow"))?;
        let s = self.buf.get(self.pos..end).ok_or_else(|| corrupt("truncated record"))?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn utf8(&mut self, n: usize) -> Result<&'a str, PersistError> {
        std::str::from_utf8(self.take(n)?).map_err(|_| corrupt("invalid utf-8 in record"))
    }

    fn done(&self) -> Result<(), PersistError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt(format!("{} trailing bytes after record", self.buf.len() - self.pos)))
        }
    }
}

// ---------------------------------------------------------------------------
// Segment payloads.
// ---------------------------------------------------------------------------

/// The logical content of one segment file.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentPayload {
    /// An encoded integer column (plain / RLE / packed).
    Int(IntColumn),
    /// An encoded string column (plain / dictionary).
    Str(StrColumn),
    /// An opaque byte image (heap file or index snapshot); the persist
    /// layer checksums it but does not interpret it.
    Raw(Vec<u8>),
}

impl SegmentPayload {
    /// On-disk `kind` tag.
    pub fn kind(&self) -> u8 {
        match self {
            SegmentPayload::Int(_) => 0,
            SegmentPayload::Str(_) => 1,
            SegmentPayload::Raw(_) => 2,
        }
    }

    /// On-disk `enc` tag (encoding within the kind).
    pub fn enc(&self) -> u8 {
        match self {
            SegmentPayload::Int(IntColumn::Plain { .. }) => 0,
            SegmentPayload::Int(IntColumn::Rle { .. }) => 1,
            SegmentPayload::Int(IntColumn::Packed { .. }) => 2,
            SegmentPayload::Str(StrColumn::Plain { .. }) => 0,
            SegmentPayload::Str(StrColumn::Dict { .. }) => 1,
            SegmentPayload::Raw(_) => 0,
        }
    }

    /// Logical row count recorded in the header (byte length for raw
    /// images).
    pub fn rows(&self) -> u64 {
        match self {
            SegmentPayload::Int(ic) => ic.len() as u64,
            SegmentPayload::Str(sc) => sc.len() as u64,
            SegmentPayload::Raw(b) => b.len() as u64,
        }
    }
}

fn encode_int_payload(out: &mut Vec<u8>, ic: &IntColumn) {
    match ic {
        IntColumn::Plain { values, width } => {
            out.push(*width);
            put_u32(out, values.len() as u32);
            for &v in values {
                put_i64(out, v);
            }
        }
        IntColumn::Rle { runs, num_values } => {
            put_u32(out, *num_values);
            put_u32(out, runs.len() as u32);
            for r in runs {
                put_i64(out, r.value);
                put_u32(out, r.start);
                put_u32(out, r.len);
            }
        }
        IntColumn::Packed { reference, packed } => {
            put_i64(out, *reference);
            out.push(packed.value_bits());
            put_u32(out, packed.len());
            put_u32(out, packed.words().len() as u32);
            for &w in packed.words() {
                put_u64(out, w);
            }
        }
    }
}

fn decode_packed(r: &mut Reader<'_>) -> Result<PackedInts, PersistError> {
    let value_bits = r.u8()?;
    let len = r.u32()?;
    let nwords = r.u32()? as usize;
    if nwords > r.buf.len() / 8 + 1 {
        return Err(corrupt("packed word count exceeds payload"));
    }
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(r.u64()?);
    }
    PackedInts::from_raw_parts(words, len, value_bits).map_err(corrupt)
}

fn decode_int_payload(enc: u8, r: &mut Reader<'_>) -> Result<IntColumn, PersistError> {
    match enc {
        0 => {
            let width = r.u8()?;
            if !matches!(width, 1 | 2 | 4 | 8) {
                return Err(corrupt(format!("invalid plain width {width}")));
            }
            let n = r.u32()? as usize;
            if n > r.buf.len() / 8 + 1 {
                return Err(corrupt("plain value count exceeds payload"));
            }
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.i64()?);
            }
            if crate::encode::byte_width(&values) > width {
                return Err(corrupt("plain values exceed recorded byte width"));
            }
            Ok(IntColumn::Plain { values, width })
        }
        1 => {
            let num_values = r.u32()?;
            let nruns = r.u32()? as usize;
            if nruns > r.buf.len() / 16 + 1 {
                return Err(corrupt("run count exceeds payload"));
            }
            let mut runs = Vec::with_capacity(nruns);
            let mut next_start = 0u64;
            for _ in 0..nruns {
                let value = r.i64()?;
                let start = r.u32()?;
                let len = r.u32()?;
                if len == 0 {
                    return Err(corrupt("zero-length run"));
                }
                if start as u64 != next_start {
                    return Err(corrupt("runs do not tile the column"));
                }
                next_start += len as u64;
                runs.push(Run { value, start, len });
            }
            if next_start != num_values as u64 {
                return Err(corrupt("run total does not match row count"));
            }
            Ok(IntColumn::Rle { runs, num_values })
        }
        2 => {
            let reference = r.i64()?;
            let packed = decode_packed(r)?;
            Ok(IntColumn::Packed { reference, packed })
        }
        other => Err(corrupt(format!("unknown int encoding tag {other}"))),
    }
}

fn encode_str_payload(out: &mut Vec<u8>, sc: &StrColumn) {
    match sc {
        StrColumn::Plain { values, bytes: _ } => {
            put_u32(out, values.len() as u32);
            for v in values {
                put_u32(out, v.len() as u32);
                out.extend_from_slice(v.as_bytes());
            }
        }
        StrColumn::Dict { dict, codes } => {
            put_u32(out, dict.len() as u32);
            for v in dict {
                put_u32(out, v.len() as u32);
                out.extend_from_slice(v.as_bytes());
            }
            out.push(codes.value_bits());
            put_u32(out, codes.len());
            put_u32(out, codes.words().len() as u32);
            for &w in codes.words() {
                put_u64(out, w);
            }
        }
    }
}

fn decode_strings(r: &mut Reader<'_>, what: &str) -> Result<Vec<Box<str>>, PersistError> {
    let n = r.u32()? as usize;
    if n > r.buf.len() + 1 {
        return Err(corrupt(format!("{what} count exceeds payload")));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.u32()? as usize;
        if len > 255 {
            return Err(corrupt(format!("{what} entry longer than 255 bytes")));
        }
        values.push(Box::<str>::from(r.utf8(len)?));
    }
    Ok(values)
}

fn decode_str_payload(enc: u8, r: &mut Reader<'_>) -> Result<StrColumn, PersistError> {
    match enc {
        0 => {
            let values = decode_strings(r, "string")?;
            let bytes = values.iter().map(|v| 1 + v.len() as u64).sum();
            Ok(StrColumn::Plain { values, bytes })
        }
        1 => {
            let dict = decode_strings(r, "dictionary")?;
            if dict.windows(2).any(|w| w[0] >= w[1]) {
                return Err(corrupt("dictionary is not strictly sorted"));
            }
            let codes = decode_packed(r)?;
            let dict_n = dict.len() as u64;
            let mut bad = false;
            codes.for_each_in(0, codes.len(), |c| bad |= c >= dict_n);
            if bad {
                return Err(corrupt("dictionary code out of range"));
            }
            Ok(StrColumn::Dict { dict, codes })
        }
        other => Err(corrupt(format!("unknown string encoding tag {other}"))),
    }
}

/// Serialize a segment to its full file image (header + payload + CRC64).
pub fn encode_segment(payload: &SegmentPayload) -> Vec<u8> {
    let mut body = Vec::new();
    match payload {
        SegmentPayload::Int(ic) => encode_int_payload(&mut body, ic),
        SegmentPayload::Str(sc) => encode_str_payload(&mut body, sc),
        SegmentPayload::Raw(bytes) => body.extend_from_slice(bytes),
    }
    let mut out = Vec::with_capacity(SEGMENT_HEADER_BYTES + body.len() + CRC_BYTES);
    out.extend_from_slice(SEGMENT_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    out.push(payload.kind());
    out.push(payload.enc());
    put_u16(&mut out, 0); // pad
    put_u64(&mut out, payload.rows());
    put_u64(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    let crc = crc64(&out);
    put_u64(&mut out, crc);
    out
}

/// Parse and fully validate a segment file image. The checksum is verified
/// before any payload byte is interpreted; corrupt images always fail typed.
pub fn decode_segment(image: &[u8]) -> Result<SegmentPayload, PersistError> {
    if image.len() < SEGMENT_HEADER_BYTES + CRC_BYTES {
        return Err(corrupt("segment shorter than header"));
    }
    let (body, crc_bytes) = image.split_at(image.len() - CRC_BYTES);
    let stored = u64::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc64(body) != stored {
        return Err(corrupt("segment checksum mismatch"));
    }
    let mut r = Reader::new(body);
    if r.take(8)? != SEGMENT_MAGIC {
        return Err(corrupt("bad segment magic"));
    }
    let format = r.u32()?;
    if format != FORMAT_VERSION {
        return Err(corrupt(format!("unsupported segment format {format}")));
    }
    let kind = r.u8()?;
    let enc = r.u8()?;
    if r.u16()? != 0 {
        return Err(corrupt("non-zero header padding"));
    }
    let rows = r.u64()?;
    let payload_len = r.u64()? as usize;
    if payload_len != body.len() - SEGMENT_HEADER_BYTES {
        return Err(corrupt("payload length does not match file size"));
    }
    let payload_bytes = r.take(payload_len)?;
    r.done()?;
    let mut pr = Reader::new(payload_bytes);
    let payload = match kind {
        0 => SegmentPayload::Int(decode_int_payload(enc, &mut pr)?),
        1 => SegmentPayload::Str(decode_str_payload(enc, &mut pr)?),
        2 => {
            if enc != 0 {
                return Err(corrupt(format!("unknown raw encoding tag {enc}")));
            }
            SegmentPayload::Raw(pr.take(payload_len)?.to_vec())
        }
        other => return Err(corrupt(format!("unknown segment kind {other}"))),
    };
    pr.done()?;
    if payload.rows() != rows {
        return Err(corrupt("header row count does not match payload"));
    }
    Ok(payload)
}

fn trailing_crc(image: &[u8]) -> u64 {
    u64::from_le_bytes(image[image.len() - CRC_BYTES..].try_into().unwrap())
}

// ---------------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------------

/// One segment's entry in a manifest: file identity plus a pinned copy of
/// the segment's own CRC, so the manifest commits to exact content.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Logical name, `table.column`.
    pub name: String,
    /// Relative file name inside the data directory.
    pub file: String,
    /// Segment kind tag.
    pub kind: u8,
    /// Segment encoding tag.
    pub enc: u8,
    /// Logical row count.
    pub rows: u64,
    /// Exact file size in bytes.
    pub bytes: u64,
    /// The segment file's trailing CRC64 (pinned).
    pub crc: u64,
}

/// A parsed, validated manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Snapshot generation (monotonically increasing, 1-based).
    pub generation: u64,
    /// Scale factor the snapshot was generated at.
    pub sf: f64,
    /// Generator seed.
    pub seed: u64,
    /// Every segment in the snapshot.
    pub entries: Vec<ManifestEntry>,
}

/// File name for generation `gen`'s manifest.
pub fn manifest_name(gen: u64) -> String {
    format!("MANIFEST-{gen}")
}

fn segment_file_name(name: &str, gen: u64) -> String {
    format!("{name}.g{gen}.seg")
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u64(&mut out, m.generation);
    put_u64(&mut out, m.sf.to_bits());
    put_u64(&mut out, m.seed);
    put_u32(&mut out, m.entries.len() as u32);
    for e in &m.entries {
        put_u16(&mut out, e.name.len() as u16);
        out.extend_from_slice(e.name.as_bytes());
        put_u16(&mut out, e.file.len() as u16);
        out.extend_from_slice(e.file.as_bytes());
        out.push(e.kind);
        out.push(e.enc);
        put_u64(&mut out, e.rows);
        put_u64(&mut out, e.bytes);
        put_u64(&mut out, e.crc);
    }
    let crc = crc64(&out);
    put_u64(&mut out, crc);
    out
}

fn decode_manifest(image: &[u8]) -> Result<Manifest, PersistError> {
    if image.len() < 8 + CRC_BYTES {
        return Err(corrupt("manifest shorter than header"));
    }
    let (body, crc_bytes) = image.split_at(image.len() - CRC_BYTES);
    let stored = u64::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc64(body) != stored {
        return Err(corrupt("manifest checksum mismatch"));
    }
    let mut r = Reader::new(body);
    if r.take(8)? != MANIFEST_MAGIC {
        return Err(corrupt("bad manifest magic"));
    }
    let format = r.u32()?;
    if format != FORMAT_VERSION {
        return Err(corrupt(format!("unsupported manifest format {format}")));
    }
    let generation = r.u64()?;
    let sf = f64::from_bits(r.u64()?);
    if !sf.is_finite() || sf <= 0.0 {
        return Err(corrupt("manifest scale factor not a positive finite number"));
    }
    let seed = r.u64()?;
    let n = r.u32()? as usize;
    if n > 65_535 {
        return Err(corrupt("manifest segment count implausibly large"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = r.u16()? as usize;
        let name = r.utf8(name_len)?.to_string();
        let file_len = r.u16()? as usize;
        let file = r.utf8(file_len)?.to_string();
        if file.contains('/') || file.contains('\\') || file.starts_with('.') {
            return Err(corrupt(format!("manifest entry file name {file:?} escapes directory")));
        }
        let kind = r.u8()?;
        let enc = r.u8()?;
        let rows = r.u64()?;
        let bytes = r.u64()?;
        let crc = r.u64()?;
        entries.push(ManifestEntry { name, file, kind, enc, rows, bytes, crc });
    }
    r.done()?;
    Ok(Manifest { generation, sf, seed, entries })
}

// ---------------------------------------------------------------------------
// Atomic file writes, with durability faults threaded through.
// ---------------------------------------------------------------------------

fn fsync_dir(dir: &Path) -> Result<(), PersistError> {
    // Directory fsync makes the rename itself durable on Linux.
    fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Write `bytes` to `dir/name` via the temp → fsync → rename protocol.
///
/// Injected faults model a lying disk: torn writes and bit flips damage the
/// bytes *and still report success* (detection is the loader's job), while
/// an injected fsync failure surfaces as [`PersistError::Io`] before the
/// rename, leaving the previous state intact.
fn write_file_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let fin = dir.join(name);
    let mut image = std::borrow::Cow::Borrowed(bytes);
    if let Some(cut) = fault::take_torn_write(bytes.len()) {
        image = std::borrow::Cow::Borrowed(&bytes[..cut]);
    }
    if let Some((off, bit)) = fault::take_bit_flip(bytes.len()) {
        if !image.is_empty() {
            let off = off.min(image.len() - 1);
            image.to_mut()[off] ^= 1 << bit;
        }
    }
    let mut f = fs::File::create(&tmp)?;
    f.write_all(&image)?;
    if fault::take_fsync_failure() {
        drop(f);
        let _ = fs::remove_file(&tmp);
        return Err(PersistError::Io("injected fsync failure".into()));
    }
    f.sync_all()?;
    drop(f);
    fault::crash_point("persist:pre-rename");
    fs::rename(&tmp, &fin)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Snapshot write.
// ---------------------------------------------------------------------------

/// What a successful [`write_snapshot`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Generation committed.
    pub generation: u64,
    /// Segment files written (excluding the manifest).
    pub segments: usize,
    /// Total bytes written (segments + manifest).
    pub bytes: u64,
}

fn snapshot_tables(t: &SsbTables) -> [&TableData; 5] {
    [&t.lineorder, &t.customer, &t.supplier, &t.part, &t.date]
}

/// Serialize every column of every table to checksummed segment files and
/// commit them with an atomic manifest rename. The new generation is
/// `latest + 1`; concurrent readers of older generations are unaffected
/// (generations are immutable once committed).
pub fn write_snapshot(dir: &Path, tables: &SsbTables) -> Result<SnapshotReport, PersistError> {
    fs::create_dir_all(dir)?;
    let generation = generations(dir)?.last().copied().unwrap_or(0) + 1;
    let parts = snapshot_tables(tables);
    let nsegs: usize = parts.iter().map(|t| t.schema.arity()).sum();
    let mid = (nsegs / 2).max(1);
    let mut entries = Vec::with_capacity(nsegs);
    let mut total_bytes = 0u64;
    let mut written = 0usize;
    for table in parts {
        for (def, data) in table.schema.columns.iter().zip(&table.columns) {
            let name = format!("{}.{}", table.schema.name, def.name);
            let payload = match Column::encode(data, true) {
                Column::Int(ic) => SegmentPayload::Int(ic),
                Column::Str(sc) => SegmentPayload::Str(sc),
            };
            let image = encode_segment(&payload);
            let file = segment_file_name(&name, generation);
            write_file_atomic(dir, &file, &image)?;
            entries.push(ManifestEntry {
                name,
                file,
                kind: payload.kind(),
                enc: payload.enc(),
                rows: payload.rows(),
                bytes: image.len() as u64,
                crc: trailing_crc(&image),
            });
            total_bytes += image.len() as u64;
            written += 1;
            if written == mid {
                fault::crash_point("persist:mid-segments");
            }
        }
    }
    fault::crash_point("persist:pre-manifest");
    let manifest = Manifest { generation, sf: tables.config.sf, seed: tables.config.seed, entries };
    let image = encode_manifest(&manifest);
    total_bytes += image.len() as u64;
    write_file_atomic(dir, &manifest_name(generation), &image)?;
    fault::crash_point("persist:pre-dirsync");
    fsync_dir(dir)?;
    fault::crash_point("persist:post-commit");
    Ok(SnapshotReport { generation, segments: nsegs, bytes: total_bytes })
}

// ---------------------------------------------------------------------------
// Loading & recovery.
// ---------------------------------------------------------------------------

/// What [`load_latest`] recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Generation that validated and was loaded.
    pub generation: u64,
    /// Segments read.
    pub segments: usize,
    /// Bytes read and checksummed.
    pub bytes: u64,
    /// Newer generations that failed validation and were skipped.
    pub fallbacks: u32,
}

/// All committed generations in `dir`, ascending. A missing directory is
/// simply "no generations", not an error.
pub fn generations(dir: &Path) -> Result<Vec<u64>, PersistError> {
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut gens = Vec::new();
    for entry in rd {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name.strip_prefix("MANIFEST-") {
            if let Ok(g) = rest.parse::<u64>() {
                gens.push(g);
            }
        }
    }
    gens.sort_unstable();
    gens.dedup();
    Ok(gens)
}

fn read_manifest(dir: &Path, gen: u64) -> Result<Manifest, PersistError> {
    let path = dir.join(manifest_name(gen));
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(PersistError::NoSnapshot),
        Err(e) => return Err(e.into()),
    };
    let m = decode_manifest(&bytes)?;
    if m.generation != gen {
        return Err(corrupt(format!(
            "manifest {} claims generation {}",
            manifest_name(gen),
            m.generation
        )));
    }
    Ok(m)
}

fn build_table(
    schema: &TableSchema,
    cols: &mut HashMap<String, ColumnData>,
) -> Result<TableData, PersistError> {
    let mut columns = Vec::with_capacity(schema.arity());
    let mut rows: Option<usize> = None;
    for def in &schema.columns {
        let key = format!("{}.{}", schema.name, def.name);
        let data =
            cols.remove(&key).ok_or_else(|| corrupt(format!("manifest missing segment {key}")))?;
        if data.dtype() != def.dtype {
            return Err(corrupt(format!("segment {key} has wrong data type")));
        }
        match rows {
            None => rows = Some(data.len()),
            Some(r) if r != data.len() => {
                return Err(corrupt(format!("segment {key} length disagrees with its table")));
            }
            Some(_) => {}
        }
        columns.push(data);
    }
    Ok(TableData::new(schema.clone(), columns))
}

fn load_generation_inner(dir: &Path, gen: u64) -> Result<(SsbTables, usize, u64), PersistError> {
    let m = read_manifest(dir, gen)?;
    let mut cols: HashMap<String, ColumnData> = HashMap::with_capacity(m.entries.len());
    let mut bytes = 0u64;
    for e in &m.entries {
        let image = match fs::read(dir.join(&e.file)) {
            Ok(b) => b,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                return Err(corrupt(format!("segment file {} missing", e.file)));
            }
            Err(err) => return Err(err.into()),
        };
        if image.len() as u64 != e.bytes {
            return Err(corrupt(format!("segment {} size does not match manifest", e.name)));
        }
        let payload = decode_segment(&image)?;
        if trailing_crc(&image) != e.crc {
            return Err(corrupt(format!("segment {} checksum differs from manifest pin", e.name)));
        }
        if payload.kind() != e.kind || payload.enc() != e.enc || payload.rows() != e.rows {
            return Err(corrupt(format!("segment {} geometry differs from manifest", e.name)));
        }
        let data = match payload {
            SegmentPayload::Int(ic) => ColumnData::Int(ic.decode()),
            SegmentPayload::Str(sc) => {
                ColumnData::Str(sc.decode().into_iter().map(String::from).collect())
            }
            SegmentPayload::Raw(_) => {
                return Err(corrupt(format!(
                    "unexpected raw segment {} in table snapshot",
                    e.name
                )));
            }
        };
        if cols.insert(e.name.clone(), data).is_some() {
            return Err(corrupt(format!("duplicate segment {}", e.name)));
        }
        bytes += image.len() as u64;
    }
    let schema = star_schema();
    let lineorder = build_table(&schema.lineorder, &mut cols)?;
    let customer = build_table(&schema.customer, &mut cols)?;
    let supplier = build_table(&schema.supplier, &mut cols)?;
    let part = build_table(&schema.part, &mut cols)?;
    let date = build_table(&schema.date, &mut cols)?;
    if !cols.is_empty() {
        let mut extra: Vec<&str> = cols.keys().map(String::as_str).collect();
        extra.sort_unstable();
        return Err(corrupt(format!("manifest lists unknown segments: {}", extra.join(", "))));
    }
    let segments = m.entries.len();
    let tables = SsbTables {
        config: SsbConfig { sf: m.sf, seed: m.seed },
        schema,
        lineorder,
        customer,
        supplier,
        part,
        date,
    };
    Ok((tables, segments, bytes))
}

/// Load exactly generation `gen`, validating every checksum and codec
/// invariant. Fails typed on any damage — no fallback.
pub fn load_generation(dir: &Path, gen: u64) -> Result<SsbTables, PersistError> {
    load_generation_inner(dir, gen).map(|(t, _, _)| t)
}

/// Load the newest generation that validates end-to-end, falling back to
/// older generations when newer ones are damaged. Returns
/// [`PersistError::NoSnapshot`] when no manifest exists at all, or the last
/// validation error when every generation is damaged.
pub fn load_latest(dir: &Path) -> Result<(SsbTables, LoadReport), PersistError> {
    let gens = generations(dir)?;
    if gens.is_empty() {
        return Err(PersistError::NoSnapshot);
    }
    let mut fallbacks = 0u32;
    let mut last_err = None;
    for &g in gens.iter().rev() {
        match load_generation_inner(dir, g) {
            Ok((tables, segments, bytes)) => {
                return Ok((tables, LoadReport { generation: g, segments, bytes, fallbacks }));
            }
            Err(e) => {
                fallbacks += 1;
                last_err = Some(e);
            }
        }
    }
    Err(last_err.expect("at least one generation was tried"))
}

/// Delete all but the newest `keep` generations (manifest + segment files),
/// plus any stale `.tmp` files left behind by a crash mid-write. Returns
/// the number of files removed.
pub fn prune(dir: &Path, keep: usize) -> Result<usize, PersistError> {
    let gens = generations(dir)?;
    let cutoff = if gens.len() > keep { gens[gens.len() - keep] } else { u64::MIN };
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let mut removed = 0usize;
    let mut doomed: Vec<PathBuf> = Vec::new();
    for entry in rd {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let dead = if name.ends_with(".tmp") {
            true
        } else if let Some(rest) = name.strip_prefix("MANIFEST-") {
            rest.parse::<u64>().map(|g| g < cutoff).unwrap_or(false)
        } else if let Some(stem) = name.strip_suffix(".seg") {
            match stem.rfind(".g") {
                Some(i) => stem[i + 2..].parse::<u64>().map(|g| g < cutoff).unwrap_or(false),
                None => false,
            }
        } else {
            false
        };
        if dead {
            doomed.push(entry.path());
        }
    }
    for path in doomed {
        fs::remove_file(&path)?;
        removed += 1;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Column;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cvr-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_payloads() -> Vec<SegmentPayload> {
        let rle_src: Vec<i64> = (0..400).map(|i| i / 50).collect();
        let packed_src: Vec<i64> = (0..300).map(|i| 1000 + (i * 7) % 90).collect();
        let strs: Vec<String> = (0..120).map(|i| format!("value-{:03}", i % 40)).collect();
        vec![
            SegmentPayload::Int(IntColumn::plain(vec![-5, 0, 7, 1 << 40, i64::MIN, i64::MAX])),
            SegmentPayload::Int(IntColumn::plain_fixed(vec![1, 2, 3])),
            SegmentPayload::Int(IntColumn::rle(&rle_src)),
            SegmentPayload::Int(IntColumn::packed(&packed_src).expect("packable")),
            SegmentPayload::Str(StrColumn::plain(strs.clone())),
            SegmentPayload::Str(StrColumn::dict(&strs)),
            SegmentPayload::Raw(vec![0xAB; 777]),
            SegmentPayload::Raw(Vec::new()),
        ]
    }

    #[test]
    fn every_codec_round_trips_byte_identically() {
        for payload in sample_payloads() {
            let image = encode_segment(&payload);
            let back = decode_segment(&image).expect("intact segment decodes");
            assert_eq!(back, payload);
            // Re-encoding the decoded payload reproduces the exact image.
            assert_eq!(encode_segment(&back), image);
        }
    }

    #[test]
    fn corrupt_segments_fail_typed_never_decode() {
        for payload in sample_payloads() {
            let image = encode_segment(&payload);
            // Truncations at every structural boundary class.
            for cut in [0, 1, 7, 8, 12, 15, 31, 32, image.len() - 9, image.len() - 1] {
                if cut >= image.len() {
                    continue;
                }
                assert!(
                    decode_segment(&image[..cut]).is_err(),
                    "truncation to {cut} bytes must be detected"
                );
            }
            // A bit flip anywhere must be caught by the CRC.
            for pos in [0, 9, 14, 16, image.len() / 2, image.len() - 1] {
                let mut bad = image.clone();
                bad[pos] ^= 0x10;
                match decode_segment(&bad) {
                    Err(PersistError::Corrupt { .. }) => {}
                    other => panic!("bit flip at {pos} not detected: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn snapshot_load_round_trip_is_lossless() {
        let dir = temp_dir("roundtrip");
        let tables = SsbConfig { sf: 0.0002, seed: 7 }.generate();
        let report = write_snapshot(&dir, &tables).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.segments, 17 + 8 + 7 + 9 + 17);
        let (loaded, load) = load_latest(&dir).unwrap();
        assert_eq!(load.generation, 1);
        assert_eq!(load.fallbacks, 0);
        assert_eq!(load.segments, report.segments);
        assert_eq!(loaded.config.sf, tables.config.sf);
        assert_eq!(loaded.config.seed, tables.config.seed);
        for (a, b) in snapshot_tables(&loaded).iter().zip(snapshot_tables(&tables)) {
            assert_eq!(a.schema.name, b.schema.name);
            assert_eq!(a.columns, b.columns, "table {} differs after reload", b.schema.name);
        }
        // Logical equality implies re-encoded physical equality too.
        let c = Column::encode(tables.lineorder.column("lo_extendedprice"), true);
        let l = Column::encode(loaded.lineorder.column("lo_extendedprice"), true);
        assert_eq!(c, l);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generations_accumulate_and_prune() {
        let dir = temp_dir("generations");
        let tables = SsbConfig { sf: 0.0002, seed: 3 }.generate();
        for want in 1..=3u64 {
            let r = write_snapshot(&dir, &tables).unwrap();
            assert_eq!(r.generation, want);
        }
        assert_eq!(generations(&dir).unwrap(), vec![1, 2, 3]);
        let removed = prune(&dir, 2).unwrap();
        assert!(removed > 0);
        assert_eq!(generations(&dir).unwrap(), vec![2, 3]);
        // Pruned generation is gone; survivors still load.
        assert!(matches!(load_generation(&dir, 1), Err(PersistError::NoSnapshot)));
        assert!(load_generation(&dir, 3).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_newest_generation_falls_back_to_predecessor() {
        let dir = temp_dir("fallback");
        let tables = SsbConfig { sf: 0.0002, seed: 9 }.generate();
        write_snapshot(&dir, &tables).unwrap();
        write_snapshot(&dir, &tables).unwrap();
        // Flip one byte in a generation-2 segment file.
        let victim = dir.join(segment_file_name("lineorder.lo_orderkey", 2));
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&victim, &bytes).unwrap();
        assert!(matches!(load_generation(&dir, 2), Err(PersistError::Corrupt { .. })));
        let (loaded, report) = load_latest(&dir).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.fallbacks, 1);
        assert_eq!(loaded.lineorder.columns, tables.lineorder.columns);
        // Damaging generation 1 as well leaves nothing valid: typed error.
        let victim1 = dir.join(manifest_name(1));
        let mut m1 = fs::read(&victim1).unwrap();
        let last = m1.len() - 1;
        m1[last] ^= 0xFF;
        fs::write(&victim1, &m1).unwrap();
        assert!(matches!(load_latest(&dir), Err(PersistError::Corrupt { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_directory_reports_no_snapshot() {
        let dir = temp_dir("empty");
        assert!(matches!(load_latest(&dir), Err(PersistError::NoSnapshot)));
        let missing = dir.join("does-not-exist");
        assert!(matches!(load_latest(&missing), Err(PersistError::NoSnapshot)));
        assert_eq!(generations(&missing).unwrap(), Vec::<u64>::new());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_commits_but_is_detected_on_load() {
        let dir = temp_dir("torn");
        let tables = SsbConfig { sf: 0.0002, seed: 11 }.generate();
        write_snapshot(&dir, &tables).unwrap();
        {
            // Torn probability 1.0: the very first segment file is truncated
            // at a pseudo-random offset, yet the snapshot "succeeds" — the
            // disk lied. The loader must catch it and fall back.
            let _scope = fault::adopt(fault::FaultState::from_spec("torn:1.0,seed:5").unwrap());
            write_snapshot(&dir, &tables).unwrap();
        }
        let (_, report) = load_latest(&dir).unwrap();
        assert_eq!(report.generation, 1);
        assert!(report.fallbacks >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fsync_failure_aborts_before_commit() {
        let dir = temp_dir("fsync");
        let tables = SsbConfig { sf: 0.0002, seed: 13 }.generate();
        write_snapshot(&dir, &tables).unwrap();
        {
            let _scope = fault::adopt(fault::FaultState::from_spec("fsync:1.0,seed:5").unwrap());
            match write_snapshot(&dir, &tables) {
                Err(PersistError::Io(detail)) => assert!(detail.contains("fsync")),
                other => panic!("expected injected fsync failure, got {other:?}"),
            }
        }
        // The failed attempt never became visible.
        assert_eq!(generations(&dir).unwrap(), vec![1]);
        let (_, report) = load_latest(&dir).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.fallbacks, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
