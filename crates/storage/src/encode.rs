//! Column encodings: plain, run-length (RLE), and dictionary.
//!
//! These are the "lighter-weight schemes that sacrifice compression ratio
//! for decompression performance" of Section 5.1. Two properties matter to
//! the experiments and are preserved carefully here:
//!
//! 1. **Direct operation on compressed data.** RLE exposes its runs
//!    ([`IntColumn::runs`]) so predicates and aggregates can process a whole
//!    run at once; dictionaries are sorted, so order-preserving codes let
//!    string predicates become integer-code predicates evaluated once against
//!    the (tiny) dictionary.
//! 2. **Honest size accounting.** [`IntColumn::encoded_bytes`] /
//!    [`StrColumn::encoded_bytes`] report the on-disk footprint the I/O model
//!    charges: byte-width-minimized plain integers (a 4-byte int column at
//!    SF 10 is the paper's "just 240 MB"), 12-byte RLE runs, bit-packed
//!    dictionary codes.
//!
//! Two representation regimes coexist:
//!
//! * **Plain** columns favor hot-loop simplicity (native `i64` vectors);
//!   their disk image exists only as a byte count (DESIGN.md §4).
//! * **Truly bit-packed** columns — [`IntColumn::Packed`]
//!   (frame-of-reference deltas in lane-aligned [`PackedInts`] words, chosen
//!   by [`IntColumn::auto`] whenever the packed image beats byte-minimized
//!   plain) and [`StrColumn::Dict`] codes — store the *actual packed word
//!   image*, and `encoded_bytes` is derived from it rather than from a
//!   formula. These are the columns the word-parallel scan kernels in
//!   `cvr-core::kernels` evaluate 64 values per step.

use crate::packed::{max_code_for, PackedInts, MAX_VALUE_BITS};
use cvr_data::table::ColumnData;

/// A maximal run of equal values in an RLE column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// The repeated value.
    pub value: i64,
    /// Position of the first occurrence.
    pub start: u32,
    /// Number of repetitions (≥ 1).
    pub len: u32,
}

/// On-disk bytes per RLE run: 8-byte value + 4-byte length.
pub const RLE_RUN_BYTES: u64 = 12;

/// An encoded integer column.
#[derive(Debug, Clone, PartialEq)]
pub enum IntColumn {
    /// Uncompressed values; `width` is the minimized on-disk byte width.
    Plain {
        /// The values (in-memory always native i64).
        values: Vec<i64>,
        /// On-disk bytes per value: 1, 2, 4, or 8.
        width: u8,
    },
    /// Run-length encoded values.
    Rle {
        /// Maximal runs in position order.
        runs: Vec<Run>,
        /// Total logical values.
        num_values: u32,
    },
    /// Frame-of-reference + bit-packing: each value stored as the unsigned
    /// delta `value - reference` in a lane-aligned [`PackedInts`] image.
    /// This is the layout the SWAR scan kernels compare 64 bits at a time.
    Packed {
        /// Frame of reference (the column minimum).
        reference: i64,
        /// Bit-packed deltas; the word image is the on-disk bytes.
        packed: PackedInts,
    },
}

impl IntColumn {
    /// Encode `values` with byte-minimized width (the light-weight
    /// byte-packing a compressing store applies even to "uncompressed"
    /// columns).
    pub fn plain(values: Vec<i64>) -> IntColumn {
        let width = byte_width(&values);
        IntColumn::Plain { values, width }
    }

    /// Encode `values` at fixed machine width: 4 bytes (8 when values
    /// exceed `u32`). This is what "compression disabled" means on disk —
    /// byte-width minimization is itself a compression technique, so the
    /// Figure 7 `c` configurations must not get it for free.
    pub fn plain_fixed(values: Vec<i64>) -> IntColumn {
        let width = if byte_width(&values) <= 4 { 4 } else { 8 };
        IntColumn::Plain { values, width }
    }

    /// Encode `values` with RLE.
    pub fn rle(values: &[i64]) -> IntColumn {
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < values.len() {
            let v = values[i];
            let start = i;
            while i < values.len() && values[i] == v {
                i += 1;
            }
            runs.push(Run { value: v, start: start as u32, len: (i - start) as u32 });
        }
        IntColumn::Rle { runs, num_values: values.len() as u32 }
    }

    /// Frame-of-reference bit-packing, when the value range permits it:
    /// `None` for empty columns and for ranges needing more than
    /// [`MAX_VALUE_BITS`] delta bits.
    pub fn packed(values: &[i64]) -> Option<IntColumn> {
        let (&first, rest) = values.split_first()?;
        let (mut min, mut max) = (first, first);
        for &v in rest {
            min = min.min(v);
            max = max.max(v);
        }
        let delta = max as i128 - min as i128;
        if delta > max_code_for(MAX_VALUE_BITS) as i128 {
            return None;
        }
        let bits = bits_for(delta as u64 + 1);
        let packed =
            PackedInts::pack(bits, values.iter().map(|&v| (v as i128 - min as i128) as u64));
        Some(IntColumn::Packed { reference: min, packed })
    }

    /// Pick the smallest encoding: RLE when run structure pays for the run
    /// overhead, frame-of-reference bit-packing when the packed word image
    /// beats byte-minimized plain, plain otherwise.
    pub fn auto(values: Vec<i64>) -> IntColumn {
        let rle = IntColumn::rle(&values);
        let packed = IntColumn::packed(&values);
        let plain = IntColumn::plain(values);
        let mut best = plain;
        if let Some(p) = packed {
            if p.encoded_bytes() < best.encoded_bytes() {
                best = p;
            }
        }
        if rle.encoded_bytes() < best.encoded_bytes() {
            best = rle;
        }
        best
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        match self {
            IntColumn::Plain { values, .. } => values.len(),
            IntColumn::Rle { num_values, .. } => *num_values as usize,
            IntColumn::Packed { packed, .. } => packed.len() as usize,
        }
    }

    /// True when the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-disk footprint in bytes. For [`IntColumn::Packed`] this is the
    /// size of the actual packed word image, not a formula.
    pub fn encoded_bytes(&self) -> u64 {
        match self {
            IntColumn::Plain { values, width } => values.len() as u64 * *width as u64,
            IntColumn::Rle { runs, .. } => runs.len() as u64 * RLE_RUN_BYTES,
            IntColumn::Packed { packed, .. } => packed.bytes(),
        }
    }

    /// Value at `pos` (slow path: RLE does a binary search).
    pub fn value_at(&self, pos: u32) -> i64 {
        match self {
            IntColumn::Plain { values, .. } => values[pos as usize],
            IntColumn::Rle { runs, .. } => {
                let idx = run_index(runs, pos);
                runs[idx].value
            }
            IntColumn::Packed { reference, packed } => reference + packed.get(pos) as i64,
        }
    }

    /// Index of the run containing `pos` (RLE only).
    pub fn run_containing(&self, pos: u32) -> usize {
        match self {
            IntColumn::Rle { runs, .. } => run_index(runs, pos),
            _ => panic!("run_containing on non-RLE column"),
        }
    }

    /// The runs (RLE only) — the direct-operation interface.
    pub fn runs(&self) -> &[Run] {
        match self {
            IntColumn::Rle { runs, .. } => runs,
            _ => panic!("runs() on non-RLE column"),
        }
    }

    /// Plain values (panics on RLE/packed) — the block-iteration interface.
    pub fn plain_values(&self) -> &[i64] {
        match self {
            IntColumn::Plain { values, .. } => values,
            _ => panic!("plain_values() on non-plain column"),
        }
    }

    /// Decode to a fresh vector (the "remove compression" path: what a
    /// late-materializing plan must do before stitching tuples).
    pub fn decode(&self) -> Vec<i64> {
        match self {
            IntColumn::Plain { values, .. } => values.clone(),
            IntColumn::Rle { runs, num_values } => {
                let mut out = Vec::with_capacity(*num_values as usize);
                for r in runs {
                    out.resize(out.len() + r.len as usize, r.value);
                }
                out
            }
            IntColumn::Packed { reference, packed } => {
                let r = *reference;
                let mut out = Vec::with_capacity(packed.len() as usize);
                packed.for_each_in(0, packed.len(), |c| out.push(r + c as i64));
                out
            }
        }
    }

    /// True for the RLE variant.
    pub fn is_rle(&self) -> bool {
        matches!(self, IntColumn::Rle { .. })
    }

    /// Code-level access metadata: `(reference, domain)` such that every
    /// stored value `v` satisfies `0 <= v - reference < domain`, and codes
    /// `(v - reference) as u32` are dense enough to index. This is column
    /// *header* metadata — `Packed` carries it by construction, `Rle` derives
    /// it from its (in-memory) run directory, `Plain` from a value sweep —
    /// the zone-map any real column store keeps next to the data. Returns
    /// `None` for empty columns or value ranges wider than `u32`.
    pub fn code_bounds(&self) -> Option<(i64, u64)> {
        let (min, max) = match self {
            IntColumn::Packed { reference, packed } => {
                return Some((*reference, packed.max_code() + 1));
            }
            IntColumn::Plain { values, .. } => {
                let (&first, rest) = values.split_first()?;
                rest.iter().fold((first, first), |(lo, hi), &v| (lo.min(v), hi.max(v)))
            }
            IntColumn::Rle { runs, .. } => {
                let (first, rest) = runs.split_first()?;
                rest.iter().fold((first.value, first.value), |(lo, hi), r| {
                    (lo.min(r.value), hi.max(r.value))
                })
            }
        };
        let domain = (max as i128 - min as i128) as u128 + 1;
        (domain <= u32::MAX as u128 + 1).then_some((min, domain as u64))
    }

    /// True for the frame-of-reference bit-packed variant.
    pub fn is_packed(&self) -> bool {
        matches!(self, IntColumn::Packed { .. })
    }
}

fn run_index(runs: &[Run], pos: u32) -> usize {
    match runs.binary_search_by(|r| {
        if pos < r.start {
            std::cmp::Ordering::Greater
        } else if pos >= r.start + r.len {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Equal
        }
    }) {
        Ok(i) => i,
        Err(_) => panic!("position {pos} out of range"),
    }
}

/// Minimal byte width (1/2/4/8) holding every value. Negative values force 8.
pub fn byte_width(values: &[i64]) -> u8 {
    let mut max = 0i64;
    for &v in values {
        if v < 0 {
            return 8;
        }
        max = max.max(v);
    }
    if max < 1 << 8 {
        1
    } else if max < 1 << 16 {
        2
    } else if max < 1 << 32 {
        4
    } else {
        8
    }
}

/// An encoded string column.
#[derive(Debug, Clone, PartialEq)]
pub enum StrColumn {
    /// Uncompressed, length-prefixed varchars.
    Plain {
        /// The values.
        values: Vec<Box<str>>,
        /// Total on-disk bytes (1-byte length prefix per value + payloads).
        bytes: u64,
    },
    /// Sorted dictionary + truly bit-packed codes. Because the dictionary
    /// is sorted, code order equals value order, so range predicates work on
    /// codes — the "operate directly on compressed data" property. The
    /// codes live in a lane-aligned [`PackedInts`] image, which is both what
    /// the word-parallel kernels scan and what the I/O model charges.
    Dict {
        /// Sorted distinct values.
        dict: Vec<Box<str>>,
        /// Per-position dictionary codes, bit-packed.
        codes: PackedInts,
    },
}

impl StrColumn {
    /// Encode without compression.
    pub fn plain(values: Vec<String>) -> StrColumn {
        let bytes = values.iter().map(|s| 1 + s.len() as u64).sum();
        StrColumn::Plain { values: values.into_iter().map(Into::into).collect(), bytes }
    }

    /// Dictionary-encode (always succeeds; callers choose when it pays off).
    pub fn dict(values: &[String]) -> StrColumn {
        let mut dict: Vec<Box<str>> = values.iter().map(|s| s.clone().into()).collect();
        dict.sort_unstable();
        dict.dedup();
        let code_bits = bits_for(dict.len() as u64);
        assert!(code_bits <= MAX_VALUE_BITS, "dictionary too large to bit-pack");
        let codes = PackedInts::pack(
            code_bits,
            values.iter().map(|s| dict.binary_search_by(|d| (**d).cmp(s)).unwrap() as u64),
        );
        StrColumn::Dict { dict, codes }
    }

    /// Pick dictionary encoding when it shrinks the column, otherwise plain.
    pub fn auto(values: Vec<String>) -> StrColumn {
        let dict = StrColumn::dict(&values);
        let plain = StrColumn::plain(values);
        if dict.encoded_bytes() < plain.encoded_bytes() {
            dict
        } else {
            plain
        }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        match self {
            StrColumn::Plain { values, .. } => values.len(),
            StrColumn::Dict { codes, .. } => codes.len() as usize,
        }
    }

    /// True when the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-disk footprint in bytes: for the dictionary variant, the
    /// length-prefixed dictionary plus the actual packed code image.
    pub fn encoded_bytes(&self) -> u64 {
        match self {
            StrColumn::Plain { bytes, .. } => *bytes,
            StrColumn::Dict { dict, codes } => {
                let dict_bytes: u64 = dict.iter().map(|s| 1 + s.len() as u64).sum();
                dict_bytes + codes.bytes()
            }
        }
    }

    /// Value at `pos`.
    pub fn value_at(&self, pos: u32) -> &str {
        match self {
            StrColumn::Plain { values, .. } => &values[pos as usize],
            StrColumn::Dict { dict, codes } => &dict[codes.get(pos) as usize],
        }
    }

    /// True for the dictionary variant.
    pub fn is_dict(&self) -> bool {
        matches!(self, StrColumn::Dict { .. })
    }

    /// Dictionary code at `pos` (panics on plain columns) — the code-level
    /// access path: group-by and join machinery can work on these `u32`
    /// codes and decode through the dictionary once at the very end.
    #[inline]
    pub fn code_at(&self, pos: u32) -> u32 {
        match self {
            StrColumn::Dict { codes, .. } => codes.get(pos) as u32,
            StrColumn::Plain { .. } => panic!("code_at() on plain column"),
        }
    }

    /// Dictionary + packed codes accessors (panics on plain).
    pub fn dict_parts(&self) -> (&[Box<str>], &PackedInts) {
        match self {
            StrColumn::Dict { dict, codes } => (dict, codes),
            StrColumn::Plain { .. } => panic!("dict_parts() on plain column"),
        }
    }

    /// Plain values accessor (panics on dict).
    pub fn plain_strs(&self) -> &[Box<str>] {
        match self {
            StrColumn::Plain { values, .. } => values,
            StrColumn::Dict { .. } => panic!("plain_strs() on dict column"),
        }
    }

    /// Decode to owned strings.
    pub fn decode(&self) -> Vec<Box<str>> {
        match self {
            StrColumn::Plain { values, .. } => values.clone(),
            StrColumn::Dict { dict, codes } => {
                codes.iter().map(|c| dict[c as usize].clone()).collect()
            }
        }
    }
}

/// Bits needed to distinguish `n` codes (at least 1).
pub fn bits_for(n: u64) -> u8 {
    let mut bits = 1u8;
    while (1u64 << bits) < n {
        bits += 1;
    }
    bits
}

/// An encoded column of either type.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int(IntColumn),
    /// String column.
    Str(StrColumn),
}

impl Column {
    /// Encode `data`; `compress` enables RLE/dictionary selection and byte
    /// packing, `false` forces fixed-width plain (the Figure 7 "c"
    /// configurations).
    pub fn encode(data: &ColumnData, compress: bool) -> Column {
        match data {
            ColumnData::Int(v) => Column::Int(if compress {
                IntColumn::auto(v.clone())
            } else {
                IntColumn::plain_fixed(v.clone())
            }),
            ColumnData::Str(v) => Column::Str(if compress {
                StrColumn::auto(v.clone())
            } else {
                StrColumn::plain(v.clone())
            }),
        }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(c) => c.len(),
            Column::Str(c) => c.len(),
        }
    }

    /// True when the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-disk footprint in bytes.
    pub fn encoded_bytes(&self) -> u64 {
        match self {
            Column::Int(c) => c.encoded_bytes(),
            Column::Str(c) => c.encoded_bytes(),
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> &IntColumn {
        match self {
            Column::Int(c) => c,
            Column::Str(_) => panic!("expected int column"),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> &StrColumn {
        match self {
            Column::Str(c) => c,
            Column::Int(_) => panic!("expected string column"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_round_trip() {
        let vals = vec![1, 1, 1, 2, 2, 5, 5, 5, 5, 3];
        let col = IntColumn::rle(&vals);
        assert_eq!(col.decode(), vals);
        assert_eq!(col.runs().len(), 4);
        assert_eq!(col.len(), 10);
        assert_eq!(col.encoded_bytes(), 4 * RLE_RUN_BYTES);
    }

    #[test]
    fn rle_value_at_binary_search() {
        let vals = vec![7, 7, 8, 8, 8, 9];
        let col = IntColumn::rle(&vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(col.value_at(i as u32), v);
        }
        assert_eq!(col.run_containing(0), 0);
        assert_eq!(col.run_containing(4), 1);
        assert_eq!(col.run_containing(5), 2);
    }

    #[test]
    fn auto_picks_rle_for_sorted_data() {
        let mut vals = Vec::new();
        for v in 0..10 {
            vals.extend(std::iter::repeat_n(v, 100));
        }
        assert!(IntColumn::auto(vals).is_rle());
    }

    #[test]
    fn auto_picks_packed_for_random_small_range_data() {
        // Random 17-bit values: no runs, but 18-bit lanes (3 per word) beat
        // the 4-byte plain width.
        let vals: Vec<i64> = (0..1000).map(|i| (i * 2_654_435_761u64 as i64) % 100_000).collect();
        let col = IntColumn::auto(vals.clone());
        assert!(!col.is_rle());
        assert!(col.is_packed());
        assert!(col.encoded_bytes() < IntColumn::plain(vals).encoded_bytes());
    }

    #[test]
    fn auto_keeps_plain_when_packing_cannot_win() {
        // 31-bit deltas need 32-bit lanes — exactly the 4-byte plain width,
        // so packing never strictly beats plain and plain is kept.
        let vals: Vec<i64> = (0..100).map(|i| (i * 40_503_481) % ((1 << 31) - 1)).collect();
        let col = IntColumn::auto(vals);
        assert!(!col.is_rle() && !col.is_packed());
    }

    #[test]
    fn packed_round_trips_with_negative_reference() {
        let vals: Vec<i64> = (-500..500).map(|i| i * 3).collect();
        let col = IntColumn::packed(&vals).expect("small delta must pack");
        assert_eq!(col.decode(), vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(col.value_at(i as u32), v);
        }
        match &col {
            IntColumn::Packed { reference, packed } => {
                assert_eq!(*reference, -1500);
                assert_eq!(col.encoded_bytes(), packed.bytes());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn packed_rejects_oversized_ranges_and_empty() {
        assert!(IntColumn::packed(&[]).is_none());
        assert!(IntColumn::packed(&[0, 1 << 40]).is_none());
        assert!(IntColumn::packed(&[i64::MIN, i64::MAX]).is_none());
        assert!(IntColumn::packed(&[7]).is_some());
    }

    #[test]
    fn byte_width_minimized() {
        assert_eq!(byte_width(&[0, 200]), 1);
        assert_eq!(byte_width(&[0, 60_000]), 2);
        assert_eq!(byte_width(&[0, 20_000_000]), 4);
        assert_eq!(byte_width(&[0, 1 << 40]), 8);
        assert_eq!(byte_width(&[-1]), 8);
        assert_eq!(byte_width(&[]), 1);
    }

    #[test]
    fn plain_int_bytes_use_width() {
        let col = IntColumn::plain(vec![19920101, 19981231]);
        assert_eq!(col.encoded_bytes(), 2 * 4);
    }

    #[test]
    fn dict_is_sorted_and_order_preserving() {
        let vals: Vec<String> =
            ["EUROPE", "ASIA", "ASIA", "AFRICA", "EUROPE"].iter().map(|s| s.to_string()).collect();
        let col = StrColumn::dict(&vals);
        let (dict, codes) = col.dict_parts();
        assert_eq!(dict.len(), 3);
        assert!(dict.windows(2).all(|w| w[0] < w[1]));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&*dict[codes.get(i as u32) as usize], v.as_str());
            assert_eq!(col.value_at(i as u32), v.as_str());
        }
        // Order preservation: code comparison == string comparison.
        let code_of = |s: &str| dict.iter().position(|d| &**d == s).unwrap();
        assert!(code_of("AFRICA") < code_of("ASIA"));
        assert!(code_of("ASIA") < code_of("EUROPE"));
    }

    #[test]
    fn dict_bytes_smaller_than_plain_for_low_cardinality() {
        let vals: Vec<String> = (0..10_000).map(|i| format!("REGION{}", i % 5)).collect();
        let plain = StrColumn::plain(vals.clone());
        let dict = StrColumn::dict(&vals);
        assert!(dict.encoded_bytes() < plain.encoded_bytes() / 10);
        assert!(StrColumn::auto(vals).is_dict());
    }

    #[test]
    fn auto_str_picks_plain_for_unique_strings() {
        let vals: Vec<String> = (0..100).map(|i| format!("unique-value-{i:05}")).collect();
        assert!(!StrColumn::auto(vals).is_dict());
    }

    #[test]
    fn str_decode_round_trips() {
        let vals: Vec<String> = (0..50).map(|i| format!("v{}", i % 7)).collect();
        for col in [StrColumn::plain(vals.clone()), StrColumn::dict(&vals)] {
            let dec = col.decode();
            assert_eq!(dec.len(), vals.len());
            for (d, v) in dec.iter().zip(&vals) {
                assert_eq!(&**d, v.as_str());
            }
        }
    }

    #[test]
    fn bits_for_cardinalities() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
    }

    #[test]
    fn column_encode_respects_compress_flag() {
        let data = ColumnData::Int(vec![1; 1000]);
        assert!(Column::encode(&data, true).as_int().is_rle());
        assert!(!Column::encode(&data, false).as_int().is_rle());
        let sdata = ColumnData::Str((0..1000).map(|i| format!("x{}", i % 3)).collect());
        assert!(Column::encode(&sdata, true).as_str().is_dict());
        assert!(!Column::encode(&sdata, false).as_str().is_dict());
    }

    #[test]
    fn code_bounds_per_encoding() {
        let vals = vec![1993i64, 1992, 1998, 1992];
        assert_eq!(IntColumn::plain(vals.clone()).code_bounds(), Some((1992, 7)));
        let rle = IntColumn::rle(&[5, 5, 5, 9, 9, 2]);
        assert_eq!(rle.code_bounds(), Some((2, 8)));
        let packed = IntColumn::packed(&vals).unwrap();
        let (reference, domain) = packed.code_bounds().unwrap();
        assert_eq!(reference, 1992);
        assert!(domain >= 7, "packed domain must cover the delta range");
        for (i, &v) in vals.iter().enumerate() {
            let code = (packed.value_at(i as u32) - reference) as u64;
            assert!(code < domain);
            assert_eq!(reference + code as i64, v);
        }
        // Empty and over-wide ranges have no code space.
        assert_eq!(IntColumn::plain(vec![]).code_bounds(), None);
        assert_eq!(IntColumn::rle(&[]).code_bounds(), None);
        assert_eq!(IntColumn::plain(vec![0, 1 << 40]).code_bounds(), None);
        assert_eq!(IntColumn::plain(vec![i64::MIN, i64::MAX]).code_bounds(), None);
    }

    #[test]
    fn str_code_at_matches_dict_lookup() {
        let vals: Vec<String> = (0..40).map(|i| format!("v{}", i % 7)).collect();
        let col = StrColumn::dict(&vals);
        let (dict, _) = col.dict_parts();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&*dict[col.code_at(i as u32) as usize], v.as_str());
        }
    }

    #[test]
    fn empty_columns() {
        assert_eq!(IntColumn::rle(&[]).len(), 0);
        assert!(IntColumn::plain(vec![]).is_empty());
        assert_eq!(StrColumn::plain(vec![]).encoded_bytes(), 0);
    }
}
