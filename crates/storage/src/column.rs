//! Column-store table storage: named, encoded, metered columns.
//!
//! A [`ColumnStore`] holds one [`StoredColumn`] per table column. Each stored
//! column owns a [`FileId`] so buffer-pool residency and I/O charging work at
//! page grain, like the heap files on the row side — but here a query only
//! touches the files of the columns it reads, which is the column-store's
//! core I/O advantage.
//!
//! Charging helpers:
//! * [`StoredColumn::charge_scan`] — a full sequential read (predicate
//!   application, block iteration over a whole column);
//! * [`StoredColumn::charge_gather`] — positional extraction (late
//!   materialization): only the pages covering the requested positions are
//!   fetched, in position order.

use crate::encode::{Column, IntColumn, StrColumn, RLE_RUN_BYTES};
use crate::io::{pages_for, FileId, IoSession, PageId, PAGE_SIZE};
use cvr_data::table::TableData;

/// One encoded column plus its storage identity.
#[derive(Debug)]
pub struct StoredColumn {
    /// Column name (matches the logical schema).
    pub name: String,
    /// The encoded payload.
    pub column: Column,
    file: FileId,
    /// Lazily computed zone-map bounds (see
    /// [`StoredColumn::int_code_bounds`]): the column is immutable, so the
    /// value sweep for plain/RLE integers runs at most once per column, not
    /// once per query.
    code_bounds: std::sync::OnceLock<Option<(i64, u64)>>,
}

impl StoredColumn {
    /// Wrap an encoded column under `name`.
    pub fn new(name: impl Into<String>, column: Column) -> StoredColumn {
        StoredColumn {
            name: name.into(),
            column,
            file: FileId::fresh(),
            code_bounds: std::sync::OnceLock::new(),
        }
    }

    /// Cached [`IntColumn::code_bounds`] of an integer column (`None` for
    /// string columns) — the zone-map header a real store keeps next to
    /// the data, computed once per column.
    pub fn int_code_bounds(&self) -> Option<(i64, u64)> {
        *self.code_bounds.get_or_init(|| match &self.column {
            Column::Int(int) => int.code_bounds(),
            Column::Str(_) => None,
        })
    }

    /// On-disk bytes.
    pub fn bytes(&self) -> u64 {
        self.column.encoded_bytes()
    }

    /// On-disk pages.
    pub fn pages(&self) -> u32 {
        pages_for(self.bytes())
    }

    /// Storage file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Charge a full sequential scan of this column.
    pub fn charge_scan(&self, io: &IoSession) {
        io.begin_op();
        io.read_file_sequential(self.file, self.bytes());
    }

    /// Charge the slice of a sequential scan covering positions
    /// `[start, end)` of `n` total values.
    ///
    /// The byte range uses the same position → byte mapping as
    /// [`StoredColumn::charge_gather`] (run offsets for RLE, proportional
    /// share `[start·B/n, end·B/n)` otherwise), so consecutive position
    /// ranges tile the file exactly: morsel workers that split `[0, n)`
    /// among themselves charge, in aggregate and in morsel order, the same
    /// page sequence as one [`StoredColumn::charge_scan`] — shared boundary
    /// pages resolve to buffer-pool hits on replay — and a positional gather
    /// within a scanned morsel never touches a page the morsel's scan
    /// missed.
    pub fn charge_scan_range(&self, start: u32, end: u32, io: &IoSession) {
        io.begin_op();
        let n = self.column.len() as u64;
        let total = self.bytes();
        if n == 0 || total == 0 {
            // Degenerate columns still occupy one page, like charge_scan.
            if start == 0 {
                io.read_page(PageId { file: self.file, page: 0 }, total.min(PAGE_SIZE));
            }
            return;
        }
        if start >= end {
            return;
        }
        let (byte_lo, byte_hi) = match &self.column {
            // RLE: charge whole runs, matching charge_gather's offsets; a
            // run straddling a morsel boundary is charged by both sides and
            // dedups to a pool hit.
            Column::Int(rle @ IntColumn::Rle { .. }) => {
                let lo = rle.run_containing(start) as u64 * RLE_RUN_BYTES;
                let hi = (rle.run_containing(end - 1) as u64 + 1) * RLE_RUN_BYTES;
                (lo, hi.min(total))
            }
            // Packed: charge whole 8-byte words, matching charge_gather's
            // word offsets; a word shared by two morsels dedups to a hit.
            Column::Int(IntColumn::Packed { packed, .. }) => {
                let k = packed.lanes_per_word() as u64;
                let lo = start as u64 / k * 8;
                let hi = ((end - 1) as u64 / k + 1) * 8;
                (lo, hi.min(total))
            }
            // Dict: the dictionary prefix (needed to decode anything) plus
            // the word-aligned slice of the packed codes — the same offsets
            // charge_gather touches, so a gather within a scanned morsel
            // never reaches a page the morsel's scan missed. Every fragment
            // charges the dictionary; repeated pages dedup to pool hits.
            Column::Str(StrColumn::Dict { dict, codes }) => {
                let dict_bytes: u64 = dict.iter().map(|s| 1 + s.len() as u64).sum();
                let k = codes.lanes_per_word() as u64;
                let hi = dict_bytes + ((end - 1) as u64 / k + 1) * 8;
                if start == 0 {
                    // The code slice is contiguous with the dictionary.
                    (0, hi.min(total))
                } else {
                    if dict_bytes > 0 {
                        let last = ((dict_bytes - 1) / PAGE_SIZE) as u32;
                        for page in 0..=last {
                            let bytes = (total - page as u64 * PAGE_SIZE).min(PAGE_SIZE);
                            io.read_page(PageId { file: self.file, page }, bytes);
                        }
                    }
                    (dict_bytes + start as u64 / k * 8, hi.min(total))
                }
            }
            _ => (start as u64 * total / n, (end as u64 * total / n).min(total)),
        };
        if byte_hi <= byte_lo {
            return; // this slice of a highly-compressed column is sub-byte
        }
        let first = (byte_lo / PAGE_SIZE) as u32;
        let last = ((byte_hi - 1) / PAGE_SIZE) as u32;
        for page in first..=last {
            let bytes = (total - page as u64 * PAGE_SIZE).min(PAGE_SIZE);
            io.read_page(PageId { file: self.file, page }, bytes);
        }
    }

    /// Charge a positional gather: `positions` must be ascending. Only the
    /// distinct pages containing the positions are fetched.
    ///
    /// Page mapping per encoding:
    /// * plain ints — `pos × width`;
    /// * RLE — byte offset of the containing run (runs located by binary
    ///   search);
    /// * dictionary strings — code array offset (the dictionary itself is
    ///   charged in full once: it is small and needed to decode anything);
    /// * plain strings — approximated with the column's mean value length
    ///   (exact per-value offsets would require scanning, which positional
    ///   extraction precisely avoids).
    pub fn charge_gather(&self, positions: impl IntoIterator<Item = u32>, io: &IoSession) {
        io.begin_op();
        let mut last_page = u32::MAX;
        let mut touch = |byte_off: u64| {
            let page = (byte_off / PAGE_SIZE) as u32;
            if page != last_page {
                let bytes = (self.bytes() - page as u64 * PAGE_SIZE).min(PAGE_SIZE);
                io.read_page(PageId { file: self.file, page }, bytes);
                last_page = page;
            }
        };
        match &self.column {
            Column::Int(IntColumn::Plain { width, .. }) => {
                let w = *width as u64;
                for p in positions {
                    touch(p as u64 * w);
                }
            }
            Column::Int(rle @ IntColumn::Rle { .. }) => {
                for p in positions {
                    let run = rle.run_containing(p) as u64;
                    touch(run * RLE_RUN_BYTES);
                }
            }
            Column::Int(IntColumn::Packed { packed, .. }) => {
                let k = packed.lanes_per_word() as u64;
                for p in positions {
                    touch(p as u64 / k * 8);
                }
            }
            Column::Str(StrColumn::Dict { dict, codes }) => {
                let dict_bytes: u64 = dict.iter().map(|s| 1 + s.len() as u64).sum();
                // Dictionary read once, at the front of the file.
                let dict_pages = pages_for(dict_bytes);
                for p in 0..dict_pages {
                    let bytes = (dict_bytes - p as u64 * PAGE_SIZE).min(PAGE_SIZE);
                    io.read_page(PageId { file: self.file, page: p }, bytes);
                }
                let k = codes.lanes_per_word() as u64;
                for p in positions {
                    touch(dict_bytes + p as u64 / k * 8);
                }
            }
            Column::Str(StrColumn::Plain { values, bytes }) => {
                let avg = if values.is_empty() { 1 } else { (*bytes / values.len() as u64).max(1) };
                for p in positions {
                    touch(p as u64 * avg);
                }
            }
        }
    }
}

/// Per-column encoding decision for a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingChoice {
    /// Let the encoder pick (RLE/dict when they shrink the column).
    Auto,
    /// Force uncompressed (the Figure 7 compression-removed runs).
    Plain,
}

/// A column-store resident table.
#[derive(Debug)]
pub struct ColumnStore {
    /// Table name.
    pub table: String,
    columns: Vec<StoredColumn>,
    rows: usize,
}

impl ColumnStore {
    /// Encode every column of `data` with `choice`.
    pub fn from_table(data: &TableData, choice: EncodingChoice) -> ColumnStore {
        let columns = data
            .schema
            .columns
            .iter()
            .zip(&data.columns)
            .map(|(def, col)| {
                StoredColumn::new(def.name, Column::encode(col, choice == EncodingChoice::Auto))
            })
            .collect();
        ColumnStore { table: data.schema.name.to_string(), columns, rows: data.num_rows() }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> &StoredColumn {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("column store {} has no column {name}", self.table))
    }

    /// All stored columns.
    pub fn columns(&self) -> &[StoredColumn] {
        &self.columns
    }

    /// Total on-disk bytes across all columns.
    pub fn bytes(&self) -> u64 {
        self.columns.iter().map(StoredColumn::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::schema::{ColumnDef, TableSchema};
    use cvr_data::table::ColumnData;
    use cvr_data::value::DataType;

    fn table() -> TableData {
        let n = 100_000usize;
        TableData::new(
            TableSchema {
                name: "t",
                columns: vec![
                    ColumnDef { name: "sorted", dtype: DataType::Int },
                    ColumnDef { name: "random", dtype: DataType::Int },
                    ColumnDef { name: "lowcard", dtype: DataType::Str },
                ],
            },
            vec![
                ColumnData::Int((0..n as i64).map(|i| i / 1000).collect()),
                ColumnData::Int((0..n as i64).map(|i| (i * 2_654_435_761) % 1_000_000).collect()),
                ColumnData::Str((0..n).map(|i| format!("R{}", i % 5)).collect()),
            ],
        )
    }

    #[test]
    fn auto_encodings_choose_sensibly() {
        let cs = ColumnStore::from_table(&table(), EncodingChoice::Auto);
        assert!(cs.column("sorted").column.as_int().is_rle());
        assert!(!cs.column("random").column.as_int().is_rle());
        assert!(cs.column("lowcard").column.as_str().is_dict());
    }

    #[test]
    fn plain_choice_disables_compression() {
        let cs = ColumnStore::from_table(&table(), EncodingChoice::Plain);
        assert!(!cs.column("sorted").column.as_int().is_rle());
        assert!(!cs.column("lowcard").column.as_str().is_dict());
    }

    #[test]
    fn compressed_store_is_smaller() {
        let t = table();
        let auto = ColumnStore::from_table(&t, EncodingChoice::Auto);
        let plain = ColumnStore::from_table(&t, EncodingChoice::Plain);
        assert!(auto.bytes() < plain.bytes());
    }

    #[test]
    fn scan_charges_all_pages_of_one_column_only() {
        let cs = ColumnStore::from_table(&table(), EncodingChoice::Plain);
        let io = IoSession::unmetered();
        let col = cs.column("random");
        col.charge_scan(&io);
        let stats = io.stats();
        assert_eq!(stats.pages_read as u32, col.pages());
        assert_eq!(stats.bytes_read, col.bytes());
    }

    #[test]
    fn gather_touches_few_pages_for_few_positions() {
        let cs = ColumnStore::from_table(&table(), EncodingChoice::Plain);
        let io = IoSession::unmetered();
        let col = cs.column("random");
        col.charge_gather([5u32, 6, 7, 50_000], &io);
        let stats = io.stats();
        assert!(stats.pages_read <= 2, "read {} pages", stats.pages_read);
        assert!(stats.pages_read < col.pages() as u64);
    }

    #[test]
    fn gather_on_rle_touches_run_pages() {
        let cs = ColumnStore::from_table(&table(), EncodingChoice::Auto);
        let io = IoSession::unmetered();
        // 100 runs ⇒ entire RLE column is one page.
        cs.column("sorted").charge_gather((0..100u32).chain([99_999]), &io);
        assert_eq!(io.stats().pages_read, 1);
    }

    #[test]
    fn gather_on_dict_charges_dictionary_once() {
        let cs = ColumnStore::from_table(&table(), EncodingChoice::Auto);
        let io = IoSession::unmetered();
        cs.column("lowcard").charge_gather([0u32, 99_999], &io);
        // dict page (also containing the first codes) + maybe the final code page
        assert!(io.stats().pages_read <= 2);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        let cs = ColumnStore::from_table(&table(), EncodingChoice::Auto);
        cs.column("nope");
    }

    #[test]
    fn scan_range_slices_tile_the_full_scan() {
        // Splitting [0, n) into arbitrary consecutive ranges and replaying
        // the recorded charges in order must equal one full charge_scan,
        // for every encoding.
        let t = table();
        for choice in [EncodingChoice::Auto, EncodingChoice::Plain] {
            let cs = ColumnStore::from_table(&t, choice);
            for name in ["sorted", "random", "lowcard"] {
                let col = cs.column(name);
                let n = t.num_rows() as u32;
                let serial = IoSession::unmetered();
                col.charge_scan(&serial);

                let merged = IoSession::unmetered();
                let bounds = [0u32, 1, 7_000, 7_001, 33_333, 99_999, n];
                for w in bounds.windows(2) {
                    let rec = IoSession::recording(merged.pool().clone());
                    col.charge_scan_range(w[0], w[1], &rec);
                    merged.replay(&rec.take_log());
                }
                let (a, b) = (serial.stats(), merged.stats());
                assert_eq!(a.bytes_read, b.bytes_read, "{name} bytes");
                assert_eq!(a.pages_read, b.pages_read, "{name} pages");
                assert_eq!(a.seeks, b.seeks, "{name} seeks");
            }
        }
    }
}
