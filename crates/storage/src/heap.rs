//! Row-store heap files: slotted 32 KB pages of encoded tuples.
//!
//! A [`HeapFile`] is the storage behind the row engine's sequential scans.
//! Records never span pages (SSBM rows are ≪ 32 KB); each page is filled
//! greedily, so file size reflects real slack. Iteration charges one
//! [`crate::io::IoSession::read_page`] per page entered.
//!
//! [`PartitionedHeap`] models System X's horizontal partitioning of
//! LINEORDER by `orderdate` year (Section 6.2): a scan with a year
//! restriction touches only matching partitions, which is where the paper's
//! "factor of two" partitioning advantage comes from.

use crate::io::{pages_for, FileId, IoSession, PageId, PAGE_SIZE};
use crate::rowcodec::{encode_row, record_len, RecordView};
use cvr_data::table::TableData;
use cvr_data::value::DataType;

/// A heap file: encoded tuples packed into pages.
#[derive(Debug)]
pub struct HeapFile {
    file: FileId,
    /// Concatenated page images; page `p` is `data[p*PAGE_SIZE..]`.
    data: Vec<u8>,
    /// Byte ranges of records, in insertion order: (offset, page).
    records: Vec<(u64, u32)>,
    /// Column types (needed to decode records).
    types: Vec<DataType>,
    rows: usize,
}

impl HeapFile {
    /// Build a heap file holding every row of `table`.
    pub fn build(table: &TableData) -> HeapFile {
        let types: Vec<DataType> = table.schema.columns.iter().map(|c| c.dtype).collect();
        let mut data = Vec::new();
        let mut records = Vec::with_capacity(table.num_rows());
        let mut row_buf = Vec::with_capacity(128);
        let mut page_used: u64 = 0;
        let mut page_no: u32 = 0;
        for i in 0..table.num_rows() {
            row_buf.clear();
            encode_row(&table.row(i), &mut row_buf);
            let len = row_buf.len() as u64;
            assert!(len <= PAGE_SIZE, "record larger than a page");
            if page_used + len > PAGE_SIZE {
                // Pad out the page: slack is real I/O in a slotted layout.
                data.resize(((page_no as u64 + 1) * PAGE_SIZE) as usize, 0);
                page_no += 1;
                page_used = 0;
            }
            records.push((data.len() as u64, page_no));
            data.extend_from_slice(&row_buf);
            page_used += len;
        }
        HeapFile { file: FileId::fresh(), data, records, types, rows: table.num_rows() }
    }

    /// Number of rows stored.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Total bytes (including page slack).
    pub fn bytes(&self) -> u64 {
        // The final page is charged in full only up to its used length.
        self.data.len() as u64
    }

    /// Number of pages.
    pub fn pages(&self) -> u32 {
        pages_for(self.bytes())
    }

    /// The file id (for buffer-pool keys).
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Column types of stored records.
    pub fn types(&self) -> &[DataType] {
        &self.types
    }

    /// Sequentially scan all records, charging page reads to `io`.
    ///
    /// Yields `(row_id, record)` where `row_id` is the insertion ordinal —
    /// the record-id used by unclustered indexes.
    pub fn scan<'a>(&'a self, io: &'a IoSession) -> impl Iterator<Item = (u32, RecordView<'a>)> {
        let mut last_page = u32::MAX;
        self.records.iter().enumerate().map(move |(rid, &(off, page))| {
            if page != last_page {
                io.read_page(PageId { file: self.file, page }, self.page_bytes(page));
                last_page = page;
            }
            let buf = &self.data[off as usize..];
            let len = record_len(buf);
            (rid as u32, RecordView::new(&buf[..len]))
        })
    }

    /// Fetch a single record by rid (an index lookup path): charges the
    /// containing page.
    pub fn fetch<'a>(&'a self, rid: u32, io: &IoSession) -> RecordView<'a> {
        let (off, page) = self.records[rid as usize];
        io.read_page(PageId { file: self.file, page }, self.page_bytes(page));
        let buf = &self.data[off as usize..];
        RecordView::new(&buf[..record_len(buf)])
    }

    fn page_bytes(&self, page: u32) -> u64 {
        let start = page as u64 * PAGE_SIZE;
        (self.bytes() - start).min(PAGE_SIZE)
    }

    /// Serialize this heap to a self-contained byte image (the payload of a
    /// raw persisted segment): column types, the page data, and the record
    /// directory. [`HeapFile::from_image`] reverses it.
    pub fn to_image(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() + self.records.len() * 12 + 32);
        out.extend_from_slice(&(self.types.len() as u32).to_le_bytes());
        for t in &self.types {
            out.push(match t {
                DataType::Int => 0u8,
                DataType::Str => 1u8,
            });
        }
        out.extend_from_slice(&(self.rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for &(off, page) in &self.records {
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&page.to_le_bytes());
        }
        out
    }

    /// Rebuild a heap from a [`HeapFile::to_image`] byte image, validating
    /// the structural invariants scans rely on (record offsets in bounds
    /// and consistent with their page numbers). The rebuilt heap gets a
    /// fresh [`FileId`] — buffer-pool identity is per-process, not durable.
    pub fn from_image(image: &[u8]) -> Result<HeapFile, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = image.get(*pos..*pos + n).ok_or("heap image truncated")?;
            *pos += n;
            Ok(s)
        };
        let ncols = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        if ncols > 1024 {
            return Err(format!("heap image claims {ncols} columns"));
        }
        let mut types = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            types.push(match take(&mut pos, 1)?[0] {
                0 => DataType::Int,
                1 => DataType::Str,
                t => return Err(format!("heap image has unknown column type tag {t}")),
            });
        }
        let rows = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        let data_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        let data = take(&mut pos, data_len)?.to_vec();
        let nrecords = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        if nrecords != rows {
            return Err(format!("heap image has {nrecords} records for {rows} rows"));
        }
        let mut records = Vec::with_capacity(nrecords);
        for _ in 0..nrecords {
            let off = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let page = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            // Records are written into their containing page, so the page
            // number is derivable from the offset; a mismatch (or an
            // offset without room for a record header) is corruption.
            if off + 8 > data.len() as u64 || off / PAGE_SIZE != page as u64 {
                return Err(format!("heap record at offset {off} page {page} is out of bounds"));
            }
            records.push((off, page));
        }
        if pos != image.len() {
            return Err(format!("heap image has {} trailing bytes", image.len() - pos));
        }
        Ok(HeapFile { file: FileId::fresh(), data, records, types, rows })
    }
}

/// A heap horizontally partitioned by an integer key (orderdate year).
#[derive(Debug)]
pub struct PartitionedHeap {
    /// `(partition_key, heap)` pairs, ordered by key.
    pub partitions: Vec<(i64, HeapFile)>,
}

impl PartitionedHeap {
    /// Partition `table` by `key_of(row_index)`.
    pub fn build(table: &TableData, key_of: impl Fn(usize) -> i64) -> PartitionedHeap {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for i in 0..table.num_rows() {
            groups.entry(key_of(i)).or_default().push(i as u32);
        }
        let partitions = groups
            .into_iter()
            .map(|(k, rows)| {
                let sub = sub_table(table, &rows);
                (k, HeapFile::build(&sub))
            })
            .collect();
        PartitionedHeap { partitions }
    }

    /// Heaps whose partition key satisfies `keep`.
    pub fn select<'a>(&'a self, keep: impl Fn(i64) -> bool + 'a) -> Vec<&'a HeapFile> {
        self.partitions.iter().filter(|(k, _)| keep(*k)).map(|(_, h)| h).collect()
    }

    /// All heaps.
    pub fn all(&self) -> Vec<&HeapFile> {
        self.partitions.iter().map(|(_, h)| h).collect()
    }

    /// Total rows across partitions.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|(_, h)| h.num_rows()).sum()
    }

    /// Total bytes across partitions.
    pub fn bytes(&self) -> u64 {
        self.partitions.iter().map(|(_, h)| h.bytes()).sum()
    }
}

fn sub_table(table: &TableData, rows: &[u32]) -> TableData {
    TableData {
        schema: table.schema.clone(),
        columns: table.columns.iter().map(|c| c.gather(rows)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::IoSession;
    use cvr_data::schema::{ColumnDef, TableSchema};
    use cvr_data::table::ColumnData;

    fn table(n: usize) -> TableData {
        TableData::new(
            TableSchema {
                name: "t",
                columns: vec![
                    ColumnDef { name: "k", dtype: DataType::Int },
                    ColumnDef { name: "s", dtype: DataType::Str },
                ],
            },
            vec![
                ColumnData::Int((0..n as i64).collect()),
                ColumnData::Str((0..n).map(|i| format!("val{i}")).collect()),
            ],
        )
    }

    #[test]
    fn scan_round_trips_all_rows() {
        let t = table(5_000);
        let heap = HeapFile::build(&t);
        assert_eq!(heap.num_rows(), 5_000);
        let io = IoSession::unmetered();
        let mut count = 0usize;
        for (rid, rec) in heap.scan(&io) {
            assert_eq!(rec.int_field(heap.types(), 0), rid as i64);
            assert_eq!(rec.str_field(heap.types(), 1), format!("val{rid}"));
            count += 1;
        }
        assert_eq!(count, 5_000);
        // Multi-page file: each page read exactly once, sequentially.
        let stats = io.stats();
        assert_eq!(stats.pages_read as u32, heap.pages());
        assert_eq!(stats.seeks, 1);
    }

    #[test]
    fn records_do_not_span_pages() {
        let t = table(20_000);
        let heap = HeapFile::build(&t);
        let io = IoSession::unmetered();
        for (_, rec) in heap.scan(&io) {
            // Decoding would fail if a record straddled a page boundary
            // incorrectly; also verify offsets directly.
            let _ = rec.arity();
        }
        assert!(heap.pages() > 1);
    }

    #[test]
    fn fetch_by_rid_charges_one_page() {
        let t = table(10_000);
        let heap = HeapFile::build(&t);
        let io = IoSession::unmetered();
        let rec = heap.fetch(9_999, &io);
        assert_eq!(rec.int_field(heap.types(), 0), 9_999);
        assert_eq!(io.stats().pages_read, 1);
    }

    #[test]
    fn partitioned_heap_splits_and_filters() {
        let t = table(1_000);
        // Partition by k % 4.
        let keys = t.column("k").ints().to_vec();
        let part = PartitionedHeap::build(&t, |i| keys[i] % 4);
        assert_eq!(part.partitions.len(), 4);
        assert_eq!(part.num_rows(), 1_000);
        let selected = part.select(|k| k == 2);
        assert_eq!(selected.len(), 1);
        let io = IoSession::unmetered();
        let vals: Vec<i64> =
            selected[0].scan(&io).map(|(_, r)| r.int_field(selected[0].types(), 0)).collect();
        assert_eq!(vals.len(), 250);
        assert!(vals.iter().all(|v| v % 4 == 2));
    }

    #[test]
    fn heap_bytes_include_header_overhead() {
        let t = table(100);
        let heap = HeapFile::build(&t);
        // Each record: 8 header + 4 int + 1+len string.
        let min_payload: u64 = (0..100).map(|i| 13 + format!("val{i}").len() as u64).sum();
        assert!(heap.bytes() >= min_payload);
    }

    #[test]
    fn image_round_trip_preserves_scans() {
        let t = table(5_000);
        let heap = HeapFile::build(&t);
        let rebuilt = HeapFile::from_image(&heap.to_image()).expect("round trip");
        assert_eq!(rebuilt.num_rows(), heap.num_rows());
        assert_eq!(rebuilt.bytes(), heap.bytes());
        assert_eq!(rebuilt.types(), heap.types());
        let (io_a, io_b) = (IoSession::unmetered(), IoSession::unmetered());
        let a: Vec<i64> = heap.scan(&io_a).map(|(_, r)| r.int_field(heap.types(), 0)).collect();
        let b: Vec<i64> =
            rebuilt.scan(&io_b).map(|(_, r)| r.int_field(rebuilt.types(), 0)).collect();
        assert_eq!(a, b);
        assert_eq!(io_a.stats(), io_b.stats(), "page charges survive the round trip");
        // Truncations and garbage are structural errors, never panics.
        let image = heap.to_image();
        for cut in [0, 1, 3, 16, image.len() / 2, image.len() - 1] {
            assert!(HeapFile::from_image(&image[..cut]).is_err(), "truncated at {cut}");
        }
        assert!(HeapFile::from_image(&[0xFF; 64]).is_err());
    }

    #[test]
    fn empty_table() {
        let t = table(0);
        let heap = HeapFile::build(&t);
        assert_eq!(heap.num_rows(), 0);
        let io = IoSession::unmetered();
        assert_eq!(heap.scan(&io).count(), 0);
    }
}
