//! # cvr-storage — storage substrate for both engines
//!
//! The paper's experiments hinge on *where bytes live and how many of them a
//! query must move*. This crate provides both storage layouts plus the
//! metered simulated disk they are charged against:
//!
//! * [`io`] — 32 KB pages, [`io::BufferPool`] (CLOCK), per-query
//!   [`io::IoSession`] accounting, and the [`io::DiskModel`] that converts
//!   page traffic into modeled I/O time (the substitution for the paper's
//!   4-disk array; see DESIGN.md §4).
//! * [`rowcodec`] / [`heap`] — the row-store side: N-ary tuples with 8-byte
//!   headers in slotted heap pages, optionally horizontally partitioned
//!   (System X's `orderdate` partitioning).
//! * [`encode`] / [`column`](mod@column) — the column-store side: per-column files with
//!   plain / RLE / frame-of-reference-packed / dictionary encodings that
//!   support *direct operation on compressed data*, plus positional-gather
//!   charging for late materialization.
//! * [`packed`] — lane-aligned bit-packed integer arrays ([`packed::PackedInts`]),
//!   the real word image behind the packed encodings and the input format of
//!   `cvr-core`'s word-parallel scan kernels.
//! * [`fault`] — deterministic fault injection: injected page-read
//!   failures, morsel panics/stalls, frame truncation, and durability
//!   faults (torn writes, bit flips, fsync failures, crash points) for the
//!   chaos and crash harnesses. Armed per handle ([`fault::FaultState`],
//!   adopted thread-locally for a statement) or process-globally
//!   (`CVR_FAULT`). Off by default, one atomic load.
//! * [`persist`] — durable snapshots: per-segment files with CRC64
//!   checksums, committed by an atomic manifest rename; recovery walks
//!   generations newest-first and falls back past damaged ones.
//!
//! The crate is engine-agnostic: `cvr-row` and `cvr-core` build their
//! physical designs out of these parts.

#![warn(missing_docs)]

pub mod column;
pub mod encode;
pub mod fault;
pub mod heap;
pub mod io;
pub mod packed;
pub mod persist;
pub mod rowcodec;

pub use column::{ColumnStore, EncodingChoice, StoredColumn};
pub use encode::{Column, IntColumn, Run, StrColumn};
pub use heap::{HeapFile, PartitionedHeap};
pub use io::{BufferPool, DiskModel, FileId, IoSession, IoStats, PageId, PAGE_SIZE};
pub use packed::PackedInts;
pub use persist::{LoadReport, PersistError, SegmentPayload, SnapshotReport};
