//! Row (N-ary) tuple serialization — the row-store's on-page format.
//!
//! The layout mirrors what the paper charges the row-store for:
//!
//! * an 8-byte **tuple header** per record (`"most row-stores store a
//!   relatively large header on every tuple"` — Section 4);
//! * 4-byte integers (SSBM values all fit; this matches the paper's
//!   arithmetic of "about 4 bytes ... for the column attribute");
//! * length-prefixed varchar strings.
//!
//! Decoding is deliberately *per-field work*: the row engine extracts
//! attributes through this interface one tuple at a time, which is exactly
//! the "1-2 function calls to extract needed data from a tuple" overhead the
//! paper attributes to row-store executors (Section 5.3).

use cvr_data::value::{DataType, Value};

/// Bytes of per-tuple header overhead charged by the row format.
pub const TUPLE_HEADER_BYTES: usize = 8;

/// Width of an encoded integer field.
pub const INT_FIELD_BYTES: usize = 4;

/// Serialize one row (with header) into `out`. Values must fit the SSBM
/// domains: integers must fit in `u32`, strings must be shorter than 256
/// bytes.
pub fn encode_row(values: &[Value], out: &mut Vec<u8>) {
    // Header: record length placeholder (u32) + attribute count (u16) + 2
    // flag bytes. Real systems store MVCC/visibility data here; we only need
    // the space cost to be honest.
    let start = out.len();
    out.extend_from_slice(&[0u8; TUPLE_HEADER_BYTES]);
    for v in values {
        match v {
            Value::Int(i) => {
                let u = u32::try_from(*i).unwrap_or_else(|_| panic!("int {i} out of u32 range"));
                out.extend_from_slice(&u.to_le_bytes());
            }
            Value::Str(s) => {
                assert!(s.len() < 256, "string too long for varchar codec");
                out.push(s.len() as u8);
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    let len = (out.len() - start) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 6].copy_from_slice(&(values.len() as u16).to_le_bytes());
}

/// Total encoded length of the record starting at `buf[0]` (from its header).
pub fn record_len(buf: &[u8]) -> usize {
    u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize
}

/// A decoded view over one encoded record.
///
/// Field access walks the variable-length layout from the start — the same
/// attribute-extraction cost a real slotted row layout pays for fields after
/// the first varchar.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    buf: &'a [u8],
}

impl<'a> RecordView<'a> {
    /// Wrap an encoded record.
    pub fn new(buf: &'a [u8]) -> RecordView<'a> {
        RecordView { buf }
    }

    /// Number of fields recorded in the header.
    pub fn arity(&self) -> usize {
        u16::from_le_bytes(self.buf[4..6].try_into().unwrap()) as usize
    }

    /// Extract field `idx` given the table's column types.
    ///
    /// `types[i]` must describe field `i`; extraction walks fields
    /// `0..=idx`.
    pub fn field(&self, types: &[DataType], idx: usize) -> Value {
        let mut off = TUPLE_HEADER_BYTES;
        for (i, t) in types.iter().enumerate().take(idx + 1) {
            match t {
                DataType::Int => {
                    if i == idx {
                        let u = u32::from_le_bytes(self.buf[off..off + 4].try_into().unwrap());
                        return Value::Int(u as i64);
                    }
                    off += INT_FIELD_BYTES;
                }
                DataType::Str => {
                    let len = self.buf[off] as usize;
                    if i == idx {
                        let s = std::str::from_utf8(&self.buf[off + 1..off + 1 + len])
                            .expect("corrupt varchar");
                        return Value::str(s);
                    }
                    off += 1 + len;
                }
            }
        }
        unreachable!("idx checked by take()")
    }

    /// Extract an integer field without allocating (hot path for the row
    /// engine's predicate evaluation).
    pub fn int_field(&self, types: &[DataType], idx: usize) -> i64 {
        let mut off = TUPLE_HEADER_BYTES;
        for (i, t) in types.iter().enumerate().take(idx + 1) {
            match t {
                DataType::Int => {
                    if i == idx {
                        return u32::from_le_bytes(self.buf[off..off + 4].try_into().unwrap())
                            as i64;
                    }
                    off += INT_FIELD_BYTES;
                }
                DataType::Str => {
                    assert!(i != idx, "int_field on varchar column");
                    off += 1 + self.buf[off] as usize;
                }
            }
        }
        unreachable!()
    }

    /// Extract a string field as a borrowed slice.
    pub fn str_field(&self, types: &[DataType], idx: usize) -> &'a str {
        let mut off = TUPLE_HEADER_BYTES;
        for (i, t) in types.iter().enumerate().take(idx + 1) {
            match t {
                DataType::Int => {
                    assert!(i != idx, "str_field on int column");
                    off += INT_FIELD_BYTES;
                }
                DataType::Str => {
                    let len = self.buf[off] as usize;
                    if i == idx {
                        return std::str::from_utf8(&self.buf[off + 1..off + 1 + len])
                            .expect("corrupt varchar");
                    }
                    off += 1 + len;
                }
            }
        }
        unreachable!()
    }

    /// Decode every field (slow path: used when materializing full rows).
    pub fn decode_all(&self, types: &[DataType]) -> Vec<Value> {
        (0..types.len()).map(|i| self.field(types, i)).collect()
    }

    /// Compute the byte offset of every field in one walk, appending into
    /// `out` (cleared first). Scans keep a scratch vector and use
    /// [`RecordView::value_at`] / [`RecordView::int_at`] for O(1) typed
    /// access afterwards — one layout walk per record instead of one per
    /// field.
    pub fn field_offsets(&self, types: &[DataType], out: &mut Vec<usize>) {
        out.clear();
        let mut off = TUPLE_HEADER_BYTES;
        for t in types {
            out.push(off);
            match t {
                DataType::Int => off += INT_FIELD_BYTES,
                DataType::Str => off += 1 + self.buf[off] as usize,
            }
        }
    }

    /// Decode the field at a known byte offset.
    pub fn value_at(&self, dtype: DataType, off: usize) -> Value {
        match dtype {
            DataType::Int => Value::Int(self.int_at(off)),
            DataType::Str => Value::str(self.str_at(off)),
        }
    }

    /// Integer field at a known byte offset.
    #[inline]
    pub fn int_at(&self, off: usize) -> i64 {
        u32::from_le_bytes(self.buf[off..off + 4].try_into().unwrap()) as i64
    }

    /// String field at a known byte offset.
    #[inline]
    pub fn str_at(&self, off: usize) -> &'a str {
        let len = self.buf[off] as usize;
        std::str::from_utf8(&self.buf[off + 1..off + 1 + len]).expect("corrupt varchar")
    }
}

/// Encoded size of a row without building it (used for page planning and the
/// Section 6.2 size accounting).
pub fn encoded_size(values: &[Value]) -> usize {
    TUPLE_HEADER_BYTES
        + values
            .iter()
            .map(|v| match v {
                Value::Int(_) => INT_FIELD_BYTES,
                Value::Str(s) => 1 + s.len(),
            })
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<Value>, Vec<DataType>) {
        (
            vec![Value::Int(42), Value::str("ASIA"), Value::Int(19970101), Value::str("")],
            vec![DataType::Int, DataType::Str, DataType::Int, DataType::Str],
        )
    }

    #[test]
    fn round_trip() {
        let (row, types) = sample();
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let view = RecordView::new(&buf);
        assert_eq!(view.arity(), 4);
        assert_eq!(view.decode_all(&types), row);
    }

    #[test]
    fn record_len_matches_encoded_size() {
        let (row, _) = sample();
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        assert_eq!(record_len(&buf), buf.len());
        assert_eq!(encoded_size(&row), buf.len());
    }

    #[test]
    fn typed_field_access() {
        let (row, types) = sample();
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let view = RecordView::new(&buf);
        assert_eq!(view.int_field(&types, 0), 42);
        assert_eq!(view.str_field(&types, 1), "ASIA");
        assert_eq!(view.int_field(&types, 2), 19970101);
        assert_eq!(view.str_field(&types, 3), "");
    }

    #[test]
    fn multiple_records_in_buffer() {
        let (row, types) = sample();
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let first_len = buf.len();
        encode_row(&row, &mut buf);
        let second = RecordView::new(&buf[first_len..]);
        assert_eq!(second.int_field(&types, 2), 19970101);
    }

    #[test]
    fn header_overhead_present() {
        let row = vec![Value::Int(1)];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        assert_eq!(buf.len(), TUPLE_HEADER_BYTES + INT_FIELD_BYTES);
    }

    #[test]
    #[should_panic(expected = "out of u32 range")]
    fn rejects_oversized_ints() {
        let mut buf = Vec::new();
        encode_row(&[Value::Int(1 << 40)], &mut buf);
    }
}
