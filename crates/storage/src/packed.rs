//! Truly bit-packed integer arrays: the physical substrate for
//! word-parallel scans.
//!
//! A [`PackedInts`] stores unsigned codes of a fixed bit width `w` inside
//! `u64` words using a **lane-aligned (banked) layout** in the style of
//! BitWeaving/H: each code occupies a lane of `w + 1` bits — `w` value bits
//! plus one always-zero *delimiter* bit at the lane's top — and
//! `⌊64 / (w + 1)⌋` lanes sit side by side in every word. No code ever
//! straddles a word boundary.
//!
//! The delimiter bit is what buys word-parallel predicate evaluation: a
//! single 64-bit subtraction compares every lane of a word at once, with
//! carries confined to their lane and the comparison outcome landing in the
//! delimiter position (see `cvr-core::kernels`). The price is one bit per
//! value plus per-word padding — and that price is charged honestly:
//! [`PackedInts::bytes`] is the size of the actual word image, which is what
//! the I/O model reads. Unlike the plain encodings (whose in-memory form is
//! a native `i64` vector and whose disk image exists only as a byte count),
//! the packed image here is both the in-memory and the on-disk
//! representation.
//!
//! Unused tail lanes of the last word are guaranteed zero, so kernels may
//! evaluate whole words and mask the result.

/// Largest supported code width, in bits. A lane is `width + 1` bits, so
/// this keeps at least two lanes per word — the point where packing stops
/// beating 4-byte plain storage anyway.
pub const MAX_VALUE_BITS: u8 = 31;

/// A fixed-width, lane-aligned, bit-packed array of unsigned codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedInts {
    words: Vec<u64>,
    len: u32,
    value_bits: u8,
}

impl PackedInts {
    /// Pack `codes` at `value_bits` bits each. Panics if `value_bits` is 0
    /// or exceeds [`MAX_VALUE_BITS`], or if any code needs more bits.
    pub fn pack(value_bits: u8, codes: impl IntoIterator<Item = u64>) -> PackedInts {
        assert!(
            (1..=MAX_VALUE_BITS).contains(&value_bits),
            "value_bits must be 1..={MAX_VALUE_BITS}, got {value_bits}"
        );
        let lane_bits = value_bits as u32 + 1;
        let lanes = 64 / lane_bits;
        let max = max_code_for(value_bits);
        let mut words = Vec::new();
        let mut word = 0u64;
        let mut lane = 0u32;
        let mut len = 0u32;
        for code in codes {
            assert!(code <= max, "code {code} exceeds {value_bits} bits");
            word |= code << (lane * lane_bits);
            lane += 1;
            if lane == lanes {
                words.push(word);
                word = 0;
                lane = 0;
            }
            len += 1;
        }
        if lane > 0 {
            words.push(word);
        }
        PackedInts { words, len, value_bits }
    }

    /// Reassemble a `PackedInts` from a persisted word image, validating
    /// every structural invariant the kernels rely on: `value_bits` in
    /// range, the word count matching `len` exactly, every delimiter bit
    /// zero, and the unused tail lanes of the last word zero. A corrupted
    /// image that happens to pass the file checksum must still never reach
    /// a kernel, so this is the decode-side gate.
    pub fn from_raw_parts(words: Vec<u64>, len: u32, value_bits: u8) -> Result<PackedInts, String> {
        if !(1..=MAX_VALUE_BITS).contains(&value_bits) {
            return Err(format!("packed value_bits {value_bits} out of 1..={MAX_VALUE_BITS}"));
        }
        let lane_bits = value_bits as u32 + 1;
        let lanes = 64 / lane_bits;
        let expect_words = (len as usize).div_ceil(lanes as usize);
        if words.len() != expect_words {
            return Err(format!(
                "packed image has {} words, {len} codes at {value_bits} bits need {expect_words}",
                words.len()
            ));
        }
        // Every lane's delimiter bit must be zero (kernels write comparison
        // outcomes there), including the unused tail lanes.
        let mut delim_mask = 0u64;
        for lane in 0..lanes {
            delim_mask |= 1u64 << (lane * lane_bits + value_bits as u32);
        }
        // ... as must the leftover bits above the last lane (64 mod lane
        // bits), which pack() never writes.
        if lanes * lane_bits < 64 {
            delim_mask |= u64::MAX << (lanes * lane_bits);
        }
        for (i, w) in words.iter().enumerate() {
            if w & delim_mask != 0 {
                return Err(format!("packed word {i} has a set delimiter or padding bit"));
            }
        }
        if let Some(&last) = words.last() {
            let used = len % lanes;
            if used != 0 && last >> (used * lane_bits) != 0 {
                return Err("packed tail lanes past len are not zero".to_string());
            }
        }
        Ok(PackedInts { words, len, value_bits })
    }

    /// Number of codes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per code (`w`).
    pub fn value_bits(&self) -> u8 {
        self.value_bits
    }

    /// Bits per lane (`w + 1`: value bits plus the delimiter bit).
    pub fn lane_bits(&self) -> u8 {
        self.value_bits + 1
    }

    /// Codes per 64-bit word.
    pub fn lanes_per_word(&self) -> u8 {
        (64 / (self.value_bits as u32 + 1)) as u8
    }

    /// Largest code representable at this width.
    pub fn max_code(&self) -> u64 {
        max_code_for(self.value_bits)
    }

    /// The packed word image (kernel input). Unused tail lanes are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Size of the packed image in bytes — the honest on-disk footprint.
    pub fn bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// Code at position `i`.
    #[inline]
    pub fn get(&self, i: u32) -> u64 {
        debug_assert!(i < self.len);
        let lane_bits = self.value_bits as u32 + 1;
        let lanes = 64 / lane_bits;
        let word = self.words[(i / lanes) as usize];
        (word >> ((i % lanes) * lane_bits)) & max_code_for(self.value_bits)
    }

    /// Visit the codes of positions `[start, end)` in order, unpacking one
    /// word at a time (the bulk decode path; faster than repeated
    /// [`PackedInts::get`]).
    #[inline]
    pub fn for_each_in(&self, start: u32, end: u32, mut f: impl FnMut(u64)) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let lane_bits = self.value_bits as u32 + 1;
        let lanes = 64 / lane_bits;
        let mask = max_code_for(self.value_bits);
        let mut wi = (start / lanes) as usize;
        let last = ((end - 1) / lanes) as usize;
        let mut lane0 = start % lanes;
        while wi <= last {
            let lane_end = if wi == last { (end - 1) % lanes + 1 } else { lanes };
            let word = self.words[wi] >> (lane0 * lane_bits);
            let mut w = word;
            for _ in lane0..lane_end {
                f(w & mask);
                w >>= lane_bits;
            }
            lane0 = 0;
            wi += 1;
        }
    }

    /// Iterate the codes of positions `[start, end)`.
    pub fn iter_range(&self, start: u32, end: u32) -> PackedIter<'_> {
        let end = end.min(self.len);
        PackedIter { packed: self, pos: start.min(end), end }
    }

    /// Iterate all codes in position order.
    pub fn iter(&self) -> PackedIter<'_> {
        self.iter_range(0, self.len)
    }

    /// Decode every code to a fresh vector.
    pub fn decode(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.for_each_in(0, self.len, |c| out.push(c));
        out
    }
}

/// Largest code representable in `value_bits` bits.
#[inline]
pub fn max_code_for(value_bits: u8) -> u64 {
    (1u64 << value_bits) - 1
}

/// Iterator over a range of packed codes.
pub struct PackedIter<'a> {
    packed: &'a PackedInts,
    pos: u32,
    end: u32,
}

impl Iterator for PackedIter<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.pos >= self.end {
            return None;
        }
        let c = self.packed.get(self.pos);
        self.pos += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.pos) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for PackedIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value_bits: u8, codes: &[u64]) {
        let p = PackedInts::pack(value_bits, codes.iter().copied());
        assert_eq!(p.len() as usize, codes.len());
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(p.get(i as u32), c, "get({i}) at w={value_bits}");
        }
        assert_eq!(p.decode(), codes);
        assert_eq!(p.iter().collect::<Vec<_>>(), codes);
    }

    #[test]
    fn pack_round_trips_across_widths_and_boundaries() {
        for w in [1u8, 2, 3, 5, 7, 8, 13, 16, 21, 31] {
            let max = max_code_for(w);
            for n in [0usize, 1, 62, 63, 64, 65, 200] {
                let codes: Vec<u64> =
                    (0..n).map(|i| (i as u64).wrapping_mul(2_654_435_761) % (max + 1)).collect();
                round_trip(w, &codes);
            }
        }
    }

    #[test]
    fn geometry_and_bytes() {
        // w=6 → 7-bit lanes → 9 lanes/word.
        let p = PackedInts::pack(6, (0..100u64).map(|i| i % 50));
        assert_eq!(p.lane_bits(), 7);
        assert_eq!(p.lanes_per_word(), 9);
        assert_eq!(p.words().len(), 100usize.div_ceil(9));
        assert_eq!(p.bytes(), p.words().len() as u64 * 8);
        assert_eq!(p.max_code(), 63);
    }

    #[test]
    fn tail_lanes_are_zero() {
        let p = PackedInts::pack(6, (0..10u64).map(|_| 63));
        // 10 codes in 9-lane words: second word has 8 unused lanes.
        let last = *p.words().last().unwrap();
        assert_eq!(last >> 7, 0, "unused tail lanes must stay zero");
    }

    #[test]
    fn for_each_in_matches_get_on_subranges() {
        let codes: Vec<u64> = (0..257u64).map(|i| i % 30).collect();
        let p = PackedInts::pack(5, codes.iter().copied());
        for (start, end) in [(0u32, 257u32), (1, 256), (9, 10), (63, 65), (128, 128), (250, 257)] {
            let mut got = Vec::new();
            p.for_each_in(start, end, |c| got.push(c));
            let want: Vec<u64> = (start..end).map(|i| p.get(i)).collect();
            assert_eq!(got, want, "[{start}, {end})");
        }
    }

    #[test]
    fn from_raw_parts_validates_geometry_and_bits() {
        let p = PackedInts::pack(6, (0..100u64).map(|i| i % 50));
        let rebuilt =
            PackedInts::from_raw_parts(p.words().to_vec(), p.len(), p.value_bits()).unwrap();
        assert_eq!(rebuilt, p);
        // Wrong word count.
        let mut short = p.words().to_vec();
        short.pop();
        assert!(PackedInts::from_raw_parts(short, p.len(), p.value_bits()).is_err());
        // A set delimiter bit.
        let mut delim = p.words().to_vec();
        delim[0] |= 1u64 << 6;
        assert!(PackedInts::from_raw_parts(delim, p.len(), p.value_bits()).is_err());
        // Dirty tail lanes.
        let mut tail = p.words().to_vec();
        *tail.last_mut().unwrap() |= 1u64 << 63;
        assert!(PackedInts::from_raw_parts(tail, p.len(), p.value_bits()).is_err());
        // Out-of-range width.
        assert!(PackedInts::from_raw_parts(vec![], 0, 0).is_err());
        assert!(PackedInts::from_raw_parts(vec![], 0, 32).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overflowing_code_panics() {
        PackedInts::pack(3, [8u64]);
    }

    #[test]
    #[should_panic(expected = "value_bits")]
    fn zero_width_panics() {
        PackedInts::pack(0, [0u64]);
    }
}
