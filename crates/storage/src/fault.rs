//! Deterministic fault injection for the chaos harness.
//!
//! Faults are **off by default** and cost one thread-local peek plus one
//! relaxed atomic load per hook when disabled. Configuration lives in a
//! [`FaultState`] handle: an armed [`FaultConfig`] plus its *own*
//! counter-seeded `splitmix64` decision stream, so a given `(seed, fault
//! spec)` pair injects the *same* fault sequence on every run regardless of
//! what other tests or sessions are doing — chaos failures reproduce, and
//! chaos tests no longer serialize behind a process-global lock.
//!
//! Two ways to arm a state:
//!
//! * [`install`] / [`install_from_env`] (reading `CVR_FAULT`) set the
//!   **process-global default** — what standalone chaos binaries use.
//! * [`adopt`] pushes a handle onto a **thread-local override stack** for
//!   the lifetime of the returned guard. Sessions adopt their own state
//!   around each query (and the morsel pool re-adopts the coordinator's
//!   handle inside every worker), so concurrent tests each see only their
//!   own faults.
//!
//! Every injection is tallied per-state ([`FaultState::injected`]) and
//! mirrored into the process metrics registry as
//! `cvr_fault_injected_total{class="..."}`.
//!
//! Eight fault classes, matching the spec grammar
//! `io:P,panic:P,stall:P:MS,trunc:P,torn:P,flip:P,fsync:P,crash:LABEL,seed:N`:
//!
//! * `io` — probability per page touch that [`maybe_io_fault`] panics with
//!   an [`InjectedFault`] payload. Engines downcast this payload at morsel
//!   and pipeline boundaries into a typed I/O error; it must never surface
//!   as a crash.
//! * `panic` — probability per morsel that [`before_morsel`] raises a plain
//!   panic (payload contains `"injected fault"`), exercising the worker
//!   panic-containment path.
//! * `stall` — probability per morsel that [`before_morsel`] sleeps `MS`
//!   milliseconds, widening cancellation races.
//! * `trunc` — probability per response frame that the server cuts the
//!   frame short and drops the connection ([`take_frame_truncation`]).
//! * `torn` — probability per durable file write that the on-disk image is
//!   cut short at a deterministic offset ([`take_torn_write`]): a disk that
//!   acknowledged a partial write. The write path reports success; the
//!   *loader's* checksums must catch it.
//! * `flip` — probability per durable file write that one bit of the image
//!   is flipped ([`take_bit_flip`]): silent media corruption, again for the
//!   loader's checksums to catch.
//! * `fsync` — probability per fsync that it reports failure
//!   ([`take_fsync_failure`]); the write path must abort *before* the
//!   commit rename, leaving the previous generation intact.
//! * `crash` — [`crash_point`] calls `std::process::abort()` when its label
//!   matches the armed `crash:LABEL`, simulating `kill -9` at a precise
//!   point in the snapshot protocol. Only meaningful in a sacrificial child
//!   process.
//!
//! This lives in `cvr-storage` — the bottom of the dependency graph — so
//! both the execution engines and the server can reach the same switch.

use std::cell::RefCell;
use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

/// Panic payload carried by injected I/O faults. Engines catch and downcast
/// this at containment boundaries; any other payload is a real bug and is
/// re-raised.
#[derive(Debug, Clone)]
pub struct InjectedFault(pub String);

/// Probabilities (per hook site) and the seed of the decision stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability an I/O page touch fails.
    pub io: f64,
    /// Probability a morsel panics before running.
    pub panic: f64,
    /// Probability a morsel stalls before running.
    pub stall: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Probability a response frame is truncated.
    pub trunc: f64,
    /// Probability a durable file write lands torn (cut short).
    pub torn: f64,
    /// Probability a durable file write lands with one bit flipped.
    pub flip: f64,
    /// Probability an fsync reports failure.
    pub fsync: f64,
    /// Crash-point label: [`crash_point`] aborts the process when called
    /// with this label. `None` disables crash injection.
    pub crash: Option<String>,
    /// Seed of the deterministic decision stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            io: 0.0,
            panic: 0.0,
            stall: 0.0,
            stall_ms: 10,
            trunc: 0.0,
            torn: 0.0,
            flip: 0.0,
            fsync: 0.0,
            crash: None,
            seed: 0x5EED,
        }
    }
}

impl FaultConfig {
    /// Parse a `CVR_FAULT` spec: comma-separated `io:P`, `panic:P`,
    /// `stall:P:MS`, `trunc:P`, `torn:P`, `flip:P`, `fsync:P`,
    /// `crash:LABEL`, `seed:N`. Empty string parses to all-off.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let fields: Vec<&str> = part.split(':').collect();
            let prob = |s: &str| -> Result<f64, String> {
                let p: f64 = s.parse().map_err(|_| format!("bad probability {s:?} in {part:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} out of [0, 1] in {part:?}"));
                }
                Ok(p)
            };
            match fields.as_slice() {
                ["io", p] => cfg.io = prob(p)?,
                ["panic", p] => cfg.panic = prob(p)?,
                ["trunc", p] => cfg.trunc = prob(p)?,
                ["torn", p] => cfg.torn = prob(p)?,
                ["flip", p] => cfg.flip = prob(p)?,
                ["fsync", p] => cfg.fsync = prob(p)?,
                ["crash", label, ..] if !label.is_empty() => {
                    // Labels may themselves contain colons; keep the rest.
                    cfg.crash = Some(part["crash:".len()..].to_string());
                }
                ["stall", p] => cfg.stall = prob(p)?,
                ["stall", p, ms] => {
                    cfg.stall = prob(p)?;
                    cfg.stall_ms =
                        ms.parse().map_err(|_| format!("bad stall ms {ms:?} in {part:?}"))?;
                }
                ["seed", n] => {
                    cfg.seed = n.parse().map_err(|_| format!("bad seed {n:?} in {part:?}"))?
                }
                _ => return Err(format!("unknown fault clause {part:?}")),
            }
        }
        Ok(cfg)
    }

    fn is_off(&self) -> bool {
        self.io <= 0.0
            && self.panic <= 0.0
            && self.stall <= 0.0
            && self.trunc <= 0.0
            && self.torn <= 0.0
            && self.flip <= 0.0
            && self.fsync <= 0.0
            && self.crash.is_none()
    }
}

/// The eight injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Page-touch I/O failure.
    Io,
    /// Morsel-worker panic.
    Panic,
    /// Morsel-worker stall.
    Stall,
    /// Response-frame truncation.
    Trunc,
    /// Torn durable-file write (image cut short, write reported ok).
    Torn,
    /// Single-bit corruption of a durable file image.
    Flip,
    /// fsync failure.
    Fsync,
    /// Crash-point abort (simulated `kill -9`).
    Crash,
}

impl FaultClass {
    fn index(self) -> usize {
        match self {
            FaultClass::Io => 0,
            FaultClass::Panic => 1,
            FaultClass::Stall => 2,
            FaultClass::Trunc => 3,
            FaultClass::Torn => 4,
            FaultClass::Flip => 5,
            FaultClass::Fsync => 6,
            FaultClass::Crash => 7,
        }
    }

    fn metric_name(self) -> &'static str {
        match self {
            FaultClass::Io => "cvr_fault_injected_total{class=\"io\"}",
            FaultClass::Panic => "cvr_fault_injected_total{class=\"panic\"}",
            FaultClass::Stall => "cvr_fault_injected_total{class=\"stall\"}",
            FaultClass::Trunc => "cvr_fault_injected_total{class=\"trunc\"}",
            FaultClass::Torn => "cvr_fault_injected_total{class=\"torn\"}",
            FaultClass::Flip => "cvr_fault_injected_total{class=\"flip\"}",
            FaultClass::Fsync => "cvr_fault_injected_total{class=\"fsync\"}",
            FaultClass::Crash => "cvr_fault_injected_total{class=\"crash\"}",
        }
    }
}

const CLASSES: [FaultClass; 8] = [
    FaultClass::Io,
    FaultClass::Panic,
    FaultClass::Stall,
    FaultClass::Trunc,
    FaultClass::Torn,
    FaultClass::Flip,
    FaultClass::Fsync,
    FaultClass::Crash,
];

/// An armed fault configuration with its own deterministic decision stream
/// and per-class injection tallies. Cheap to clone (`Arc`); share one handle
/// between a session and whatever threads execute on its behalf to get one
/// reproducible fault sequence.
#[derive(Debug)]
pub struct FaultState {
    cfg: FaultConfig,
    counter: AtomicU64,
    injected: [AtomicU64; 8],
}

impl FaultState {
    /// Arm `cfg` as a standalone handle (nothing global changes).
    pub fn arm(cfg: FaultConfig) -> Arc<FaultState> {
        Arc::new(FaultState {
            cfg,
            counter: AtomicU64::new(0),
            injected: [const { AtomicU64::new(0) }; 8],
        })
    }

    /// Parse and arm a spec string. Convenience for tests.
    pub fn from_spec(spec: &str) -> Result<Arc<FaultState>, String> {
        FaultConfig::parse(spec).map(FaultState::arm)
    }

    /// The armed configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// How many faults of `class` this state has injected.
    pub fn injected(&self, class: FaultClass) -> u64 {
        self.injected[class.index()].load(Ordering::Relaxed)
    }

    /// Total injections across all classes.
    pub fn injected_total(&self) -> u64 {
        CLASSES.iter().map(|c| self.injected(*c)).sum()
    }

    /// Draw the next decision from this state's deterministic stream: true
    /// with probability `p` under the (rotated) seed.
    fn roll(&self, seed: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ((h >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Draw the next raw 64-bit value from the decision stream (used to
    /// pick deterministic torn-write offsets and bit-flip positions).
    fn draw(&self, seed: u64) -> u64 {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        splitmix64(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn record(&self, class: FaultClass) {
        self.injected[class.index()].fetch_add(1, Ordering::Relaxed);
        cvr_obs::counter(class.metric_name(), "Faults injected by the chaos harness").inc();
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fast path: a single relaxed load decides "no global faults installed".
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<FaultState>>> = RwLock::new(None);

thread_local! {
    /// Per-thread override stack; the top handle shadows the global default.
    static LOCAL: RefCell<Vec<Arc<FaultState>>> = const { RefCell::new(Vec::new()) };
}

/// Install (or, with `None`, clear) the process-global default fault state.
/// Each install arms a fresh decision stream.
pub fn install(cfg: Option<FaultConfig>) {
    let state = cfg.filter(|c| !c.is_off()).map(FaultState::arm);
    GLOBAL_ENABLED.store(state.is_some(), Ordering::Relaxed);
    *GLOBAL.write().unwrap_or_else(PoisonError::into_inner) = state;
}

/// Install from the `CVR_FAULT` environment variable if set. Returns whether
/// a non-empty config was armed. Malformed specs panic: a chaos run with a
/// typo'd spec silently testing nothing is worse than a crash.
pub fn install_from_env() -> bool {
    match std::env::var("CVR_FAULT") {
        Ok(spec) => {
            let cfg = FaultConfig::parse(&spec).expect("CVR_FAULT");
            install(Some(cfg));
            active()
        }
        Err(_) => false,
    }
}

/// Whether this thread currently sees an armed fault state (its own
/// override, or the global default).
pub fn active() -> bool {
    LOCAL.with(|l| !l.borrow().is_empty()) || GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// The fault state this thread's hooks would use right now: the innermost
/// adopted handle, else the global default, else `None`. The morsel pool
/// captures this on the coordinator and re-adopts it inside each worker so
/// a query's fault stream follows the query, not the thread.
pub fn handle() -> Option<Arc<FaultState>> {
    if let Some(local) = LOCAL.with(|l| l.borrow().last().cloned()) {
        return Some(local);
    }
    if !GLOBAL_ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    GLOBAL.read().unwrap_or_else(PoisonError::into_inner).clone()
}

/// RAII guard for a thread-local fault override (see [`adopt`]).
pub struct FaultScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        LOCAL.with(|l| l.borrow_mut().pop());
    }
}

/// Make `state` this thread's fault state until the guard drops. Nested
/// adoptions shadow (innermost wins).
pub fn adopt(state: Arc<FaultState>) -> FaultScope {
    LOCAL.with(|l| l.borrow_mut().push(state));
    FaultScope { _not_send: std::marker::PhantomData }
}

/// Adopt `state` when present; `None` leaves the thread's view unchanged.
pub fn adopt_opt(state: Option<Arc<FaultState>>) -> Option<FaultScope> {
    state.map(adopt)
}

/// Hook at the storage pool's single I/O choke point: may panic with an
/// [`InjectedFault`] payload describing the failed page.
pub fn maybe_io_fault(file: u64, page: u32) {
    if let Some(st) = handle() {
        if st.roll(st.cfg.seed, st.cfg.io) {
            st.record(FaultClass::Io);
            panic_any(InjectedFault(format!(
                "injected fault: I/O error reading file {file} page {page}"
            )));
        }
    }
}

/// Hook at the top of every morsel: may stall (slow-worker fault) and may
/// raise a plain panic (worker-crash fault).
pub fn before_morsel() {
    if let Some(st) = handle() {
        if st.roll(st.cfg.seed.rotate_left(17), st.cfg.stall) {
            st.record(FaultClass::Stall);
            std::thread::sleep(Duration::from_millis(st.cfg.stall_ms));
        }
        if st.roll(st.cfg.seed.rotate_left(31), st.cfg.panic) {
            st.record(FaultClass::Panic);
            panic!("injected fault: morsel worker panic");
        }
    }
}

/// Hook at the durable write path, before a file image of `len` bytes is
/// written: `Some(offset)` means the image should be truncated to `offset`
/// bytes while the write still *reports success* — a disk that acked a
/// partial write. The offset is deterministic under the decision stream.
pub fn take_torn_write(len: usize) -> Option<usize> {
    let st = handle()?;
    if len == 0 || !st.roll(st.cfg.seed.rotate_left(5), st.cfg.torn) {
        return None;
    }
    st.record(FaultClass::Torn);
    Some((st.draw(st.cfg.seed.rotate_left(5)) % len as u64) as usize)
}

/// Hook at the durable write path: `Some((byte, bit))` means that bit of
/// the written image should be flipped — silent media corruption the
/// loader's checksums must detect.
pub fn take_bit_flip(len: usize) -> Option<(usize, u8)> {
    let st = handle()?;
    if len == 0 || !st.roll(st.cfg.seed.rotate_left(11), st.cfg.flip) {
        return None;
    }
    st.record(FaultClass::Flip);
    let d = st.draw(st.cfg.seed.rotate_left(11));
    Some(((d % len as u64) as usize, ((d >> 32) % 8) as u8))
}

/// Hook at every durable-path fsync: true means the fsync should report
/// failure, aborting the snapshot before its commit rename.
pub fn take_fsync_failure() -> bool {
    match handle() {
        Some(st) => {
            let hit = st.roll(st.cfg.seed.rotate_left(23), st.cfg.fsync);
            if hit {
                st.record(FaultClass::Fsync);
            }
            hit
        }
        None => false,
    }
}

/// Crash-point hook: aborts the process (no unwinding, no destructors —
/// the closest in-process stand-in for `kill -9`) when the armed config's
/// `crash:LABEL` matches `label`. Call sites name the precise point in the
/// snapshot protocol they sit at (e.g. `"persist:pre-manifest-rename"`).
pub fn crash_point(label: &str) {
    if let Some(st) = handle() {
        if st.cfg.crash.as_deref() == Some(label) {
            st.record(FaultClass::Crash);
            eprintln!("injected fault: crash point {label:?} — aborting");
            std::process::abort();
        }
    }
}

/// Hook before a response frame is written: true means the server should
/// truncate the frame and drop the connection.
pub fn take_frame_truncation() -> bool {
    match handle() {
        Some(st) => {
            let hit = st.roll(st.cfg.seed.rotate_left(47), st.cfg.trunc);
            if hit {
                st.record(FaultClass::Trunc);
            }
            hit
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_reject_garbage() {
        let cfg = FaultConfig::parse("io:0.25,panic:0.01,stall:0.5:20,trunc:0.1,seed:7").unwrap();
        assert_eq!(cfg.io, 0.25);
        assert_eq!(cfg.stall_ms, 20);
        assert_eq!(cfg.seed, 7);
        assert!(FaultConfig::parse("").unwrap().is_off());
        assert!(FaultConfig::parse("io:2.0").is_err());
        assert!(FaultConfig::parse("blorp:0.1").is_err());
        assert!(FaultConfig::parse("stall:0.1:abc").is_err());
        // Durability clauses.
        let cfg = FaultConfig::parse("torn:0.5,flip:0.25,fsync:0.125,crash:persist:seg").unwrap();
        assert_eq!(cfg.torn, 0.5);
        assert_eq!(cfg.flip, 0.25);
        assert_eq!(cfg.fsync, 0.125);
        assert_eq!(cfg.crash.as_deref(), Some("persist:seg"), "label keeps its colons");
        assert!(!cfg.is_off());
        assert!(!FaultConfig::parse("crash:x").unwrap().is_off());
        assert!(FaultConfig::parse("torn:nope").is_err());
    }

    #[test]
    fn durability_hooks_fire_and_stay_in_bounds() {
        let st = FaultState::from_spec("torn:1.0,flip:1.0,fsync:1.0,seed:11").unwrap();
        let _scope = adopt(st.clone());
        let off = take_torn_write(100).expect("torn:1.0 always fires");
        assert!(off < 100);
        let (byte, bit) = take_bit_flip(100).expect("flip:1.0 always fires");
        assert!(byte < 100 && bit < 8);
        assert!(take_fsync_failure());
        assert!(take_torn_write(0).is_none(), "empty images cannot tear");
        assert_eq!(st.injected(FaultClass::Torn), 1);
        assert_eq!(st.injected(FaultClass::Flip), 1);
        assert_eq!(st.injected(FaultClass::Fsync), 1);
        // An unmatched crash label is a no-op (the matching case aborts the
        // process, exercised by the crash harness's child processes).
        crash_point("not-armed");
    }

    #[test]
    fn the_decision_stream_is_deterministic_per_state() {
        let draws = |seed: u64| -> Vec<bool> {
            let st = FaultState::arm(FaultConfig { seed, ..FaultConfig::default() });
            (0..64).map(|_| st.roll(seed, 0.5)).collect()
        };
        let a = draws(42);
        let b = draws(42);
        let c = draws(43);
        assert_eq!(a, b, "same seed must replay the same decisions");
        assert_ne!(a, c, "different seeds must diverge");
        let hits = a.iter().filter(|&&x| x).count();
        assert!((8..=56).contains(&hits), "p=0.5 over 64 draws was {hits}");
    }

    #[test]
    fn adopted_states_shadow_the_global_and_are_isolated_per_thread() {
        // This thread's override never touches the global slot, so other
        // tests running concurrently are unaffected.
        let mine = FaultState::from_spec("trunc:1.0,seed:9").unwrap();
        assert!(handle().is_none_or(|h| !Arc::ptr_eq(&h, &mine)));
        {
            let _scope = adopt(mine.clone());
            assert!(active());
            let got = handle().expect("adopted state visible");
            assert!(Arc::ptr_eq(&got, &mine));
            assert!(take_frame_truncation(), "trunc:1.0 always fires");
            assert_eq!(mine.injected(FaultClass::Trunc), 1);
            // A spawned thread does NOT inherit the override.
            let inherited =
                std::thread::spawn(|| LOCAL.with(|l| l.borrow().is_empty())).join().unwrap();
            assert!(inherited, "thread-local override must not leak across threads");
            // Nested adoption shadows.
            let inner = FaultState::from_spec("io:0.0,seed:1").unwrap();
            {
                let _scope2 = adopt(inner.clone());
                assert!(Arc::ptr_eq(&handle().unwrap(), &inner));
            }
            assert!(Arc::ptr_eq(&handle().unwrap(), &mine));
        }
        assert!(handle().is_none_or(|h| !Arc::ptr_eq(&h, &mine)), "guard drop pops the override");
    }

    #[test]
    fn injections_are_tallied_per_state() {
        let st = FaultState::from_spec("io:1.0").unwrap();
        let _scope = adopt(st.clone());
        let err = std::panic::catch_unwind(|| maybe_io_fault(3, 7)).unwrap_err();
        let fault = err.downcast_ref::<InjectedFault>().expect("typed payload");
        assert!(fault.0.contains("file 3 page 7"), "{}", fault.0);
        assert_eq!(st.injected(FaultClass::Io), 1);
        assert_eq!(st.injected_total(), 1);
    }
}
