//! Deterministic fault injection for the chaos harness.
//!
//! Faults are **off by default** and cost one relaxed atomic load per hook
//! when disabled. [`install`] (or [`install_from_env`], reading `CVR_FAULT`)
//! arms a process-global [`FaultConfig`]; each hook then draws from a
//! counter-seeded `splitmix64` stream, so a given `(seed, fault spec)` pair
//! injects the *same* fault sequence on every run — chaos failures
//! reproduce.
//!
//! Four fault classes, matching the spec grammar
//! `io:P,panic:P,stall:P:MS,trunc:P,seed:N`:
//!
//! * `io` — probability per page touch that [`maybe_io_fault`] panics with
//!   an [`InjectedFault`] payload. Engines downcast this payload at morsel
//!   and pipeline boundaries into a typed I/O error; it must never surface
//!   as a crash.
//! * `panic` — probability per morsel that [`before_morsel`] raises a plain
//!   panic (payload contains `"injected fault"`), exercising the worker
//!   panic-containment path.
//! * `stall` — probability per morsel that [`before_morsel`] sleeps `MS`
//!   milliseconds, widening cancellation races.
//! * `trunc` — probability per response frame that the server cuts the
//!   frame short and drops the connection ([`take_frame_truncation`]).
//!
//! This lives in `cvr-storage` — the bottom of the dependency graph — so
//! both the execution engines and the server can reach the same switch.

use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};
use std::time::Duration;

/// Panic payload carried by injected I/O faults. Engines catch and downcast
/// this at containment boundaries; any other payload is a real bug and is
/// re-raised.
#[derive(Debug, Clone)]
pub struct InjectedFault(pub String);

/// Probabilities (per hook site) and the seed of the decision stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability an I/O page touch fails.
    pub io: f64,
    /// Probability a morsel panics before running.
    pub panic: f64,
    /// Probability a morsel stalls before running.
    pub stall: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Probability a response frame is truncated.
    pub trunc: f64,
    /// Seed of the deterministic decision stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig { io: 0.0, panic: 0.0, stall: 0.0, stall_ms: 10, trunc: 0.0, seed: 0x5EED }
    }
}

impl FaultConfig {
    /// Parse a `CVR_FAULT` spec: comma-separated `io:P`, `panic:P`,
    /// `stall:P:MS`, `trunc:P`, `seed:N`. Empty string parses to all-off.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let fields: Vec<&str> = part.split(':').collect();
            let prob = |s: &str| -> Result<f64, String> {
                let p: f64 = s.parse().map_err(|_| format!("bad probability {s:?} in {part:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} out of [0, 1] in {part:?}"));
                }
                Ok(p)
            };
            match fields.as_slice() {
                ["io", p] => cfg.io = prob(p)?,
                ["panic", p] => cfg.panic = prob(p)?,
                ["trunc", p] => cfg.trunc = prob(p)?,
                ["stall", p] => cfg.stall = prob(p)?,
                ["stall", p, ms] => {
                    cfg.stall = prob(p)?;
                    cfg.stall_ms =
                        ms.parse().map_err(|_| format!("bad stall ms {ms:?} in {part:?}"))?;
                }
                ["seed", n] => {
                    cfg.seed = n.parse().map_err(|_| format!("bad seed {n:?} in {part:?}"))?
                }
                _ => return Err(format!("unknown fault clause {part:?}")),
            }
        }
        Ok(cfg)
    }

    fn is_off(&self) -> bool {
        self.io <= 0.0 && self.panic <= 0.0 && self.stall <= 0.0 && self.trunc <= 0.0
    }
}

/// Fast path: a single relaxed load decides "no faults installed".
static ENABLED: AtomicBool = AtomicBool::new(false);
static CONFIG: RwLock<Option<FaultConfig>> = RwLock::new(None);
/// Global draw counter; `splitmix64(seed ^ n)` is the n-th decision.
static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Install (or, with `None`, clear) the process-global fault configuration
/// and reset the decision stream.
pub fn install(cfg: Option<FaultConfig>) {
    let armed = cfg.as_ref().is_some_and(|c| !c.is_off());
    *CONFIG.write().unwrap_or_else(PoisonError::into_inner) = cfg;
    COUNTER.store(0, Ordering::Relaxed);
    ENABLED.store(armed, Ordering::Relaxed);
}

/// Install from the `CVR_FAULT` environment variable if set. Returns whether
/// a non-empty config was armed. Malformed specs panic: a chaos run with a
/// typo'd spec silently testing nothing is worse than a crash.
pub fn install_from_env() -> bool {
    match std::env::var("CVR_FAULT") {
        Ok(spec) => {
            let cfg = FaultConfig::parse(&spec).expect("CVR_FAULT");
            install(Some(cfg));
            active()
        }
        Err(_) => false,
    }
}

/// Whether any fault class is currently armed.
pub fn active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draw the next decision from the deterministic stream: true with
/// probability `p`.
fn roll(seed: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let h = splitmix64(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    ((h >> 11) as f64 / (1u64 << 53) as f64) < p
}

fn snapshot() -> Option<FaultConfig> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    *CONFIG.read().unwrap_or_else(PoisonError::into_inner)
}

/// Hook at the storage pool's single I/O choke point: may panic with an
/// [`InjectedFault`] payload describing the failed page.
pub fn maybe_io_fault(file: u64, page: u32) {
    if let Some(cfg) = snapshot() {
        if roll(cfg.seed, cfg.io) {
            panic_any(InjectedFault(format!(
                "injected fault: I/O error reading file {file} page {page}"
            )));
        }
    }
}

/// Hook at the top of every morsel: may stall (slow-worker fault) and may
/// raise a plain panic (worker-crash fault).
pub fn before_morsel() {
    if let Some(cfg) = snapshot() {
        if roll(cfg.seed.rotate_left(17), cfg.stall) {
            std::thread::sleep(Duration::from_millis(cfg.stall_ms));
        }
        if roll(cfg.seed.rotate_left(31), cfg.panic) {
            panic!("injected fault: morsel worker panic");
        }
    }
}

/// Hook before a response frame is written: true means the server should
/// truncate the frame and drop the connection.
pub fn take_frame_truncation() -> bool {
    match snapshot() {
        Some(cfg) => roll(cfg.seed.rotate_left(47), cfg.trunc),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_reject_garbage() {
        let cfg = FaultConfig::parse("io:0.25,panic:0.01,stall:0.5:20,trunc:0.1,seed:7").unwrap();
        assert_eq!(cfg.io, 0.25);
        assert_eq!(cfg.stall_ms, 20);
        assert_eq!(cfg.seed, 7);
        assert!(FaultConfig::parse("").unwrap().is_off());
        assert!(FaultConfig::parse("io:2.0").is_err());
        assert!(FaultConfig::parse("blorp:0.1").is_err());
        assert!(FaultConfig::parse("stall:0.1:abc").is_err());
    }

    #[test]
    fn the_decision_stream_is_deterministic() {
        let draws = |seed| -> Vec<bool> {
            COUNTER.store(0, Ordering::Relaxed);
            (0..64).map(|_| roll(seed, 0.5)).collect()
        };
        let a = draws(42);
        let b = draws(42);
        let c = draws(43);
        assert_eq!(a, b, "same seed must replay the same decisions");
        assert_ne!(a, c, "different seeds must diverge");
        let hits = a.iter().filter(|&&x| x).count();
        assert!((8..=56).contains(&hits), "p=0.5 over 64 draws was {hits}");
    }
}
