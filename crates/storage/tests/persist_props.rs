//! Property-style tests for the segment codecs: randomized round trips
//! and an exhaustive corruption sweep, with a hand-rolled deterministic
//! PRNG (the build environment carries no proptest crate).
//!
//! Two invariants, per the durability contract:
//!
//! 1. **Round trip**: `decode_segment(encode_segment(p)) == p` for every
//!    payload the constructors can produce, and re-encoding the decoded
//!    payload reproduces the original image byte for byte (the CRC pins
//!    the physical encoding, so logical equality alone would be too weak).
//! 2. **Corruption is detected, never decoded**: for every truncation
//!    length of a valid image — every length class: inside the magic, the
//!    header, the payload, the CRC — and for sampled single-bit flips at
//!    every byte offset, `decode_segment` returns a typed error. No
//!    corrupted image ever yields a payload.

use cvr_storage::encode::{IntColumn, StrColumn};
use cvr_storage::persist::{decode_segment, encode_segment, SegmentPayload};

/// splitmix64: deterministic, no state beyond one u64.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Random integer data shaped to exercise a specific codec: small domains
/// (dict/packed friendly), runs (RLE friendly), and full-range values
/// (plain at every byte width).
fn int_values(rng: &mut Rng, shape: u64) -> Vec<i64> {
    let n = rng.below(600) as usize;
    match shape % 4 {
        // Long runs over a small domain.
        0 => {
            let mut out = Vec::with_capacity(n);
            while out.len() < n {
                let v = rng.below(8) as i64;
                let run = (rng.below(40) + 1) as usize;
                out.extend(std::iter::repeat_n(v, run.min(n - out.len())));
            }
            out
        }
        // Narrow range around an arbitrary reference (packed friendly).
        1 => {
            let base = rng.next() as i64 >> 16;
            (0..n).map(|_| base + rng.below(1 << 12) as i64).collect()
        }
        // One byte-width class per round, including negatives.
        2 => {
            let width_bits = [7, 15, 31, 62][rng.below(4) as usize];
            (0..n).map(|_| (rng.next() as i64) >> (63 - width_bits)).collect()
        }
        // Anything.
        _ => (0..n).map(|_| rng.next() as i64).collect(),
    }
}

fn str_values(rng: &mut Rng, shape: u64) -> Vec<String> {
    let n = rng.below(300) as usize;
    let alphabet = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ#0123456789";
    let word = |rng: &mut Rng| {
        let len = rng.below(24) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize] as char).collect()
    };
    if shape % 2 == 0 {
        // Small vocabulary, dict friendly.
        let vocab: Vec<String> = (0..rng.below(12) + 1).map(|_| word(rng)).collect();
        (0..n).map(|_| vocab[rng.below(vocab.len() as u64) as usize].clone()).collect()
    } else {
        (0..n).map(|_| word(rng)).collect()
    }
}

/// One payload per round, cycling through every codec the store writes.
fn payload(rng: &mut Rng, round: u64) -> SegmentPayload {
    match round % 8 {
        0 => SegmentPayload::Int(IntColumn::plain(int_values(rng, round))),
        1 => SegmentPayload::Int(IntColumn::plain_fixed(int_values(rng, round))),
        2 => SegmentPayload::Int(IntColumn::rle(&int_values(rng, 0))),
        3 => {
            let vals = int_values(rng, 1);
            match IntColumn::packed(&vals) {
                Some(c) => SegmentPayload::Int(c),
                None => SegmentPayload::Int(IntColumn::plain(vals)),
            }
        }
        4 => SegmentPayload::Int(IntColumn::auto(int_values(rng, round))),
        5 => SegmentPayload::Str(StrColumn::plain(str_values(rng, round))),
        6 => SegmentPayload::Str(StrColumn::dict(&str_values(rng, 0))),
        _ => {
            let n = rng.below(2000) as usize;
            SegmentPayload::Raw((0..n).map(|_| rng.next() as u8).collect())
        }
    }
}

#[test]
fn every_codec_round_trips_under_randomized_inputs() {
    let mut rng = Rng(0xC0FF_EE00_2008_0001);
    for round in 0..64 {
        let p = payload(&mut rng, round);
        let image = encode_segment(&p);
        let back = decode_segment(&image)
            .unwrap_or_else(|e| panic!("round {round}: valid image failed to decode: {e}"));
        assert!(back == p, "round {round}: decoded payload differs");
        assert_eq!(encode_segment(&back), image, "round {round}: re-encoding not byte-identical");
    }
}

#[test]
fn every_truncation_length_is_detected() {
    let mut rng = Rng(0xC0FF_EE00_2008_0002);
    for round in 0..12 {
        let image = encode_segment(&payload(&mut rng, round));
        // Every proper prefix — covers every length class: empty, inside
        // the magic, each header field, the payload, and the CRC itself.
        for cut in 0..image.len() {
            assert!(
                decode_segment(&image[..cut]).is_err(),
                "round {round}: truncation to {cut}/{} bytes decoded",
                image.len()
            );
        }
    }
}

#[test]
fn single_bit_flips_are_detected_at_every_byte_offset() {
    let mut rng = Rng(0xC0FF_EE00_2008_0003);
    for round in 0..12 {
        let image = encode_segment(&payload(&mut rng, round));
        for at in 0..image.len() {
            let mut damaged = image.clone();
            damaged[at] ^= 1 << rng.below(8);
            // A flip may strike anywhere — magic, header, payload, CRC —
            // and must always surface as a typed error: the CRC covers
            // every byte before it, and the CRC field itself then
            // mismatches the recomputation.
            assert!(
                decode_segment(&damaged).is_err(),
                "round {round}: bit flip at byte {at}/{} decoded",
                image.len()
            );
        }
    }
}

#[test]
fn multi_bit_and_extension_corruptions_are_detected() {
    let mut rng = Rng(0xC0FF_EE00_2008_0004);
    for round in 0..24 {
        let image = encode_segment(&payload(&mut rng, round));
        // Random multi-bit garbage splices.
        let mut damaged = image.clone();
        let flips = rng.below(8) + 2;
        for _ in 0..flips {
            let at = rng.below(damaged.len() as u64) as usize;
            damaged[at] ^= (rng.next() as u8).max(1);
        }
        if damaged != image {
            assert!(decode_segment(&damaged).is_err(), "round {round}: splice decoded");
        }
        // Trailing garbage after a valid image (a torn write of the *next*
        // file concatenated, or a lying filesystem reporting extra bytes).
        let mut extended = image.clone();
        extended.extend_from_slice(&[0xAB; 7]);
        assert!(decode_segment(&extended).is_err(), "round {round}: extension decoded");
    }
}
