//! Property tests for the column encodings and the row codec: round-trips,
//! size accounting, and direct-operation equivalence for arbitrary data.

use cvr_data::value::{DataType, Value};
use cvr_storage::encode::{byte_width, IntColumn, StrColumn, RLE_RUN_BYTES};
use cvr_storage::packed::PackedInts;
use cvr_storage::rowcodec::{encode_row, encoded_size, record_len, RecordView};
use proptest::prelude::*;

/// Values with clustering so RLE sees runs sometimes.
fn clustered_ints() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec((0i64..50, 1usize..20), 0..60)
        .prop_map(|runs| runs.into_iter().flat_map(|(v, n)| std::iter::repeat_n(v, n)).collect())
}

fn small_strings() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{0,12}", 0..200)
}

proptest! {
    #[test]
    fn rle_round_trips(values in clustered_ints()) {
        let col = IntColumn::rle(&values);
        prop_assert_eq!(col.decode(), values.clone());
        prop_assert_eq!(col.len(), values.len());
    }

    #[test]
    fn rle_value_at_matches_decode(values in clustered_ints()) {
        let col = IntColumn::rle(&values);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(col.value_at(i as u32), v);
        }
    }

    #[test]
    fn rle_runs_are_maximal_and_cover(values in clustered_ints()) {
        let col = IntColumn::rle(&values);
        if values.is_empty() {
            return Ok(());
        }
        let runs = col.runs();
        // Coverage: runs tile [0, n) exactly.
        let mut next = 0u32;
        for r in runs {
            prop_assert_eq!(r.start, next);
            prop_assert!(r.len >= 1);
            next = r.start + r.len;
        }
        prop_assert_eq!(next as usize, values.len());
        // Maximality: adjacent runs differ in value.
        for w in runs.windows(2) {
            prop_assert_ne!(w[0].value, w[1].value);
        }
        prop_assert_eq!(col.encoded_bytes(), runs.len() as u64 * RLE_RUN_BYTES);
    }

    #[test]
    fn auto_never_bigger_than_plain(values in clustered_ints()) {
        let auto = IntColumn::auto(values.clone());
        let plain = IntColumn::plain(values);
        prop_assert!(auto.encoded_bytes() <= plain.encoded_bytes());
    }

    #[test]
    fn auto_int_round_trips(values in clustered_ints()) {
        // Whatever encoding `auto` picks: decode == input, point lookups
        // agree with the bulk decode, and the footprint never regresses.
        let col = IntColumn::auto(values.clone());
        let decoded = col.decode();
        prop_assert_eq!(&decoded, &values);
        prop_assert_eq!(col.len(), values.len());
        for (i, v) in decoded.iter().enumerate() {
            prop_assert_eq!(col.value_at(i as u32), *v);
        }
        prop_assert!(col.encoded_bytes() <= IntColumn::plain(values).encoded_bytes());
    }

    #[test]
    fn auto_int_round_trips_on_random_data(
        values in prop::collection::vec(-1000i64..1_000_000, 0..300)
    ) {
        // No clustering: auto should fall back to plain and still round-trip.
        let col = IntColumn::auto(values.clone());
        prop_assert_eq!(col.decode(), values.clone());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(col.value_at(i as u32), v);
        }
        prop_assert!(col.encoded_bytes() <= IntColumn::plain(values).encoded_bytes());
    }

    #[test]
    fn auto_str_round_trips(values in small_strings()) {
        let col = StrColumn::auto(values.clone());
        let decoded = col.decode();
        prop_assert_eq!(decoded.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&*decoded[i], v.as_str());
            prop_assert_eq!(col.value_at(i as u32), v.as_str());
        }
        prop_assert!(col.encoded_bytes() <= StrColumn::plain(values).encoded_bytes());
    }

    #[test]
    fn auto_str_round_trips_on_low_cardinality(
        values in prop::collection::vec("[ab]{1,2}", 0..400)
    ) {
        // Heavy repetition: auto should pick the dictionary and still
        // round-trip exactly.
        let col = StrColumn::auto(values.clone());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(col.value_at(i as u32), v.as_str());
        }
        prop_assert!(col.encoded_bytes() <= StrColumn::plain(values).encoded_bytes());
    }

    #[test]
    fn packed_ints_round_trip(
        value_bits in 1u8..32,
        // Lengths straddle the 64-value mask-word boundary on purpose.
        len in (0usize..9).prop_map(|i| [0usize, 1, 63, 64, 65, 127, 128, 129, 300][i]),
        seed in any::<u64>(),
    ) {
        let max = (1u64 << value_bits) - 1;
        let codes: Vec<u64> = (0..len as u64)
            .map(|i| (seed.wrapping_mul(i.wrapping_add(1)).wrapping_mul(2_654_435_761)) % (max + 1))
            .collect();
        let p = PackedInts::pack(value_bits, codes.iter().copied());
        prop_assert_eq!(p.len() as usize, codes.len());
        prop_assert_eq!(p.decode(), codes.clone());
        for (i, &c) in codes.iter().enumerate() {
            prop_assert_eq!(p.get(i as u32), c);
        }
        // The byte count is the literal word image.
        let lanes = (64 / (value_bits as u32 + 1)) as usize;
        prop_assert_eq!(p.bytes(), (codes.len().div_ceil(lanes) * 8) as u64);
    }

    #[test]
    fn packed_column_round_trips(
        base in -1_000_000i64..1_000_000,
        deltas in prop::collection::vec(0i64..2_000_000, 1..200),
    ) {
        let values: Vec<i64> = deltas.iter().map(|&d| base + d).collect();
        let col = IntColumn::packed(&values).expect("21-bit deltas must pack");
        prop_assert!(col.is_packed());
        prop_assert_eq!(col.decode(), values.clone());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(col.value_at(i as u32), v);
        }
    }

    #[test]
    fn byte_width_is_sufficient(values in prop::collection::vec(any::<i64>(), 0..50)) {
        let w = byte_width(&values);
        for &v in &values {
            match w {
                1 => prop_assert!((0..256).contains(&v)),
                2 => prop_assert!((0..65536).contains(&v)),
                4 => prop_assert!((0..(1i64 << 32)).contains(&v)),
                8 => {} // anything fits
                _ => prop_assert!(false, "invalid width {w}"),
            }
        }
    }

    #[test]
    fn dict_round_trips_and_is_order_preserving(values in small_strings()) {
        let col = StrColumn::dict(&values);
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(col.value_at(i as u32), v.as_str());
        }
        let (dict, codes) = col.dict_parts();
        // Sorted dictionary ⇒ code comparison == string comparison.
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                prop_assert_eq!(
                    codes.get(i as u32).cmp(&codes.get(j as u32)),
                    a.cmp(b),
                    "order must be preserved through codes"
                );
            }
            let _ = dict;
            if i > 8 { break; } // quadratic check capped
        }
    }

    #[test]
    fn plain_str_round_trips(values in small_strings()) {
        let col = StrColumn::plain(values.clone());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(col.value_at(i as u32), v.as_str());
        }
    }

    #[test]
    fn row_codec_round_trips(
        ints in prop::collection::vec(0i64..1 << 31, 1..6),
        strs in prop::collection::vec("[ -~]{0,40}", 0..4),
    ) {
        let mut row: Vec<Value> = ints.iter().map(|&i| Value::Int(i)).collect();
        row.extend(strs.iter().map(|s| Value::str(s.as_str())));
        let types: Vec<DataType> = row.iter().map(Value::dtype).collect();
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        prop_assert_eq!(record_len(&buf), buf.len());
        prop_assert_eq!(encoded_size(&row), buf.len());
        let view = RecordView::new(&buf);
        prop_assert_eq!(view.decode_all(&types), row);
        // Offset-based access agrees with walking access.
        let mut offsets = Vec::new();
        view.field_offsets(&types, &mut offsets);
        for (i, t) in types.iter().enumerate() {
            prop_assert_eq!(view.value_at(*t, offsets[i]), view.field(&types, i));
        }
    }
}
