//! C-Store physical layout: sorted projections with reassigned keys.
//!
//! Section 5.4.2's between-predicate rewriting needs two properties the
//! paper calls out explicitly, both established here at load time:
//!
//! 1. **Hierarchy-sorted dimensions.** CUSTOMER and SUPPLIER are sorted by
//!    (region, nation, city), PART by (mfgr, category, brand1), DATE by
//!    datekey — "sorting from left-to-right will result in predicates on
//!    any of those three columns producing a contiguous range output".
//! 2. **Key reassignment by dictionary encoding.** After sorting, the
//!    CUSTOMER/SUPPLIER/PART keys are rewritten to the dense sequence
//!    `0..n`, and the fact table's foreign keys are rewritten through the
//!    same dictionary — so a foreign key *is* the dimension row position
//!    and phase 3 of the invisible join becomes "a fast array look-up".
//!    DATE keeps its `yyyymmdd` keys (not dense), exactly the case where
//!    the paper says a real join must be performed.
//!
//! The fact projection is sorted by (orderdate, quantity, discount): "only
//! one of the seventeen columns in the fact table can be sorted (and two
//! others secondarily sorted)".

use std::collections::HashMap;
use std::sync::Arc;

use cvr_data::gen::SsbTables;
use cvr_data::schema::Dim;
use cvr_data::table::{ColumnData, TableData};
use cvr_storage::column::{ColumnStore, EncodingChoice};

/// Sort hierarchy per dimension (leading columns of the projection).
pub fn dim_sort_columns(dim: Dim) -> &'static [&'static str] {
    match dim {
        Dim::Customer => &["c_region", "c_nation", "c_city", "c_custkey"],
        Dim::Supplier => &["s_region", "s_nation", "s_city", "s_suppkey"],
        Dim::Part => &["p_mfgr", "p_category", "p_brand1", "p_partkey"],
        Dim::Date => &["d_datekey"],
    }
}

/// Fact projection sort order.
pub const FACT_SORT: [&str; 3] = ["lo_orderdate", "lo_quantity", "lo_discount"];

/// One dimension's storage.
pub struct DimStore {
    /// Encoded, hierarchy-sorted columns.
    pub store: ColumnStore,
    /// Sorted logical data (used by tuple construction paths).
    pub sorted: TableData,
    /// True when keys were reassigned to the dense sequence `0..n`.
    pub dense_keys: bool,
}

/// The C-Store database: fact + dimension projections at one compression
/// setting.
pub struct CStoreDb {
    /// Original logical tables (planning statistics only).
    pub tables: Arc<SsbTables>,
    /// Whether RLE/dictionary encodings were applied.
    pub compression: bool,
    /// The fact projection, sorted by [`FACT_SORT`], FKs remapped.
    pub fact: ColumnStore,
    /// Sorted logical fact data (kept for early-materialization stitching
    /// oracles in tests; columns are shared with `fact`'s source).
    pub fact_rows: usize,
    dims: HashMap<Dim, DimStore>,
}

/// Sort permutation of `table` by `columns` (lexicographic, ascending).
pub fn sort_permutation(table: &TableData, columns: &[&str]) -> Vec<u32> {
    let cols: Vec<&ColumnData> = columns.iter().map(|c| table.column(c)).collect();
    let mut perm: Vec<u32> = (0..table.num_rows() as u32).collect();
    perm.sort_by(|&a, &b| {
        for c in &cols {
            let ord = match c {
                ColumnData::Int(v) => v[a as usize].cmp(&v[b as usize]),
                ColumnData::Str(v) => v[a as usize].cmp(&v[b as usize]),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.cmp(&b)
    });
    perm
}

impl CStoreDb {
    /// Build projections over `tables` at the given compression setting.
    pub fn build(tables: Arc<SsbTables>, compression: bool) -> CStoreDb {
        let choice = if compression { EncodingChoice::Auto } else { EncodingChoice::Plain };

        // --- Dimensions: sort, then reassign keys densely. ---
        let mut dims = HashMap::new();
        let mut key_remaps: HashMap<Dim, HashMap<i64, i64>> = HashMap::new();
        for d in Dim::ALL {
            let src = tables.dim(d);
            let perm = sort_permutation(src, dim_sort_columns(d));
            let mut sorted = src.permuted(&perm);
            let dense = d.dense_keys();
            if dense {
                let key_idx = sorted.schema.col(d.key_column());
                let old_keys = match &sorted.columns[key_idx] {
                    ColumnData::Int(v) => v.clone(),
                    ColumnData::Str(_) => unreachable!("dimension keys are ints"),
                };
                let remap: HashMap<i64, i64> =
                    old_keys.iter().enumerate().map(|(p, &k)| (k, p as i64)).collect();
                sorted.columns[key_idx] = ColumnData::Int((0..sorted.num_rows() as i64).collect());
                key_remaps.insert(d, remap);
            }
            let store = ColumnStore::from_table(&sorted, choice);
            dims.insert(d, DimStore { store, sorted, dense_keys: dense });
        }

        // --- Fact: remap FKs, then sort by (orderdate, quantity, discount). ---
        let mut fact_logical = tables.lineorder.clone();
        for d in [Dim::Customer, Dim::Supplier, Dim::Part] {
            let remap = &key_remaps[&d];
            let idx = fact_logical.schema.col(d.fact_fk_column());
            if let ColumnData::Int(v) = &mut fact_logical.columns[idx] {
                for k in v.iter_mut() {
                    *k = remap[k];
                }
            }
        }
        let perm = sort_permutation(&fact_logical, &FACT_SORT);
        let fact_sorted = fact_logical.permuted(&perm);
        let fact = ColumnStore::from_table(&fact_sorted, choice);

        CStoreDb { tables, compression, fact, fact_rows: fact_sorted.num_rows(), dims }
    }

    /// Dimension storage.
    pub fn dim(&self, d: Dim) -> &DimStore {
        &self.dims[&d]
    }

    /// Number of fact rows.
    pub fn fact_rows(&self) -> usize {
        self.fact_rows
    }

    /// Total encoded bytes of the fact projection.
    pub fn fact_bytes(&self) -> u64 {
        self.fact.bytes()
    }

    /// Total encoded bytes including dimensions.
    pub fn total_bytes(&self) -> u64 {
        self.fact.bytes() + Dim::ALL.iter().map(|d| self.dims[d].store.bytes()).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;

    fn db(compression: bool) -> CStoreDb {
        CStoreDb::build(Arc::new(SsbConfig { sf: 0.001, seed: 11 }.generate()), compression)
    }

    #[test]
    fn dims_sorted_by_hierarchy() {
        let db = db(true);
        let cust = &db.dim(Dim::Customer).sorted;
        let regions = cust.column("c_region").strs();
        assert!(regions.windows(2).all(|w| w[0] <= w[1]), "regions must be sorted");
        // Within a region, nations sorted.
        let nations = cust.column("c_nation").strs();
        for i in 1..cust.num_rows() {
            if regions[i - 1] == regions[i] {
                assert!(nations[i - 1] <= nations[i]);
            }
        }
    }

    #[test]
    fn dense_keys_are_positions() {
        let db = db(true);
        for d in [Dim::Customer, Dim::Supplier, Dim::Part] {
            let keys = db.dim(d).sorted.column(d.key_column()).ints();
            for (p, &k) in keys.iter().enumerate() {
                assert_eq!(k, p as i64, "{d:?} key must equal its position");
            }
            assert!(db.dim(d).dense_keys);
        }
        // DATE keys stay yyyymmdd.
        let dk = db.dim(Dim::Date).sorted.column("d_datekey").ints();
        assert_eq!(dk[0], 19920101);
        assert!(!db.dim(Dim::Date).dense_keys);
    }

    #[test]
    fn fact_fks_reference_remapped_dims() {
        let db = db(true);
        let n_cust = db.dim(Dim::Customer).sorted.num_rows() as i64;
        let fks = db.fact.column("lo_custkey");
        let decoded = fks.column.as_int().decode();
        assert!(decoded.iter().all(|&k| k >= 0 && k < n_cust));
    }

    #[test]
    fn fk_remap_preserves_join_semantics() {
        // Joining through remapped keys must relate the same logical rows:
        // check via customer city strings.
        let tables = Arc::new(SsbConfig { sf: 0.001, seed: 13 }.generate());
        let db = CStoreDb::build(tables.clone(), true);
        // Original join: row i -> custkey -> city.
        let orig_fk = tables.lineorder.column("lo_custkey").ints();
        let orig_city = tables.customer.column("c_city").strs();
        let mut expected: Vec<String> = (0..tables.lineorder.num_rows())
            .map(|i| orig_city[(orig_fk[i] - 1) as usize].clone())
            .collect();
        // Projection join: sorted fact fk == position into sorted customer.
        let new_fk = db.fact.column("lo_custkey").column.as_int().decode();
        let new_city = db.dim(Dim::Customer).sorted.column("c_city").strs();
        let mut got: Vec<String> = new_fk.iter().map(|&k| new_city[k as usize].clone()).collect();
        expected.sort();
        got.sort();
        assert_eq!(expected, got);
    }

    #[test]
    fn fact_sorted_by_orderdate_then_quantity() {
        let db = db(false);
        let od = db.fact.column("lo_orderdate").column.as_int().decode();
        assert!(od.windows(2).all(|w| w[0] <= w[1]));
        let qty = db.fact.column("lo_quantity").column.as_int().decode();
        for i in 1..od.len() {
            if od[i - 1] == od[i] {
                assert!(qty[i - 1] <= qty[i]);
            }
        }
    }

    #[test]
    fn compression_shrinks_sorted_columns() {
        let comp = db(true);
        let plain = db(false);
        assert!(comp.fact_bytes() < plain.fact_bytes());
        // orderdate is fully sorted: RLE must be chosen.
        assert!(comp.fact.column("lo_orderdate").column.as_int().is_rle());
        assert!(!plain.fact.column("lo_orderdate").column.as_int().is_rle());
    }

    #[test]
    fn region_predicate_selects_contiguous_dim_positions() {
        let db = db(true);
        let cust = &db.dim(Dim::Customer).sorted;
        let regions = cust.column("c_region").strs();
        let matching: Vec<usize> = (0..cust.num_rows()).filter(|&i| regions[i] == "ASIA").collect();
        if matching.len() > 1 {
            assert_eq!(matching[matching.len() - 1] - matching[0] + 1, matching.len());
        }
    }
}
