//! Position lists — the intermediate currency of late materialization.
//!
//! Section 5.2: "this list of positions can be represented as a simple
//! array, a bit string ... or as a set of ranges of positions. These
//! position representations are then intersected". [`PosList`] implements
//! all three representations with representation-preserving intersection:
//! range ∩ range stays a range (the common case under between-predicate
//! rewriting on the sorted fact column), bitmaps AND word-wise, and mixed
//! forms degrade gracefully.

use cvr_index::bitmap::RidBitmap;

/// A set of ascending positions within a column of `universe` values.
#[derive(Debug, Clone, PartialEq)]
pub enum PosList {
    /// Contiguous positions `[start, end)`.
    Range {
        /// First position.
        start: u32,
        /// One past the last position.
        end: u32,
        /// Universe size (column length).
        universe: u32,
    },
    /// One bit per position.
    Bitmap(RidBitmap),
    /// Explicit ascending positions.
    Explicit {
        /// The positions, strictly ascending.
        positions: Vec<u32>,
        /// Universe size (column length).
        universe: u32,
    },
}

/// Selectivity threshold (as a divisor of the universe) above which scans
/// prefer a bitmap over an explicit list.
pub const EXPLICIT_LIMIT_DIVISOR: u32 = 16;

impl PosList {
    /// The empty list over `universe`.
    pub fn empty(universe: u32) -> PosList {
        PosList::Explicit { positions: Vec::new(), universe }
    }

    /// Every position in `universe`.
    pub fn all(universe: u32) -> PosList {
        PosList::Range { start: 0, end: universe, universe }
    }

    /// Wrap ascending positions without changing representation — the cheap
    /// constructor for short-lived morsel fragments, where the compact-form
    /// analysis of [`PosList::from_ascending`] would cost more than it saves.
    pub fn explicit(positions: Vec<u32>, universe: u32) -> PosList {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        PosList::Explicit { positions, universe }
    }

    /// Build from ascending positions, choosing a compact representation.
    pub fn from_ascending(positions: Vec<u32>, universe: u32) -> PosList {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        if !positions.is_empty()
            && positions.len() as u32 == positions[positions.len() - 1] - positions[0] + 1
        {
            return PosList::Range {
                start: positions[0],
                end: positions[positions.len() - 1] + 1,
                universe,
            };
        }
        if positions.len() as u32 > universe / EXPLICIT_LIMIT_DIVISOR {
            let mut bm = RidBitmap::new(universe);
            for p in positions {
                bm.set(p);
            }
            return PosList::Bitmap(bm);
        }
        PosList::Explicit { positions, universe }
    }

    /// Universe size.
    pub fn universe(&self) -> u32 {
        match self {
            PosList::Range { universe, .. } => *universe,
            PosList::Bitmap(b) => b.len(),
            PosList::Explicit { universe, .. } => *universe,
        }
    }

    /// Number of selected positions.
    pub fn count(&self) -> u32 {
        match self {
            PosList::Range { start, end, .. } => end - start,
            PosList::Bitmap(b) => b.count(),
            PosList::Explicit { positions, .. } => positions.len() as u32,
        }
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// True when the positions form one contiguous run (used by the
    /// between-predicate rewriting detector).
    pub fn is_contiguous(&self) -> bool {
        match self {
            PosList::Range { .. } => true,
            _ => {
                let c = self.count();
                c == 0 || {
                    let first = self.first().unwrap();
                    let last = self.last().unwrap();
                    last - first + 1 == c
                }
            }
        }
    }

    /// Smallest selected position.
    pub fn first(&self) -> Option<u32> {
        match self {
            PosList::Range { start, end, .. } => (start < end).then_some(*start),
            PosList::Bitmap(b) => b.iter().next(),
            PosList::Explicit { positions, .. } => positions.first().copied(),
        }
    }

    /// Largest selected position.
    pub fn last(&self) -> Option<u32> {
        match self {
            PosList::Range { start, end, .. } => (start < end).then_some(end - 1),
            PosList::Bitmap(b) => {
                let mut last = None;
                for p in b.iter() {
                    last = Some(p);
                }
                last
            }
            PosList::Explicit { positions, .. } => positions.last().copied(),
        }
    }

    /// Iterate selected positions in ascending order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        match self {
            PosList::Range { start, end, .. } => Box::new(*start..*end),
            PosList::Bitmap(b) => Box::new(b.iter()),
            PosList::Explicit { positions, .. } => Box::new(positions.iter().copied()),
        }
    }

    /// Materialize as an ascending vector.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Intersect two lists (same universe), preserving cheap representations.
    pub fn intersect(&self, other: &PosList) -> PosList {
        assert_eq!(self.universe(), other.universe(), "position universe mismatch");
        use PosList::*;
        match (self, other) {
            (Range { start: a, end: b, universe }, Range { start: c, end: d, .. }) => {
                let start = (*a).max(*c);
                let end = (*b).min(*d);
                Range { start, end: end.max(start), universe: *universe }
            }
            (Bitmap(x), Bitmap(y)) => {
                let mut out = x.clone();
                out.and_with(y);
                Bitmap(out)
            }
            (Range { start, end, universe }, Bitmap(b))
            | (Bitmap(b), Range { start, end, universe }) => {
                // Word-parallel: AND the bitmap's words against the range
                // mask instead of iterating set bits. Representation choice
                // matches `from_ascending`: range if contiguous, bitmap if
                // dense, explicit otherwise.
                let (start, end) = (*start, *end);
                if start >= end {
                    return PosList::empty(*universe);
                }
                let (fw, lw) = ((start / 64) as usize, ((end - 1) / 64) as usize);
                let mut masked: Vec<u64> = b.words()[fw..=lw].to_vec();
                masked[0] &= u64::MAX << (start % 64);
                let tail_keep = (end - 1) % 64;
                if tail_keep < 63 {
                    let li = masked.len() - 1;
                    masked[li] &= (1u64 << (tail_keep + 1)) - 1;
                }
                let count: u32 = masked.iter().map(|w| w.count_ones()).sum();
                if count == 0 {
                    return PosList::empty(*universe);
                }
                let (fi, fword) = masked.iter().enumerate().find(|(_, &w)| w != 0).unwrap();
                let first = (fw + fi) as u32 * 64 + fword.trailing_zeros();
                let (li, lword) = masked.iter().enumerate().rfind(|(_, &w)| w != 0).unwrap();
                let last = (fw + li) as u32 * 64 + 63 - lword.leading_zeros();
                if last - first + 1 == count {
                    return PosList::Range { start: first, end: last + 1, universe: *universe };
                }
                if count > *universe / EXPLICIT_LIMIT_DIVISOR {
                    let mut bm = RidBitmap::new(*universe);
                    bm.extend_from_words(fw, &masked);
                    return PosList::Bitmap(bm);
                }
                // Sparse: read the positions straight out of the masked
                // window — no full-universe bitmap needed.
                let mut positions = Vec::with_capacity(count as usize);
                for (i, &w) in masked.iter().enumerate() {
                    let mut m = w;
                    while m != 0 {
                        positions.push((fw + i) as u32 * 64 + m.trailing_zeros());
                        m &= m - 1;
                    }
                }
                PosList::Explicit { positions, universe: *universe }
            }
            (Range { start, end, universe }, Explicit { positions, .. })
            | (Explicit { positions, .. }, Range { start, end, universe }) => {
                let out: Vec<u32> = positions
                    .iter()
                    .copied()
                    .skip_while(|p| p < start)
                    .take_while(|p| p < end)
                    .collect();
                PosList::from_ascending(out, *universe)
            }
            (Explicit { positions, universe }, Bitmap(b))
            | (Bitmap(b), Explicit { positions, universe }) => {
                let out: Vec<u32> = positions.iter().copied().filter(|&p| b.get(p)).collect();
                PosList::from_ascending(out, *universe)
            }
            (Explicit { positions: xs, universe }, Explicit { positions: ys, .. }) => {
                let mut out = Vec::with_capacity(xs.len().min(ys.len()));
                let (mut i, mut j) = (0, 0);
                while i < xs.len() && j < ys.len() {
                    match xs[i].cmp(&ys[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(xs[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                PosList::from_ascending(out, *universe)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explicit(p: &[u32], n: u32) -> PosList {
        PosList::Explicit { positions: p.to_vec(), universe: n }
    }

    #[test]
    fn basics() {
        let r = PosList::Range { start: 5, end: 10, universe: 100 };
        assert_eq!(r.count(), 5);
        assert_eq!(r.first(), Some(5));
        assert_eq!(r.last(), Some(9));
        assert!(r.is_contiguous());
        assert_eq!(r.to_vec(), vec![5, 6, 7, 8, 9]);
        assert!(PosList::empty(10).is_empty());
        assert_eq!(PosList::all(10).count(), 10);
    }

    #[test]
    fn from_ascending_detects_ranges() {
        assert!(matches!(
            PosList::from_ascending(vec![3, 4, 5, 6], 100),
            PosList::Range { start: 3, end: 7, .. }
        ));
        assert!(matches!(PosList::from_ascending(vec![3, 5], 100), PosList::Explicit { .. }));
    }

    #[test]
    fn from_ascending_prefers_bitmap_for_dense() {
        let dense: Vec<u32> = (0..50).map(|i| i * 2).collect(); // 50 of 128
        assert!(matches!(PosList::from_ascending(dense, 128), PosList::Bitmap(_)));
    }

    #[test]
    fn range_range_intersection() {
        let a = PosList::Range { start: 0, end: 10, universe: 100 };
        let b = PosList::Range { start: 5, end: 20, universe: 100 };
        let c = a.intersect(&b);
        assert_eq!(c.to_vec(), (5..10).collect::<Vec<u32>>());
        // Disjoint ranges intersect to empty.
        let d = PosList::Range { start: 50, end: 60, universe: 100 };
        assert!(a.intersect(&d).is_empty());
    }

    #[test]
    fn mixed_intersections_match_set_semantics() {
        let universe = 256u32;
        let xs: Vec<u32> = (0..universe).filter(|p| p % 3 == 0).collect();
        let ys: Vec<u32> = (0..universe).filter(|p| p % 5 == 0).collect();
        let expected: Vec<u32> = (0..universe).filter(|p| p % 15 == 0).collect();
        let reprs_x = [
            PosList::from_ascending(xs.clone(), universe),
            PosList::Bitmap(cvr_index::bitmap::RidBitmap::from_rids(universe, xs.clone())),
            explicit(&xs, universe),
        ];
        let reprs_y = [
            PosList::from_ascending(ys.clone(), universe),
            PosList::Bitmap(cvr_index::bitmap::RidBitmap::from_rids(universe, ys.clone())),
            explicit(&ys, universe),
        ];
        for x in &reprs_x {
            for y in &reprs_y {
                assert_eq!(x.intersect(y).to_vec(), expected);
            }
        }
    }

    #[test]
    fn range_bitmap_intersection() {
        let r = PosList::Range { start: 10, end: 20, universe: 64 };
        let bm = PosList::Bitmap(cvr_index::bitmap::RidBitmap::from_rids(64, [5u32, 10, 15, 25]));
        assert_eq!(r.intersect(&bm).to_vec(), vec![10, 15]);
        assert_eq!(bm.intersect(&r).to_vec(), vec![10, 15]);
    }

    #[test]
    fn contiguity_detection() {
        assert!(explicit(&[4, 5, 6], 100).is_contiguous());
        assert!(!explicit(&[4, 6], 100).is_contiguous());
        assert!(explicit(&[], 100).is_contiguous());
        let bm = PosList::Bitmap(cvr_index::bitmap::RidBitmap::from_rids(64, [7u32, 8, 9]));
        assert!(bm.is_contiguous());
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        PosList::all(10).intersect(&PosList::all(20));
    }
}
