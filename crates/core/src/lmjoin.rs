//! The classic late-materialized join \[5\] — what C-Store falls back to when
//! the invisible join is disabled (the Figure 7 `i` configurations).
//!
//! Joins run dimension-by-dimension in selectivity order. Each join hashes
//! the filtered dimension's *keys to positions*, probes the fact FK column,
//! and immediately extracts that dimension's group-by attributes at the
//! matched (out-of-order) dimension positions. Two deliberate differences
//! from the invisible join, both called out in Section 5.4:
//!
//! * **no between-predicate rewriting** — every join probes a hash table,
//!   even when the matching keys are contiguous ("this performance
//!   difference is largely due to the between-predicate rewriting
//!   optimization");
//! * **eager extraction** — dimension values are pulled as each join
//!   completes, so earlier joins extract values for fact rows that later
//!   predicates will discard ("the number of positions ... is dependent on
//!   the selectivity of just the part of the query that has been executed
//!   so far"), and the extraction order is whatever the join produced,
//!   "which can have significant cost".

use crate::agg::{AggStrategy, GroupData};
use crate::config::EngineConfig;
use crate::ctx::{QueryCtx, QueryError};
use crate::extract::gather_ints;
use crate::morsel::{intersect_ascending, try_run_morsels, Parallelism};
use crate::poslist::PosList;
use crate::projection::CStoreDb;
use crate::scan::{scan_pred, scan_pred_range};
use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_data::schema::Dim;
use cvr_index::hashidx::IntHashMap;
use cvr_storage::encode::IntColumn;
use cvr_storage::io::IoSession;

/// Restricted dimensions ordered by predicate selectivity (most selective
/// first) — the "pipeline joins in order of predicate selectivity" heuristic.
fn restricted_in_order(db: &CStoreDb, q: &SsbQuery) -> Vec<Dim> {
    let mut dims: Vec<(Dim, f64)> = q
        .restricted_dims()
        .into_iter()
        .map(|d| {
            let table = &db.dim(d).sorted;
            let preds = q.dim_predicates_on(d);
            let matches = (0..table.num_rows())
                .filter(|&i| preds.iter().all(|p| p.pred.matches(&table.value(i, p.column))))
                .count();
            (d, matches as f64 / table.num_rows().max(1) as f64)
        })
        .collect();
    dims.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    dims.into_iter().map(|(d, _)| d).collect()
}

/// Build `key → dimension position` for the dimension rows matching the
/// query's predicates (all rows when unrestricted).
fn dim_hash(
    db: &CStoreDb,
    q: &SsbQuery,
    dim: Dim,
    cfg: EngineConfig,
    io: &IoSession,
) -> IntHashMap {
    let store = db.dim(dim);
    let preds = q.dim_predicates_on(dim);
    let dpos = if preds.is_empty() {
        PosList::all(store.sorted.num_rows() as u32)
    } else {
        let mut acc: Option<PosList> = None;
        for p in &preds {
            let pl = scan_pred(store.store.column(p.column), &p.pred, cfg.block_iteration, io);
            acc = Some(match acc {
                None => pl,
                Some(a) => a.intersect(&pl),
            });
        }
        acc.unwrap()
    };
    let keys = gather_ints(store.store.column(dim.key_column()), &dpos, io);
    IntHashMap::from_pairs(keys.into_iter().zip(dpos.iter()))
}

/// The shared probe loop of [`probe_full_scan`] and [`probe_range`]: fact
/// positions `[start, end)` of `col` probed against `map`, per encoding ×
/// iteration interface. Hash probes are inherently per-value, but RLE still
/// probes once per run and packed columns unpack one word at a time.
fn probe_span(
    col: &IntColumn,
    start: u32,
    end: u32,
    map: &IntHashMap,
    block: bool,
) -> (Vec<u32>, Vec<u32>) {
    let mut fact_pos = Vec::new();
    let mut dim_pos = Vec::new();
    if start >= end {
        return (fact_pos, dim_pos);
    }
    match col {
        IntColumn::Rle { runs, .. } => {
            // Direct operation on compressed data: one probe per run.
            let mut idx = if start == 0 { 0 } else { col.run_containing(start) };
            while idx < runs.len() && runs[idx].start < end {
                let r = &runs[idx];
                if let Some(d) = map.get(r.value) {
                    for p in r.start.max(start)..(r.start + r.len).min(end) {
                        fact_pos.push(p);
                        dim_pos.push(d);
                    }
                }
                idx += 1;
            }
        }
        IntColumn::Plain { values, .. } => {
            let slice = &values[start as usize..end as usize];
            if block {
                for (off, &v) in slice.iter().enumerate() {
                    if let Some(d) = map.get(v) {
                        fact_pos.push(start + off as u32);
                        dim_pos.push(d);
                    }
                }
            } else {
                let mut src: Box<dyn Iterator<Item = i64>> = Box::new(slice.iter().copied());
                let mut i = start;
                while let Some(v) = std::hint::black_box(&mut src).next() {
                    if let Some(d) = map.get(v) {
                        fact_pos.push(i);
                        dim_pos.push(d);
                    }
                    i += 1;
                }
            }
        }
        IntColumn::Packed { reference, packed } => {
            let r = *reference;
            if block {
                let mut i = start;
                packed.for_each_in(start, end, |c| {
                    if let Some(d) = map.get(r + c as i64) {
                        fact_pos.push(i);
                        dim_pos.push(d);
                    }
                    i += 1;
                });
            } else {
                let mut src: Box<dyn Iterator<Item = u64>> =
                    Box::new(packed.iter_range(start, end));
                let mut i = start;
                while let Some(c) = std::hint::black_box(&mut src).next() {
                    if let Some(d) = map.get(r + c as i64) {
                        fact_pos.push(i);
                        dim_pos.push(d);
                    }
                    i += 1;
                }
            }
        }
    }
    (fact_pos, dim_pos)
}

/// Morsel-range counterpart of [`probe_full_scan`]: probe fact positions
/// `[start, end)` of the FK column against `map`.
fn probe_range(
    db: &CStoreDb,
    dim: Dim,
    map: &IntHashMap,
    cfg: EngineConfig,
    start: u32,
    end: u32,
    io: &IoSession,
) -> (Vec<u32>, Vec<u32>) {
    let col = db.fact.column(dim.fact_fk_column());
    col.charge_scan_range(start, end, io);
    probe_span(col.column.as_int(), start, end, map, cfg.block_iteration)
}

/// Probe an entire fact FK column against `map`: returns matched fact
/// positions and the corresponding dimension positions.
fn probe_full_scan(
    db: &CStoreDb,
    dim: Dim,
    map: &IntHashMap,
    cfg: EngineConfig,
    io: &IoSession,
) -> (Vec<u32>, Vec<u32>) {
    let col = db.fact.column(dim.fact_fk_column());
    col.charge_scan(io);
    let n = col.column.len() as u32;
    probe_span(col.column.as_int(), 0, n, map, cfg.block_iteration)
}

/// Late-materialized join with an unbounded lifecycle (test shorthand).
#[cfg(test)]
fn execute(db: &CStoreDb, q: &SsbQuery, cfg: EngineConfig, io: &IoSession) -> QueryOutput {
    try_execute(db, q, cfg, io, &QueryCtx::unbounded()).unwrap_or_else(|e| std::panic::panic_any(e))
}

/// Execute `q` with late-materialized hash joins (invisible join disabled):
/// polls `ctx` between column operations and joins, charging materialized
/// intermediates.
pub(crate) fn try_execute(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<QueryOutput, QueryError> {
    let strat = AggStrategy::for_query(db, q);

    // Fact-column predicates first (flight 1): ordinary column scans.
    let mut pos: Option<Vec<u32>> = None;
    for p in &q.fact_predicates {
        ctx.check()?;
        let mut span = ctx.span("scan", p.column, io);
        let pl = scan_pred(db.fact.column(p.column), &p.pred, cfg.block_iteration, io);
        pos = Some(match pos {
            None => pl.to_vec(),
            Some(acc) => {
                let e = PosList::from_ascending(acc, pl.universe());
                e.intersect(&pl).to_vec()
            }
        });
        // The LM plan's scan nodes report the running surviving count.
        span.rows(pos.as_ref().map_or(0, Vec::len) as u64);
    }

    // Aligned group arrays (codes or values), filled as each dimension
    // joins.
    let mut group_vals: Vec<Option<GroupData>> = Vec::new();
    group_vals.resize_with(q.group_by.len(), || None);

    // Restricted dimensions, most selective first.
    for dim in restricted_in_order(db, q) {
        ctx.check()?;
        let mut span = ctx.span("hash-join", dim.fact_fk_column(), io);
        let map = dim_hash(db, q, dim, cfg, io);
        let (new_pos, dim_positions) = match pos {
            None => probe_full_scan(db, dim, &map, cfg, io),
            Some(current) => {
                let fk_col = db.fact.column(dim.fact_fk_column());
                let pl = PosList::from_ascending(current.clone(), db.fact_rows() as u32);
                let fks = gather_ints(fk_col, &pl, io);
                let mut keep = Vec::with_capacity(current.len());
                let mut new_pos = Vec::new();
                let mut dim_positions = Vec::new();
                for (i, fk) in fks.into_iter().enumerate() {
                    match map.get(fk) {
                        Some(d) => {
                            keep.push(true);
                            new_pos.push(current[i]);
                            dim_positions.push(d);
                        }
                        None => keep.push(false),
                    }
                }
                // Compact previously-extracted arrays to stay aligned.
                for slot in group_vals.iter_mut().flatten() {
                    slot.retain_marked(&keep);
                }
                (new_pos, dim_positions)
            }
        };
        // Eager out-of-order extraction of this dimension's group columns.
        for (gi, g) in q.group_by.iter().enumerate() {
            if g.dim == dim {
                let col = db.dim(dim).store.column(g.column);
                group_vals[gi] = Some(strat.extract_group_at(gi, col, &dim_positions, io));
            }
        }
        span.rows(new_pos.len() as u64);
        pos = Some(new_pos);
    }

    let pos = pos.unwrap_or_else(|| (0..db.fact_rows() as u32).collect());
    // Account the surviving positions plus the aligned per-row arrays the
    // eager extraction keeps live.
    ctx.charge(pos.len().saturating_mul(8 * (q.group_by.len() + 1)))?;
    let pl = PosList::from_ascending(pos.clone(), db.fact_rows() as u32);

    let mut span = ctx.span("extract-aggregate", "", io);

    // Group-only dimensions (no predicates): join via full-key hash.
    for dim in q.touched_dims() {
        ctx.check()?;
        let missing: Vec<usize> = q
            .group_by
            .iter()
            .enumerate()
            .filter(|(gi, g)| g.dim == dim && group_vals[*gi].is_none())
            .map(|(gi, _)| gi)
            .collect();
        if missing.is_empty() {
            continue;
        }
        let map = dim_hash(db, q, dim, cfg, io);
        let fks = gather_ints(db.fact.column(dim.fact_fk_column()), &pl, io);
        let dim_positions: Vec<u32> =
            fks.into_iter().map(|k| map.get(k).expect("FK joins dimension")).collect();
        for gi in missing {
            let col = db.dim(dim).store.column(q.group_by[gi].column);
            group_vals[gi] = Some(strat.extract_group_at(gi, col, &dim_positions, io));
        }
    }

    // Measures + aggregation on group ids.
    let measure_cols: Vec<Vec<i64>> = q
        .aggregate
        .fact_columns()
        .iter()
        .map(|c| gather_ints(db.fact.column(c), &pl, io))
        .collect();
    let group_cols: Vec<GroupData> =
        group_vals.into_iter().map(|v| v.expect("all group columns extracted")).collect();
    let mut partial = strat.new_partial();
    partial.add_rows(q, &group_cols, &measure_cols, pos.len());
    let out = strat.finish(partial, q);
    span.rows(out.len() as u64);
    drop(span);
    Ok(out)
}

/// Execute `q` with late-materialized hash joins across `par.threads`
/// morsel workers.
///
/// The dimension hash tables are built once on the coordinator (they are
/// small, and their charges land on the main session exactly as in
/// [`try_execute`]); each morsel then pipelines its slice of the fact
/// position space through the same join order — fact predicates, restricted
/// dimensions by selectivity with eager out-of-order extraction, group-only
/// dimensions, measures, partial aggregation. Per-morsel I/O logs replay
/// and partial aggregates merge in morsel order.
pub(crate) fn try_execute_par(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    par: Parallelism,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<QueryOutput, QueryError> {
    if par.is_serial() {
        return try_execute(db, q, cfg, io, ctx);
    }
    let n = db.fact_rows() as u32;

    // Join order and dimension hash tables, built serially up front. The
    // serial plan builds each table lazily between fact-column operations;
    // per-file page sequences are identical either way.
    let order = restricted_in_order(db, q);
    let mut maps: std::collections::HashMap<Dim, IntHashMap> = std::collections::HashMap::new();
    for &dim in &order {
        ctx.check()?;
        maps.insert(dim, dim_hash(db, q, dim, cfg, io));
    }
    for dim in q.touched_dims() {
        let grouped = q.group_by.iter().any(|g| g.dim == dim);
        if grouped && !maps.contains_key(&dim) {
            ctx.check()?;
            maps.insert(dim, dim_hash(db, q, dim, cfg, io));
        }
    }

    // Shared read-only aggregation strategy: metadata only, no charges.
    let strat = AggStrategy::for_query(db, q);

    // Per-operator running-count tallies for tracing (one slot per fact
    // predicate, then per joined dimension); morsel-local counts sum to the
    // serial plan's per-operator actuals. Allocated only when traced.
    let tallies: Option<Vec<std::sync::atomic::AtomicU64>> = ctx.traced().then(|| {
        (0..q.fact_predicates.len() + order.len())
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect()
    });
    let tally = |slot: usize, rows: usize| {
        if let Some(t) = &tallies {
            t[slot].fetch_add(rows as u64, std::sync::atomic::Ordering::Relaxed);
        }
    };

    // The fused fan-out's combined wall/I/O/worker breakdown lands on this
    // span; per-operator row tallies become leaf records after the merge.
    let mut span = ctx.span("extract-aggregate", "", io);

    let pool = io.pool().clone();
    let results = try_run_morsels(n, par, ctx, |_, range| {
        let rio = IoSession::recording(pool.clone());

        // Fact-column predicates over this morsel.
        let mut pos: Option<Vec<u32>> = None;
        for (slot, p) in q.fact_predicates.iter().enumerate() {
            let col = db.fact.column(p.column);
            let frag =
                scan_pred_range(col, range.start, range.end, &p.pred, cfg.block_iteration, &rio);
            pos = Some(match pos {
                None => frag,
                Some(acc) => intersect_ascending(&acc, &frag),
            });
            tally(slot, pos.as_ref().map_or(0, Vec::len));
        }

        // Restricted dimensions, most selective first, with eager
        // out-of-order extraction — the morsel-local copy of the serial
        // pipeline.
        let mut group_vals: Vec<Option<GroupData>> = Vec::new();
        group_vals.resize_with(q.group_by.len(), || None);
        for (join_slot, dim) in order.iter().enumerate() {
            let map = &maps[dim];
            let (new_pos, dim_positions) = match pos {
                None => probe_range(db, *dim, map, cfg, range.start, range.end, &rio),
                Some(current) => {
                    let fk_col = db.fact.column(dim.fact_fk_column());
                    let pl = PosList::explicit(current.clone(), n);
                    let fks = gather_ints(fk_col, &pl, &rio);
                    let mut keep = Vec::with_capacity(current.len());
                    let mut new_pos = Vec::new();
                    let mut dim_positions = Vec::new();
                    for (i, fk) in fks.into_iter().enumerate() {
                        match map.get(fk) {
                            Some(d) => {
                                keep.push(true);
                                new_pos.push(current[i]);
                                dim_positions.push(d);
                            }
                            None => keep.push(false),
                        }
                    }
                    for slot in group_vals.iter_mut().flatten() {
                        slot.retain_marked(&keep);
                    }
                    (new_pos, dim_positions)
                }
            };
            for (gi, g) in q.group_by.iter().enumerate() {
                if g.dim == *dim {
                    let col = db.dim(*dim).store.column(g.column);
                    group_vals[gi] = Some(strat.extract_group_at(gi, col, &dim_positions, &rio));
                }
            }
            tally(q.fact_predicates.len() + join_slot, new_pos.len());
            pos = Some(new_pos);
        }

        let pos = pos.unwrap_or_else(|| range.clone().collect());
        // This morsel's share of the positions + aligned extracted arrays.
        ctx.charge(pos.len().saturating_mul(8 * (q.group_by.len() + 1)))?;
        let pl = PosList::explicit(pos.clone(), n);

        // Group-only dimensions (no predicates).
        for dim in q.touched_dims() {
            let missing: Vec<usize> = q
                .group_by
                .iter()
                .enumerate()
                .filter(|(gi, g)| g.dim == dim && group_vals[*gi].is_none())
                .map(|(gi, _)| gi)
                .collect();
            if missing.is_empty() {
                continue;
            }
            let map = &maps[&dim];
            let fks = gather_ints(db.fact.column(dim.fact_fk_column()), &pl, &rio);
            let dim_positions: Vec<u32> =
                fks.into_iter().map(|k| map.get(k).expect("FK joins dimension")).collect();
            for gi in missing {
                let col = db.dim(dim).store.column(q.group_by[gi].column);
                group_vals[gi] = Some(strat.extract_group_at(gi, col, &dim_positions, &rio));
            }
        }

        // Measures + partial aggregation on group ids.
        let measure_cols: Vec<Vec<i64>> = q
            .aggregate
            .fact_columns()
            .iter()
            .map(|c| gather_ints(db.fact.column(c), &pl, &rio))
            .collect();
        let group_cols: Vec<GroupData> =
            group_vals.into_iter().map(|v| v.expect("all group columns extracted")).collect();
        let mut partial = strat.new_partial();
        partial.add_rows(q, &group_cols, &measure_cols, pos.len());
        Ok((rio.take_log(), partial))
    })?;

    // Partial aggregates fold in morsel order; I/O logs replay op-major,
    // reconstructing the serial plan's charge order (see
    // `IoSession::replay_interleaved`).
    let mut merged = strat.new_partial();
    let mut logs = Vec::with_capacity(results.len());
    for (log, partial) in results {
        logs.push(log);
        merged.merge(partial);
    }
    io.replay_interleaved(&logs);
    let out = strat.finish(merged, q);
    span.rows(out.len() as u64);
    drop(span);
    if let (Some(tracer), Some(tallies)) = (ctx.tracer(), &tallies) {
        use std::sync::atomic::Ordering;
        use std::time::Duration;
        let zero = cvr_storage::io::IoStats::default();
        for (slot, p) in q.fact_predicates.iter().enumerate() {
            tracer.leaf(
                "scan",
                p.column,
                Some(tallies[slot].load(Ordering::Relaxed)),
                Duration::ZERO,
                zero,
            );
        }
        for (join_slot, dim) in order.iter().enumerate() {
            let rows = tallies[q.fact_predicates.len() + join_slot].load(Ordering::Relaxed);
            tracer.leaf("hash-join", dim.fact_fk_column(), Some(rows), Duration::ZERO, zero);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::all_queries;
    use cvr_data::reference;
    use std::sync::Arc;

    #[test]
    fn matches_reference_on_all_queries() {
        let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.002, seed: 23 }.generate()), true);
        let io = IoSession::unmetered();
        let cfg = EngineConfig::parse("tiCL");
        for q in all_queries() {
            let expected = reference::evaluate(&db.tables, &q);
            assert_eq!(execute(&db, &q, cfg, &io), expected, "LM join disagrees on {}", q.id);
        }
    }

    #[test]
    fn agrees_with_invisible_join() {
        let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.003, seed: 29 }.generate()), true);
        let io = IoSession::unmetered();
        for q in all_queries() {
            let lm = execute(&db, &q, EngineConfig::parse("tiCL"), &io);
            let ij = crate::invisible::execute(&db, &q, EngineConfig::parse("tICL"), &io);
            assert_eq!(lm, ij, "{}", q.id);
        }
    }

    #[test]
    fn tuple_mode_agrees() {
        let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.001, seed: 3 }.generate()), false);
        let io = IoSession::unmetered();
        for q in all_queries() {
            assert_eq!(
                execute(&db, &q, EngineConfig::parse("ticL"), &io),
                execute(&db, &q, EngineConfig::parse("TicL"), &io),
                "{}",
                q.id
            );
        }
    }
}
