//! Per-query execution tracing: a span tree of what each operator actually
//! did.
//!
//! A [`Tracer`] is attached to a [`QueryCtx`](crate::QueryCtx) before
//! execution; engines then open [`Span`]s around their phases (and record
//! one-shot [`Tracer::leaf`] entries for work measured after the fact, e.g.
//! per-operator row tallies of a fused morsel fan-out). Each closed span
//! captures the operator name, wall time, output rows, bytes materialized,
//! the [`IoStats`] **delta** over the span, and — for parallel fan-outs —
//! the per-worker busy breakdown the morsel pool reports.
//!
//! Two invariants keep tracing honest:
//!
//! * **Observation only.** Spans snapshot `io.stats()` at open and close;
//!   they never charge the session or the query's memory budget, so a
//!   traced execution is byte-identical — output *and* accounting — to an
//!   untraced one (the differential harness pins this).
//! * **Near-zero cost when off.** Without an attached tracer,
//!   `QueryCtx::span` is one atomic load returning a no-op guard; no
//!   strings are built, no locks taken.
//!
//! Span `op` names deliberately reuse the planner's explain-tree vocabulary
//! (`"probe"`, `"scan"`, `"hash-join"`, `"extract-aggregate"`, ...) so the
//! server can zip estimates with actuals for `EXPLAIN ANALYZE`.

use cvr_storage::io::{IoSession, IoStats};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One closed span: an operator's measured actuals, with children.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanRecord {
    /// Operator name; matches the explain tree's `op` vocabulary where the
    /// execution has a corresponding phase.
    pub op: String,
    /// Short discriminator (typically the column the operator touched).
    pub detail: String,
    /// Wall time between open and close.
    pub wall: Duration,
    /// Rows flowing out of the operator, when the engine reported them.
    pub rows_out: Option<u64>,
    /// Bytes of intermediates the engine reported materializing.
    pub bytes: u64,
    /// I/O charged on the measured session during the span (a delta — the
    /// span itself charges nothing).
    pub io: IoStats,
    /// Per-worker busy CPU time of morsel fan-outs inside this span
    /// (index 0 is the coordinator).
    pub workers: Vec<Duration>,
    /// Morsels executed by fan-outs inside this span.
    pub morsels: u64,
    /// Nested spans, in open order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Pre-order flattening (self first), for estimate/actual zipping.
    pub fn flatten(&self) -> Vec<&SpanRecord> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.flatten());
        }
        out
    }

    /// Indented text rendering, one line per span.
    pub fn render(&self, indent: usize) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{}{}", "  ".repeat(indent), self.op);
        if !self.detail.is_empty() {
            let _ = write!(out, ": {}", self.detail);
        }
        if let Some(rows) = self.rows_out {
            let _ = write!(out, " [rows={rows}]");
        }
        let _ = write!(out, " [wall={}us]", self.wall.as_micros());
        if self.io != IoStats::default() {
            let _ = write!(out, " [io={}p/{}B]", self.io.pages_read, self.io.bytes_read);
        }
        if self.bytes > 0 {
            let _ = write!(out, " [bytes={}]", self.bytes);
        }
        if !self.workers.is_empty() {
            let _ = write!(out, " [workers={} morsels={}]", self.workers.len(), self.morsels);
        }
        out.push('\n');
        for c in &self.children {
            out.push_str(&c.render(indent + 1));
        }
        out
    }

    /// Stable JSON encoding, mirroring the explain tree's hand-rolled
    /// style: fixed field names, `null` for unreported rows.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"op\": ");
        write_json_string(out, &self.op);
        out.push_str(", \"detail\": ");
        write_json_string(out, &self.detail);
        let _ = write!(out, ", \"wall_us\": {}", self.wall.as_micros());
        match self.rows_out {
            Some(r) => {
                let _ = write!(out, ", \"rows_out\": {r}");
            }
            None => out.push_str(", \"rows_out\": null"),
        }
        let _ = write!(out, ", \"bytes\": {}", self.bytes);
        let _ = write!(
            out,
            ", \"io\": {{\"pages_read\": {}, \"bytes_read\": {}, \"seeks\": {}, \"pool_hits\": {}}}",
            self.io.pages_read, self.io.bytes_read, self.io.seeks, self.io.pool_hits
        );
        out.push_str(", \"workers_us\": [");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", w.as_micros());
        }
        let _ = write!(out, "], \"morsels\": {}", self.morsels);
        out.push_str(", \"children\": [");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            c.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Write `s` as a JSON string literal (same escaping as the explain tree).
fn write_json_string(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Debug, Default)]
struct TracerInner {
    /// Open spans, innermost last; children accumulate in the top entry.
    stack: Vec<SpanRecord>,
    /// Closed top-level spans.
    roots: Vec<SpanRecord>,
}

/// A per-query span collector. Spans open and close on the coordinator
/// thread (engines are span-free inside morsel workers), so one mutex is
/// uncontended; fan-out worker breakdowns arrive through
/// [`Tracer::on_fanout`] after the workers have joined.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Mutex<TracerInner>,
}

impl Tracer {
    /// A fresh tracer, ready to attach to a `QueryCtx`.
    pub fn new() -> Arc<Tracer> {
        Arc::new(Tracer::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn open(&self, op: &str, detail: &str) {
        let mut inner = self.lock();
        inner.stack.push(SpanRecord {
            op: op.to_string(),
            detail: detail.to_string(),
            ..SpanRecord::default()
        });
    }

    pub(crate) fn close(&self, wall: Duration, io: IoStats, rows: Option<u64>, bytes: u64) {
        let mut inner = self.lock();
        let Some(mut span) = inner.stack.pop() else { return };
        span.wall = wall;
        span.io = io;
        span.rows_out = rows;
        span.bytes = bytes;
        match inner.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => inner.roots.push(span),
        }
    }

    /// Record a one-shot span measured by the caller (used when actuals are
    /// only known after a fused fan-out finishes, so a guard cannot wrap
    /// the work).
    pub fn leaf(&self, op: &str, detail: &str, rows: Option<u64>, wall: Duration, io: IoStats) {
        let mut inner = self.lock();
        let span = SpanRecord {
            op: op.to_string(),
            detail: detail.to_string(),
            wall,
            rows_out: rows,
            io,
            ..SpanRecord::default()
        };
        match inner.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => inner.roots.push(span),
        }
    }

    /// Attach one morsel fan-out's per-worker busy times (`busy[0]` is the
    /// coordinator) and morsel count to the innermost open span.
    pub fn on_fanout(&self, busy: &[Duration], morsels: u64) {
        let mut inner = self.lock();
        if let Some(top) = inner.stack.last_mut() {
            top.workers.extend_from_slice(busy);
            top.morsels += morsels;
        }
    }

    /// Take the completed trace: the single root span when exactly one
    /// top-level span closed (the usual shape — the session wraps the whole
    /// execution), otherwise a synthetic `"query"` root holding whatever
    /// closed. Returns `None` when nothing was recorded.
    pub fn take_root(&self) -> Option<SpanRecord> {
        let mut inner = self.lock();
        // Close any spans a mid-execution abort left open, so the partial
        // trace of a failed query is still a well-formed tree.
        while let Some(span) = inner.stack.pop() {
            match inner.stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => inner.roots.push(span),
            }
        }
        let mut roots = std::mem::take(&mut inner.roots);
        match roots.len() {
            0 => None,
            1 => Some(roots.remove(0)),
            _ => {
                Some(SpanRecord { op: "query".to_string(), children: roots, ..Default::default() })
            }
        }
    }
}

/// RAII span guard returned by [`QueryCtx::span`](crate::QueryCtx::span).
/// Annotate with [`Span::rows`] / [`Span::add_bytes`]; measurement happens
/// on drop. The disabled form is a `None` and costs nothing.
pub struct Span<'a> {
    inner: Option<SpanInner<'a>>,
}

struct SpanInner<'a> {
    tracer: Arc<Tracer>,
    io: &'a IoSession,
    start: Instant,
    io0: IoStats,
    rows: Option<u64>,
    bytes: u64,
}

impl<'a> Span<'a> {
    /// The disabled guard: records nothing.
    pub fn disabled() -> Span<'a> {
        Span { inner: None }
    }

    /// An active guard over `io` (called by `QueryCtx::span`).
    pub(crate) fn active(
        tracer: Arc<Tracer>,
        op: &str,
        detail: &str,
        io: &'a IoSession,
    ) -> Span<'a> {
        tracer.open(op, detail);
        let io0 = io.stats();
        Span {
            inner: Some(SpanInner { tracer, io, start: Instant::now(), io0, rows: None, bytes: 0 }),
        }
    }

    /// Report the operator's output cardinality.
    pub fn rows(&mut self, n: u64) {
        if let Some(inner) = &mut self.inner {
            inner.rows = Some(n);
        }
    }

    /// Report bytes of materialized intermediates.
    pub fn add_bytes(&mut self, n: u64) {
        if let Some(inner) = &mut self.inner {
            inner.bytes += n;
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let io = inner.io.stats().delta(&inner.io0);
            inner.tracer.close(inner.start.elapsed(), io, inner.rows, inner.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_leaves_attach_to_the_open_span() {
        let tracer = Tracer::new();
        let io = IoSession::unmetered();
        {
            let mut root = Span::active(tracer.clone(), "column-plan", "tICL", &io);
            root.rows(7);
            {
                let mut probe = Span::active(tracer.clone(), "probe", "lo_custkey", &io);
                probe.rows(100);
            }
            tracer.leaf("scan", "lo_discount", Some(42), Duration::ZERO, IoStats::default());
        }
        let root = tracer.take_root().expect("one root");
        assert_eq!(root.op, "column-plan");
        assert_eq!(root.rows_out, Some(7));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].op, "probe");
        assert_eq!(root.children[0].rows_out, Some(100));
        assert_eq!(root.children[1].op, "scan");
        assert_eq!(root.children[1].rows_out, Some(42));
        assert!(tracer.take_root().is_none(), "take_root drains");
    }

    #[test]
    fn fanout_breakdown_lands_on_the_innermost_span() {
        let tracer = Tracer::new();
        let io = IoSession::unmetered();
        {
            let _s = Span::active(tracer.clone(), "extract-aggregate", "", &io);
            tracer.on_fanout(&[Duration::from_micros(5), Duration::from_micros(9)], 4);
            tracer.on_fanout(&[Duration::from_micros(1)], 2);
        }
        let root = tracer.take_root().expect("root");
        assert_eq!(root.workers.len(), 3);
        assert_eq!(root.morsels, 6);
    }

    #[test]
    fn abandoned_spans_still_form_a_tree() {
        let tracer = Tracer::new();
        tracer.open("a", "");
        tracer.open("b", "");
        // No closes (as after a mid-span `?` unwound past forget-like
        // misuse); take_root still folds the stack into a tree.
        let root = tracer.take_root().expect("root");
        assert_eq!(root.op, "a");
        assert_eq!(root.children[0].op, "b");
    }

    #[test]
    fn render_and_json_carry_the_measured_fields() {
        let span = SpanRecord {
            op: "probe".into(),
            detail: "lo_custkey".into(),
            wall: Duration::from_micros(1234),
            rows_out: Some(99),
            bytes: 8,
            io: IoStats { pages_read: 3, bytes_read: 4096, seeks: 1, pool_hits: 2 },
            workers: vec![Duration::from_micros(10), Duration::from_micros(20)],
            morsels: 2,
            children: vec![SpanRecord { op: "scan".into(), ..Default::default() }],
        };
        let text = span.render(0);
        assert!(text.contains("probe: lo_custkey [rows=99] [wall=1234us] [io=3p/4096B]"), "{text}");
        assert!(text.contains("\n  scan"), "{text}");
        let json = span.to_json();
        for needle in [
            "\"op\": \"probe\"",
            "\"wall_us\": 1234",
            "\"rows_out\": 99",
            "\"pages_read\": 3",
            "\"workers_us\": [10, 20]",
            "\"morsels\": 2",
            "\"children\": [{\"op\": \"scan\"",
        ] {
            assert!(json.contains(needle), "{json} missing {needle}");
        }
        assert!(span.children[0].to_json().contains("\"rows_out\": null"));
        assert_eq!(span.flatten().len(), 2);
    }
}
