//! Engine configuration: the four optimization knobs of Figure 7.
//!
//! The paper's four-letter codes name each configuration:
//! `T` = tuple-at-a-time processing / `t` = block processing;
//! `I` = invisible join enabled / `i` = disabled (fall back to the classic
//! late-materialized join);
//! `C` = compression enabled / `c` = disabled (all-plain storage);
//! `L` = late materialization enabled / `l` = disabled (tuples constructed
//! at the bottom of the plan, row-style execution above).
//!
//! `tICL` is full C-Store; `Ticl` is "a row-store that happens to read
//! columns off disk".

use std::fmt;
use std::str::FromStr;

/// One engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    /// `t` when true (block processing), `T` when false (tuple-at-a-time).
    pub block_iteration: bool,
    /// `I` when true, `i` when false.
    pub invisible_join: bool,
    /// `C` when true, `c` when false.
    pub compression: bool,
    /// `L` when true, `l` when false.
    pub late_materialization: bool,
}

impl EngineConfig {
    /// Full C-Store: `tICL`.
    pub const FULL: EngineConfig = EngineConfig {
        block_iteration: true,
        invisible_join: true,
        compression: true,
        late_materialization: true,
    };

    /// Everything removed: `Ticl` — the "column-store acting like a
    /// row-store".
    pub const STRIPPED: EngineConfig = EngineConfig {
        block_iteration: false,
        invisible_join: false,
        compression: false,
        late_materialization: false,
    };

    /// The seven configurations of Figure 7, in the paper's order:
    /// tICL, TICL, tiCL, TiCL, ticL, TicL, Ticl.
    pub fn figure7() -> [EngineConfig; 7] {
        [
            EngineConfig::parse("tICL"),
            EngineConfig::parse("TICL"),
            EngineConfig::parse("tiCL"),
            EngineConfig::parse("TiCL"),
            EngineConfig::parse("ticL"),
            EngineConfig::parse("TicL"),
            EngineConfig::parse("Ticl"),
        ]
    }

    /// All sixteen combinations (for exhaustive correctness testing).
    pub fn all() -> Vec<EngineConfig> {
        let mut out = Vec::with_capacity(16);
        for b in [true, false] {
            for i in [true, false] {
                for c in [true, false] {
                    for l in [true, false] {
                        out.push(EngineConfig {
                            block_iteration: b,
                            invisible_join: i,
                            compression: c,
                            late_materialization: l,
                        });
                    }
                }
            }
        }
        out
    }

    /// Parse a four-letter code such as `"tICL"`, panicking on malformed
    /// input — the right behavior for the hardcoded codes in tests and
    /// figure tables. Fallible parsing (command lines, explain output) goes
    /// through the [`FromStr`] impl instead.
    pub fn parse(code: &str) -> EngineConfig {
        code.parse().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The four-letter code for this configuration.
    pub fn code(&self) -> String {
        let mut s = String::with_capacity(4);
        s.push(if self.block_iteration { 't' } else { 'T' });
        s.push(if self.invisible_join { 'I' } else { 'i' });
        s.push(if self.compression { 'C' } else { 'c' });
        s.push(if self.late_materialization { 'L' } else { 'l' });
        s
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::FULL
    }
}

impl fmt::Display for EngineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Error from parsing an ablation-letter code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError(String);

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseConfigError {}

impl FromStr for EngineConfig {
    type Err = ParseConfigError;

    /// Parse the paper's four-letter ablation syntax: position 1 is
    /// `t`/`T` (block vs tuple iteration), then `I`/`i` (invisible join),
    /// `C`/`c` (compression), `L`/`l` (late materialization). Exactly the
    /// strings [`EngineConfig::code`] produces round-trip.
    fn from_str(code: &str) -> Result<EngineConfig, ParseConfigError> {
        let bytes = code.as_bytes();
        if bytes.len() != 4 {
            return Err(ParseConfigError(format!("config code must be 4 letters, got {code:?}")));
        }
        let letter = |i: usize, on: u8, off: u8| match bytes[i] {
            b if b == on => Ok(true),
            b if b == off => Ok(false),
            b => Err(ParseConfigError(format!(
                "bad config letter {:?} at {i} in {code:?} (expected {:?} or {:?})",
                b as char, on as char, off as char
            ))),
        };
        Ok(EngineConfig {
            block_iteration: letter(0, b't', b'T')?,
            invisible_join: letter(1, b'I', b'i')?,
            compression: letter(2, b'C', b'c')?,
            late_materialization: letter(3, b'L', b'l')?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for code in ["tICL", "TICL", "tiCL", "TiCL", "ticL", "TicL", "Ticl", "TIcl"] {
            assert_eq!(EngineConfig::parse(code).code(), code);
        }
    }

    #[test]
    fn display_fromstr_round_trips_all_sixteen() {
        for cfg in EngineConfig::all() {
            let rendered = cfg.to_string();
            let parsed: EngineConfig = rendered.parse().expect("Display output must parse");
            assert_eq!(parsed, cfg, "{rendered}");
            assert_eq!(parsed.to_string(), rendered);
        }
    }

    #[test]
    fn fromstr_reports_errors_instead_of_panicking() {
        assert!("xICL".parse::<EngineConfig>().is_err());
        assert!("tIC".parse::<EngineConfig>().is_err());
        assert!("tICLL".parse::<EngineConfig>().is_err());
        let err = "tXCL".parse::<EngineConfig>().unwrap_err().to_string();
        assert!(err.contains("'X'"), "{err}");
    }

    #[test]
    fn figure7_order() {
        let codes: Vec<String> = EngineConfig::figure7().iter().map(EngineConfig::code).collect();
        assert_eq!(codes, ["tICL", "TICL", "tiCL", "TiCL", "ticL", "TicL", "Ticl"]);
    }

    #[test]
    fn full_and_stripped() {
        assert_eq!(EngineConfig::FULL.code(), "tICL");
        assert_eq!(EngineConfig::STRIPPED.code(), "Ticl");
        assert_eq!(EngineConfig::default(), EngineConfig::FULL);
    }

    #[test]
    fn all_sixteen_unique() {
        let all = EngineConfig::all();
        assert_eq!(all.len(), 16);
        let codes: std::collections::HashSet<String> = all.iter().map(EngineConfig::code).collect();
        assert_eq!(codes.len(), 16);
    }

    #[test]
    #[should_panic(expected = "bad config letter")]
    fn parse_rejects_bad_letters() {
        EngineConfig::parse("xICL");
    }

    #[test]
    #[should_panic(expected = "4 letters")]
    fn parse_rejects_bad_length() {
        EngineConfig::parse("tIC");
    }
}
