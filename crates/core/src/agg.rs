//! Grouped aggregation shared by every column-engine plan shape.
//!
//! Two aggregators live here:
//!
//! * [`Grouper`] — the scalar reference implementation: a
//!   `HashMap<Vec<Value>, i64>` keyed by freshly allocated, cloned value
//!   vectors. One entry allocation + `k` value clones per *row* — exactly
//!   the "construct tuples early, pay per tuple" tax Section 5.4 warns
//!   about. It anchors the differential tests the way `kernels::scalar`
//!   anchors the scan kernels.
//! * [`CodeGrouper`] over a [`GroupLayout`] — the code-level aggregator the
//!   engines actually run: group columns are extracted as dense `u32`
//!   *codes* (dictionary codes, frame-of-reference deltas, or interned
//!   locals), composed into one `u64` group id by radix-multiplying the
//!   per-column domain sizes, and accumulated with zero per-row
//!   allocations — a direct-index `Vec<i64>` when the composed domain is
//!   small (it always is for the 13 SSB queries), a `u64`-keyed hash map
//!   otherwise. `finish` decodes each group id back to a `Value` row
//!   exactly **once per group**, which is the paper's late-materialization
//!   argument carried all the way to the operator tail: strings are touched
//!   `O(groups)` times, not `O(rows)`.
//!
//! [`AggStrategy`] picks between them per query: code-level whenever every
//! group column exposes a code space (all compressed SSB configurations),
//! the `Value`-keyed reference otherwise (plain string columns have no
//! global code assignment, and inventing one per morsel would make codes
//! inconsistent across workers).

use crate::extract::{extract_at, extract_codes_at, CodeSpace};
use crate::projection::CStoreDb;
use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_data::value::Value;
use cvr_storage::column::StoredColumn;
use cvr_storage::io::IoSession;
use std::collections::HashMap;

/// Accumulates `group key → sum` pairs. The scalar reference aggregator.
#[derive(Debug, Default)]
pub struct Grouper {
    map: HashMap<Vec<Value>, i64>,
}

impl Grouper {
    /// Empty grouper.
    pub fn new() -> Grouper {
        Grouper { map: HashMap::new() }
    }

    /// Add `term` to the group `key`.
    #[inline]
    pub fn add(&mut self, key: Vec<Value>, term: i64) {
        *self.map.entry(key).or_insert(0) += term;
    }

    /// Fold another grouper's partial aggregates into this one. Integer sums
    /// commute, and [`Grouper::finish`] sorts rows, so merging per-morsel
    /// groupers in morsel order yields outputs byte-identical to a serial
    /// execution.
    pub fn merge(&mut self, other: Grouper) {
        if self.map.is_empty() {
            self.map = other.map;
            return;
        }
        for (key, term) in other.map {
            *self.map.entry(key).or_insert(0) += term;
        }
    }

    /// Number of groups so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no groups were added.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Finish into a normalized [`QueryOutput`] under `q`'s semantics
    /// (scalar queries over zero rows canonicalize to 0).
    pub fn finish(self, q: &SsbQuery) -> QueryOutput {
        if self.map.is_empty() && q.group_by.is_empty() {
            return QueryOutput::scalar(0);
        }
        QueryOutput::new(self.map.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Code-level aggregation
// ---------------------------------------------------------------------------

/// Largest composed domain the direct-index accumulator will allocate
/// (`8 × LIMIT` bytes of sums per partial). Every paper query's composed
/// domain fits; city × city × year group-bys overflow into the hash kernel.
pub const DIRECT_GROUPS_LIMIT: u64 = 1 << 16;

/// Decodes one group column's codes back to [`Value`]s at finish time.
#[derive(Debug, Clone)]
pub enum CodeDecoder {
    /// `code → Value::Int(reference + code)` (frame-of-reference integers).
    IntOffset(i64),
    /// `code → values[code]` (dictionary strings, interned locals, or
    /// filtered dimension rows).
    Values(Vec<Value>),
}

impl CodeDecoder {
    /// Decode one code.
    fn decode(&self, code: u32) -> Value {
        match self {
            CodeDecoder::IntOffset(reference) => Value::Int(reference + code as i64),
            CodeDecoder::Values(values) => values[code as usize].clone(),
        }
    }
}

/// The shape of a composed group id: per-column domain sizes (the radix
/// multipliers) plus the per-column decoders applied once per group at
/// finish. Built once per query execution and shared read-only by every
/// morsel, so codes and ids are globally consistent.
#[derive(Debug)]
pub struct GroupLayout {
    domains: Vec<u64>,
    decoders: Vec<CodeDecoder>,
    total: u64,
}

impl GroupLayout {
    /// Compose a layout from `(domain, decoder)` pairs, one per group
    /// column. Returns `None` when any domain is zero or the radix product
    /// overflows `u64` — callers fall back to the [`Grouper`] reference.
    pub fn try_new(cols: Vec<(u64, CodeDecoder)>) -> Option<GroupLayout> {
        let mut total = 1u64;
        for (domain, _) in &cols {
            if *domain == 0 {
                return None;
            }
            total = total.checked_mul(*domain)?;
        }
        let (domains, decoders) = cols.into_iter().unzip();
        Some(GroupLayout { domains, decoders, total })
    }

    /// Number of group columns.
    pub fn num_columns(&self) -> usize {
        self.domains.len()
    }

    /// Product of the per-column domains (the group-id universe).
    pub fn total_domain(&self) -> u64 {
        self.total
    }

    /// True when ids fit the direct-index accumulator.
    pub fn is_direct(&self) -> bool {
        self.total <= DIRECT_GROUPS_LIMIT
    }

    /// Decompose `id` and decode each column's code — called once per
    /// *group*, never per row.
    fn decode(&self, mut id: u64) -> Vec<Value> {
        let mut key = vec![Value::Int(0); self.domains.len()];
        for c in (0..self.domains.len()).rev() {
            let code = (id % self.domains[c]) as u32;
            id /= self.domains[c];
            key[c] = self.decoders[c].decode(code);
        }
        key
    }
}

/// The accumulation kernel: composed `u64` group ids → running sums, with
/// zero per-row allocations.
#[derive(Debug)]
pub struct CodeGrouper {
    /// Per-column domains, copied from the layout so row loops can compose
    /// ids without holding the layout.
    radix: Vec<u64>,
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    /// Direct indexing: `sums[id]` plus a seen-bitmap so zero-sum groups
    /// still surface and absent ids never do.
    Direct { sums: Vec<i64>, seen: Vec<u64>, groups: u32 },
    /// `u64`-keyed fallback for large composed domains.
    Hash(HashMap<u64, i64>),
}

impl CodeGrouper {
    /// An empty accumulator shaped for `layout`.
    pub fn for_layout(layout: &GroupLayout) -> CodeGrouper {
        let repr = if layout.is_direct() {
            let n = layout.total as usize;
            Repr::Direct { sums: vec![0; n], seen: vec![0; n.div_ceil(64)], groups: 0 }
        } else {
            Repr::Hash(HashMap::new())
        };
        CodeGrouper { radix: layout.domains.clone(), repr }
    }

    /// Domain of group column `c` (the radix multiplier row loops use).
    #[inline]
    pub fn radix(&self, c: usize) -> u64 {
        self.radix[c]
    }

    /// Add `term` to the group `id`.
    #[inline]
    pub fn add(&mut self, id: u64, term: i64) {
        match &mut self.repr {
            Repr::Direct { sums, seen, groups } => {
                let i = id as usize;
                let bit = 1u64 << (i & 63);
                let word = &mut seen[i >> 6];
                if *word & bit == 0 {
                    *word |= bit;
                    *groups += 1;
                }
                sums[i] += term;
            }
            Repr::Hash(map) => *map.entry(id).or_insert(0) += term,
        }
    }

    /// Number of groups so far.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Direct { groups, .. } => *groups as usize,
            Repr::Hash(map) => map.len(),
        }
    }

    /// True when no groups were added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fold another partial into this one (morsel merge). Both sides must
    /// come from the same [`GroupLayout`].
    pub fn merge(&mut self, other: CodeGrouper) {
        assert_eq!(self.radix, other.radix, "merging partials of different layouts");
        match (&mut self.repr, other.repr) {
            (
                Repr::Direct { sums, seen, groups },
                Repr::Direct { sums: osums, seen: oseen, .. },
            ) => {
                for (w, &ow) in oseen.iter().enumerate() {
                    let mut m = ow;
                    while m != 0 {
                        let i = (w << 6) | m.trailing_zeros() as usize;
                        m &= m - 1;
                        let bit = 1u64 << (i & 63);
                        if seen[i >> 6] & bit == 0 {
                            seen[i >> 6] |= bit;
                            *groups += 1;
                        }
                        sums[i] += osums[i];
                    }
                }
            }
            (Repr::Hash(map), Repr::Hash(omap)) => {
                if map.is_empty() {
                    *map = omap;
                } else {
                    for (id, term) in omap {
                        *map.entry(id).or_insert(0) += term;
                    }
                }
            }
            _ => unreachable!("same layout implies same representation"),
        }
    }

    /// Decode every group id exactly once and normalize — byte-identical to
    /// the [`Grouper`] reference over the same rows.
    pub fn finish(self, layout: &GroupLayout, q: &SsbQuery) -> QueryOutput {
        let rows: Vec<(Vec<Value>, i64)> = match self.repr {
            Repr::Direct { sums, seen, .. } => {
                let mut rows = Vec::new();
                for (w, &word) in seen.iter().enumerate() {
                    let mut m = word;
                    while m != 0 {
                        let i = (w << 6) | m.trailing_zeros() as usize;
                        m &= m - 1;
                        rows.push((layout.decode(i as u64), sums[i]));
                    }
                }
                rows
            }
            Repr::Hash(map) => map.into_iter().map(|(id, sum)| (layout.decode(id), sum)).collect(),
        };
        if rows.is_empty() && q.group_by.is_empty() {
            return QueryOutput::scalar(0);
        }
        QueryOutput::new(rows)
    }
}

// ---------------------------------------------------------------------------
// Plan-shape integration
// ---------------------------------------------------------------------------

/// One extracted group column: `u32` codes in code-level mode, materialized
/// [`Value`]s in the reference mode.
#[derive(Debug)]
pub enum GroupData {
    /// Codes in the column's global code space.
    Codes(Vec<u32>),
    /// Materialized values (reference mode).
    Values(Vec<Value>),
}

impl GroupData {
    fn codes(&self) -> &[u32] {
        match self {
            GroupData::Codes(c) => c,
            GroupData::Values(_) => panic!("expected codes, found values"),
        }
    }

    fn values(&self) -> &[Value] {
        match self {
            GroupData::Values(v) => v,
            GroupData::Codes(_) => panic!("expected values, found codes"),
        }
    }

    /// Keep only the entries whose `keep` flag is set (the late join's
    /// compaction as later predicates discard fact rows).
    pub fn retain_marked(&mut self, keep: &[bool]) {
        let mut j = 0;
        match self {
            GroupData::Codes(c) => c.retain(|_| {
                let k = keep[j];
                j += 1;
                k
            }),
            GroupData::Values(v) => v.retain(|_| {
                let k = keep[j];
                j += 1;
                k
            }),
        }
    }
}

/// Intern one column of values into a local dictionary: per-row codes in
/// first-occurrence order plus the distinct values (one clone per
/// *distinct* value, never per row). Callers compose the domain as
/// `values.len().max(1)` so an empty column still contributes radix 1.
pub fn intern_values<'a>(col: impl IntoIterator<Item = &'a Value>) -> (Vec<u32>, Vec<Value>) {
    let mut index: HashMap<&Value, u32> = HashMap::new();
    let mut values: Vec<Value> = Vec::new();
    let mut codes = Vec::new();
    for v in col {
        let next = values.len() as u32;
        codes.push(*index.entry(v).or_insert_with(|| {
            values.push(v.clone());
            next
        }));
    }
    (codes, values)
}

/// True when the `CVR_AGG=value` ablation forces the Value-keyed reference
/// aggregator everywhere — the knob the `agg` benchmark uses to run the
/// pre-refactor aggregation tail against the code-level one (outputs and
/// I/O accounting must stay byte-identical; only CPU time moves).
pub fn value_keyed_forced() -> bool {
    std::env::var_os("CVR_AGG").is_some_and(|v| v == "value")
}

/// The aggregation strategy for one query execution over one storage
/// variant: code-level whenever every group column exposes a global code
/// space, the [`Grouper`] reference otherwise.
#[derive(Debug)]
pub enum AggStrategy {
    /// Code-level: extraction yields codes, accumulation composes ids.
    Code {
        /// Id composition + finish-time decoders.
        layout: GroupLayout,
        /// Per group column (aligned with `q.group_by`): how positions map
        /// to codes.
        spaces: Vec<CodeSpace>,
    },
    /// Value-keyed reference fallback.
    Value,
}

impl AggStrategy {
    /// Build the strategy for `q` over `db`'s dimension columns. Pure
    /// column-header metadata — charges no modeled I/O.
    pub fn for_query(db: &CStoreDb, q: &SsbQuery) -> AggStrategy {
        if value_keyed_forced() {
            return AggStrategy::Value;
        }
        let mut cols = Vec::with_capacity(q.group_by.len());
        let mut spaces = Vec::with_capacity(q.group_by.len());
        for g in &q.group_by {
            let col = db.dim(g.dim).store.column(g.column);
            match CodeSpace::of(col) {
                Some(space) => {
                    cols.push((space.domain(), space.decoder(col)));
                    spaces.push(space);
                }
                None => return AggStrategy::Value,
            }
        }
        match GroupLayout::try_new(cols) {
            Some(layout) => AggStrategy::Code { layout, spaces },
            None => AggStrategy::Value,
        }
    }

    /// True when this query aggregates on codes.
    pub fn is_code_level(&self) -> bool {
        matches!(self, AggStrategy::Code { .. })
    }

    /// Extract group column `gi` at *arbitrary-order* positions (the
    /// dimension-lookup pattern). Charges the same positional gather as
    /// [`extract_at`] in either mode.
    pub fn extract_group_at(
        &self,
        gi: usize,
        col: &StoredColumn,
        positions: &[u32],
        io: &IoSession,
    ) -> GroupData {
        match self {
            AggStrategy::Code { spaces, .. } => {
                GroupData::Codes(extract_codes_at(&spaces[gi], col, positions, io))
            }
            AggStrategy::Value => GroupData::Values(extract_at(col, positions, io)),
        }
    }

    /// An empty partial shaped for this strategy.
    pub fn new_partial(&self) -> AggPartial {
        match self {
            AggStrategy::Code { layout, .. } => AggPartial::Code(CodeGrouper::for_layout(layout)),
            AggStrategy::Value => AggPartial::Value(Grouper::new()),
        }
    }

    /// Finish a (merged) partial into the normalized output.
    pub fn finish(&self, partial: AggPartial, q: &SsbQuery) -> QueryOutput {
        match (self, partial) {
            (AggStrategy::Code { layout, .. }, AggPartial::Code(g)) => g.finish(layout, q),
            (AggStrategy::Value, AggPartial::Value(g)) => g.finish(q),
            _ => panic!("partial does not match strategy"),
        }
    }
}

/// A partial aggregate under one [`AggStrategy`] — what each morsel
/// produces and the coordinator merges in morsel order.
#[derive(Debug)]
pub enum AggPartial {
    /// Code-level partial.
    Code(CodeGrouper),
    /// Reference partial.
    Value(Grouper),
}

impl AggPartial {
    /// Accumulate `count` aligned rows: `group` carries one entry per group
    /// column, `measures` one array per aggregate input. The code arm is
    /// the engine's hot aggregation loop — no allocations, no clones.
    pub fn add_rows(
        &mut self,
        q: &SsbQuery,
        group: &[GroupData],
        measures: &[Vec<i64>],
        count: usize,
    ) {
        let mut inputs = vec![0i64; measures.len()];
        match self {
            AggPartial::Code(g) => {
                for i in 0..count {
                    for (j, m) in measures.iter().enumerate() {
                        inputs[j] = m[i];
                    }
                    let mut id = 0u64;
                    for (c, gd) in group.iter().enumerate() {
                        id = id * g.radix(c) + gd.codes()[i] as u64;
                    }
                    g.add(id, q.aggregate.term(&inputs));
                }
            }
            AggPartial::Value(g) => {
                for i in 0..count {
                    for (j, m) in measures.iter().enumerate() {
                        inputs[j] = m[i];
                    }
                    let key: Vec<Value> = group.iter().map(|gd| gd.values()[i].clone()).collect();
                    g.add(key, q.aggregate.term(&inputs));
                }
            }
        }
    }

    /// Number of groups so far.
    pub fn len(&self) -> usize {
        match self {
            AggPartial::Code(g) => g.len(),
            AggPartial::Value(g) => g.len(),
        }
    }

    /// True when no groups were added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fold another partial into this one (morsel merge).
    pub fn merge(&mut self, other: AggPartial) {
        match (self, other) {
            (AggPartial::Code(a), AggPartial::Code(b)) => a.merge(b),
            (AggPartial::Value(a), AggPartial::Value(b)) => a.merge(b),
            _ => panic!("merging partials of different strategies"),
        }
    }
}

/// Aggregate column-major inputs: `group_cols` are aligned value arrays (one
/// per group-by column), `terms` the per-row aggregate terms.
///
/// Routed through the code-level aggregator: each column is interned into a
/// local dictionary (one clone per *distinct* value, not per row), rows
/// compose ids, and groups decode once at finish. The former per-row
/// `clone()` path survives only as the overflow fallback.
pub fn aggregate_columns(q: &SsbQuery, group_cols: &[Vec<Value>], terms: &[i64]) -> QueryOutput {
    if value_keyed_forced() {
        return aggregate_columns_value_keyed(q, group_cols, terms);
    }
    let mut cols = Vec::with_capacity(group_cols.len());
    let mut code_arrays: Vec<Vec<u32>> = Vec::with_capacity(group_cols.len());
    for col in group_cols {
        let (codes, values) = intern_values(col);
        cols.push((values.len().max(1) as u64, CodeDecoder::Values(values)));
        code_arrays.push(codes);
    }
    match GroupLayout::try_new(cols) {
        Some(layout) => {
            let mut g = CodeGrouper::for_layout(&layout);
            for (i, &term) in terms.iter().enumerate() {
                let mut id = 0u64;
                for (c, codes) in code_arrays.iter().enumerate() {
                    id = id * g.radix(c) + codes[i] as u64;
                }
                g.add(id, term);
            }
            g.finish(&layout, q)
        }
        // Interned domains overflowed u64 composition: the reference
        // per-row clone path still answers correctly.
        None => aggregate_columns_value_keyed(q, group_cols, terms),
    }
}

/// The pre-refactor per-row clone path, kept as the reference tail (and the
/// `CVR_AGG=value` ablation target).
fn aggregate_columns_value_keyed(
    q: &SsbQuery,
    group_cols: &[Vec<Value>],
    terms: &[i64],
) -> QueryOutput {
    let mut g = Grouper::new();
    for (i, &term) in terms.iter().enumerate() {
        let key: Vec<Value> = group_cols.iter().map(|c| c[i].clone()).collect();
        g.add(key, term);
    }
    g.finish(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::queries::query;

    #[test]
    fn grouper_sums() {
        let mut g = Grouper::new();
        g.add(vec![Value::str("a")], 1);
        g.add(vec![Value::str("a")], 2);
        g.add(vec![Value::str("b")], 5);
        assert_eq!(g.len(), 2);
        let out = g.finish(&query(2, 1));
        assert_eq!(out.rows, vec![(vec![Value::str("a")], 3), (vec![Value::str("b")], 5)]);
    }

    #[test]
    fn merge_combines_partial_aggregates() {
        let mut a = Grouper::new();
        a.add(vec![Value::str("x")], 1);
        a.add(vec![Value::str("y")], 10);
        let mut b = Grouper::new();
        b.add(vec![Value::str("x")], 2);
        b.add(vec![Value::str("z")], 100);
        a.merge(b);
        let out = a.finish(&query(2, 1));
        assert_eq!(
            out.rows,
            vec![
                (vec![Value::str("x")], 3),
                (vec![Value::str("y")], 10),
                (vec![Value::str("z")], 100)
            ]
        );
        // Merging into an empty grouper adopts the other side wholesale.
        let mut empty = Grouper::new();
        let mut c = Grouper::new();
        c.add(vec![Value::Int(1)], 7);
        empty.merge(c);
        assert_eq!(empty.len(), 1);
    }

    #[test]
    fn scalar_zero_for_empty() {
        let out = Grouper::new().finish(&query(1, 1));
        assert_eq!(out, QueryOutput::scalar(0));
    }

    #[test]
    fn grouped_empty_stays_empty() {
        let out = Grouper::new().finish(&query(2, 1));
        assert!(out.rows.is_empty());
    }

    #[test]
    fn aggregate_columns_aligns() {
        let groups = vec![
            vec![Value::Int(1), Value::Int(1), Value::Int(2)],
            vec![Value::str("x"), Value::str("y"), Value::str("x")],
        ];
        let terms = vec![10, 20, 30];
        let out = aggregate_columns(&query(2, 1), &groups, &terms);
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.checksum(), 60);
    }

    #[test]
    fn aggregate_columns_matches_reference_grouper() {
        // The interned code path must be byte-identical to the per-row
        // clone path it replaced.
        let groups = vec![
            vec![Value::Int(5), Value::Int(5), Value::Int(5), Value::Int(9)],
            vec![Value::str("a"), Value::str("b"), Value::str("a"), Value::str("a")],
        ];
        let terms = vec![1, 2, 4, 8];
        let mut reference = Grouper::new();
        for (i, &t) in terms.iter().enumerate() {
            reference.add(groups.iter().map(|c| c[i].clone()).collect(), t);
        }
        let q = query(2, 1);
        assert_eq!(aggregate_columns(&q, &groups, &terms), reference.finish(&q));
    }

    fn int_layout(domains: &[u64]) -> GroupLayout {
        GroupLayout::try_new(domains.iter().map(|&d| (d, CodeDecoder::IntOffset(0))).collect())
            .expect("layout composes")
    }

    #[test]
    fn code_grouper_direct_and_hash_agree() {
        let direct = int_layout(&[10, 10]);
        assert!(direct.is_direct());
        let hash = GroupLayout::try_new(vec![
            (DIRECT_GROUPS_LIMIT + 1, CodeDecoder::IntOffset(0)),
            (10, CodeDecoder::IntOffset(0)),
        ])
        .unwrap();
        assert!(!hash.is_direct());
        let q = query(2, 1);
        let mut a = CodeGrouper::for_layout(&direct);
        let mut b = CodeGrouper::for_layout(&hash);
        for (c0, c1, term) in [(3u64, 4u64, 5i64), (3, 4, -5), (0, 0, 7), (9, 9, 1)] {
            a.add(c0 * 10 + c1, term);
            b.add(c0 * 10 + c1, term);
        }
        // Note the (3, 4) group sums to zero and must still surface.
        assert_eq!(a.len(), 3);
        let out_a = a.finish(&direct, &q);
        assert_eq!(out_a.rows.len(), 3);
        assert!(out_a.rows.contains(&(vec![Value::Int(3), Value::Int(4)], 0)));
        // The hash layout has a different radix, but the same (c0, c1)
        // codes decode to the same key values.
        let out_b = b.finish(&hash, &q);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn code_grouper_merge_matches_single_pass() {
        let layout = int_layout(&[64]);
        let q = query(2, 1);
        let ids: Vec<u64> = (0..200).map(|i| (i * 7) % 64).collect();
        let mut whole = CodeGrouper::for_layout(&layout);
        for &id in &ids {
            whole.add(id, id as i64 + 1);
        }
        let mut merged = CodeGrouper::for_layout(&layout);
        for chunk in ids.chunks(37) {
            let mut part = CodeGrouper::for_layout(&layout);
            for &id in chunk {
                part.add(id, id as i64 + 1);
            }
            merged.merge(part);
        }
        assert_eq!(merged.len(), whole.len());
        assert_eq!(merged.finish(&layout, &q), whole.finish(&layout, &q));
    }

    #[test]
    fn layout_rejects_zero_and_overflowing_domains() {
        assert!(GroupLayout::try_new(vec![(0, CodeDecoder::IntOffset(0))]).is_none());
        assert!(GroupLayout::try_new(vec![
            (u64::MAX / 2, CodeDecoder::IntOffset(0)),
            (3, CodeDecoder::IntOffset(0)),
        ])
        .is_none());
        let l = int_layout(&[7, 1000]);
        assert_eq!(l.total_domain(), 7000);
        assert_eq!(l.num_columns(), 2);
    }

    #[test]
    fn scalar_semantics_match_reference() {
        let q = query(1, 1); // no group-by
        let layout = GroupLayout::try_new(vec![]).unwrap();
        assert_eq!(layout.total_domain(), 1);
        // Zero rows canonicalize to scalar 0 …
        let empty = CodeGrouper::for_layout(&layout);
        assert_eq!(empty.finish(&layout, &q), QueryOutput::scalar(0));
        // … and rows sum into the single empty-keyed group.
        let mut g = CodeGrouper::for_layout(&layout);
        g.add(0, 41);
        g.add(0, 1);
        assert_eq!(g.finish(&layout, &q), QueryOutput::scalar(42));
    }

    #[test]
    fn retain_marked_compacts_both_variants() {
        let keep = [true, false, true, false];
        let mut codes = GroupData::Codes(vec![1, 2, 3, 4]);
        codes.retain_marked(&keep);
        assert_eq!(codes.codes(), &[1, 3]);
        let mut values =
            GroupData::Values(vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)]);
        values.retain_marked(&keep);
        assert_eq!(values.values(), &[Value::Int(1), Value::Int(3)]);
    }
}
