//! Grouped aggregation shared by every column-engine plan shape.

use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_data::value::Value;
use std::collections::HashMap;

/// Accumulates `group key → sum` pairs.
#[derive(Debug, Default)]
pub struct Grouper {
    map: HashMap<Vec<Value>, i64>,
}

impl Grouper {
    /// Empty grouper.
    pub fn new() -> Grouper {
        Grouper { map: HashMap::new() }
    }

    /// Add `term` to the group `key`.
    #[inline]
    pub fn add(&mut self, key: Vec<Value>, term: i64) {
        *self.map.entry(key).or_insert(0) += term;
    }

    /// Fold another grouper's partial aggregates into this one. Integer sums
    /// commute, and [`Grouper::finish`] sorts rows, so merging per-morsel
    /// groupers in morsel order yields outputs byte-identical to a serial
    /// execution.
    pub fn merge(&mut self, other: Grouper) {
        if self.map.is_empty() {
            self.map = other.map;
            return;
        }
        for (key, term) in other.map {
            *self.map.entry(key).or_insert(0) += term;
        }
    }

    /// Number of groups so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no groups were added.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Finish into a normalized [`QueryOutput`] under `q`'s semantics
    /// (scalar queries over zero rows canonicalize to 0).
    pub fn finish(self, q: &SsbQuery) -> QueryOutput {
        if self.map.is_empty() && q.group_by.is_empty() {
            return QueryOutput::scalar(0);
        }
        QueryOutput::new(self.map.into_iter().collect())
    }
}

/// Aggregate column-major inputs: `group_cols` are aligned value arrays (one
/// per group-by column), `terms` the per-row aggregate terms.
pub fn aggregate_columns(q: &SsbQuery, group_cols: &[Vec<Value>], terms: &[i64]) -> QueryOutput {
    let mut g = Grouper::new();
    for (i, &term) in terms.iter().enumerate() {
        let key: Vec<Value> = group_cols.iter().map(|c| c[i].clone()).collect();
        g.add(key, term);
    }
    g.finish(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::queries::query;

    #[test]
    fn grouper_sums() {
        let mut g = Grouper::new();
        g.add(vec![Value::str("a")], 1);
        g.add(vec![Value::str("a")], 2);
        g.add(vec![Value::str("b")], 5);
        assert_eq!(g.len(), 2);
        let out = g.finish(&query(2, 1));
        assert_eq!(out.rows, vec![(vec![Value::str("a")], 3), (vec![Value::str("b")], 5)]);
    }

    #[test]
    fn merge_combines_partial_aggregates() {
        let mut a = Grouper::new();
        a.add(vec![Value::str("x")], 1);
        a.add(vec![Value::str("y")], 10);
        let mut b = Grouper::new();
        b.add(vec![Value::str("x")], 2);
        b.add(vec![Value::str("z")], 100);
        a.merge(b);
        let out = a.finish(&query(2, 1));
        assert_eq!(
            out.rows,
            vec![
                (vec![Value::str("x")], 3),
                (vec![Value::str("y")], 10),
                (vec![Value::str("z")], 100)
            ]
        );
        // Merging into an empty grouper adopts the other side wholesale.
        let mut empty = Grouper::new();
        let mut c = Grouper::new();
        c.add(vec![Value::Int(1)], 7);
        empty.merge(c);
        assert_eq!(empty.len(), 1);
    }

    #[test]
    fn scalar_zero_for_empty() {
        let out = Grouper::new().finish(&query(1, 1));
        assert_eq!(out, QueryOutput::scalar(0));
    }

    #[test]
    fn grouped_empty_stays_empty() {
        let out = Grouper::new().finish(&query(2, 1));
        assert!(out.rows.is_empty());
    }

    #[test]
    fn aggregate_columns_aligns() {
        let groups = vec![
            vec![Value::Int(1), Value::Int(1), Value::Int(2)],
            vec![Value::str("x"), Value::str("y"), Value::str("x")],
        ];
        let terms = vec![10, 20, 30];
        let out = aggregate_columns(&query(2, 1), &groups, &terms);
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.checksum(), 60);
    }
}
