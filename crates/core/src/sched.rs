//! A process-wide query scheduler: admission control plus fair worker
//! sharing for concurrent morsel-parallel queries.
//!
//! Before this module, every query's [`crate::morsel::run_morsels`] fan-out
//! spawned up to `par.threads` workers of its own; N concurrent queries
//! oversubscribed the machine N-fold. The scheduler fixes both halves:
//!
//! * **Admission** — [`Scheduler::admit`] bounds how many queries *execute*
//!   at once (`CVR_SCHED_QUERIES`, default `max(4, workers)`). Excess
//!   queries wait in FIFO ticket order; an admitted query holds its
//!   [`QueryPermit`] until it finishes (RAII).
//! * **Worker leases** — each `run_morsels` fan-out asks for its desired
//!   worker count and is granted a *fair share* of the machine-wide budget
//!   (`CVR_SCHED_WORKERS`, default available parallelism):
//!   `min(requested, max(1, min(budget / active_queries, available)))`.
//!   Leases never block and always grant at least one worker, so a fan-out
//!   can always make progress; the degree of parallelism simply shrinks
//!   when neighbors are running.
//! * **Load shedding** — [`Scheduler::try_admit`] (the deadline-aware form
//!   used by the server) rejects instead of queueing when the queue is at
//!   `CVR_SCHED_QUEUE_MAX` or when the EWMA execution-time estimate says
//!   the queue wait alone would blow the query's deadline; queued waiters
//!   poll their [`QueryCtx`] and abandon their ticket on cancellation
//!   without stalling the FIFO.
//!
//! Correctness is free: the morsel layer's determinism contract guarantees
//! outputs and [`cvr_storage::io::IoStats`] are byte-identical at *every*
//! worker count, so the scheduler can throttle arbitrarily without changing
//! a single result byte. Components that never install a scheduler (the
//! figure binaries, unit tests) see [`lease`] grant every request in full —
//! exactly the pre-scheduler behavior.

use crate::ctx::{QueryCtx, QueryError};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Admission queue bound when none is configured: generous enough that
/// batch harnesses never shed, small enough to bound memory under abuse.
pub const DEFAULT_QUEUE_MAX: usize = 1024;

/// How often a deadline-carrying waiter re-checks its [`QueryCtx`] while
/// queued (cancellation does not signal the condvar).
const ADMIT_POLL: Duration = Duration::from_millis(10);

/// Mutable scheduler state, guarded by one mutex.
#[derive(Debug, Default)]
struct State {
    /// Queries currently holding a [`QueryPermit`].
    active_queries: usize,
    /// Workers currently granted to live [`WorkerLease`]s.
    leased_workers: usize,
    /// Next admission ticket to hand out.
    next_ticket: u64,
    /// Ticket currently allowed to try admission (FIFO fairness).
    serving: u64,
    /// Waiters currently queued for admission.
    waiting: usize,
    /// Tickets whose waiters gave up (cancelled / deadline); `serving`
    /// skips over them so an abandoned ticket can never stall the FIFO.
    abandoned: BTreeSet<u64>,
}

/// Cumulative counters plus point-in-time gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Queries admitted so far.
    pub admitted: u64,
    /// Admissions that had to wait for a permit.
    pub queued: u64,
    /// Admissions rejected by load shedding (queue full or hopeless
    /// deadline).
    pub shed: u64,
    /// Waiters that abandoned their ticket (cancelled or past deadline
    /// while queued).
    pub abandoned: u64,
    /// Worker leases granted.
    pub leases: u64,
    /// Leases granted fewer workers than they requested.
    pub throttled: u64,
    /// Queries executing right now (gauge).
    pub active: u64,
    /// Waiters queued right now (gauge).
    pub queue_depth: u64,
}

/// Shared query scheduler; see the module docs.
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<State>,
    admitted_cv: Condvar,
    /// Machine-wide worker budget shared by all fan-outs.
    max_workers: usize,
    /// Maximum concurrently executing queries.
    max_queries: usize,
    /// Maximum admission-queue depth before [`Scheduler::try_admit`] sheds.
    max_queue: usize,
    admitted: AtomicU64,
    queued: AtomicU64,
    shed: AtomicU64,
    abandoned: AtomicU64,
    leases: AtomicU64,
    throttled: AtomicU64,
    /// EWMA of permit hold time in nanoseconds — the execution-time
    /// estimate behind deadline-aware admission.
    exec_ewma_ns: AtomicU64,
}

impl Scheduler {
    /// A scheduler with explicit limits (both clamped to ≥ 1) and the
    /// default queue bound.
    pub fn new(max_workers: usize, max_queries: usize) -> Scheduler {
        Scheduler::with_queue_limit(max_workers, max_queries, DEFAULT_QUEUE_MAX)
    }

    /// A scheduler with an explicit admission-queue bound (≥ 1) on top of
    /// the [`Scheduler::new`] limits.
    pub fn with_queue_limit(max_workers: usize, max_queries: usize, max_queue: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(State::default()),
            admitted_cv: Condvar::new(),
            max_workers: max_workers.max(1),
            max_queries: max_queries.max(1),
            max_queue: max_queue.max(1),
            admitted: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            leases: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            exec_ewma_ns: AtomicU64::new(0),
        }
    }

    /// The process-default scheduler: worker budget from
    /// `CVR_SCHED_WORKERS` (default: available parallelism), query limit
    /// from `CVR_SCHED_QUERIES` (default: `max(4, workers)`). Built once
    /// and shared by every [`crate::engine::ColumnEngine`] consumer that
    /// asks for it (the server's `Session` does).
    pub fn process_default() -> Arc<Scheduler> {
        static DEFAULT: OnceLock<Arc<Scheduler>> = OnceLock::new();
        DEFAULT
            .get_or_init(|| {
                let env = |k: &str| {
                    std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n >= 1)
                };
                let workers = env("CVR_SCHED_WORKERS").unwrap_or_else(|| {
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                });
                let queries = env("CVR_SCHED_QUERIES").unwrap_or_else(|| workers.max(4));
                let queue = env("CVR_SCHED_QUEUE_MAX").unwrap_or(DEFAULT_QUEUE_MAX);
                Arc::new(Scheduler::with_queue_limit(workers, queries, queue))
            })
            .clone()
    }

    /// Block until this query may execute; the returned permit admits it
    /// until dropped. Waiters are served in arrival (ticket) order. This
    /// legacy form never sheds and never gives up.
    pub fn admit(self: &Arc<Scheduler>) -> QueryPermit {
        self.admit_inner(&QueryCtx::unbounded(), false).expect("non-shedding admission cannot fail")
    }

    /// Deadline- and overload-aware admission. Sheds immediately
    /// ([`QueryError::Shed`], retryable) when the queue is at
    /// `CVR_SCHED_QUEUE_MAX` or when the EWMA execution-time estimate says
    /// the queue wait alone would blow `ctx`'s deadline; while queued, the
    /// waiter polls `ctx` and abandons its ticket (without stalling the
    /// FIFO) on cancellation or deadline expiry.
    pub fn try_admit(self: &Arc<Scheduler>, ctx: &QueryCtx) -> Result<QueryPermit, QueryError> {
        self.admit_inner(ctx, true)
    }

    fn admit_inner(
        self: &Arc<Scheduler>,
        ctx: &QueryCtx,
        sheddable: bool,
    ) -> Result<QueryPermit, QueryError> {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if sheddable {
            ctx.check()?;
            if state.waiting >= self.max_queue {
                self.shed.fetch_add(1, Ordering::Relaxed);
                metrics::shed().inc();
                return Err(QueryError::Shed {
                    reason: format!(
                        "admission queue full ({} waiting, max {})",
                        state.waiting, self.max_queue
                    ),
                });
            }
            // Would this query wait at all? Then compare the predicted wait
            // (queue rounds × EWMA execution time) against its deadline and
            // reject hopeless work up front instead of letting it expire in
            // the queue.
            if state.waiting > 0 || state.active_queries >= self.max_queries {
                if let Some(remaining) = ctx.remaining() {
                    let ewma = self.exec_ewma_ns.load(Ordering::Relaxed);
                    let rounds = state.waiting as u64 / self.max_queries as u64 + 1;
                    let predicted = Duration::from_nanos(ewma.saturating_mul(rounds));
                    if ewma > 0 && predicted > remaining {
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        metrics::shed().inc();
                        return Err(QueryError::Shed {
                            reason: format!(
                                "predicted queue wait {predicted:?} exceeds deadline budget \
                                 {remaining:?}"
                            ),
                        });
                    }
                }
            }
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        let enqueued = Instant::now();
        let mut waited = false;
        while state.serving != ticket || state.active_queries >= self.max_queries {
            if !waited {
                waited = true;
                state.waiting += 1;
            }
            if sheddable {
                if let Err(e) = ctx.check() {
                    // Abandon the ticket: if it is being served, pass the
                    // baton; otherwise leave a tombstone for `serving` to
                    // skip. Either way the FIFO keeps moving.
                    state.waiting -= 1;
                    if state.serving == ticket {
                        state.serving += 1;
                        Self::skip_abandoned(&mut state);
                    } else {
                        state.abandoned.insert(ticket);
                    }
                    drop(state);
                    self.admitted_cv.notify_all();
                    self.abandoned.fetch_add(1, Ordering::Relaxed);
                    metrics::abandoned().inc();
                    return Err(e);
                }
            }
            state = if sheddable {
                let timeout = ctx.remaining().map_or(ADMIT_POLL, |r| r.min(ADMIT_POLL));
                self.admitted_cv
                    .wait_timeout(state, timeout)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0
            } else {
                self.admitted_cv.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner)
            };
        }
        if waited {
            state.waiting -= 1;
        }
        state.serving += 1;
        Self::skip_abandoned(&mut state);
        state.active_queries += 1;
        drop(state);
        // Wake the next ticket (it may be admissible immediately).
        self.admitted_cv.notify_all();
        self.admitted.fetch_add(1, Ordering::Relaxed);
        metrics::admitted().inc();
        if waited {
            self.queued.fetch_add(1, Ordering::Relaxed);
            metrics::queued().inc();
        }
        // Queue wait of every admission (0 for immediate grants), so the
        // histogram's count matches admissions and p50 stays honest.
        metrics::queue_wait().observe(enqueued.elapsed().as_micros() as u64);
        Ok(QueryPermit { sched: self.clone(), started: Instant::now() })
    }

    /// Advance `serving` past tickets whose waiters gave up.
    fn skip_abandoned(state: &mut State) {
        while state.abandoned.remove(&state.serving) {
            state.serving += 1;
        }
    }

    /// Grant a worker lease for one fan-out: never blocks, always grants at
    /// least 1, and at most `requested`.
    fn grant(self: &Arc<Scheduler>, requested: usize) -> WorkerLease {
        let requested = requested.max(1);
        let granted = {
            let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let fair = self.max_workers / state.active_queries.max(1);
            let available = self.max_workers.saturating_sub(state.leased_workers);
            let granted = requested.min(fair.min(available).max(1));
            state.leased_workers += granted;
            granted
        };
        self.leases.fetch_add(1, Ordering::Relaxed);
        metrics::leases().inc();
        if granted < requested {
            self.throttled.fetch_add(1, Ordering::Relaxed);
            metrics::throttled().inc();
        }
        WorkerLease { sched: Some(self.clone()), granted }
    }

    /// Counter snapshot plus current gauges (takes the state lock briefly).
    pub fn stats(&self) -> SchedStats {
        let (active, queue_depth) = {
            let state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            (state.active_queries as u64, state.waiting as u64)
        };
        SchedStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            leases: self.leases.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
            active,
            queue_depth,
        }
    }
}

/// RAII admission permit; dropping it releases the slot.
#[derive(Debug)]
pub struct QueryPermit {
    sched: Arc<Scheduler>,
    /// When the permit was granted; feeds the execution-time EWMA on drop.
    started: Instant,
}

impl Drop for QueryPermit {
    fn drop(&mut self) {
        // Fold this query's hold time into the EWMA (α = 1/4) used by
        // deadline-aware admission. Racy read-modify-write is fine: the
        // estimate only has to be roughly right.
        let exec_ns = self.started.elapsed().as_nanos() as u64;
        let prev = self.sched.exec_ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 { exec_ns } else { prev - prev / 4 + exec_ns / 4 };
        self.sched.exec_ewma_ns.store(next, Ordering::Relaxed);
        let mut state = self.sched.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.active_queries = state.active_queries.saturating_sub(1);
        drop(state);
        self.sched.admitted_cv.notify_all();
    }
}

/// RAII worker lease; dropping it returns the workers to the budget.
#[derive(Debug)]
pub struct WorkerLease {
    sched: Option<Arc<Scheduler>>,
    granted: usize,
}

impl WorkerLease {
    /// Workers this fan-out may use (≥ 1).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for WorkerLease {
    fn drop(&mut self) {
        if let Some(sched) = &self.sched {
            let mut state = sched.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            state.leased_workers = state.leased_workers.saturating_sub(self.granted);
        }
    }
}

/// Process-registry mirrors of the scheduler counters. Handles are cached
/// after the first touch; every `Scheduler` instance feeds the same series
/// (the registry is process-wide, like the metrics it backs).
mod metrics {
    use std::sync::{Arc, OnceLock};

    macro_rules! cached {
        ($fn_name:ident, $kind:ident, $ty:ty, $name:literal, $help:literal) => {
            pub(super) fn $fn_name() -> &'static Arc<$ty> {
                static H: OnceLock<Arc<$ty>> = OnceLock::new();
                H.get_or_init(|| cvr_obs::$kind($name, $help))
            }
        };
    }

    cached!(admitted, counter, cvr_obs::Counter, "cvr_sched_admitted_total", "Queries admitted");
    cached!(queued, counter, cvr_obs::Counter, "cvr_sched_queued_total", "Admissions that waited");
    cached!(
        shed,
        counter,
        cvr_obs::Counter,
        "cvr_sched_shed_total",
        "Admissions rejected by load shedding"
    );
    cached!(
        abandoned,
        counter,
        cvr_obs::Counter,
        "cvr_sched_abandoned_total",
        "Waiters that abandoned their admission ticket"
    );
    cached!(leases, counter, cvr_obs::Counter, "cvr_sched_leases_total", "Worker leases granted");
    cached!(
        throttled,
        counter,
        cvr_obs::Counter,
        "cvr_sched_throttled_total",
        "Leases granted fewer workers than requested"
    );
    cached!(
        queue_wait,
        latency,
        cvr_obs::Histogram,
        "cvr_sched_queue_wait_us",
        "Admission queue wait per admitted query"
    );
}

/// The installed process-wide scheduler consulted by
/// [`crate::morsel::run_morsels`]; `None` (the default) means every lease
/// is granted in full.
static INSTALLED: RwLock<Option<Arc<Scheduler>>> = RwLock::new(None);

/// Install `sched` as the process-wide scheduler. Idempotent for the same
/// instance; a later install replaces an earlier one (last wins).
pub fn install(sched: Arc<Scheduler>) {
    let mut slot = INSTALLED.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = Some(sched);
}

/// Lease up to `requested` workers from the installed scheduler; grants
/// `requested` in full when none is installed.
pub fn lease(requested: usize) -> WorkerLease {
    let slot = INSTALLED.read().unwrap_or_else(std::sync::PoisonError::into_inner);
    match slot.as_ref() {
        Some(sched) => sched.grant(requested),
        None => WorkerLease { sched: None, granted: requested.max(1) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn uninstalled_leases_grant_in_full() {
        // This test must not install anything (global state is shared
        // across the test binary): the default path grants everything.
        let l = match INSTALLED.read().unwrap().as_ref() {
            None => lease(7),
            // Another test installed a scheduler first; exercise the
            // fallback constructor directly instead.
            Some(_) => WorkerLease { sched: None, granted: 7 },
        };
        assert_eq!(l.granted(), 7);
    }

    #[test]
    fn admission_bounds_concurrent_queries() {
        let sched = Arc::new(Scheduler::new(8, 2));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let (sched, peak, live) = (sched.clone(), peak.clone(), live.clone());
                std::thread::spawn(move || {
                    let _permit = sched.admit();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "admission must cap concurrency at 2");
        let stats = sched.stats();
        assert_eq!(stats.admitted, 6);
        assert!(stats.queued >= 4, "at least four admissions must have waited");
    }

    #[test]
    fn leases_split_the_budget_fairly() {
        let sched = Arc::new(Scheduler::new(8, 8));
        let _p1 = sched.admit();
        let _p2 = sched.admit();
        // Two active queries over an 8-worker budget: fair share is 4.
        let l1 = sched.grant(8);
        assert_eq!(l1.granted(), 4);
        let l2 = sched.grant(8);
        assert_eq!(l2.granted(), 4);
        // Budget exhausted, but a lease still gets its minimum worker.
        let l3 = sched.grant(8);
        assert_eq!(l3.granted(), 1);
        drop((l1, l2, l3));
        // All returned: a lone query gets whatever it asks for (≤ budget).
        let _p3 = sched.admit();
        // fair = 8 / 3 = 2 with three active queries.
        assert_eq!(sched.grant(8).granted(), 2);
        assert!(sched.stats().throttled >= 3);
    }

    /// Spin until `cond` holds (bounded; panics on timeout).
    fn wait_for(mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(Instant::now() < deadline, "condition never held");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn full_queues_shed_instead_of_waiting() {
        let sched = Arc::new(Scheduler::with_queue_limit(4, 1, 1));
        let hold = sched.admit();
        let queued = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.try_admit(&QueryCtx::unbounded()))
        };
        wait_for(|| sched.stats().queue_depth == 1);
        // The queue is at its bound: the next sheddable admission is
        // rejected immediately with a retryable error.
        let err = sched.try_admit(&QueryCtx::unbounded()).unwrap_err();
        assert!(matches!(err, QueryError::Shed { .. }), "{err}");
        assert!(err.retryable());
        drop(hold);
        queued.join().unwrap().expect("the queued waiter must still be admitted");
        assert_eq!(sched.stats().shed, 1);
    }

    #[test]
    fn cancelled_waiters_abandon_their_ticket_without_stalling_the_fifo() {
        let sched = Arc::new(Scheduler::with_queue_limit(4, 1, 16));
        let hold = sched.admit();
        let doomed_ctx = QueryCtx::unbounded();
        let doomed = {
            let (sched, ctx) = (sched.clone(), doomed_ctx.clone());
            std::thread::spawn(move || sched.try_admit(&ctx))
        };
        wait_for(|| sched.stats().queue_depth >= 1);
        // A second waiter queued *behind* the ticket that will abandon.
        let live = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.try_admit(&QueryCtx::unbounded()))
        };
        wait_for(|| sched.stats().queue_depth >= 2);
        doomed_ctx.cancel();
        assert_eq!(doomed.join().unwrap().map(drop).unwrap_err(), QueryError::Cancelled);
        drop(hold);
        // FIFO must skip the abandoned ticket and admit the live waiter.
        live.join().unwrap().expect("abandoned tickets must not stall later waiters");
        assert_eq!(sched.stats().abandoned, 1);
        assert_eq!(sched.stats().queue_depth, 0);
    }

    #[test]
    fn hopeless_deadlines_are_shed_at_admission() {
        let sched = Arc::new(Scheduler::with_queue_limit(4, 1, 16));
        // Teach the EWMA that queries take ~30 ms.
        let p = sched.admit();
        std::thread::sleep(Duration::from_millis(30));
        drop(p);
        // With the single slot busy, a 5 ms deadline cannot survive a
        // predicted ~30 ms queue wait: shed up front.
        let _hold = sched.admit();
        let ctx = QueryCtx::with_limits(Some(Duration::from_millis(5)), None);
        let err = sched.try_admit(&ctx).unwrap_err();
        assert!(matches!(err, QueryError::Shed { .. }), "{err}");
    }

    #[test]
    fn permits_release_on_drop() {
        let sched = Arc::new(Scheduler::new(4, 1));
        for _ in 0..3 {
            let p = sched.admit();
            drop(p);
        }
        assert_eq!(sched.stats().admitted, 3);
        assert_eq!(sched.state.lock().unwrap().active_queries, 0);
    }
}
