//! A process-wide query scheduler: admission control plus fair worker
//! sharing for concurrent morsel-parallel queries.
//!
//! Before this module, every query's [`crate::morsel::run_morsels`] fan-out
//! spawned up to `par.threads` workers of its own; N concurrent queries
//! oversubscribed the machine N-fold. The scheduler fixes both halves:
//!
//! * **Admission** — [`Scheduler::admit`] bounds how many queries *execute*
//!   at once (`CVR_SCHED_QUERIES`, default `max(4, workers)`). Excess
//!   queries wait in FIFO ticket order; an admitted query holds its
//!   [`QueryPermit`] until it finishes (RAII).
//! * **Worker leases** — each `run_morsels` fan-out asks for its desired
//!   worker count and is granted a *fair share* of the machine-wide budget
//!   (`CVR_SCHED_WORKERS`, default available parallelism):
//!   `min(requested, max(1, min(budget / active_queries, available)))`.
//!   Leases never block and always grant at least one worker, so a fan-out
//!   can always make progress; the degree of parallelism simply shrinks
//!   when neighbors are running.
//!
//! Correctness is free: the morsel layer's determinism contract guarantees
//! outputs and [`cvr_storage::io::IoStats`] are byte-identical at *every*
//! worker count, so the scheduler can throttle arbitrarily without changing
//! a single result byte. Components that never install a scheduler (the
//! figure binaries, unit tests) see [`lease`] grant every request in full —
//! exactly the pre-scheduler behavior.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};

/// Mutable scheduler state, guarded by one mutex.
#[derive(Debug, Default)]
struct State {
    /// Queries currently holding a [`QueryPermit`].
    active_queries: usize,
    /// Workers currently granted to live [`WorkerLease`]s.
    leased_workers: usize,
    /// Next admission ticket to hand out.
    next_ticket: u64,
    /// Ticket currently allowed to try admission (FIFO fairness).
    serving: u64,
}

/// Cumulative counters, readable without the state lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Queries admitted so far.
    pub admitted: u64,
    /// Admissions that had to wait for a permit.
    pub queued: u64,
    /// Worker leases granted.
    pub leases: u64,
    /// Leases granted fewer workers than they requested.
    pub throttled: u64,
}

/// Shared query scheduler; see the module docs.
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<State>,
    admitted_cv: Condvar,
    /// Machine-wide worker budget shared by all fan-outs.
    max_workers: usize,
    /// Maximum concurrently executing queries.
    max_queries: usize,
    admitted: AtomicU64,
    queued: AtomicU64,
    leases: AtomicU64,
    throttled: AtomicU64,
}

impl Scheduler {
    /// A scheduler with explicit limits (both clamped to ≥ 1).
    pub fn new(max_workers: usize, max_queries: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(State::default()),
            admitted_cv: Condvar::new(),
            max_workers: max_workers.max(1),
            max_queries: max_queries.max(1),
            admitted: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            leases: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
        }
    }

    /// The process-default scheduler: worker budget from
    /// `CVR_SCHED_WORKERS` (default: available parallelism), query limit
    /// from `CVR_SCHED_QUERIES` (default: `max(4, workers)`). Built once
    /// and shared by every [`crate::engine::ColumnEngine`] consumer that
    /// asks for it (the server's `Session` does).
    pub fn process_default() -> Arc<Scheduler> {
        static DEFAULT: OnceLock<Arc<Scheduler>> = OnceLock::new();
        DEFAULT
            .get_or_init(|| {
                let env = |k: &str| {
                    std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n >= 1)
                };
                let workers = env("CVR_SCHED_WORKERS").unwrap_or_else(|| {
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                });
                let queries = env("CVR_SCHED_QUERIES").unwrap_or_else(|| workers.max(4));
                Arc::new(Scheduler::new(workers, queries))
            })
            .clone()
    }

    /// Block until this query may execute; the returned permit admits it
    /// until dropped. Waiters are served in arrival (ticket) order.
    pub fn admit(self: &Arc<Scheduler>) -> QueryPermit {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        let mut waited = false;
        while state.serving != ticket || state.active_queries >= self.max_queries {
            waited = true;
            state = self.admitted_cv.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.serving += 1;
        state.active_queries += 1;
        drop(state);
        // Wake the next ticket (it may be admissible immediately).
        self.admitted_cv.notify_all();
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if waited {
            self.queued.fetch_add(1, Ordering::Relaxed);
        }
        QueryPermit { sched: self.clone() }
    }

    /// Grant a worker lease for one fan-out: never blocks, always grants at
    /// least 1, and at most `requested`.
    fn grant(self: &Arc<Scheduler>, requested: usize) -> WorkerLease {
        let requested = requested.max(1);
        let granted = {
            let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let fair = self.max_workers / state.active_queries.max(1);
            let available = self.max_workers.saturating_sub(state.leased_workers);
            let granted = requested.min(fair.min(available).max(1));
            state.leased_workers += granted;
            granted
        };
        self.leases.fetch_add(1, Ordering::Relaxed);
        if granted < requested {
            self.throttled.fetch_add(1, Ordering::Relaxed);
        }
        WorkerLease { sched: Some(self.clone()), granted }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            leases: self.leases.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
        }
    }
}

/// RAII admission permit; dropping it releases the slot.
#[derive(Debug)]
pub struct QueryPermit {
    sched: Arc<Scheduler>,
}

impl Drop for QueryPermit {
    fn drop(&mut self) {
        let mut state = self.sched.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.active_queries = state.active_queries.saturating_sub(1);
        drop(state);
        self.sched.admitted_cv.notify_all();
    }
}

/// RAII worker lease; dropping it returns the workers to the budget.
#[derive(Debug)]
pub struct WorkerLease {
    sched: Option<Arc<Scheduler>>,
    granted: usize,
}

impl WorkerLease {
    /// Workers this fan-out may use (≥ 1).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for WorkerLease {
    fn drop(&mut self) {
        if let Some(sched) = &self.sched {
            let mut state = sched.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            state.leased_workers = state.leased_workers.saturating_sub(self.granted);
        }
    }
}

/// The installed process-wide scheduler consulted by
/// [`crate::morsel::run_morsels`]; `None` (the default) means every lease
/// is granted in full.
static INSTALLED: RwLock<Option<Arc<Scheduler>>> = RwLock::new(None);

/// Install `sched` as the process-wide scheduler. Idempotent for the same
/// instance; a later install replaces an earlier one (last wins).
pub fn install(sched: Arc<Scheduler>) {
    let mut slot = INSTALLED.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = Some(sched);
}

/// Lease up to `requested` workers from the installed scheduler; grants
/// `requested` in full when none is installed.
pub fn lease(requested: usize) -> WorkerLease {
    let slot = INSTALLED.read().unwrap_or_else(std::sync::PoisonError::into_inner);
    match slot.as_ref() {
        Some(sched) => sched.grant(requested),
        None => WorkerLease { sched: None, granted: requested.max(1) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn uninstalled_leases_grant_in_full() {
        // This test must not install anything (global state is shared
        // across the test binary): the default path grants everything.
        let l = match INSTALLED.read().unwrap().as_ref() {
            None => lease(7),
            // Another test installed a scheduler first; exercise the
            // fallback constructor directly instead.
            Some(_) => WorkerLease { sched: None, granted: 7 },
        };
        assert_eq!(l.granted(), 7);
    }

    #[test]
    fn admission_bounds_concurrent_queries() {
        let sched = Arc::new(Scheduler::new(8, 2));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let (sched, peak, live) = (sched.clone(), peak.clone(), live.clone());
                std::thread::spawn(move || {
                    let _permit = sched.admit();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "admission must cap concurrency at 2");
        let stats = sched.stats();
        assert_eq!(stats.admitted, 6);
        assert!(stats.queued >= 4, "at least four admissions must have waited");
    }

    #[test]
    fn leases_split_the_budget_fairly() {
        let sched = Arc::new(Scheduler::new(8, 8));
        let _p1 = sched.admit();
        let _p2 = sched.admit();
        // Two active queries over an 8-worker budget: fair share is 4.
        let l1 = sched.grant(8);
        assert_eq!(l1.granted(), 4);
        let l2 = sched.grant(8);
        assert_eq!(l2.granted(), 4);
        // Budget exhausted, but a lease still gets its minimum worker.
        let l3 = sched.grant(8);
        assert_eq!(l3.granted(), 1);
        drop((l1, l2, l3));
        // All returned: a lone query gets whatever it asks for (≤ budget).
        let _p3 = sched.admit();
        // fair = 8 / 3 = 2 with three active queries.
        assert_eq!(sched.grant(8).granted(), 2);
        assert!(sched.stats().throttled >= 3);
    }

    #[test]
    fn permits_release_on_drop() {
        let sched = Arc::new(Scheduler::new(4, 1));
        for _ in 0..3 {
            let p = sched.admit();
            drop(p);
        }
        assert_eq!(sched.stats().admitted, 3);
        assert_eq!(sched.state.lock().unwrap().active_queries, 0);
    }
}
