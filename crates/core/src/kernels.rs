//! Word-parallel scan kernels: branchless SWAR predicate evaluation that
//! lands results as whole 64-bit selection masks.
//!
//! The paper's block-iteration optimization (Section 5.3) strips the
//! per-value call overhead of `getNext`; these kernels go one step further
//! and strip the per-value *work*. Over the lane-aligned packed layout of
//! [`PackedInts`] (BitWeaving/H-style: `w` value bits plus one zero
//! delimiter bit per lane), a single 64-bit subtraction compares every lane
//! of a word at once:
//!
//! * each lane holds `x` with its top (delimiter) bit clear, so
//!   `(c + 2^w) - x` — computed for all lanes simultaneously as
//!   `(C | H) - X`, where `H` masks the delimiter bits — cannot borrow out
//!   of its lane, and its delimiter bit ends up set **iff `x ≤ c`**;
//! * equality uses `H - (X ⊕ C)`: the delimiter bit survives iff the lane
//!   XOR was zero;
//! * range predicates AND a `≥ lo` and a `≤ hi` comparison.
//!
//! The per-lane verdict bits are then compressed ("banked" together) into a
//! dense selection mask — one bit per value, 64 values per output word —
//! which bulk-loads into `crate::scan::PosAccumulator` /
//! [`cvr_index::bitmap::RidBitmap`] without ever taking a per-bit path.
//!
//! Three kernel families cover the encodings:
//!
//! * **packed kernels** ([`packed_cmp_masks`], [`packed_test_masks`]) —
//!   SWAR compare (or per-lane unpack + test for opaque predicates) over
//!   the packed word image;
//! * **slice kernels** ([`slice_cmp_masks`], [`slice_test_masks`]) —
//!   branchless mask construction over plain `i64` slices;
//! * **run kernels** — RLE needs no mask construction at all: one predicate
//!   test per run and an `O(words)` range push, which lives in
//!   `crate::scan` next to the run clamping logic.
//!
//! The [`scalar`] submodule holds the one-value-at-a-time reference
//! implementations; property tests assert kernel/scalar equivalence and the
//! `kernels` bench measures the gap.

use cvr_storage::packed::PackedInts;

/// An integer comparison a SWAR kernel can evaluate, in *code space*
/// (unsigned, after frame-of-reference subtraction). Bounds are inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `code == c`.
    Eq(u64),
    /// `code <= c`.
    Le(u64),
    /// `code < c` (strict; `Lt(0)` matches nothing).
    Lt(u64),
    /// `lo <= code <= hi`.
    Range(u64, u64),
}

impl CmpOp {
    /// Normalize to an inclusive `[lo, hi]` range clamped to codes of at
    /// most `max`; `None` when nothing can match.
    pub fn bounds(self, max: u64) -> Option<(u64, u64)> {
        let (lo, hi) = match self {
            CmpOp::Eq(c) => (c, c),
            CmpOp::Le(c) => (0, c),
            CmpOp::Lt(0) => return None,
            CmpOp::Lt(c) => (0, c - 1),
            CmpOp::Range(lo, hi) => (lo, hi),
        };
        if lo > hi || lo > max {
            return None;
        }
        Some((lo, hi.min(max)))
    }
}

/// Delimiter-bit mask: the top bit of each of `lanes` lanes of `lane_bits`.
#[inline]
pub fn lane_msb_mask(lane_bits: u32, lanes: u32) -> u64 {
    let mut h = 0u64;
    for i in 0..lanes {
        h |= 1u64 << (i * lane_bits + lane_bits - 1);
    }
    h
}

/// Broadcast `code` into every lane (delimiter bits left clear).
#[inline]
pub fn broadcast(code: u64, lane_bits: u32, lanes: u32) -> u64 {
    let mut b = 0u64;
    for i in 0..lanes {
        b |= code << (i * lane_bits);
    }
    b
}

/// Per-lane `x <= c`: delimiter bit of each lane set on success. `c_or_h`
/// is `broadcast(c) | H` and `h` is the delimiter mask [`lane_msb_mask`].
/// Requires every delimiter bit of `x` clear (the packed-layout invariant):
/// each lane then computes `c + 2^w - x`, which cannot borrow into the next
/// lane and carries into the delimiter bit exactly when `x <= c`.
#[inline]
pub fn swar_le(x: u64, c_or_h: u64, h: u64) -> u64 {
    (c_or_h - x) & h
}

/// Per-lane `x >= c` (`c` broadcast with delimiter bits clear): each lane
/// computes `x + 2^w - c`, whose delimiter bit survives iff `x >= c`.
#[inline]
pub fn swar_ge(x: u64, c: u64, h: u64) -> u64 {
    ((x | h) - c) & h
}

/// Per-lane `x == c`: `t = x ^ c` is zero only in matching lanes, and
/// `2^w - t` keeps the delimiter bit only when `t == 0`.
#[inline]
pub fn swar_eq(x: u64, c: u64, h: u64) -> u64 {
    (h - (x ^ c)) & h
}

/// Hoisted-constant compressor turning per-lane delimiter-bit verdicts
/// into a dense bit string: bit `i` of the output is lane `i`'s verdict.
///
/// Three regimes, cheapest first:
/// * all-zero / all-match verdict words skip compression entirely (the
///   dominant case at the selectivity extremes);
/// * lanes of ≥ 8 bits gather every delimiter bit with **one multiply**
///   (the movemask-by-multiplication trick): multiplying by
///   `Σⱼ 2^((L-1)·j)` translates the bit of lane `i` to position
///   `(L-1)·K + i` exactly when `j = K-1-i`, and the lane geometry makes
///   every other (i, j) product land outside the output window with no two
///   terms colliding — so the multiply is carry-free and the window reads
///   out the dense verdicts directly;
/// * narrower lanes (K up to 32 gathers would collide) fall back to a
///   shift loop.
#[derive(Debug, Clone, Copy)]
pub struct LaneCompressor {
    lane_bits: u32,
    lanes: u32,
    /// All delimiter bits set — the all-match verdict.
    h: u64,
    /// All verdict bits set — the all-match output.
    full: u64,
    /// Multiply-gather constant (`0` selects the shift-loop fallback).
    mul: u64,
    /// Output window position for the multiply gather.
    shift: u32,
}

impl LaneCompressor {
    /// Compressor for words of `lanes` lanes of `lane_bits` each.
    pub fn new(lane_bits: u32, lanes: u32) -> LaneCompressor {
        let h = lane_msb_mask(lane_bits, lanes);
        let full = low_bits(lanes);
        // Collision analysis (see struct docs): the single-multiply gather
        // is carry-free iff no two (i, j) terms coincide, which holds for
        // lane_bits >= 8 (then lanes <= 8 <= lane_bits - 1 + 1).
        let (mul, shift) = if lane_bits >= 8 {
            let mut c = 0u64;
            for j in 0..lanes {
                c |= 1u64 << ((lane_bits - 1) * j);
            }
            (c, (lane_bits - 1) * lanes)
        } else {
            (0, 0)
        };
        LaneCompressor { lane_bits, lanes, h, full, mul, shift }
    }

    /// Compress one verdict word (delimiter-bit form) to dense bits.
    #[inline]
    pub fn compress(&self, msb: u64) -> u64 {
        if msb == 0 {
            return 0;
        }
        if msb == self.h {
            return self.full;
        }
        if self.mul != 0 {
            return (msb.wrapping_mul(self.mul) >> self.shift) & self.full;
        }
        let mut m = msb >> (self.lane_bits - 1); // verdict at each lane's bit 0
        let mut out = 0u64;
        for i in 0..self.lanes {
            out |= (m & 1) << i;
            m >>= self.lane_bits;
        }
        out
    }
}

/// Compress per-lane delimiter-bit verdicts into a dense bit string: bit
/// `i` of the result is lane `i`'s verdict. One-shot form of
/// [`LaneCompressor`] — hot loops should hoist the compressor instead.
#[inline]
pub fn compress_msbs(msb: u64, lane_bits: u32, lanes: u32) -> u64 {
    LaneCompressor::new(lane_bits, lanes).compress(msb)
}

/// The low `n` bits (`n <= 63`).
#[inline]
fn low_bits(n: u32) -> u64 {
    debug_assert!(n < 64);
    (1u64 << n) - 1
}

/// Shared mask driver: walk the packed words covering positions
/// `[start, end)`, turn each word into dense per-lane verdict bits (bit `i`
/// = lane `i`) via `bits_of`, and re-buffer the bits into 64-value output
/// masks. `emit(base, mask)` receives ascending 64-aligned-from-`start`
/// bases; the final mask may cover fewer than 64 positions (high bits
/// zero).
fn run_masks(
    words: &[u64],
    lanes: u32,
    start: u32,
    end: u32,
    bits_of: impl Fn(u64) -> u64,
    mut emit: impl FnMut(u32, u64),
) {
    let mut base = start;
    let mut buf = 0u64;
    let mut fill = 0u32;
    let mut wi = (start / lanes) as usize;
    let last = ((end - 1) / lanes) as usize;
    let mut lane0 = start % lanes;
    while wi <= last {
        let lane_end = if wi == last { (end - 1) % lanes + 1 } else { lanes };
        let cnt = lane_end - lane0;
        // Verdicts for out-of-range lanes are dropped here (lanes < 64, so
        // `low_bits` is safe).
        let bits = (bits_of(words[wi]) >> lane0) & low_bits(cnt);
        buf |= bits << fill;
        let total = fill + cnt;
        if total >= 64 {
            emit(base, buf);
            base += 64;
            fill = total - 64;
            buf = if fill == 0 { 0 } else { bits >> (cnt - fill) };
        } else {
            fill = total;
        }
        lane0 = 0;
        wi += 1;
    }
    if fill > 0 {
        emit(base, buf);
    }
}

/// Emit all-ones masks covering `[start, end)` — the full-match fast path.
fn emit_all_ones(start: u32, end: u32, mut emit: impl FnMut(u32, u64)) {
    let mut base = start;
    while base < end {
        let n = (end - base).min(64);
        let mask = if n == 64 { u64::MAX } else { low_bits(n) };
        emit(base, mask);
        base += n;
    }
}

/// Evaluate `op` over positions `[start, end)` of `p` with SWAR compares,
/// emitting dense selection masks: `emit(base, mask)` where bit `j` of
/// `mask` selects position `base + j`. Bases ascend in steps of 64 from
/// `start`; all-zero masks may be emitted or skipped — sinks must treat
/// them as no-ops either way.
pub fn packed_cmp_masks(
    p: &PackedInts,
    start: u32,
    end: u32,
    op: CmpOp,
    emit: impl FnMut(u32, u64),
) {
    let end = end.min(p.len());
    if start >= end {
        return;
    }
    let Some((lo, hi)) = op.bounds(p.max_code()) else {
        return;
    };
    let lane_bits = p.lane_bits() as u32;
    let lanes = p.lanes_per_word() as u32;
    let h = lane_msb_mask(lane_bits, lanes);
    let cx = LaneCompressor::new(lane_bits, lanes);
    let max = p.max_code();
    if lo == 0 && hi == max {
        emit_all_ones(start, end, emit);
    } else if lo == hi {
        let c = broadcast(lo, lane_bits, lanes);
        run_masks(p.words(), lanes, start, end, |x| cx.compress(swar_eq(x, c, h)), emit);
    } else if lo == 0 {
        let c_or_h = broadcast(hi, lane_bits, lanes) | h;
        run_masks(p.words(), lanes, start, end, |x| cx.compress(swar_le(x, c_or_h, h)), emit);
    } else if hi == max {
        let c = broadcast(lo, lane_bits, lanes);
        run_masks(p.words(), lanes, start, end, |x| cx.compress(swar_ge(x, c, h)), emit);
    } else {
        let lo_b = broadcast(lo, lane_bits, lanes);
        let hi_or_h = broadcast(hi, lane_bits, lanes) | h;
        run_masks(
            p.words(),
            lanes,
            start,
            end,
            |x| cx.compress(swar_ge(x, lo_b, h) & swar_le(x, hi_or_h, h)),
            emit,
        );
    }
}

/// Evaluate an opaque per-code predicate over `[start, end)` of `p`, still
/// one word of codes (and one output mask word) at a time — the fallback
/// for predicates SWAR cannot express (hash-set membership, IN-lists over
/// non-contiguous codes). Unused tail lanes are zero by the packed-layout
/// contract, so `test(0)` must be safe to call (its verdict is discarded).
pub fn packed_test_masks(
    p: &PackedInts,
    start: u32,
    end: u32,
    test: impl Fn(u64) -> bool,
    emit: impl FnMut(u32, u64),
) {
    let end = end.min(p.len());
    if start >= end {
        return;
    }
    let lane_bits = p.lane_bits() as u32;
    let lanes = p.lanes_per_word() as u32;
    let code_mask = p.max_code();
    run_masks(
        p.words(),
        lanes,
        start,
        end,
        |word| {
            let mut bits = 0u64;
            let mut w = word;
            for i in 0..lanes {
                bits |= (test(w & code_mask) as u64) << i;
                w >>= lane_bits;
            }
            bits
        },
        emit,
    );
}

/// Branchless range masks over a plain `i64` slice: bit `j` of the mask for
/// base `b` selects `values[(b - base) + j]`, i.e. position `b + j` when
/// `base` is the slice's first position. Bounds are inclusive.
pub fn slice_cmp_masks(
    values: &[i64],
    base: u32,
    lo: i64,
    hi: i64,
    mut emit: impl FnMut(u32, u64),
) {
    let mut off = 0u32;
    for chunk in values.chunks(64) {
        let mut m = 0u64;
        for (j, &v) in chunk.iter().enumerate() {
            m |= (((v >= lo) & (v <= hi)) as u64) << j;
        }
        emit(base + off, m);
        off += chunk.len() as u32;
    }
}

/// Mask construction over a plain `i64` slice for an opaque predicate:
/// still evaluates per value, but lands results 64 at a time.
pub fn slice_test_masks(
    values: &[i64],
    base: u32,
    test: impl Fn(i64) -> bool,
    mut emit: impl FnMut(u32, u64),
) {
    let mut off = 0u32;
    for chunk in values.chunks(64) {
        let mut m = 0u64;
        for (j, &v) in chunk.iter().enumerate() {
            m |= (test(v) as u64) << j;
        }
        emit(base + off, m);
        off += chunk.len() as u32;
    }
}

/// One-value-at-a-time reference implementations of every kernel — the
/// "scalar block iteration" baselines the property tests compare against
/// and the `kernels` bench measures the word-parallel speedup over.
pub mod scalar {
    use super::CmpOp;
    use cvr_storage::packed::PackedInts;

    /// Scalar counterpart of [`super::packed_cmp_masks`]: unpack each code,
    /// compare, push matching positions.
    pub fn packed_cmp_positions(p: &PackedInts, start: u32, end: u32, op: CmpOp) -> Vec<u32> {
        let mut out = Vec::new();
        let end = end.min(p.len());
        let Some((lo, hi)) = op.bounds(p.max_code()) else {
            return out;
        };
        for i in start..end {
            let c = p.get(i);
            if c >= lo && c <= hi {
                out.push(i);
            }
        }
        out
    }

    /// Scalar counterpart of [`super::packed_test_masks`].
    pub fn packed_test_positions(
        p: &PackedInts,
        start: u32,
        end: u32,
        test: impl Fn(u64) -> bool,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        for i in start..end.min(p.len()) {
            if test(p.get(i)) {
                out.push(i);
            }
        }
        out
    }

    /// Scalar counterpart of [`super::slice_cmp_masks`].
    pub fn slice_cmp_positions(values: &[i64], base: u32, lo: i64, hi: i64) -> Vec<u32> {
        let mut out = Vec::new();
        for (j, &v) in values.iter().enumerate() {
            if v >= lo && v <= hi {
                out.push(base + j as u32);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collect kernel mask output as positions.
    fn positions(f: impl FnOnce(&mut dyn FnMut(u32, u64))) -> Vec<u32> {
        let mut out = Vec::new();
        let mut emit = |base: u32, mut m: u64| {
            while m != 0 {
                out.push(base + m.trailing_zeros());
                m &= m - 1;
            }
        };
        f(&mut emit);
        out
    }

    fn pack(w: u8, codes: &[u64]) -> PackedInts {
        PackedInts::pack(w, codes.iter().copied())
    }

    #[test]
    fn swar_primitives_agree_with_scalar_on_all_small_pairs() {
        for w in [1u32, 3, 7] {
            let lane_bits = w + 1;
            let lanes = 64 / lane_bits;
            let h = lane_msb_mask(lane_bits, lanes);
            let max = (1u64 << w) - 1;
            for c in 0..=max {
                let cb = broadcast(c, lane_bits, lanes);
                // One word holding `lanes` consecutive values x, x+1, ...
                for x0 in 0..=max {
                    let xs: Vec<u64> = (0..lanes as u64).map(|i| (x0 + i) % (max + 1)).collect();
                    let mut word = 0u64;
                    for (i, &x) in xs.iter().enumerate() {
                        word |= x << (i as u32 * lane_bits);
                    }
                    let le = compress_msbs(swar_le(word, cb | h, h), lane_bits, lanes);
                    let ge = compress_msbs(swar_ge(word, cb, h), lane_bits, lanes);
                    let eq = compress_msbs(swar_eq(word, cb, h), lane_bits, lanes);
                    for (i, &x) in xs.iter().enumerate() {
                        assert_eq!(le >> i & 1 == 1, x <= c, "le w={w} x={x} c={c}");
                        assert_eq!(ge >> i & 1 == 1, x >= c, "ge w={w} x={x} c={c}");
                        assert_eq!(eq >> i & 1 == 1, x == c, "eq w={w} x={x} c={c}");
                    }
                }
            }
        }
    }

    #[test]
    fn packed_cmp_matches_scalar_across_ops_and_boundaries() {
        for w in [1u8, 4, 6, 13, 20] {
            let max = (1u64 << w) - 1;
            for n in [63u32, 64, 65, 257] {
                let codes: Vec<u64> =
                    (0..n as u64).map(|i| i.wrapping_mul(2_654_435_761) % (max + 1)).collect();
                let p = pack(w, &codes);
                let ops = [
                    CmpOp::Eq(codes.first().copied().unwrap_or(0)),
                    CmpOp::Le(max / 2),
                    CmpOp::Lt(max / 3 + 1),
                    CmpOp::Lt(0),
                    CmpOp::Range(max / 4, max / 2),
                    CmpOp::Range(0, max),
                    CmpOp::Range(3, 2),
                    CmpOp::Eq(max),
                ];
                for op in ops {
                    for (s, e) in [(0u32, n), (1, n - 1), (63, 65.min(n)), (n, n)] {
                        let got = positions(|emit| packed_cmp_masks(&p, s, e, op, emit));
                        let want = scalar::packed_cmp_positions(&p, s, e, op);
                        assert_eq!(got, want, "w={w} n={n} op={op:?} range=[{s},{e})");
                    }
                }
            }
        }
    }

    #[test]
    fn packed_test_matches_scalar() {
        let codes: Vec<u64> = (0..300u64).map(|i| i % 37).collect();
        let p = pack(6, &codes);
        let test = |c: u64| c % 3 == 1;
        let got = positions(|emit| packed_test_masks(&p, 5, 290, test, emit));
        assert_eq!(got, scalar::packed_test_positions(&p, 5, 290, test));
    }

    #[test]
    fn slice_kernels_match_scalar() {
        let values: Vec<i64> = (0..200).map(|i| (i * 37) % 100 - 50).collect();
        let got = positions(|emit| slice_cmp_masks(&values, 10, -20, 20, emit));
        assert_eq!(got, scalar::slice_cmp_positions(&values, 10, -20, 20));
        let got = positions(|emit| slice_test_masks(&values, 0, |v| v == 13, emit));
        assert_eq!(got, scalar::slice_cmp_positions(&values, 0, 13, 13));
    }

    #[test]
    fn full_range_takes_the_all_ones_path() {
        let p = pack(3, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let got = positions(|emit| packed_cmp_masks(&p, 0, 8, CmpOp::Range(0, 7), emit));
        assert_eq!(got, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn multiply_gather_matches_shift_loop_for_every_lane_width() {
        // The mul-gather path (lane_bits >= 8) must agree with the naive
        // per-lane loop for every geometry and verdict pattern.
        let naive = |msb: u64, lane_bits: u32, lanes: u32| -> u64 {
            let mut out = 0u64;
            for i in 0..lanes {
                out |= ((msb >> (i * lane_bits + lane_bits - 1)) & 1) << i;
            }
            out
        };
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for lane_bits in 2u32..=32 {
            let lanes = 64 / lane_bits;
            let h = lane_msb_mask(lane_bits, lanes);
            let cx = LaneCompressor::new(lane_bits, lanes);
            for _ in 0..200 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let msb = state & h; // arbitrary verdict subset
                assert_eq!(
                    cx.compress(msb),
                    naive(msb, lane_bits, lanes),
                    "lane_bits={lane_bits} msb={msb:#x}"
                );
            }
            assert_eq!(cx.compress(0), 0);
            assert_eq!(cx.compress(h), low_bits(lanes));
        }
    }

    #[test]
    fn cmp_bounds_normalization() {
        assert_eq!(CmpOp::Eq(5).bounds(7), Some((5, 5)));
        assert_eq!(CmpOp::Eq(9).bounds(7), None);
        assert_eq!(CmpOp::Le(9).bounds(7), Some((0, 7)));
        assert_eq!(CmpOp::Lt(0).bounds(7), None);
        assert_eq!(CmpOp::Lt(3).bounds(7), Some((0, 2)));
        assert_eq!(CmpOp::Range(2, 1).bounds(7), None);
    }
}
