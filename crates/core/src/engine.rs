//! The column engine facade: one entry point over every plan shape.

use crate::config::EngineConfig;
use crate::projection::CStoreDb;
use crate::{em, invisible, lmjoin};
use cvr_data::gen::SsbTables;
use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_storage::io::IoSession;
use std::sync::Arc;

/// A built column engine holding both compression variants of the storage,
/// dispatching each query to the plan shape its [`EngineConfig`] selects:
///
/// * `L` + `I` → the [`invisible`] join;
/// * `L` + `i` → the classic [`lmjoin`] (late-materialized hash join);
/// * `l` → [`em`] (tuples constructed at the scan, row-style execution).
pub struct ColumnEngine {
    compressed: CStoreDb,
    plain: CStoreDb,
}

impl ColumnEngine {
    /// Build both storage variants over `tables`.
    pub fn new(tables: Arc<SsbTables>) -> ColumnEngine {
        ColumnEngine {
            compressed: CStoreDb::build(tables.clone(), true),
            plain: CStoreDb::build(tables, false),
        }
    }

    /// The storage serving `config`.
    pub fn db(&self, config: EngineConfig) -> &CStoreDb {
        if config.compression {
            &self.compressed
        } else {
            &self.plain
        }
    }

    /// Execute `q` under `config`.
    pub fn execute(&self, q: &SsbQuery, config: EngineConfig, io: &IoSession) -> QueryOutput {
        let db = self.db(config);
        if !config.late_materialization {
            em::execute(db, q, config, io)
        } else if config.invisible_join {
            invisible::execute(db, q, config, io)
        } else {
            lmjoin::execute(db, q, config, io)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::all_queries;
    use cvr_data::reference;

    #[test]
    fn all_sixteen_configs_match_reference() {
        let tables = Arc::new(SsbConfig { sf: 0.0015, seed: 53 }.generate());
        let engine = ColumnEngine::new(tables.clone());
        let io = IoSession::unmetered();
        for q in all_queries() {
            let expected = reference::evaluate(&tables, &q);
            for cfg in EngineConfig::all() {
                assert_eq!(
                    engine.execute(&q, cfg, &io),
                    expected,
                    "config {} disagrees on {}",
                    cfg.code(),
                    q.id
                );
            }
        }
    }

    #[test]
    fn compressed_storage_is_smaller() {
        let tables = Arc::new(SsbConfig { sf: 0.002, seed: 59 }.generate());
        let engine = ColumnEngine::new(tables);
        assert!(
            engine.db(EngineConfig::FULL).fact_bytes()
                < engine.db(EngineConfig::parse("tIcL")).fact_bytes()
        );
    }
}
