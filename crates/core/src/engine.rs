//! The column engine facade: one entry point over every plan shape.

use crate::config::EngineConfig;
use crate::ctx::{catch_injected, QueryCtx, QueryError};
use crate::morsel::Parallelism;
use crate::projection::CStoreDb;
use crate::{em, invisible, lmjoin};
use cvr_data::gen::SsbTables;
use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_storage::io::IoSession;
use std::sync::Arc;

/// A built column engine holding both compression variants of the storage,
/// dispatching each query to the plan shape its [`EngineConfig`] selects:
///
/// * `L` + `I` → the [`invisible`] join;
/// * `L` + `i` → the classic [`lmjoin`] (late-materialized hash join);
/// * `l` → [`em`] (tuples constructed at the scan, row-style execution).
pub struct ColumnEngine {
    compressed: CStoreDb,
    plain: CStoreDb,
}

impl ColumnEngine {
    /// Build both storage variants over `tables`.
    pub fn new(tables: Arc<SsbTables>) -> ColumnEngine {
        ColumnEngine {
            compressed: CStoreDb::build(tables.clone(), true),
            plain: CStoreDb::build(tables, false),
        }
    }

    /// The storage serving `config`.
    pub fn db(&self, config: EngineConfig) -> &CStoreDb {
        if config.compression {
            &self.compressed
        } else {
            &self.plain
        }
    }

    /// Execute `q` under `config` at the process-default parallelism: the
    /// `CVR_THREADS` environment variable when set, otherwise the machine's
    /// available parallelism (see [`Parallelism::from_env`]). Results and
    /// I/O accounting are byte-identical at every thread count.
    pub fn execute(&self, q: &SsbQuery, config: EngineConfig, io: &IoSession) -> QueryOutput {
        self.execute_with(q, config, Parallelism::from_env(), io)
    }

    /// Execute `q` under `config` with an explicit [`Parallelism`].
    ///
    /// `par.threads == 1` takes the serial code path; larger values run the
    /// morsel-driven parallel pipeline of the selected plan shape, merging
    /// partial aggregates and per-morsel I/O logs in morsel order.
    pub fn execute_with(
        &self,
        q: &SsbQuery,
        config: EngineConfig,
        par: Parallelism,
        io: &IoSession,
    ) -> QueryOutput {
        self.try_execute_with(q, config, par, io, &QueryCtx::unbounded())
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`ColumnEngine::execute_with`]: the selected plan shape
    /// checks `ctx` at phase and morsel boundaries and aborts with a typed
    /// [`QueryError`] on cancellation, deadline expiry, or a blown memory
    /// budget. Injected storage faults surface as [`QueryError::Io`].
    pub fn try_execute_with(
        &self,
        q: &SsbQuery,
        config: EngineConfig,
        par: Parallelism,
        io: &IoSession,
        ctx: &QueryCtx,
    ) -> Result<QueryOutput, QueryError> {
        let db = self.db(config);
        catch_injected(|| {
            if par.is_serial() {
                if !config.late_materialization {
                    em::try_execute(db, q, config, io, ctx)
                } else if config.invisible_join {
                    invisible::try_execute(db, q, config, io, ctx)
                } else {
                    lmjoin::try_execute(db, q, config, io, ctx)
                }
            } else if !config.late_materialization {
                em::try_execute_par(db, q, config, par, io, ctx)
            } else if config.invisible_join {
                invisible::try_execute_par(db, q, config, par, io, ctx)
            } else {
                lmjoin::try_execute_par(db, q, config, par, io, ctx)
            }
        })?
    }

    /// Execute `q` with the invisible join under explicit ablation
    /// [`crate::invisible::InvisibleOptions`] (serial path).
    ///
    /// The per-shape `execute*` free functions are crate-private; this is
    /// the one sanctioned way to reach the invisible join's phase-level
    /// switches from outside the crate. With default options it is
    /// equivalent to [`ColumnEngine::execute_with`] at
    /// [`Parallelism::serial`] under an invisible-join configuration.
    pub fn execute_ablation(
        &self,
        q: &SsbQuery,
        config: EngineConfig,
        opts: crate::invisible::InvisibleOptions,
        io: &IoSession,
    ) -> QueryOutput {
        invisible::execute_opts(self.db(config), q, config, opts, io)
    }

    /// Execute a *planner-chosen* plan: `config` plus an explicit fact-
    /// predicate evaluation order (see `SsbQuery::with_fact_order`).
    ///
    /// This is deliberately just "permute, then [`ColumnEngine::execute_with`]":
    /// a planned execution is byte-identical — outputs *and* I/O accounting —
    /// to handing the engine the same configuration and predicate order
    /// directly, which is what the differential harness pins.
    pub fn execute_planned(
        &self,
        q: &SsbQuery,
        config: EngineConfig,
        fact_order: &[usize],
        par: Parallelism,
        io: &IoSession,
    ) -> QueryOutput {
        self.execute_with(&q.with_fact_order(fact_order), config, par, io)
    }

    /// Fallible [`ColumnEngine::execute_planned`].
    pub fn try_execute_planned(
        &self,
        q: &SsbQuery,
        config: EngineConfig,
        fact_order: &[usize],
        par: Parallelism,
        io: &IoSession,
        ctx: &QueryCtx,
    ) -> Result<QueryOutput, QueryError> {
        self.try_execute_with(&q.with_fact_order(fact_order), config, par, io, ctx)
    }

    /// [`ColumnEngine::execute_planned`], additionally capturing the filter
    /// phases for later warm reuse when the plan shape supports it (the
    /// invisible join under late materialization). Charges on `io` are
    /// byte-identical to an uncaptured execution.
    pub fn execute_planned_capture(
        &self,
        q: &SsbQuery,
        config: EngineConfig,
        fact_order: &[usize],
        par: Parallelism,
        io: &IoSession,
    ) -> (QueryOutput, Option<crate::invisible::FilterCapture>) {
        self.try_execute_planned_capture(q, config, fact_order, par, io, &QueryCtx::unbounded())
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`ColumnEngine::execute_planned_capture`].
    pub fn try_execute_planned_capture(
        &self,
        q: &SsbQuery,
        config: EngineConfig,
        fact_order: &[usize],
        par: Parallelism,
        io: &IoSession,
        ctx: &QueryCtx,
    ) -> Result<(QueryOutput, Option<crate::invisible::FilterCapture>), QueryError> {
        if config.late_materialization && config.invisible_join {
            let q = q.with_fact_order(fact_order);
            let (out, cap) = catch_injected(|| {
                invisible::try_execute_capture(self.db(config), &q, config, par, io, ctx)
            })??;
            Ok((out, Some(cap)))
        } else {
            Ok((self.try_execute_planned(q, config, fact_order, par, io, ctx)?, None))
        }
    }

    /// Re-execute a plan from a [`crate::invisible::FilterCapture`] taken by
    /// [`ColumnEngine::execute_planned_capture`] under the *same* query
    /// filter, config, fact order, and store contents: the filter charges
    /// replay and only phase 3 runs live. Returns `None` (caller runs cold)
    /// when the plan shape or capture shape does not match.
    pub fn execute_planned_warm(
        &self,
        q: &SsbQuery,
        config: EngineConfig,
        fact_order: &[usize],
        par: Parallelism,
        io: &IoSession,
        capture: &crate::invisible::FilterCapture,
    ) -> Option<QueryOutput> {
        self.try_execute_planned_warm(
            q,
            config,
            fact_order,
            par,
            io,
            capture,
            &QueryCtx::unbounded(),
        )
        .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`ColumnEngine::execute_planned_warm`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_execute_planned_warm(
        &self,
        q: &SsbQuery,
        config: EngineConfig,
        fact_order: &[usize],
        par: Parallelism,
        io: &IoSession,
        capture: &crate::invisible::FilterCapture,
        ctx: &QueryCtx,
    ) -> Result<Option<QueryOutput>, QueryError> {
        if !(config.late_materialization && config.invisible_join) {
            return Ok(None);
        }
        let q = q.with_fact_order(fact_order);
        catch_injected(|| invisible::try_execute_warm(self.db(config), &q, par, io, capture, ctx))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::all_queries;
    use cvr_data::reference;

    #[test]
    fn all_sixteen_configs_match_reference() {
        let tables = Arc::new(SsbConfig { sf: 0.0015, seed: 53 }.generate());
        let engine = ColumnEngine::new(tables.clone());
        let io = IoSession::unmetered();
        for q in all_queries() {
            let expected = reference::evaluate(&tables, &q);
            for cfg in EngineConfig::all() {
                assert_eq!(
                    engine.execute(&q, cfg, &io),
                    expected,
                    "config {} disagrees on {}",
                    cfg.code(),
                    q.id
                );
            }
        }
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_serial() {
        let tables = Arc::new(SsbConfig { sf: 0.0015, seed: 53 }.generate());
        let engine = ColumnEngine::new(tables);
        // Small morsels so even this tiny scale factor fans out.
        let par = |threads| Parallelism { threads, morsel_rows: 512 };
        for q in all_queries() {
            for cfg in
                [EngineConfig::FULL, EngineConfig::parse("tiCL"), EngineConfig::parse("tICl")]
            {
                let serial_io = IoSession::unmetered();
                let expected = engine.execute_with(&q, cfg, Parallelism::serial(), &serial_io);
                for threads in [2, 4] {
                    let io = IoSession::unmetered();
                    let got = engine.execute_with(&q, cfg, par(threads), &io);
                    assert_eq!(got, expected, "{} threads on {} ({})", threads, q.id, cfg.code());
                    let (a, b) = (serial_io.stats(), io.stats());
                    assert_eq!(a.bytes_read, b.bytes_read, "{} bytes ({})", q.id, cfg.code());
                    assert_eq!(a.pages_read, b.pages_read, "{} pages ({})", q.id, cfg.code());
                    assert_eq!(a.seeks, b.seeks, "{} seeks ({})", q.id, cfg.code());
                }
            }
        }
    }

    #[test]
    fn compressed_storage_is_smaller() {
        let tables = Arc::new(SsbConfig { sf: 0.002, seed: 59 }.generate());
        let engine = ColumnEngine::new(tables);
        assert!(
            engine.db(EngineConfig::FULL).fact_bytes()
                < engine.db(EngineConfig::parse("tIcL")).fact_bytes()
        );
    }
}
