//! Predicate application over encoded columns → position lists.
//!
//! This is where three of the paper's four optimizations physically live:
//!
//! * **Block iteration vs tuple iteration** (Section 5.3): every scan has
//!   two code paths — `as_array` (tight loops over native slices) and
//!   `get_next` (one virtual call per value through a boxed iterator). The
//!   paper notes it "only noticed a significant difference in the
//!   performance of selection operations" when switching interfaces, which
//!   is why the dual path lives here, in selection.
//! * **Direct operation on compressed data** (Section 5.1): RLE columns
//!   evaluate each predicate once per *run* and emit position ranges;
//!   dictionary columns translate a string predicate into a code predicate
//!   evaluated once against the (tiny) sorted dictionary, then scan codes
//!   as integers.
//! * **Position-list representations** (Section 5.2): results accumulate
//!   into ranges, explicit arrays, or bitmaps depending on selectivity and
//!   run structure.

use crate::poslist::{PosList, EXPLICIT_LIMIT_DIVISOR};
use cvr_data::queries::Pred;
use cvr_index::bitmap::RidBitmap;
use cvr_storage::column::StoredColumn;
use cvr_storage::encode::{Column, IntColumn, StrColumn};
use cvr_storage::io::IoSession;

/// Accumulates ascending positions, upgrading from an explicit list to a
/// bitmap when the result grows dense.
pub struct PosAccumulator {
    universe: u32,
    limit: usize,
    explicit: Vec<u32>,
    bitmap: Option<RidBitmap>,
    /// All pushes so far form one contiguous run starting at `run_start`.
    contiguous: bool,
    next_expected: Option<u32>,
    run_start: u32,
}

impl PosAccumulator {
    /// Accumulator over a column of `universe` positions.
    pub fn new(universe: u32) -> PosAccumulator {
        PosAccumulator {
            universe,
            limit: (universe / EXPLICIT_LIMIT_DIVISOR).max(64) as usize,
            explicit: Vec::new(),
            bitmap: None,
            contiguous: true,
            next_expected: None,
            run_start: 0,
        }
    }

    /// Append one position (must be ascending).
    #[inline]
    pub fn push(&mut self, pos: u32) {
        match self.next_expected {
            None => self.run_start = pos,
            Some(e) if e != pos => self.contiguous = false,
            _ => {}
        }
        self.next_expected = Some(pos + 1);
        if let Some(bm) = &mut self.bitmap {
            bm.set(pos);
            return;
        }
        self.explicit.push(pos);
        if self.explicit.len() > self.limit {
            let mut bm = RidBitmap::new(self.universe);
            for &p in &self.explicit {
                bm.set(p);
            }
            self.explicit.clear();
            self.bitmap = Some(bm);
        }
    }

    /// Append the contiguous positions `[start, end)`.
    pub fn push_range(&mut self, start: u32, end: u32) {
        for p in start..end {
            self.push(p);
        }
    }

    /// Finish into the cheapest faithful representation.
    pub fn finish(self) -> PosList {
        if self.contiguous {
            if let Some(e) = self.next_expected {
                return PosList::Range { start: self.run_start, end: e, universe: self.universe };
            }
            return PosList::empty(self.universe);
        }
        match self.bitmap {
            Some(bm) => PosList::Bitmap(bm),
            None => PosList::Explicit { positions: self.explicit, universe: self.universe },
        }
    }
}

/// Scan `col` for positions where `test(value)` holds — integer columns.
///
/// `block` selects the `as_array` (true) or `get_next` (false) interface.
/// RLE columns operate run-at-a-time regardless (that *is* direct operation
/// on compressed data; there is no per-value interface to strip without
/// decompressing, which is what the `c` configurations do by storing plain).
pub fn scan_int_where(
    col: &StoredColumn,
    test: impl Fn(i64) -> bool,
    block: bool,
    io: &IoSession,
) -> PosList {
    col.charge_scan(io);
    let int = col.column.as_int();
    let mut acc = PosAccumulator::new(int.len() as u32);
    match int {
        IntColumn::Rle { runs, .. } => {
            for r in runs {
                if test(r.value) {
                    acc.push_range(r.start, r.start + r.len);
                }
            }
        }
        IntColumn::Plain { values, .. } => {
            if block {
                for (i, &v) in values.iter().enumerate() {
                    if test(v) {
                        acc.push(i as u32);
                    }
                }
            } else {
                // Tuple-at-a-time: one opaque virtual call per value
                // (black_box prevents devirtualization, so the call cost is
                // real, like C-Store's getNext interface).
                let mut src: Box<dyn Iterator<Item = i64>> = Box::new(values.iter().copied());
                let mut i = 0u32;
                while let Some(v) = std::hint::black_box(&mut src).next() {
                    if test(v) {
                        acc.push(i);
                    }
                    i += 1;
                }
            }
        }
    }
    acc.finish()
}

/// Scan a string column under `pred`.
///
/// Dictionary columns evaluate `pred` once per distinct value, then scan the
/// integer codes; plain string columns evaluate `pred` per value — the cost
/// difference Figure 8 exposes ("a predicate on the integer foreign key can
/// be performed faster than a predicate on a string attribute").
pub fn scan_str_pred(col: &StoredColumn, pred: &Pred, block: bool, io: &IoSession) -> PosList {
    col.charge_scan(io);
    let s = col.column.as_str();
    let mut acc = PosAccumulator::new(s.len() as u32);
    match s {
        StrColumn::Dict { dict, codes, .. } => {
            // Translate to code space (sorted dict ⇒ order-preserving).
            let matches: Vec<bool> = dict.iter().map(|d| pred.matches_str(d)).collect();
            // Contiguous code ranges are the common case for hierarchy
            // predicates; a boolean table covers the rest at the same cost.
            if block {
                for (i, &c) in codes.iter().enumerate() {
                    if matches[c as usize] {
                        acc.push(i as u32);
                    }
                }
            } else {
                let mut src: Box<dyn Iterator<Item = u32>> = Box::new(codes.iter().copied());
                let mut i = 0u32;
                while let Some(c) = std::hint::black_box(&mut src).next() {
                    if matches[c as usize] {
                        acc.push(i);
                    }
                    i += 1;
                }
            }
        }
        StrColumn::Plain { values, .. } => {
            if block {
                for (i, v) in values.iter().enumerate() {
                    if pred.matches_str(v) {
                        acc.push(i as u32);
                    }
                }
            } else {
                let mut src: Box<dyn Iterator<Item = &Box<str>>> = Box::new(values.iter());
                let mut i = 0u32;
                while let Some(v) = std::hint::black_box(&mut src).next() {
                    if pred.matches_str(v) {
                        acc.push(i);
                    }
                    i += 1;
                }
            }
        }
    }
    acc.finish()
}

/// Scan any column under a logical [`Pred`].
pub fn scan_pred(col: &StoredColumn, pred: &Pred, block: bool, io: &IoSession) -> PosList {
    match &col.column {
        Column::Int(_) => scan_int_where(col, |v| pred.matches_int(v), block, io),
        Column::Str(_) => scan_str_pred(col, pred, block, io),
    }
}

// ---------------------------------------------------------------------------
// Morsel-range kernels: the per-morsel halves of the scans above. Each scans
// positions `[start, end)` only, charges the proportional slice of the
// column's pages (`charge_scan_range`), and returns ascending positions as a
// plain vector — morsel fragments are small, short-lived, and merged in
// morsel order by the parallel executors.
// ---------------------------------------------------------------------------

/// Morsel-range counterpart of [`scan_int_where`]: positions in
/// `[start, end)` where `test(value)` holds.
pub fn scan_int_where_range(
    col: &StoredColumn,
    start: u32,
    end: u32,
    test: impl Fn(i64) -> bool,
    block: bool,
    io: &IoSession,
) -> Vec<u32> {
    col.charge_scan_range(start, end, io);
    let mut out = Vec::new();
    if start >= end {
        return out;
    }
    match col.column.as_int() {
        IntColumn::Rle { runs, .. } => {
            // Direct operation on compressed data, clamped to the morsel.
            let mut idx = col.column.as_int().run_containing(start);
            while idx < runs.len() && runs[idx].start < end {
                let r = &runs[idx];
                if test(r.value) {
                    out.extend(r.start.max(start)..(r.start + r.len).min(end));
                }
                idx += 1;
            }
        }
        IntColumn::Plain { values, .. } => {
            let slice = &values[start as usize..end as usize];
            if block {
                for (off, &v) in slice.iter().enumerate() {
                    if test(v) {
                        out.push(start + off as u32);
                    }
                }
            } else {
                let mut src: Box<dyn Iterator<Item = i64>> = Box::new(slice.iter().copied());
                let mut i = start;
                while let Some(v) = std::hint::black_box(&mut src).next() {
                    if test(v) {
                        out.push(i);
                    }
                    i += 1;
                }
            }
        }
    }
    out
}

/// Morsel-range counterpart of [`scan_str_pred`].
pub fn scan_str_pred_range(
    col: &StoredColumn,
    start: u32,
    end: u32,
    pred: &Pred,
    block: bool,
    io: &IoSession,
) -> Vec<u32> {
    col.charge_scan_range(start, end, io);
    let mut out = Vec::new();
    if start >= end {
        return out;
    }
    match col.column.as_str() {
        StrColumn::Dict { dict, codes, .. } => {
            let matches: Vec<bool> = dict.iter().map(|d| pred.matches_str(d)).collect();
            let slice = &codes[start as usize..end as usize];
            if block {
                for (off, &c) in slice.iter().enumerate() {
                    if matches[c as usize] {
                        out.push(start + off as u32);
                    }
                }
            } else {
                let mut src: Box<dyn Iterator<Item = u32>> = Box::new(slice.iter().copied());
                let mut i = start;
                while let Some(c) = std::hint::black_box(&mut src).next() {
                    if matches[c as usize] {
                        out.push(i);
                    }
                    i += 1;
                }
            }
        }
        StrColumn::Plain { values, .. } => {
            let slice = &values[start as usize..end as usize];
            if block {
                for (off, v) in slice.iter().enumerate() {
                    if pred.matches_str(v) {
                        out.push(start + off as u32);
                    }
                }
            } else {
                let mut src: Box<dyn Iterator<Item = &Box<str>>> = Box::new(slice.iter());
                let mut i = start;
                while let Some(v) = std::hint::black_box(&mut src).next() {
                    if pred.matches_str(v) {
                        out.push(i);
                    }
                    i += 1;
                }
            }
        }
    }
    out
}

/// Morsel-range counterpart of [`scan_pred`].
pub fn scan_pred_range(
    col: &StoredColumn,
    start: u32,
    end: u32,
    pred: &Pred,
    block: bool,
    io: &IoSession,
) -> Vec<u32> {
    match &col.column {
        Column::Int(_) => scan_int_where_range(col, start, end, |v| pred.matches_int(v), block, io),
        Column::Str(_) => scan_str_pred_range(col, start, end, pred, block, io),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::value::Value;
    use cvr_storage::encode::{IntColumn, StrColumn};

    fn int_col(values: Vec<i64>, compress: bool) -> StoredColumn {
        let c = if compress { IntColumn::auto(values) } else { IntColumn::plain(values) };
        StoredColumn::new("c", Column::Int(c))
    }

    fn str_col(values: Vec<String>, compress: bool) -> StoredColumn {
        let c = if compress { StrColumn::dict(&values) } else { StrColumn::plain(values) };
        StoredColumn::new("c", Column::Str(c))
    }

    fn reference(values: &[i64], test: impl Fn(i64) -> bool) -> Vec<u32> {
        values.iter().enumerate().filter_map(|(i, &v)| test(v).then_some(i as u32)).collect()
    }

    #[test]
    fn plain_scan_block_and_tuple_agree() {
        let values: Vec<i64> = (0..10_000).map(|i| (i * 37) % 100).collect();
        let expected = reference(&values, |v| (10..=20).contains(&v));
        let col = int_col(values, false);
        let io = IoSession::unmetered();
        let a = scan_int_where(&col, |v| (10..=20).contains(&v), true, &io);
        let b = scan_int_where(&col, |v| (10..=20).contains(&v), false, &io);
        assert_eq!(a.to_vec(), expected);
        assert_eq!(b.to_vec(), expected);
    }

    #[test]
    fn rle_scan_emits_ranges() {
        // Sorted column: one matching stretch.
        let mut values = Vec::new();
        for v in 0..100i64 {
            values.extend(std::iter::repeat_n(v, 50));
        }
        let col = int_col(values.clone(), true);
        assert!(col.column.as_int().is_rle());
        let io = IoSession::unmetered();
        let pl = scan_int_where(&col, |v| (10..=19).contains(&v), true, &io);
        assert!(matches!(pl, PosList::Range { .. }), "sorted match must be a range");
        assert_eq!(pl.to_vec(), reference(&values, |v| (10..=19).contains(&v)));
    }

    #[test]
    fn rle_scan_matches_plain_scan() {
        let mut values = Vec::new();
        for v in 0..50i64 {
            values.extend(std::iter::repeat_n(v % 7, 13));
        }
        let io = IoSession::unmetered();
        let rle = int_col(values.clone(), true);
        let plain = int_col(values.clone(), false);
        let a = scan_int_where(&rle, |v| v == 3, true, &io);
        let b = scan_int_where(&plain, |v| v == 3, true, &io);
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn dict_scan_matches_plain_scan() {
        let values: Vec<String> = (0..5000).map(|i| format!("R{}", i % 7)).collect();
        let pred = Pred::InSet(vec![Value::str("R2"), Value::str("R5")]);
        let io = IoSession::unmetered();
        let d = str_col(values.clone(), true);
        let p = str_col(values.clone(), false);
        for block in [true, false] {
            let a = scan_str_pred(&d, &pred, block, &io);
            let b = scan_str_pred(&p, &pred, block, &io);
            assert_eq!(a.to_vec(), b.to_vec());
            let expected = (0..5000).filter(|i| matches!(i % 7, 2 | 5)).count() as u32;
            assert_eq!(a.count(), expected);
        }
    }

    #[test]
    fn dense_result_becomes_bitmap() {
        let values: Vec<i64> = (0..10_000).map(|i| i % 2).collect();
        let col = int_col(values, false);
        let io = IoSession::unmetered();
        let pl = scan_int_where(&col, |v| v == 0, true, &io);
        assert!(matches!(pl, PosList::Bitmap(_)));
        assert_eq!(pl.count(), 5_000);
    }

    #[test]
    fn sparse_result_stays_explicit() {
        let values: Vec<i64> = (0..10_000).collect();
        let col = int_col(values, false);
        let io = IoSession::unmetered();
        let pl = scan_int_where(&col, |v| v % 1000 == 17, true, &io);
        assert!(matches!(pl, PosList::Explicit { .. }));
        assert_eq!(pl.count(), 10);
    }

    #[test]
    fn full_match_is_range() {
        let col = int_col((0..100).collect(), false);
        let io = IoSession::unmetered();
        let pl = scan_int_where(&col, |_| true, true, &io);
        assert!(matches!(pl, PosList::Range { start: 0, end: 100, .. }));
    }

    #[test]
    fn scan_charges_column_io() {
        let col = int_col((0..200_000).collect(), false);
        let io = IoSession::unmetered();
        scan_int_where(&col, |_| false, true, &io);
        assert_eq!(io.stats().bytes_read, col.bytes());
    }

    #[test]
    fn range_kernels_tile_to_the_full_scan() {
        // Concatenating morsel-range results over a tiling of [0, n) must
        // equal the whole-column scan, for every encoding and interface.
        let n = 10_000u32;
        let ints: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 100).collect();
        let mut runs = Vec::new();
        for v in 0..100i64 {
            runs.extend(std::iter::repeat_n(v % 9, 100));
        }
        let strs: Vec<String> = (0..n).map(|i| format!("R{}", i % 7)).collect();
        let bounds = [0u32, 1, 999, 1_000, 4_097, 9_999, n];
        let io = IoSession::unmetered();
        let pred = Pred::InSet(vec![Value::str("R2"), Value::str("R5")]);
        for block in [true, false] {
            for col in [int_col(ints.clone(), false), int_col(runs.clone(), true)] {
                let full = scan_int_where(&col, |v| (3..=40).contains(&v), block, &io).to_vec();
                let mut tiled = Vec::new();
                for w in bounds.windows(2) {
                    tiled.extend(scan_int_where_range(
                        &col,
                        w[0],
                        w[1],
                        |v| (3..=40).contains(&v),
                        block,
                        &io,
                    ));
                }
                assert_eq!(tiled, full);
            }
            for col in [str_col(strs.clone(), true), str_col(strs.clone(), false)] {
                let full = scan_str_pred(&col, &pred, block, &io).to_vec();
                let mut tiled = Vec::new();
                for w in bounds.windows(2) {
                    tiled.extend(scan_pred_range(&col, w[0], w[1], &pred, block, &io));
                }
                assert_eq!(tiled, full);
            }
        }
    }

    #[test]
    fn empty_range_scans_nothing() {
        let col = int_col((0..100).collect(), false);
        let io = IoSession::unmetered();
        assert!(scan_int_where_range(&col, 40, 40, |_| true, true, &io).is_empty());
    }

    #[test]
    fn accumulator_contiguity() {
        let mut acc = PosAccumulator::new(100);
        acc.push_range(5, 10);
        assert!(matches!(acc.finish(), PosList::Range { start: 5, end: 10, .. }));
        let mut acc = PosAccumulator::new(100);
        acc.push(5);
        acc.push(7);
        assert!(matches!(acc.finish(), PosList::Explicit { .. }));
        let acc = PosAccumulator::new(100);
        assert!(acc.finish().is_empty());
    }
}
