//! Predicate application over encoded columns → position lists.
//!
//! This is where three of the paper's four optimizations physically live:
//!
//! * **Block iteration vs tuple iteration** (Section 5.3): every scan has
//!   two code paths — a block path (word-parallel kernels over native
//!   slices and packed words, see [`crate::kernels`]) and `get_next` (one
//!   virtual call per value through a boxed iterator). The paper notes it
//!   "only noticed a significant difference in the performance of selection
//!   operations" when switching interfaces, which is why the dual path
//!   lives here, in selection. The tuple path is deliberately left
//!   value-at-a-time — it *is* the paper's contrast.
//! * **Direct operation on compressed data** (Section 5.1): RLE columns
//!   evaluate each predicate once per *run* and emit position ranges;
//!   frame-of-reference packed columns are compared 64 bits of packed image
//!   at a time without unpacking; dictionary columns translate a string
//!   predicate into a code predicate evaluated once against the (tiny)
//!   sorted dictionary, then scan the packed codes as integers — with
//!   contiguous matching code ranges (the common hierarchy-predicate case)
//!   collapsing to a single SWAR range kernel.
//! * **Position-list representations** (Section 5.2): results accumulate
//!   into ranges, explicit arrays, or bitmaps depending on selectivity and
//!   run structure — and kernel results land as whole 64-bit mask words
//!   ([`PosAccumulator::push_mask`]), never through a per-bit path.
//!
//! Every (encoding × interface) combination funnels through one pair of
//! drivers — [`scan_int_into`] and [`scan_str_into`] — parameterized by a
//! [`PosSink`], so whole-column scans (into a [`PosAccumulator`]) and
//! morsel-range scans (into a plain `Vec<u32>`) share the same loops.

use crate::kernels::{self, CmpOp};
use crate::poslist::{PosList, EXPLICIT_LIMIT_DIVISOR};
use cvr_data::queries::Pred;
use cvr_data::value::Value;
use cvr_index::bitmap::RidBitmap;
use cvr_storage::column::StoredColumn;
use cvr_storage::encode::{Column, IntColumn, StrColumn};
use cvr_storage::io::IoSession;

/// Accumulates ascending positions, upgrading from an explicit list to a
/// bitmap when the result grows dense. Accepts single positions, whole
/// ranges, and 64-value selection masks; the bulk paths touch `O(words)`
/// state, not `O(positions)`.
pub struct PosAccumulator {
    universe: u32,
    limit: usize,
    explicit: Vec<u32>,
    bitmap: Option<RidBitmap>,
    /// All pushes so far form one contiguous run starting at `run_start`.
    contiguous: bool,
    next_expected: Option<u32>,
    run_start: u32,
}

impl PosAccumulator {
    /// Accumulator over a column of `universe` positions.
    pub fn new(universe: u32) -> PosAccumulator {
        PosAccumulator {
            universe,
            limit: (universe / EXPLICIT_LIMIT_DIVISOR).max(64) as usize,
            explicit: Vec::new(),
            bitmap: None,
            contiguous: true,
            next_expected: None,
            run_start: 0,
        }
    }

    fn upgrade_to_bitmap(&mut self) {
        let mut bm = RidBitmap::new(self.universe);
        for &p in &self.explicit {
            bm.set(p);
        }
        self.explicit.clear();
        self.bitmap = Some(bm);
    }

    /// Append one position (must be ascending).
    #[inline]
    pub fn push(&mut self, pos: u32) {
        match self.next_expected {
            None => self.run_start = pos,
            Some(e) if e != pos => self.contiguous = false,
            _ => {}
        }
        self.next_expected = Some(pos + 1);
        if let Some(bm) = &mut self.bitmap {
            bm.set(pos);
            return;
        }
        self.explicit.push(pos);
        if self.explicit.len() > self.limit {
            self.upgrade_to_bitmap();
        }
    }

    /// Append the contiguous positions `[start, end)` in `O(words)`: once
    /// the accumulator has upgraded to a bitmap, whole 64-bit words are
    /// filled at a time (the RLE run-scan fast path).
    pub fn push_range(&mut self, start: u32, end: u32) {
        if start >= end {
            return;
        }
        match self.next_expected {
            None => self.run_start = start,
            Some(e) if e != start => self.contiguous = false,
            _ => {}
        }
        self.next_expected = Some(end);
        let count = (end - start) as usize;
        if self.bitmap.is_none() && self.explicit.len() + count > self.limit {
            self.upgrade_to_bitmap();
        }
        match &mut self.bitmap {
            Some(bm) => bm.set_range(start, end),
            None => self.explicit.extend(start..end),
        }
    }

    /// Append a 64-value selection mask: bit `j` selects position
    /// `base + j`. Masks must arrive in ascending position order (like the
    /// kernels emit them); dense results are ORed into the bitmap word-wise.
    pub fn push_mask(&mut self, base: u32, mask: u64) {
        if mask == 0 {
            return;
        }
        let first = base + mask.trailing_zeros();
        let last = base + 63 - mask.leading_zeros();
        match self.next_expected {
            None => self.run_start = first,
            Some(e) if e != first => self.contiguous = false,
            _ => {}
        }
        // The mask's own bits must also form one unbroken run.
        let norm = mask >> mask.trailing_zeros();
        if norm & norm.wrapping_add(1) != 0 {
            self.contiguous = false;
        }
        self.next_expected = Some(last + 1);
        let count = mask.count_ones() as usize;
        if self.bitmap.is_none() && self.explicit.len() + count > self.limit {
            self.upgrade_to_bitmap();
        }
        match &mut self.bitmap {
            Some(bm) => bm.or_mask_at(base, mask),
            None => {
                let mut m = mask;
                while m != 0 {
                    self.explicit.push(base + m.trailing_zeros());
                    m &= m - 1;
                }
            }
        }
    }

    /// Finish into the cheapest faithful representation.
    pub fn finish(self) -> PosList {
        if self.contiguous {
            if let Some(e) = self.next_expected {
                return PosList::Range { start: self.run_start, end: e, universe: self.universe };
            }
            return PosList::empty(self.universe);
        }
        match self.bitmap {
            Some(bm) => PosList::Bitmap(bm),
            None => PosList::Explicit { positions: self.explicit, universe: self.universe },
        }
    }
}

/// Destination of a scan: either a [`PosAccumulator`] (whole-column scans)
/// or a plain ascending `Vec<u32>` (morsel fragments). Implementations must
/// tolerate all-zero masks.
pub trait PosSink {
    /// Append one position (ascending).
    fn push(&mut self, pos: u32);
    /// Append the contiguous positions `[start, end)`.
    fn push_range(&mut self, start: u32, end: u32);
    /// Append a 64-value selection mask anchored at `base`.
    fn push_mask(&mut self, base: u32, mask: u64);
}

impl PosSink for PosAccumulator {
    #[inline]
    fn push(&mut self, pos: u32) {
        PosAccumulator::push(self, pos)
    }

    fn push_range(&mut self, start: u32, end: u32) {
        PosAccumulator::push_range(self, start, end)
    }

    fn push_mask(&mut self, base: u32, mask: u64) {
        PosAccumulator::push_mask(self, base, mask)
    }
}

impl PosSink for Vec<u32> {
    #[inline]
    fn push(&mut self, pos: u32) {
        Vec::push(self, pos)
    }

    fn push_range(&mut self, start: u32, end: u32) {
        self.extend(start..end)
    }

    fn push_mask(&mut self, base: u32, mut mask: u64) {
        while mask != 0 {
            Vec::push(self, base + mask.trailing_zeros());
            mask &= mask - 1;
        }
    }
}

/// An integer predicate as the scan layer sees it: either a contiguous
/// interval (SWAR-eligible — equality, comparisons, between, and rewritten
/// join predicates all land here) or an opaque test (hash-set membership,
/// non-contiguous IN-lists).
pub enum IntScanPred<'a> {
    /// `lo <= v <= hi`, inclusive. `lo > hi` matches nothing.
    Range {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Arbitrary per-value test.
    Test(&'a (dyn Fn(i64) -> bool + 'a)),
}

impl IntScanPred<'_> {
    /// Evaluate against one value (the tuple-at-a-time and RLE-run path).
    #[inline]
    pub fn matches(&self, v: i64) -> bool {
        match self {
            IntScanPred::Range { lo, hi } => v >= *lo && v <= *hi,
            IntScanPred::Test(f) => f(v),
        }
    }

    /// The inclusive interval equivalent to `pred` over integers, when one
    /// exists: `Eq`/`Between`/`Lt` always, `InSet` when its members are
    /// contiguous. `None` means the predicate needs the opaque-test path.
    pub fn range_of(pred: &Pred) -> Option<(i64, i64)> {
        let int = |v: &Value| match v {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        };
        match pred {
            Pred::Eq(v) => int(v).map(|i| (i, i)),
            Pred::Between(lo, hi) => Some((int(lo)?, int(hi)?)),
            Pred::Lt(v) => {
                let x = int(v)?;
                // `v < i64::MIN` is empty; encode as an empty interval.
                Some(if x == i64::MIN { (1, 0) } else { (i64::MIN, x - 1) })
            }
            Pred::InSet(vs) => {
                let mut members: Vec<i64> = Vec::with_capacity(vs.len());
                for v in vs {
                    members.push(int(v)?);
                }
                members.sort_unstable();
                members.dedup();
                let (&lo, &hi) = (members.first()?, members.last()?);
                // Span in i128: `hi - lo` overflows i64 for wide-spread sets.
                let span = hi as i128 - lo as i128 + 1;
                (span == members.len() as i128).then_some((lo, hi))
            }
        }
    }
}

/// Map a value-space interval to code space for a packed column with frame
/// of reference `reference`; `None` when nothing can match.
fn code_bounds(reference: i64, max_code: u64, lo: i64, hi: i64) -> Option<(u64, u64)> {
    let lo = (lo as i128 - reference as i128).max(0);
    let hi = hi as i128 - reference as i128;
    if lo > hi || lo > max_code as i128 || hi < 0 {
        return None;
    }
    Some((lo as u64, (hi as u128).min(max_code as u128) as u64))
}

/// Rows scanned between cancellation polls when a
/// [scan watch](crate::ctx::watch_scans) is active. A multiple of 64 so
/// chunk boundaries stay mask-word friendly; small enough that even a
/// tuple-at-a-time scan of one chunk completes in well under a millisecond.
pub const SCAN_POLL_ROWS: u32 = 1 << 16;

/// The unified integer scan driver: every encoding × interface combination
/// for positions `[start, end)` of `col`, emitting into `sink`. Block mode
/// routes through the word-parallel kernels; tuple mode keeps the paper's
/// one-virtual-call-per-value `get_next` loop.
///
/// When the executing thread has adopted a scan watch, oversized ranges are
/// walked in [`SCAN_POLL_ROWS`] chunks with a cancellation poll between
/// them — chunked and unchunked scans emit identical positions (range
/// tiling is exactly the morsel decomposition already tested), so this only
/// bounds abort latency, never changes results.
pub fn scan_int_into(
    col: &IntColumn,
    start: u32,
    end: u32,
    pred: &IntScanPred<'_>,
    block: bool,
    sink: &mut impl PosSink,
) {
    if end.saturating_sub(start) > SCAN_POLL_ROWS && crate::ctx::scan_watch_active() {
        let mut s = start;
        while s < end {
            crate::ctx::poll_scan_watch();
            let e = s.saturating_add(SCAN_POLL_ROWS).min(end);
            scan_int_chunk(col, s, e, pred, block, sink);
            s = e;
        }
        return;
    }
    scan_int_chunk(col, start, end, pred, block, sink);
}

fn scan_int_chunk(
    col: &IntColumn,
    start: u32,
    end: u32,
    pred: &IntScanPred<'_>,
    block: bool,
    sink: &mut impl PosSink,
) {
    if start >= end {
        return;
    }
    match col {
        IntColumn::Rle { runs, .. } => {
            // Run kernel: one predicate test per run, one O(words) range
            // push per match — direct operation on compressed data
            // regardless of the iteration interface (there is no per-value
            // interface to strip without decompressing, which is what the
            // `c` configurations do by storing plain).
            let mut idx = if start == 0 { 0 } else { col.run_containing(start) };
            while idx < runs.len() && runs[idx].start < end {
                let r = &runs[idx];
                if pred.matches(r.value) {
                    sink.push_range(r.start.max(start), (r.start + r.len).min(end));
                }
                idx += 1;
            }
        }
        IntColumn::Plain { values, .. } => {
            let slice = &values[start as usize..end as usize];
            if block {
                match pred {
                    IntScanPred::Range { lo, hi } => {
                        kernels::slice_cmp_masks(slice, start, *lo, *hi, |b, m| {
                            sink.push_mask(b, m)
                        });
                    }
                    IntScanPred::Test(f) => {
                        kernels::slice_test_masks(slice, start, f, |b, m| sink.push_mask(b, m));
                    }
                }
            } else {
                // Tuple-at-a-time: one opaque virtual call per value
                // (black_box prevents devirtualization, so the call cost is
                // real, like C-Store's getNext interface).
                let mut src: Box<dyn Iterator<Item = i64>> = Box::new(slice.iter().copied());
                let mut i = start;
                while let Some(v) = std::hint::black_box(&mut src).next() {
                    if pred.matches(v) {
                        sink.push(i);
                    }
                    i += 1;
                }
            }
        }
        IntColumn::Packed { reference, packed } => {
            if block {
                match pred {
                    IntScanPred::Range { lo, hi } => {
                        // SWAR compare on the packed image, 64 bits at a
                        // time, without unpacking a single value.
                        if let Some((lo_c, hi_c)) =
                            code_bounds(*reference, packed.max_code(), *lo, *hi)
                        {
                            kernels::packed_cmp_masks(
                                packed,
                                start,
                                end,
                                CmpOp::Range(lo_c, hi_c),
                                |b, m| sink.push_mask(b, m),
                            );
                        }
                    }
                    IntScanPred::Test(f) => {
                        let r = *reference;
                        kernels::packed_test_masks(
                            packed,
                            start,
                            end,
                            |c| f(r + c as i64),
                            |b, m| sink.push_mask(b, m),
                        );
                    }
                }
            } else {
                let r = *reference;
                let mut src: Box<dyn Iterator<Item = u64>> =
                    Box::new(packed.iter_range(start, end));
                let mut i = start;
                while let Some(c) = std::hint::black_box(&mut src).next() {
                    if pred.matches(r + c as i64) {
                        sink.push(i);
                    }
                    i += 1;
                }
            }
        }
    }
}

/// How a string predicate maps onto dictionary code space.
enum CodePred {
    /// No dictionary entry matches.
    Empty,
    /// The matching codes form one contiguous range (hierarchy predicates
    /// over the sorted dictionary): a single SWAR range kernel suffices.
    Range(u64, u64),
    /// Non-contiguous matches: per-code boolean table.
    Table(Vec<bool>),
}

impl CodePred {
    /// Evaluate `pred` once per distinct dictionary value and classify the
    /// matching code set. The sorted dictionary makes codes
    /// order-preserving, so hierarchy predicates (`=`, `BETWEEN`, prefix
    /// ranges) produce contiguous code runs — detected here and scanned
    /// with a single range kernel instead of a per-code table lookup.
    fn compile(dict: &[Box<str>], pred: &Pred) -> CodePred {
        let matches: Vec<bool> = dict.iter().map(|d| pred.matches_str(d)).collect();
        let Some(first) = matches.iter().position(|&b| b) else {
            return CodePred::Empty;
        };
        let last = matches.iter().rposition(|&b| b).expect("a match exists");
        if matches[first..=last].iter().all(|&b| b) {
            return CodePred::Range(first as u64, last as u64);
        }
        CodePred::Table(matches)
    }
}

/// The unified string scan driver, mirroring [`scan_int_into`]: dictionary
/// columns scan their packed codes through the integer kernels; plain
/// string columns evaluate the predicate per value — the cost difference
/// Figure 8 exposes ("a predicate on the integer foreign key can be
/// performed faster than a predicate on a string attribute"). Chunks under
/// an active scan watch exactly like [`scan_int_into`].
pub fn scan_str_into(
    col: &StrColumn,
    start: u32,
    end: u32,
    pred: &Pred,
    block: bool,
    sink: &mut impl PosSink,
) {
    if end.saturating_sub(start) > SCAN_POLL_ROWS && crate::ctx::scan_watch_active() {
        let mut s = start;
        while s < end {
            crate::ctx::poll_scan_watch();
            let e = s.saturating_add(SCAN_POLL_ROWS).min(end);
            scan_str_chunk(col, s, e, pred, block, sink);
            s = e;
        }
        return;
    }
    scan_str_chunk(col, start, end, pred, block, sink);
}

fn scan_str_chunk(
    col: &StrColumn,
    start: u32,
    end: u32,
    pred: &Pred,
    block: bool,
    sink: &mut impl PosSink,
) {
    if start >= end {
        return;
    }
    match col {
        StrColumn::Dict { dict, codes } => match CodePred::compile(dict, pred) {
            CodePred::Empty => {}
            CodePred::Range(lo, hi) => {
                if block {
                    kernels::packed_cmp_masks(codes, start, end, CmpOp::Range(lo, hi), |b, m| {
                        sink.push_mask(b, m)
                    });
                } else {
                    let mut src: Box<dyn Iterator<Item = u64>> =
                        Box::new(codes.iter_range(start, end));
                    let mut i = start;
                    while let Some(c) = std::hint::black_box(&mut src).next() {
                        if c >= lo && c <= hi {
                            sink.push(i);
                        }
                        i += 1;
                    }
                }
            }
            CodePred::Table(matches) => {
                if block {
                    kernels::packed_test_masks(
                        codes,
                        start,
                        end,
                        |c| matches[c as usize],
                        |b, m| sink.push_mask(b, m),
                    );
                } else {
                    let mut src: Box<dyn Iterator<Item = u64>> =
                        Box::new(codes.iter_range(start, end));
                    let mut i = start;
                    while let Some(c) = std::hint::black_box(&mut src).next() {
                        if matches[c as usize] {
                            sink.push(i);
                        }
                        i += 1;
                    }
                }
            }
        },
        StrColumn::Plain { values, .. } => {
            let slice = &values[start as usize..end as usize];
            if block {
                for (off, v) in slice.iter().enumerate() {
                    if pred.matches_str(v) {
                        sink.push(start + off as u32);
                    }
                }
            } else {
                let mut src: Box<dyn Iterator<Item = &Box<str>>> = Box::new(slice.iter());
                let mut i = start;
                while let Some(v) = std::hint::black_box(&mut src).next() {
                    if pred.matches_str(v) {
                        sink.push(i);
                    }
                    i += 1;
                }
            }
        }
    }
}

/// Scan `col` under an [`IntScanPred`] — the kernel-aware entry point the
/// join pipelines use (between-rewritten join predicates arrive as
/// [`IntScanPred::Range`] and hit the SWAR path).
pub fn scan_int(
    col: &StoredColumn,
    pred: &IntScanPred<'_>,
    block: bool,
    io: &IoSession,
) -> PosList {
    col.charge_scan(io);
    let int = col.column.as_int();
    let n = int.len() as u32;
    let mut acc = PosAccumulator::new(n);
    scan_int_into(int, 0, n, pred, block, &mut acc);
    acc.finish()
}

/// Morsel-range counterpart of [`scan_int`]: positions `[start, end)` only,
/// charging the proportional slice of the column's pages
/// (`charge_scan_range`) and returning ascending positions as a plain
/// vector — morsel fragments are small, short-lived, and merged in morsel
/// order by the parallel executors.
pub fn scan_int_range(
    col: &StoredColumn,
    start: u32,
    end: u32,
    pred: &IntScanPred<'_>,
    block: bool,
    io: &IoSession,
) -> Vec<u32> {
    col.charge_scan_range(start, end, io);
    let mut out = Vec::new();
    scan_int_into(
        col.column.as_int(),
        start,
        end.min(col.column.len() as u32),
        pred,
        block,
        &mut out,
    );
    out
}

/// Scan `col` for positions where `test(value)` holds — integer columns
/// under an opaque predicate. (`block` selects the kernel or `get_next`
/// interface; structured predicates should use [`scan_int`] so the SWAR
/// kernels apply.)
pub fn scan_int_where(
    col: &StoredColumn,
    test: impl Fn(i64) -> bool,
    block: bool,
    io: &IoSession,
) -> PosList {
    scan_int(col, &IntScanPred::Test(&test), block, io)
}

/// Morsel-range counterpart of [`scan_int_where`].
pub fn scan_int_where_range(
    col: &StoredColumn,
    start: u32,
    end: u32,
    test: impl Fn(i64) -> bool,
    block: bool,
    io: &IoSession,
) -> Vec<u32> {
    scan_int_range(col, start, end, &IntScanPred::Test(&test), block, io)
}

/// Scan a string column under `pred`.
///
/// Dictionary columns evaluate `pred` once per distinct value, then scan
/// the packed integer codes — through a single range kernel when the
/// matching codes are contiguous.
pub fn scan_str_pred(col: &StoredColumn, pred: &Pred, block: bool, io: &IoSession) -> PosList {
    col.charge_scan(io);
    let s = col.column.as_str();
    let n = s.len() as u32;
    let mut acc = PosAccumulator::new(n);
    scan_str_into(s, 0, n, pred, block, &mut acc);
    acc.finish()
}

/// Morsel-range counterpart of [`scan_str_pred`].
pub fn scan_str_pred_range(
    col: &StoredColumn,
    start: u32,
    end: u32,
    pred: &Pred,
    block: bool,
    io: &IoSession,
) -> Vec<u32> {
    col.charge_scan_range(start, end, io);
    let mut out = Vec::new();
    scan_str_into(
        col.column.as_str(),
        start,
        end.min(col.column.len() as u32),
        pred,
        block,
        &mut out,
    );
    out
}

/// Scan any column under a logical [`Pred`], compiling integer predicates
/// to their interval form (SWAR-eligible) when possible.
pub fn scan_pred(col: &StoredColumn, pred: &Pred, block: bool, io: &IoSession) -> PosList {
    match &col.column {
        Column::Int(_) => match IntScanPred::range_of(pred) {
            Some((lo, hi)) => scan_int(col, &IntScanPred::Range { lo, hi }, block, io),
            None => scan_int_where(col, |v| pred.matches_int(v), block, io),
        },
        Column::Str(_) => scan_str_pred(col, pred, block, io),
    }
}

/// Morsel-range counterpart of [`scan_pred`].
pub fn scan_pred_range(
    col: &StoredColumn,
    start: u32,
    end: u32,
    pred: &Pred,
    block: bool,
    io: &IoSession,
) -> Vec<u32> {
    match &col.column {
        Column::Int(_) => match IntScanPred::range_of(pred) {
            Some((lo, hi)) => {
                scan_int_range(col, start, end, &IntScanPred::Range { lo, hi }, block, io)
            }
            None => scan_int_where_range(col, start, end, |v| pred.matches_int(v), block, io),
        },
        Column::Str(_) => scan_str_pred_range(col, start, end, pred, block, io),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::value::Value;
    use cvr_storage::encode::{IntColumn, StrColumn};

    fn int_col(values: Vec<i64>, compress: bool) -> StoredColumn {
        let c = if compress { IntColumn::auto(values) } else { IntColumn::plain(values) };
        StoredColumn::new("c", Column::Int(c))
    }

    fn packed_col(values: Vec<i64>) -> StoredColumn {
        let c = IntColumn::packed(&values).expect("values must pack");
        StoredColumn::new("c", Column::Int(c))
    }

    fn str_col(values: Vec<String>, compress: bool) -> StoredColumn {
        let c = if compress { StrColumn::dict(&values) } else { StrColumn::plain(values) };
        StoredColumn::new("c", Column::Str(c))
    }

    fn reference(values: &[i64], test: impl Fn(i64) -> bool) -> Vec<u32> {
        values.iter().enumerate().filter_map(|(i, &v)| test(v).then_some(i as u32)).collect()
    }

    #[test]
    fn plain_scan_block_and_tuple_agree() {
        let values: Vec<i64> = (0..10_000).map(|i| (i * 37) % 100).collect();
        let expected = reference(&values, |v| (10..=20).contains(&v));
        let col = int_col(values, false);
        let io = IoSession::unmetered();
        let a = scan_int_where(&col, |v| (10..=20).contains(&v), true, &io);
        let b = scan_int_where(&col, |v| (10..=20).contains(&v), false, &io);
        assert_eq!(a.to_vec(), expected);
        assert_eq!(b.to_vec(), expected);
    }

    #[test]
    fn packed_scan_all_interfaces_agree_with_plain() {
        let values: Vec<i64> = (0..10_000).map(|i| (i * 37) % 100).collect();
        let packed = packed_col(values.clone());
        assert!(packed.column.as_int().is_packed());
        let plain = int_col(values, false);
        let io = IoSession::unmetered();
        let range = IntScanPred::Range { lo: 10, hi: 20 };
        let test = |v: i64| (10..=20).contains(&v);
        for block in [true, false] {
            let want = scan_int_where(&plain, test, block, &io).to_vec();
            assert_eq!(scan_int(&packed, &range, block, &io).to_vec(), want, "range b={block}");
            assert_eq!(scan_int_where(&packed, test, block, &io).to_vec(), want, "test b={block}");
        }
    }

    #[test]
    fn rle_scan_emits_ranges() {
        // Sorted column: one matching stretch.
        let mut values = Vec::new();
        for v in 0..100i64 {
            values.extend(std::iter::repeat_n(v, 50));
        }
        let col = int_col(values.clone(), true);
        assert!(col.column.as_int().is_rle());
        let io = IoSession::unmetered();
        let pl = scan_int_where(&col, |v| (10..=19).contains(&v), true, &io);
        assert!(matches!(pl, PosList::Range { .. }), "sorted match must be a range");
        assert_eq!(pl.to_vec(), reference(&values, |v| (10..=19).contains(&v)));
    }

    #[test]
    fn rle_scan_matches_plain_scan() {
        let mut values = Vec::new();
        for v in 0..50i64 {
            values.extend(std::iter::repeat_n(v % 7, 13));
        }
        let io = IoSession::unmetered();
        let rle = int_col(values.clone(), true);
        let plain = int_col(values.clone(), false);
        let a = scan_int_where(&rle, |v| v == 3, true, &io);
        let b = scan_int_where(&plain, |v| v == 3, true, &io);
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn dict_scan_matches_plain_scan() {
        let values: Vec<String> = (0..5000).map(|i| format!("R{}", i % 7)).collect();
        let pred = Pred::InSet(vec![Value::str("R2"), Value::str("R5")]);
        let io = IoSession::unmetered();
        let d = str_col(values.clone(), true);
        let p = str_col(values.clone(), false);
        for block in [true, false] {
            let a = scan_str_pred(&d, &pred, block, &io);
            let b = scan_str_pred(&p, &pred, block, &io);
            assert_eq!(a.to_vec(), b.to_vec());
            let expected = (0..5000).filter(|i| matches!(i % 7, 2 | 5)).count() as u32;
            assert_eq!(a.count(), expected);
        }
    }

    #[test]
    fn dict_contiguous_predicate_uses_range_and_agrees() {
        // "R2".."R4" is contiguous in the sorted dictionary — the range
        // kernel path; a disjoint IN-set exercises the table path. Both
        // must agree with plain strings.
        let values: Vec<String> = (0..3000).map(|i| format!("R{}", i % 9)).collect();
        let io = IoSession::unmetered();
        let d = str_col(values.clone(), true);
        let p = str_col(values, false);
        let contiguous = Pred::Between(Value::str("R2"), Value::str("R4"));
        let disjoint = Pred::InSet(vec![Value::str("R0"), Value::str("R8")]);
        for pred in [contiguous, disjoint] {
            for block in [true, false] {
                assert_eq!(
                    scan_str_pred(&d, &pred, block, &io).to_vec(),
                    scan_str_pred(&p, &pred, block, &io).to_vec(),
                    "{pred:?} block={block}"
                );
            }
        }
    }

    #[test]
    fn dense_result_becomes_bitmap() {
        let values: Vec<i64> = (0..10_000).map(|i| i % 2).collect();
        let col = int_col(values, false);
        let io = IoSession::unmetered();
        let pl = scan_int_where(&col, |v| v == 0, true, &io);
        assert!(matches!(pl, PosList::Bitmap(_)));
        assert_eq!(pl.count(), 5_000);
    }

    #[test]
    fn sparse_result_stays_explicit() {
        let values: Vec<i64> = (0..10_000).collect();
        let col = int_col(values, false);
        let io = IoSession::unmetered();
        let pl = scan_int_where(&col, |v| v % 1000 == 17, true, &io);
        assert!(matches!(pl, PosList::Explicit { .. }));
        assert_eq!(pl.count(), 10);
    }

    #[test]
    fn full_match_is_range() {
        let col = int_col((0..100).collect(), false);
        let io = IoSession::unmetered();
        let pl = scan_int_where(&col, |_| true, true, &io);
        assert!(matches!(pl, PosList::Range { start: 0, end: 100, .. }));
    }

    #[test]
    fn scan_charges_column_io() {
        let col = int_col((0..200_000).collect(), false);
        let io = IoSession::unmetered();
        scan_int_where(&col, |_| false, true, &io);
        assert_eq!(io.stats().bytes_read, col.bytes());
    }

    #[test]
    fn range_kernels_tile_to_the_full_scan() {
        // Concatenating morsel-range results over a tiling of [0, n) must
        // equal the whole-column scan, for every encoding and interface.
        let n = 10_000u32;
        let ints: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 100).collect();
        let mut runs = Vec::new();
        for v in 0..100i64 {
            runs.extend(std::iter::repeat_n(v % 9, 100));
        }
        let strs: Vec<String> = (0..n).map(|i| format!("R{}", i % 7)).collect();
        let bounds = [0u32, 1, 999, 1_000, 4_097, 9_999, n];
        let io = IoSession::unmetered();
        let pred = Pred::InSet(vec![Value::str("R2"), Value::str("R5")]);
        for block in [true, false] {
            for col in [
                int_col(ints.clone(), false),
                int_col(runs.clone(), true),
                packed_col(ints.clone()),
            ] {
                let full = scan_int_where(&col, |v| (3..=40).contains(&v), block, &io).to_vec();
                let mut tiled = Vec::new();
                for w in bounds.windows(2) {
                    tiled.extend(scan_int_where_range(
                        &col,
                        w[0],
                        w[1],
                        |v| (3..=40).contains(&v),
                        block,
                        &io,
                    ));
                }
                assert_eq!(tiled, full);
                // The interval form must tile identically through the SWAR
                // kernels.
                let range = IntScanPred::Range { lo: 3, hi: 40 };
                let full = scan_int(&col, &range, block, &io).to_vec();
                let mut tiled = Vec::new();
                for w in bounds.windows(2) {
                    tiled.extend(scan_int_range(&col, w[0], w[1], &range, block, &io));
                }
                assert_eq!(tiled, full);
            }
            for col in [str_col(strs.clone(), true), str_col(strs.clone(), false)] {
                let full = scan_str_pred(&col, &pred, block, &io).to_vec();
                let mut tiled = Vec::new();
                for w in bounds.windows(2) {
                    tiled.extend(scan_pred_range(&col, w[0], w[1], &pred, block, &io));
                }
                assert_eq!(tiled, full);
            }
        }
    }

    #[test]
    fn watched_scans_chunk_identically_and_observe_cancellation() {
        use crate::ctx::{catch_injected, watch_scans, QueryCtx, QueryError};
        let n = (SCAN_POLL_ROWS * 3 + 1234) as usize;
        let ints: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 100).collect();
        let strs: Vec<String> = (0..n).map(|i| format!("R{}", i % 7)).collect();
        let io = IoSession::unmetered();
        let pred = Pred::InSet(vec![Value::str("R2"), Value::str("R5")]);
        let ctx = QueryCtx::unbounded();
        for block in [true, false] {
            for col in [int_col(ints.clone(), false), packed_col(ints.clone())] {
                let bare = scan_int_where(&col, |v| (10..=20).contains(&v), block, &io).to_vec();
                let watched = {
                    let _w = watch_scans(&ctx);
                    scan_int_where(&col, |v| (10..=20).contains(&v), block, &io).to_vec()
                };
                assert_eq!(watched, bare, "chunked int scan must be output-identical");
            }
            for col in [str_col(strs.clone(), true), str_col(strs.clone(), false)] {
                let bare = scan_str_pred(&col, &pred, block, &io).to_vec();
                let watched = {
                    let _w = watch_scans(&ctx);
                    scan_str_pred(&col, &pred, block, &io).to_vec()
                };
                assert_eq!(watched, bare, "chunked str scan must be output-identical");
            }
        }
        // A cancelled context aborts the oversized scan at a chunk boundary,
        // transported as a QueryError panic payload.
        ctx.cancel();
        let col = int_col(ints, false);
        let _w = watch_scans(&ctx);
        let got = catch_injected(|| scan_int_where(&col, |v| v == 0, true, &io));
        assert_eq!(got.err(), Some(QueryError::Cancelled));
    }

    #[test]
    fn empty_range_scans_nothing() {
        let col = int_col((0..100).collect(), false);
        let io = IoSession::unmetered();
        assert!(scan_int_where_range(&col, 40, 40, |_| true, true, &io).is_empty());
    }

    #[test]
    fn range_of_compiles_preds_without_overflow() {
        assert_eq!(IntScanPred::range_of(&Pred::Eq(Value::Int(7))), Some((7, 7)));
        assert_eq!(
            IntScanPred::range_of(&Pred::Lt(Value::Int(i64::MIN))),
            Some((1, 0)),
            "v < i64::MIN is the empty interval"
        );
        assert_eq!(
            IntScanPred::range_of(&Pred::InSet(vec![Value::Int(4), Value::Int(3), Value::Int(5)])),
            Some((3, 5))
        );
        assert_eq!(
            IntScanPred::range_of(&Pred::InSet(vec![Value::Int(3), Value::Int(5)])),
            None,
            "disjoint sets take the opaque path"
        );
        // Wide-spread members: hi - lo overflows i64; must not panic.
        assert_eq!(
            IntScanPred::range_of(&Pred::InSet(vec![Value::Int(i64::MIN), Value::Int(i64::MAX)])),
            None
        );
        assert_eq!(IntScanPred::range_of(&Pred::Eq(Value::str("x"))), None);
    }

    #[test]
    fn accumulator_contiguity() {
        let mut acc = PosAccumulator::new(100);
        acc.push_range(5, 10);
        assert!(matches!(acc.finish(), PosList::Range { start: 5, end: 10, .. }));
        let mut acc = PosAccumulator::new(100);
        acc.push(5);
        acc.push(7);
        assert!(matches!(acc.finish(), PosList::Explicit { .. }));
        let acc = PosAccumulator::new(100);
        assert!(acc.finish().is_empty());
    }

    #[test]
    fn accumulator_bulk_paths_match_per_push() {
        // Any interleaving of push/push_range/push_mask must finish to the
        // same positions as the equivalent per-position pushes — including
        // the contiguity verdict.
        let cases: Vec<Vec<(u32, u64)>> = vec![
            vec![(0, u64::MAX), (64, u64::MAX)], // solid, aligned
            vec![(0, 0b1011)],                   // broken mask
            vec![(10, 0b1111)],                  // unaligned solid
            vec![(60, u64::MAX), (124, 0b1)],    // straddles words, solid
            vec![(0, 1 << 63), (64, 0b1)],       // solid across masks
            vec![(0, 1 << 63), (64, 0b10)],      // gap across masks
        ];
        for masks in cases {
            let mut bulk = PosAccumulator::new(256);
            let mut bits = PosAccumulator::new(256);
            for &(base, mask) in &masks {
                bulk.push_mask(base, mask);
                for j in 0..64u32 {
                    if mask & (1 << j) != 0 {
                        bits.push(base + j);
                    }
                }
            }
            let (a, b) = (bulk.finish(), bits.finish());
            assert_eq!(a.to_vec(), b.to_vec(), "{masks:?}");
            assert_eq!(a.is_contiguous(), b.is_contiguous(), "contiguity for {masks:?}");
        }
        // Ranges big enough to upgrade to a bitmap mid-stream.
        let mut bulk = PosAccumulator::new(1000);
        let mut bits = PosAccumulator::new(1000);
        for (s, e) in [(0u32, 400u32), (500, 900)] {
            bulk.push_range(s, e);
            for p in s..e {
                bits.push(p);
            }
        }
        let (a, b) = (bulk.finish(), bits.finish());
        assert_eq!(a.to_vec(), b.to_vec());
        assert!(matches!(a, PosList::Bitmap(_)));
    }
}
