//! "CS (Row-MV)": row-oriented materialized views stored *inside* the
//! column store (Section 6.1).
//!
//! "One might expect the C-Store storage manager to be unable to store data
//! in rows ... However, this can be done easily by using tables that have a
//! single column of type 'string'. The values in this column are entire
//! tuples." Queries scan the string column, parse each tuple (the row-store
//! attribute-extraction cost, paid in full), and run row-style operators —
//! the same shape as the early-materialization path.
//!
//! This is the configuration that shows the *cost* of row-oriented
//! processing inside C-Store: same bytes read as the row-store MV case,
//! slower execution.

use crate::agg::Grouper;
use crate::projection::dim_sort_columns;
use cvr_data::gen::SsbTables;
use cvr_data::queries::{all_queries, SsbQuery};
use cvr_data::result::QueryOutput;
use cvr_data::schema::Dim;
use cvr_data::table::TableData;
use cvr_data::value::{DataType, Value};
use cvr_index::hashidx::IntHashMap;
use cvr_storage::column::StoredColumn;
use cvr_storage::encode::{Column, StrColumn};
use cvr_storage::io::IoSession;
use std::collections::HashMap;
use std::sync::Arc;

/// Field separator in serialized tuples.
const SEP: char = '|';

/// One row-oriented table stored as a single string column.
pub struct RowMvTable {
    /// Column names of the serialized fields, in order.
    pub columns: Vec<&'static str>,
    /// Field types (for parsing).
    pub types: Vec<DataType>,
    /// The single-string-column storage.
    pub store: StoredColumn,
}

impl RowMvTable {
    /// Serialize `table` (projected to `columns`) into a row-MV table.
    pub fn build(table: &TableData, columns: &[&'static str]) -> RowMvTable {
        let types: Vec<DataType> =
            columns.iter().map(|c| table.schema.columns[table.schema.col(c)].dtype).collect();
        let mut rows = Vec::with_capacity(table.num_rows());
        let mut buf = String::new();
        for i in 0..table.num_rows() {
            buf.clear();
            for (j, c) in columns.iter().enumerate() {
                if j > 0 {
                    buf.push(SEP);
                }
                match table.value(i, c) {
                    Value::Int(v) => buf.push_str(&v.to_string()),
                    Value::Str(s) => buf.push_str(&s),
                }
            }
            rows.push(buf.clone());
        }
        RowMvTable {
            columns: columns.to_vec(),
            types,
            store: StoredColumn::new("rows", Column::Str(StrColumn::plain(rows))),
        }
    }

    /// Parse field `idx` out of a serialized tuple.
    fn parse_field(&self, row: &str, idx: usize) -> Value {
        let field = row.split(SEP).nth(idx).expect("field count");
        match self.types[idx] {
            DataType::Int => Value::Int(field.parse().expect("int field")),
            DataType::Str => Value::str(field),
        }
    }

    /// Scan: parse every tuple, yielding the requested fields. Charges the
    /// full string column.
    pub fn scan<'a>(
        &'a self,
        fields: &'a [usize],
        io: &IoSession,
    ) -> impl Iterator<Item = Vec<Value>> + 'a {
        self.store.charge_scan(io);
        let values = self.store.column.as_str().plain_strs();
        values.iter().map(move |row| fields.iter().map(|&f| self.parse_field(row, f)).collect())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.store.column.len()
    }

    /// Stored bytes.
    pub fn bytes(&self) -> u64 {
        self.store.bytes()
    }
}

/// The Row-MV database: per-flight fact views + row-serialized dimensions.
pub struct RowMvDb {
    /// Original logical tables.
    pub tables: Arc<SsbTables>,
    views: Vec<RowMvTable>,
    dims: HashMap<Dim, RowMvTable>,
}

impl RowMvDb {
    /// Build per-flight row-MV tables mirroring the row engine's MV design.
    pub fn build(tables: Arc<SsbTables>) -> RowMvDb {
        let mut views = Vec::new();
        for flight in 1..=4u8 {
            let mut columns: Vec<&'static str> = Vec::new();
            for q in all_queries().iter().filter(|q| q.id.flight == flight) {
                for c in q.fact_columns() {
                    if !columns.contains(&c) {
                        columns.push(c);
                    }
                }
            }
            views.push(RowMvTable::build(&tables.lineorder, &columns));
        }
        let dims = Dim::ALL
            .iter()
            .map(|&d| {
                // Dimensions keep every column a query might touch: key,
                // hierarchy, plus date group columns.
                let schema = tables.schema.dim(d);
                let mut cols: Vec<&'static str> = vec![d.key_column()];
                for c in dim_sort_columns(d) {
                    if !cols.contains(c) {
                        cols.push(c);
                    }
                }
                for q in all_queries() {
                    for p in q.dim_predicates_on(d) {
                        if !cols.contains(&p.column) {
                            cols.push(p.column);
                        }
                    }
                    for g in q.group_by.iter().filter(|g| g.dim == d) {
                        if !cols.contains(&g.column) {
                            cols.push(g.column);
                        }
                    }
                }
                cols.retain(|c| schema.try_col(c).is_some());
                (d, RowMvTable::build(tables.dim(d), &cols))
            })
            .collect();
        RowMvDb { tables, views, dims }
    }

    /// The view serving `flight`.
    pub fn view(&self, flight: u8) -> &RowMvTable {
        &self.views[(flight - 1) as usize]
    }

    /// Total stored bytes of the fact views.
    pub fn bytes(&self) -> u64 {
        self.views.iter().map(RowMvTable::bytes).sum()
    }

    /// Execute `q`: parse-scan the flight view, row-style filter + hash
    /// joins + aggregation.
    pub fn execute(&self, q: &SsbQuery, io: &IoSession) -> QueryOutput {
        // Dimension join tables from the row-serialized dims.
        struct JoinTable {
            map: IntHashMap,
            group_rows: Vec<Vec<Value>>,
            restricted: bool,
        }
        let mut dim_tables: HashMap<Dim, JoinTable> = HashMap::new();
        for dim in q.touched_dims() {
            let table = &self.dims[&dim];
            let preds = q.dim_predicates_on(dim);
            let group_cols: Vec<usize> = q
                .group_by
                .iter()
                .filter(|g| g.dim == dim)
                .map(|g| table.columns.iter().position(|c| *c == g.column).expect("group col"))
                .collect();
            let key_idx = table.columns.iter().position(|c| *c == dim.key_column()).unwrap();
            let pred_idx: Vec<(usize, &cvr_data::queries::Pred)> = preds
                .iter()
                .map(|p| (table.columns.iter().position(|c| *c == p.column).unwrap(), &p.pred))
                .collect();
            let mut fields: Vec<usize> = vec![key_idx];
            fields.extend(pred_idx.iter().map(|(i, _)| *i));
            fields.extend(group_cols.iter().copied());
            let mut map = IntHashMap::with_capacity(table.num_rows());
            let mut group_rows = Vec::new();
            'rows: for parsed in table.scan(&fields, io) {
                for (pi, (_, pred)) in pred_idx.iter().enumerate() {
                    if !pred.matches(&parsed[1 + pi]) {
                        continue 'rows;
                    }
                }
                map.insert(parsed[0].as_int(), group_rows.len() as u32);
                group_rows.push(parsed[1 + pred_idx.len()..].to_vec());
            }
            dim_tables.insert(dim, JoinTable { map, group_rows, restricted: !preds.is_empty() });
        }

        // Fact view scan.
        let view = self.view(q.id.flight);
        let needed = q.fact_columns();
        let fields: Vec<usize> = needed
            .iter()
            .map(|c| view.columns.iter().position(|v| v == c).expect("view column"))
            .collect();
        let col_of: HashMap<&str, usize> =
            needed.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let pred_idx: Vec<(usize, &cvr_data::queries::Pred)> =
            q.fact_predicates.iter().map(|p| (col_of[p.column], &p.pred)).collect();
        let fk_idx: Vec<(Dim, usize)> =
            q.touched_dims().into_iter().map(|d| (d, col_of[d.fact_fk_column()])).collect();
        let agg_idx: Vec<usize> = q.aggregate.fact_columns().iter().map(|c| col_of[c]).collect();

        let mut grouper = Grouper::new();
        let mut inputs = vec![0i64; agg_idx.len()];
        'fact: for tuple in view.scan(&fields, io) {
            for (idx, pred) in &pred_idx {
                if !pred.matches(&tuple[*idx]) {
                    continue 'fact;
                }
            }
            for (dim, idx) in &fk_idx {
                let t = &dim_tables[dim];
                if t.restricted && t.map.get(tuple[*idx].as_int()).is_none() {
                    continue 'fact;
                }
            }
            let mut key = Vec::with_capacity(q.group_by.len());
            for gi in 0..q.group_by.len() {
                let dim = q.group_by[gi].dim;
                let (_, fk_col) = fk_idx.iter().find(|(d, _)| *d == dim).unwrap();
                let t = &dim_tables[&dim];
                let row = t.map.get(tuple[*fk_col].as_int()).expect("join checked");
                let offset = q.group_by.iter().take(gi).filter(|g2| g2.dim == dim).count();
                key.push(t.group_rows[row as usize][offset].clone());
            }
            for (j, idx) in agg_idx.iter().enumerate() {
                inputs[j] = tuple[*idx].as_int();
            }
            grouper.add(key, q.aggregate.term(&inputs));
        }
        grouper.finish(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::reference;

    fn db() -> RowMvDb {
        RowMvDb::build(Arc::new(SsbConfig { sf: 0.002, seed: 43 }.generate()))
    }

    #[test]
    fn matches_reference_on_all_queries() {
        let db = db();
        let io = IoSession::unmetered();
        for q in all_queries() {
            let expected = reference::evaluate(&db.tables, &q);
            assert_eq!(db.execute(&q, &io), expected, "Row-MV disagrees on {}", q.id);
        }
    }

    #[test]
    fn rows_serialized_as_strings() {
        let db = db();
        let view = db.view(1);
        assert!(view.num_rows() > 0);
        // The storage really is one string column.
        assert!(matches!(view.store.column, Column::Str(StrColumn::Plain { .. })));
        let io = IoSession::unmetered();
        let first: Vec<Vec<Value>> = view.scan(&[0], &io).take(1).collect();
        assert_eq!(first.len(), 1);
    }

    #[test]
    fn scan_charges_string_bytes() {
        let db = db();
        let io = IoSession::unmetered();
        let view = db.view(1);
        let fields = [0usize];
        let _rows: Vec<_> = view.scan(&fields, &io).collect();
        assert_eq!(io.stats().bytes_read, view.bytes());
    }
}
