//! Early materialization — late materialization removed (Figure 7 `l`).
//!
//! "In order to remove late materialization, we had to hand code query
//! plans to construct tuples at the beginning of the query plan." This
//! module is that hand-coded plan shape: the needed fact columns are read
//! and **decompressed** (tuple construction forces decompression, which is
//! why the paper removes `L` last), tuples are stitched immediately, and
//! everything above is row-oriented execution — per-tuple predicate checks
//! and hash-join probes against filtered dimension tables, just like the
//! row engine. "Once all of these optimizations are removed, the
//! column-store acts like a row-store."

use crate::agg::{AggPartial, CodeDecoder, CodeGrouper, GroupLayout, Grouper};
use crate::config::EngineConfig;
use crate::ctx::{QueryCtx, QueryError};
use crate::extract::decode_all;
use crate::morsel::{try_run_morsels, Parallelism};
use crate::projection::CStoreDb;
use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_data::schema::Dim;
use cvr_data::value::Value;
use cvr_index::hashidx::IntHashMap;
use cvr_storage::io::IoSession;
use std::collections::HashMap;
use std::ops::Range;

/// Per-dimension join table for row-mode execution: FK → group values of
/// rows passing the dimension predicates.
struct DimTable {
    map: IntHashMap,
    group_rows: Vec<Vec<Value>>,
    restricted: bool,
}

fn build_dim_table(db: &CStoreDb, q: &SsbQuery, dim: Dim, io: &IoSession) -> DimTable {
    let store = db.dim(dim);
    let n = store.sorted.num_rows();
    let preds = q.dim_predicates_on(dim);
    let group_cols: Vec<&'static str> =
        q.group_by.iter().filter(|g| g.dim == dim).map(|g| g.column).collect();

    // Row-style dimension access: decode key, predicate and group columns,
    // then evaluate per row.
    let keys: Vec<Value> = decode_all(store.store.column(dim.key_column()), io);
    let pred_cols: Vec<Vec<Value>> =
        preds.iter().map(|p| decode_all(store.store.column(p.column), io)).collect();
    let group_data: Vec<Vec<Value>> =
        group_cols.iter().map(|c| decode_all(store.store.column(c), io)).collect();

    let mut map = IntHashMap::with_capacity(n);
    let mut group_rows = Vec::new();
    'rows: for i in 0..n {
        for (p, col) in preds.iter().zip(&pred_cols) {
            if !p.pred.matches(&col[i]) {
                continue 'rows;
            }
        }
        map.insert(keys[i].as_int(), group_rows.len() as u32);
        group_rows.push(group_data.iter().map(|g| g[i].clone()).collect());
    }
    DimTable { map, group_rows, restricted: !preds.is_empty() }
}

/// The shared prelude of both execution paths: every needed fact column
/// fully decoded (tuple construction forces decompression) plus the
/// row-style dimension join tables and the index maps the pipeline needs.
/// All of the plan's I/O is charged here.
struct RowPlan<'q> {
    decoded: Vec<Vec<Value>>,
    pred_idx: Vec<(usize, &'q cvr_data::queries::Pred)>,
    fk_idx: Vec<(Dim, usize)>,
    agg_idx: Vec<usize>,
    group_dim_order: Vec<Dim>,
    dims: HashMap<Dim, DimTable>,
    /// Code-level aggregation layout: each group column's values over the
    /// filtered dimension rows are interned into a local dictionary
    /// (`group_row_codes[gi][dim_row]` is the code), so even the row-style
    /// pipeline aggregates on composed integer ids and decodes each group
    /// once at finish. `None` only when the composed domain overflows
    /// `u64`.
    layout: Option<GroupLayout>,
    /// Per group column: filtered-dimension-row → code (aligned with the
    /// layout's decoders).
    group_row_codes: Vec<Vec<u32>>,
}

fn build_plan<'q>(
    db: &CStoreDb,
    q: &'q SsbQuery,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<RowPlan<'q>, QueryError> {
    let fact_columns = q.fact_columns();
    // Tuple construction decompresses every needed fact column in full —
    // this is the plan's dominant allocation, so charge it column by column
    // and honour cancellation between columns.
    let mut decoded: Vec<Vec<Value>> = Vec::with_capacity(fact_columns.len());
    for c in &fact_columns {
        ctx.check()?;
        let col = decode_all(db.fact.column(c), io);
        ctx.charge(col.len().saturating_mul(std::mem::size_of::<Value>()))?;
        decoded.push(col);
    }
    let col_of: HashMap<&str, usize> =
        fact_columns.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut dims: HashMap<Dim, DimTable> = HashMap::new();
    for d in q.touched_dims() {
        ctx.check()?;
        dims.insert(d, build_dim_table(db, q, d, io));
    }
    let mut cols = Vec::with_capacity(q.group_by.len());
    let mut group_row_codes = Vec::with_capacity(q.group_by.len());
    for (gi, g) in q.group_by.iter().enumerate() {
        let table = &dims[&g.dim];
        let offset = q.group_by.iter().take(gi).filter(|g2| g2.dim == g.dim).count();
        // Intern the column's distinct values across the filtered dimension
        // rows: many rows share one group value (every Chinese customer is
        // one "CHINA" group), so codes must be value-level, not row-level.
        let (codes, values) =
            crate::agg::intern_values(table.group_rows.iter().map(|r| &r[offset]));
        cols.push((values.len().max(1) as u64, CodeDecoder::Values(values)));
        group_row_codes.push(codes);
    }
    let layout = if crate::agg::value_keyed_forced() { None } else { GroupLayout::try_new(cols) };
    Ok(RowPlan {
        decoded,
        pred_idx: q.fact_predicates.iter().map(|p| (col_of[p.column], &p.pred)).collect(),
        fk_idx: q.touched_dims().into_iter().map(|d| (d, col_of[d.fact_fk_column()])).collect(),
        agg_idx: q.aggregate.fact_columns().iter().map(|c| col_of[c]).collect(),
        group_dim_order: q.group_by.iter().map(|g| g.dim).collect(),
        dims,
        layout,
        group_row_codes,
    })
}

impl RowPlan<'_> {
    fn new_partial(&self) -> AggPartial {
        match &self.layout {
            Some(layout) => AggPartial::Code(CodeGrouper::for_layout(layout)),
            None => AggPartial::Value(Grouper::new()),
        }
    }

    fn finish(&self, partial: AggPartial, q: &SsbQuery) -> QueryOutput {
        match (partial, &self.layout) {
            (AggPartial::Code(g), Some(layout)) => g.finish(layout, q),
            (AggPartial::Value(g), None) => g.finish(q),
            _ => unreachable!("partial matches the plan's layout"),
        }
    }
}

/// The row pipeline over fact rows `[start, end)`: construct a tuple per
/// row, then filter/join/aggregate into a partial [`AggPartial`]. Pure CPU —
/// serial execution runs it once over `[0, n)`, parallel execution once per
/// morsel. In tuple-at-a-time mode every value access goes through a boxed
/// per-column iterator (the `getNext` interface); in block mode tuples are
/// stitched by direct indexing.
fn run_rows(
    plan: &RowPlan<'_>,
    q: &SsbQuery,
    cfg: EngineConfig,
    range: Range<usize>,
) -> AggPartial {
    let mut partial = plan.new_partial();
    let mut inputs = vec![0i64; plan.agg_idx.len()];
    if cfg.block_iteration {
        'rows: for i in range {
            let tuple: Vec<Value> = plan.decoded.iter().map(|c| c[i].clone()).collect();
            if !process_tuple(&tuple, &plan.pred_idx, &plan.fk_idx, &plan.dims) {
                continue 'rows;
            }
            accumulate(&tuple, q, plan, &mut inputs, &mut partial);
        }
    } else {
        let mut sources: Vec<Box<dyn Iterator<Item = &Value>>> = plan
            .decoded
            .iter()
            .map(|c| Box::new(c[range.clone()].iter()) as Box<dyn Iterator<Item = &Value>>)
            .collect();
        'rows2: for _ in range {
            let tuple: Vec<Value> = sources
                .iter_mut()
                .map(|s| std::hint::black_box(s).next().expect("column length").clone())
                .collect();
            if !process_tuple(&tuple, &plan.pred_idx, &plan.fk_idx, &plan.dims) {
                continue 'rows2;
            }
            accumulate(&tuple, q, plan, &mut inputs, &mut partial);
        }
    }
    partial
}

/// Execute `q` with early materialization (infallible test shorthand).
#[cfg(test)]
fn execute(db: &CStoreDb, q: &SsbQuery, cfg: EngineConfig, io: &IoSession) -> QueryOutput {
    try_execute(db, q, cfg, io, &QueryCtx::unbounded()).unwrap_or_else(|e| std::panic::panic_any(e))
}

/// Execute `q` with early materialization: honours `ctx` in the
/// column-decoding prelude.
pub(crate) fn try_execute(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<QueryOutput, QueryError> {
    let plan = {
        let mut span = ctx.span("materialize", "fact columns up front", io);
        span.rows(db.fact_rows() as u64);
        build_plan(db, q, io, ctx)?
    };
    ctx.check()?;
    let mut span = ctx.span("pipeline", "row-style over early-stitched tuples", io);
    let partial = run_rows(&plan, q, cfg, 0..db.fact_rows());
    let out = plan.finish(partial, q);
    span.rows(out.len() as u64);
    drop(span);
    Ok(out)
}

/// Execute `q` with early materialization across `par.threads` morsel
/// workers.
///
/// All I/O happens in the shared serial prelude ([`build_plan`]) — tuple
/// construction decompresses every needed column in full, and the dimension
/// join tables are built row-style on the coordinator — so the charges on
/// `io` are identical to [`try_execute`] by construction. The row pipeline
/// ([`run_rows`]) is pure CPU and fans out over morsels of the
/// constructed-tuple space; partial aggregates merge in morsel order. `ctx`
/// is honoured in the serial prelude and at every morsel boundary.
pub(crate) fn try_execute_par(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    par: Parallelism,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<QueryOutput, QueryError> {
    if par.is_serial() {
        return try_execute(db, q, cfg, io, ctx);
    }
    let plan = {
        let mut span = ctx.span("materialize", "fact columns up front", io);
        span.rows(db.fact_rows() as u64);
        build_plan(db, q, io, ctx)?
    };
    let mut span = ctx.span("pipeline", "row-style over early-stitched tuples", io);
    let partials = try_run_morsels(db.fact_rows() as u32, par, ctx, |_, range| {
        Ok(run_rows(&plan, q, cfg, range.start as usize..range.end as usize))
    })?;
    let mut merged = plan.new_partial();
    for partial in partials {
        merged.merge(partial);
    }
    let out = plan.finish(merged, q);
    span.rows(out.len() as u64);
    drop(span);
    Ok(out)
}

/// Predicate + join filtering for one constructed tuple.
fn process_tuple(
    tuple: &[Value],
    pred_idx: &[(usize, &cvr_data::queries::Pred)],
    fk_idx: &[(Dim, usize)],
    dims: &HashMap<Dim, DimTable>,
) -> bool {
    for (idx, pred) in pred_idx {
        if !pred.matches(&tuple[*idx]) {
            return false;
        }
    }
    for (dim, idx) in fk_idx {
        let table = &dims[dim];
        if table.restricted && table.map.get(tuple[*idx].as_int()).is_none() {
            return false;
        }
    }
    true
}

fn accumulate(
    tuple: &[Value],
    q: &SsbQuery,
    plan: &RowPlan<'_>,
    inputs: &mut [i64],
    partial: &mut AggPartial,
) {
    for (j, idx) in plan.agg_idx.iter().enumerate() {
        inputs[j] = tuple[*idx].as_int();
    }
    match partial {
        AggPartial::Code(g) => {
            // Group columns code through the interned per-dimension-row
            // tables; no value clones, no per-row key vector.
            let mut id = 0u64;
            for (gi, &dim) in plan.group_dim_order.iter().enumerate() {
                let (_, fk_col) = plan.fk_idx.iter().find(|(d, _)| *d == dim).expect("dim touched");
                let row = plan.dims[&dim].map.get(tuple[*fk_col].as_int()).expect("join checked");
                id = id * g.radix(gi) + plan.group_row_codes[gi][row as usize] as u64;
            }
            g.add(id, q.aggregate.term(inputs));
        }
        AggPartial::Value(grouper) => {
            let mut key = Vec::with_capacity(q.group_by.len());
            for (gi, &dim) in plan.group_dim_order.iter().enumerate() {
                let (_, fk_col) = plan.fk_idx.iter().find(|(d, _)| *d == dim).expect("dim touched");
                let table = &plan.dims[&dim];
                let row = table.map.get(tuple[*fk_col].as_int()).expect("join checked");
                // Offset of this group column within the dim's stored group
                // row.
                let offset = q.group_by.iter().take(gi).filter(|g2| g2.dim == dim).count();
                key.push(table.group_rows[row as usize][offset].clone());
            }
            grouper.add(key, q.aggregate.term(inputs));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::all_queries;
    use cvr_data::reference;
    use std::sync::Arc;

    #[test]
    fn matches_reference_on_all_queries() {
        let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.002, seed: 37 }.generate()), false);
        let io = IoSession::unmetered();
        let cfg = EngineConfig::parse("Ticl");
        for q in all_queries() {
            let expected = reference::evaluate(&db.tables, &q);
            assert_eq!(execute(&db, &q, cfg, &io), expected, "EM disagrees on {}", q.id);
        }
    }

    #[test]
    fn compressed_em_decompresses_correctly() {
        let tables = Arc::new(SsbConfig { sf: 0.002, seed: 37 }.generate());
        let comp = CStoreDb::build(tables.clone(), true);
        let plain = CStoreDb::build(tables, false);
        let io = IoSession::unmetered();
        for q in all_queries() {
            assert_eq!(
                execute(&comp, &q, EngineConfig::parse("tICl"), &io),
                execute(&plain, &q, EngineConfig::parse("Ticl"), &io),
                "{}",
                q.id
            );
        }
    }

    #[test]
    fn block_and_tuple_em_agree() {
        let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.001, seed: 41 }.generate()), false);
        let io = IoSession::unmetered();
        for q in all_queries() {
            assert_eq!(
                execute(&db, &q, EngineConfig::parse("ticl"), &io),
                execute(&db, &q, EngineConfig::parse("Ticl"), &io),
                "{}",
                q.id
            );
        }
    }
}
