//! Morsel-driven parallel execution infrastructure.
//!
//! The LINEORDER position space is split into fixed-size **morsels**
//! (contiguous position ranges, after Leis et al.'s morsel-driven model). A
//! pool of scoped worker threads claims morsels from a shared atomic counter
//! (self-balancing: fast workers steal the remaining morsels), runs the
//! whole per-morsel pipeline — predicate scans, join probes, positional
//! extraction, partial aggregation — and hands its results back tagged with
//! the morsel index. The coordinator merges everything **in morsel order**,
//! which is what makes parallel execution deterministic:
//!
//! * partial aggregates merge in a fixed order (and are order-insensitive
//!   sums anyway), so [`cvr_data::result::QueryOutput`]s are byte-identical
//!   to a serial run;
//! * per-morsel [`cvr_storage::io::IoLog`]s replay against the shared
//!   [`cvr_storage::io::BufferPool`] in morsel order, so the merged
//!   [`cvr_storage::io::IoStats`] equal the serial run's bytes, pages and
//!   seeks regardless of which worker ran which morsel when.
//!
//! Thread count comes from [`Parallelism`]: the `--threads` harness flag,
//! the `CVR_THREADS` environment variable, or (default) the machine's
//! available parallelism.

use crate::ctx::{QueryCtx, QueryError};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Default morsel size in fact-table positions. Large enough that per-morsel
/// bookkeeping is noise, small enough that a 4-thread run of even a small
/// scale factor gets balanced work; [`run_morsels`] shrinks it further when
/// the input is small.
pub const DEFAULT_MORSEL_ROWS: u32 = 16_384;

/// Smallest morsel [`run_morsels`] will auto-shrink to.
const MIN_MORSEL_ROWS: u32 = 256;

/// Default hard ceiling on morsel size in rows (1 Mi positions). Bounds the
/// worst case work between morsel-boundary cancellation polls; the scan
/// drivers add intra-morsel polls every [`crate::scan::SCAN_POLL_ROWS`]
/// rows on top.
pub const DEFAULT_MORSEL_MAX: u32 = 1 << 20;

/// The process-wide morsel ceiling: `CVR_MORSEL_MAX` (clamped to
/// `[64, 1<<26]`, rounded up to a whole mask word) or
/// [`DEFAULT_MORSEL_MAX`]. Cached after the first call.
pub fn morsel_max() -> u32 {
    static MAX: OnceLock<u32> = OnceLock::new();
    *MAX.get_or_init(|| {
        match std::env::var("CVR_MORSEL_MAX").ok().and_then(|v| v.parse::<u32>().ok()) {
            Some(n) if n >= 1 => n.clamp(64, 1 << 26).div_ceil(64) * 64,
            _ => DEFAULT_MORSEL_MAX,
        }
    })
}

/// Degree of parallelism for one query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads (including the coordinator, which also claims
    /// morsels). `1` selects the serial execution path.
    pub threads: usize,
    /// Morsel size in positions (upper bound; shrunk for small inputs).
    pub morsel_rows: u32,
}

impl Parallelism {
    /// Strictly serial execution.
    pub fn serial() -> Parallelism {
        Parallelism { threads: 1, morsel_rows: DEFAULT_MORSEL_ROWS }
    }

    /// Parallel execution with `threads` workers (0 is clamped to 1).
    pub fn with_threads(threads: usize) -> Parallelism {
        Parallelism { threads: threads.max(1), morsel_rows: DEFAULT_MORSEL_ROWS }
    }

    /// The process default: `CVR_THREADS` when set (and ≥ 1), otherwise the
    /// machine's available parallelism; morsel size from `CVR_MORSEL_ROWS`
    /// when set (the chaos harnesses use it to force oversized morsels),
    /// otherwise [`DEFAULT_MORSEL_ROWS`]. Cached after the first call.
    pub fn from_env() -> Parallelism {
        static THREADS: OnceLock<usize> = OnceLock::new();
        static MORSEL_ROWS: OnceLock<u32> = OnceLock::new();
        let threads = *THREADS.get_or_init(|| {
            match std::env::var("CVR_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => n,
                _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            }
        });
        let morsel_rows = *MORSEL_ROWS.get_or_init(|| {
            match std::env::var("CVR_MORSEL_ROWS").ok().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => n.min(1 << 26),
                _ => DEFAULT_MORSEL_ROWS,
            }
        });
        Parallelism { threads: threads.max(1), morsel_rows }
    }

    /// True when this configuration takes the serial path.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::from_env()
    }
}

/// Run `task` over every morsel of `[0, n)` on up to `par.threads` workers;
/// returns the per-morsel results **in morsel order**.
///
/// `task(index, range)` must be safe to call concurrently (it receives
/// disjoint ranges). Workers claim morsels from a shared counter, so the
/// assignment of morsels to threads is scheduling-dependent — which is why
/// callers must only rely on the returned order, never on worker identity.
pub fn run_morsels<T: Send>(
    n: u32,
    par: Parallelism,
    task: impl Fn(usize, Range<u32>) -> T + Sync,
) -> Vec<T> {
    match try_run_morsels(n, par, &QueryCtx::unbounded(), |i, r| Ok(task(i, r))) {
        Ok(out) => out,
        // Unreachable under an unbounded ctx unless a fault was injected;
        // transport the typed error up to the nearest containment boundary.
        Err(e) => std::panic::panic_any(e),
    }
}

/// How a morsel fan-out aborted: a typed error (first one wins) or a foreign
/// panic to re-raise once every worker has stopped.
enum Abort {
    Error(QueryError),
    Panic(Box<dyn std::any::Any + Send>),
}

/// The fallible, cancellable form of [`run_morsels`].
///
/// Between morsels every worker polls `ctx` ([`QueryCtx::check`]) and a
/// shared abort flag, so cancellation/deadline/budget failures — and any
/// `Err` returned by `task` — stop the whole fan-out at the next morsel
/// boundary. Worker panics are contained per-morsel: an
/// [`cvr_storage::fault::InjectedFault`] payload becomes
/// [`QueryError::Io`], anything else is re-raised on the coordinator after
/// all workers have parked (so a crashing worker can never leak a detached
/// thread or deadlock the scope join).
pub fn try_run_morsels<T: Send>(
    n: u32,
    par: Parallelism,
    ctx: &QueryCtx,
    task: impl Fn(usize, Range<u32>) -> Result<T, QueryError> + Sync,
) -> Result<Vec<T>, QueryError> {
    let (morsel, count) = grid(n, par);
    let range_of = |i: usize| {
        let start = i as u32 * morsel;
        start..((i as u32).saturating_add(1) * morsel).min(n)
    };

    // Ask the shared scheduler (when one is installed — the server installs
    // the process default) for a fair share of the machine's workers. The
    // lease is held for the duration of the fan-out. Worker count never
    // affects results or accounting — morsel-order merging guarantees
    // byte-identity at any count — so throttling here is always safe.
    let lease = crate::sched::lease(par.threads.min(count));
    let workers = lease.granted().min(count);

    let stop = std::sync::atomic::AtomicBool::new(false);
    let failure: Mutex<Option<Abort>> = Mutex::new(None);
    let fail = |abort: Abort| {
        stop.store(true, Ordering::Relaxed);
        let mut slot = failure.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(abort);
        }
    };
    // One morsel, panic-contained. `Err(())` means "stop claiming". The
    // query context is adopted as this thread's scan watch for the duration
    // of the morsel, so oversized scans poll cancellation *inside* the
    // morsel too (a QueryError panic payload transports the abort here).
    let run_one = |out: &mut Vec<(usize, T)>, i: usize| -> Result<(), ()> {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cvr_storage::fault::before_morsel();
            let _watch = crate::ctx::watch_scans(ctx);
            task(i, range_of(i))
        }));
        match attempt {
            Ok(Ok(t)) => {
                out.push((i, t));
                Ok(())
            }
            Ok(Err(e)) => {
                fail(Abort::Error(e));
                Err(())
            }
            Err(payload) => {
                fail(match payload.downcast::<cvr_storage::fault::InjectedFault>() {
                    Ok(f) => Abort::Error(QueryError::Io { detail: f.0 }),
                    Err(payload) => match payload.downcast::<QueryError>() {
                        Ok(e) => Abort::Error(*e),
                        Err(payload) => Abort::Panic(payload),
                    },
                });
                Err(())
            }
        }
    };

    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(count);
    if workers <= 1 {
        for i in 0..count {
            if let Err(e) = ctx.check() {
                fail(Abort::Error(e));
                break;
            }
            if run_one(&mut tagged, i).is_err() {
                break;
            }
        }
    } else {
        // Spawned workers must see the coordinator's fault state: the query's
        // deterministic fault stream follows the query, not the thread.
        let faults = cvr_storage::fault::handle();
        let next = AtomicUsize::new(0);
        let work = |out: &mut Vec<(usize, T)>| -> Duration {
            let started = thread_cpu_time();
            loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Err(e) = ctx.check() {
                    fail(Abort::Error(e));
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                if run_one(out, i).is_err() {
                    break;
                }
                // Rotate the run queue between morsels: when the machine has
                // fewer cores than workers (CI containers), the first
                // scheduled worker would otherwise drain the whole queue
                // inside one timeslice, serializing the "parallel"
                // execution. On idle multicore hardware this yield is a
                // no-op costing ~1µs per multi-hundred-µs morsel.
                std::thread::yield_now();
            }
            thread_cpu_time().saturating_sub(started)
        };

        // Per-worker busy CPU time, coordinator first — the one measurement
        // all three observation sinks (profiler, tracer, metrics) share.
        let mut busys: Vec<Duration> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (1..workers)
                .map(|_| {
                    s.spawn(|| {
                        let _faults = cvr_storage::fault::adopt_opt(faults.clone());
                        let mut out = Vec::new();
                        let busy = work(&mut out);
                        (out, busy)
                    })
                })
                .collect();
            busys.push(work(&mut tagged));
            for h in handles {
                let (out, busy) = h.join().expect("morsel worker panicked");
                tagged.extend(out);
                busys.push(busy);
            }
        });
        observe_fanout(ctx, &busys, next.into_inner().min(count) as u64);
    }

    match failure.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
        Some(Abort::Panic(payload)) => std::panic::resume_unwind(payload),
        Some(Abort::Error(e)) => Err(e),
        None => {
            tagged.sort_unstable_by_key(|(i, _)| *i);
            Ok(tagged.into_iter().map(|(_, t)| t).collect())
        }
    }
}

/// Publish one fan-out's shared measurement — per-worker busy CPU times
/// (`busys[0]` is the coordinator) and the number of morsels run — to every
/// observation sink: the opt-in [`profile`] collector, the query's tracer
/// (when attached), and the process metrics registry.
fn observe_fanout(ctx: &QueryCtx, busys: &[Duration], morsels: u64) {
    profile::record_fanout(busys);
    if let Some(tracer) = ctx.tracer() {
        tracer.on_fanout(busys, morsels);
    }
    cvr_obs::counter("cvr_morsel_fanouts_total", "Parallel morsel fan-outs executed").inc();
    let worker_busy =
        cvr_obs::latency("cvr_morsel_worker_busy_us", "Per-worker busy CPU time per fan-out");
    for busy in busys {
        worker_busy.observe(busy.as_micros() as u64);
    }
}

/// The morsel grid [`run_morsels`] tiles `[0, n)` with under `par`:
/// `(morsel_size, morsel_count)`. Deterministic in `(n, par)` — which is
/// what lets a cached filter intermediate recorded at one execution be
/// re-split identically on a later one.
///
/// Aim for a few morsels per worker so claiming self-balances, without
/// dropping below the minimum useful size. Morsel boundaries align to
/// whole 64-position mask words so the scan kernels' selection masks
/// never straddle a morsel edge.
pub fn grid(n: u32, par: Parallelism) -> (u32, usize) {
    let aim = n.div_ceil((par.threads * 4).max(1) as u32).max(MIN_MORSEL_ROWS);
    // An explicitly enlarged morsel size (CVR_MORSEL_ROWS, or a struct
    // literal above the default — how the chaos harness forces giant
    // morsels) is honored as requested; the default auto-shrinks to `aim`
    // for balance. Both are bounded by the process-wide `morsel_max` cap.
    let want = if par.morsel_rows > DEFAULT_MORSEL_ROWS {
        par.morsel_rows
    } else {
        par.morsel_rows.min(aim)
    };
    let morsel = want.clamp(1, morsel_max()).div_ceil(64) * 64;
    let count = (n.div_ceil(morsel) as usize).max(1);
    (morsel, count)
}

/// Intersect two ascending position vectors (the per-morsel analogue of
/// [`crate::poslist::PosList::intersect`], kept on plain vectors because
/// morsel fragments are small and short-lived).
pub fn intersect_ascending(xs: &[u32], ys: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(xs.len().min(ys.len()));
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(xs[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// CPU time consumed by the calling thread (Linux; wall-clock elsewhere).
///
/// Used to measure the parallel **critical path** (span): on machines with
/// fewer cores than workers — CI containers, laptops under load — wall-clock
/// cannot show scaling, but `max` over per-worker CPU time can.
pub fn thread_cpu_time() -> Duration {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct Timespec {
            sec: i64,
            nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        let mut ts = Timespec { sec: 0, nsec: 0 };
        // SAFETY: clock_gettime writes a timespec through a valid pointer.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc == 0 {
            return Duration::new(ts.sec.max(0) as u64, ts.nsec.clamp(0, 999_999_999) as u32);
        }
    }
    // Fallback: wall-clock since an arbitrary process-wide epoch.
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH.get_or_init(std::time::Instant::now).elapsed()
}

/// Opt-in per-worker busy-time profiling, used by the `scaling` binary to
/// report critical-path CPU time. Disabled (and free) by default.
pub mod profile {
    use super::*;

    static ENABLED: AtomicUsize = AtomicUsize::new(0);
    static BUSY: Mutex<Vec<Vec<Duration>>> = Mutex::new(Vec::new());
    static COORD_BUSY_NS: AtomicUsize = AtomicUsize::new(0);

    /// Per-worker busy times collected between [`start`] and [`finish`].
    #[derive(Debug, Default)]
    pub struct ProfileReport {
        /// One group per [`super::run_morsels`] fan-out; each entry is one
        /// worker's CPU time inside that fan-out (coordinator included).
        pub groups: Vec<Vec<Duration>>,
        /// The coordinator thread's share of the fan-out work — already
        /// part of the coordinator's thread-CPU clock, unlike the other
        /// workers' time.
        pub coordinator_busy: Duration,
    }

    impl ProfileReport {
        /// Critical-path CPU time given the coordinator's total thread-CPU
        /// time for the measured region: the serial portion plus the
        /// busiest worker of each fan-out.
        pub fn critical_path(&self, coordinator_cpu: Duration) -> Duration {
            let span: Duration =
                self.groups.iter().map(|g| g.iter().max().copied().unwrap_or_default()).sum();
            coordinator_cpu.saturating_sub(self.coordinator_busy) + span
        }

        /// Total CPU spent inside fan-outs across all workers.
        pub fn total_work(&self) -> Duration {
            self.groups.iter().flatten().sum()
        }
    }

    /// Enable collection and clear any previous samples.
    pub fn start() {
        BUSY.lock().unwrap().clear();
        COORD_BUSY_NS.store(0, Ordering::Relaxed);
        ENABLED.store(1, Ordering::Relaxed);
    }

    /// Record one fan-out's per-worker busy times (`busys[0]` is the
    /// coordinator) as a sample group. The single entry point from
    /// [`super::try_run_morsels`] — the same measurement also feeds the
    /// tracer and the metrics registry, so no sink keeps its own clock.
    pub(super) fn record_fanout(busys: &[Duration]) {
        if ENABLED.load(Ordering::Relaxed) == 1 {
            BUSY.lock().unwrap().push(busys.to_vec());
            if let Some(coord) = busys.first() {
                COORD_BUSY_NS.fetch_add(coord.as_nanos() as usize, Ordering::Relaxed);
            }
        }
    }

    /// Stop collection and return the per-worker busy times.
    pub fn finish() -> ProfileReport {
        ENABLED.store(0, Ordering::Relaxed);
        ProfileReport {
            groups: std::mem::take(&mut BUSY.lock().unwrap()),
            coordinator_busy: Duration::from_nanos(COORD_BUSY_NS.swap(0, Ordering::Relaxed) as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_tile_and_return_in_order() {
        for threads in [1, 2, 4, 8] {
            let par = Parallelism { threads, morsel_rows: 64 };
            let ranges = run_morsels(1000, par, |i, r| (i, r));
            assert!(!ranges.is_empty());
            let mut next = 0u32;
            for (idx, (i, r)) in ranges.iter().enumerate() {
                assert_eq!(idx, *i, "results must come back in morsel order");
                assert_eq!(r.start, next, "morsels must tile [0, n)");
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, 1000);
        }
    }

    #[test]
    fn empty_input_runs_one_empty_morsel() {
        let got = run_morsels(0, Parallelism::with_threads(4), |i, r| (i, r));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 0..0);
    }

    #[test]
    fn work_is_claimed_exactly_once() {
        let par = Parallelism { threads: 4, morsel_rows: 16 };
        let sums = run_morsels(10_000, par, |_, r| r.map(|p| p as u64).sum::<u64>());
        let total: u64 = sums.iter().sum();
        assert_eq!(total, 9_999 * 10_000 / 2);
    }

    #[test]
    fn cancellation_stops_the_fanout_at_a_morsel_boundary() {
        for threads in [1, 4] {
            let par = Parallelism { threads, morsel_rows: 64 };
            let ctx = QueryCtx::unbounded();
            let ran = AtomicUsize::new(0);
            let got = try_run_morsels(100_000, par, &ctx, |_, r| {
                ran.fetch_add(1, Ordering::Relaxed);
                ctx.cancel(); // first morsel cancels everyone
                Ok(r.len())
            });
            assert_eq!(got, Err(QueryError::Cancelled), "threads={threads}");
            let ran = ran.load(Ordering::Relaxed);
            assert!(ran <= threads + 1, "cancelled after {ran} morsels with {threads} workers");
        }
    }

    #[test]
    fn task_errors_abort_and_win_over_later_work() {
        let par = Parallelism { threads: 4, morsel_rows: 64 };
        let budget = QueryError::MemoryBudgetExceeded { used: 9, budget: 1 };
        let err = budget.clone();
        let got = try_run_morsels(100_000, par, &QueryCtx::unbounded(), move |i, _| {
            if i == 0 {
                Err(err.clone())
            } else {
                Ok(i)
            }
        });
        assert_eq!(got, Err(budget));
    }

    #[test]
    fn injected_fault_panics_become_io_errors() {
        for threads in [1, 4] {
            let par = Parallelism { threads, morsel_rows: 64 };
            let got = try_run_morsels(10_000, par, &QueryCtx::unbounded(), |i, r| {
                if i == 2 {
                    std::panic::panic_any(cvr_storage::fault::InjectedFault("page 3".into()));
                }
                Ok(r.len())
            });
            assert_eq!(got, Err(QueryError::Io { detail: "page 3".into() }), "threads={threads}");
        }
    }

    #[test]
    fn foreign_worker_panics_resume_on_the_coordinator() {
        let par = Parallelism { threads: 4, morsel_rows: 64 };
        let caught = std::panic::catch_unwind(|| {
            let _ = try_run_morsels(10_000, par, &QueryCtx::unbounded(), |i, r| {
                if i == 1 {
                    panic!("genuine worker bug");
                }
                Ok(r.len())
            });
        });
        let payload = caught.expect_err("the panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "genuine worker bug");
    }

    #[test]
    fn grid_honors_forced_giant_morsels_up_to_the_cap() {
        // Default-sized configs still auto-shrink for balance.
        let (m, _) = grid(1_000_000, Parallelism { threads: 4, morsel_rows: DEFAULT_MORSEL_ROWS });
        assert!(m <= DEFAULT_MORSEL_ROWS);
        // An explicitly enlarged morsel size is honored (mask-word aligned).
        let big = 500_000u32;
        let (m, count) = grid(1_000_000, Parallelism { threads: 4, morsel_rows: big });
        assert_eq!(m, big.div_ceil(64) * 64);
        assert_eq!(count, 2);
        // ... but never beyond the process-wide ceiling.
        let (m, _) = grid(100_000_000, Parallelism { threads: 1, morsel_rows: u32::MAX });
        assert!(m <= morsel_max());
        assert_eq!(m % 64, 0);
    }

    #[test]
    fn queryerror_panic_payloads_become_typed_aborts() {
        // The scan drivers transport intra-morsel cancellation as a
        // QueryError panic payload; the morsel boundary must type it back.
        for threads in [1, 4] {
            let par = Parallelism { threads, morsel_rows: 64 };
            let got = try_run_morsels(10_000, par, &QueryCtx::unbounded(), |i, r| {
                if i == 2 {
                    std::panic::panic_any(QueryError::Cancelled);
                }
                Ok(r.len())
            });
            assert_eq!(got, Err(QueryError::Cancelled), "threads={threads}");
        }
    }

    #[test]
    fn intersect_ascending_matches_set_semantics() {
        let xs: Vec<u32> = (0..300).filter(|p| p % 3 == 0).collect();
        let ys: Vec<u32> = (0..300).filter(|p| p % 5 == 0).collect();
        let expected: Vec<u32> = (0..300).filter(|p| p % 15 == 0).collect();
        assert_eq!(intersect_ascending(&xs, &ys), expected);
        assert_eq!(intersect_ascending(&[], &ys), Vec::<u32>::new());
    }

    #[test]
    fn serial_knob_parses_env_shapes() {
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::with_threads(0).threads, 1);
        assert!(!Parallelism::with_threads(8).is_serial());
    }

    #[test]
    fn thread_cpu_time_is_monotone() {
        let a = thread_cpu_time();
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x = x.wrapping_add(i * 2_654_435_761);
        }
        std::hint::black_box(x);
        let b = thread_cpu_time();
        assert!(b >= a);
    }
}
