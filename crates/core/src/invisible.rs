//! The invisible join (Section 5.4) — the paper's new operator.
//!
//! A late-materialized star join that "rewrites joins into predicates on the
//! foreign key columns in the fact table", executed in three phases:
//!
//! 1. **Dimension predicate → key predicate.** Each dimension's predicates
//!    run over its (sorted, compressed) columns, producing a position list.
//!    If the matching positions are contiguous, *between-predicate
//!    rewriting* (Section 5.4.2) turns the join into a `lo <= fk <= hi`
//!    range test; otherwise the matching keys go into a hash set — "in
//!    which case a hash join is simulated".
//! 2. **Fact foreign-key probes.** Each key predicate is applied to its FK
//!    column like any other column predicate (RLE-direct where the column
//!    is sorted), and the per-dimension position lists are intersected into
//!    the final fact position list `P`.
//! 3. **Minimal out-of-order extraction.** Only now, with all predicates
//!    applied, are dimension attributes fetched: dense reassigned keys make
//!    the FK value *be* the dimension row position ("a fast array
//!    look-up"); DATE's non-dense `yyyymmdd` keys take the hash-join
//!    fallback the paper describes.

use crate::agg::{AggStrategy, GroupData};
use crate::config::EngineConfig;
use crate::extract::gather_ints;
use crate::morsel::{intersect_ascending, run_morsels, Parallelism};
use crate::poslist::PosList;
use crate::projection::CStoreDb;
use crate::scan::{scan_int, scan_int_range, scan_pred, scan_pred_range, IntScanPred};
use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_data::schema::Dim;
use cvr_index::hashidx::{IntHashMap, IntHashSet};
use cvr_storage::io::IoSession;

/// The rewritten join predicate applied to a fact FK column in phase 2.
pub enum FactKeyPred {
    /// `lo <= fk <= hi` — the between-predicate rewriting fast path.
    Between(i64, i64),
    /// Hash-set membership — the general fallback.
    KeySet(IntHashSet),
}

impl FactKeyPred {
    /// Human-readable tag, used by plan-inspection tests and examples.
    pub fn kind(&self) -> &'static str {
        match self {
            FactKeyPred::Between(..) => "between",
            FactKeyPred::KeySet(..) => "hash-set",
        }
    }

    /// Run `f` with the scan-layer form of this key predicate:
    /// between-rewritten joins become interval predicates
    /// (SWAR-kernel-eligible on packed FK columns); hash sets stay opaque
    /// per-value tests.
    fn with_scan_pred<R>(&self, f: impl FnOnce(&IntScanPred<'_>) -> R) -> R {
        match self {
            FactKeyPred::Between(lo, hi) => f(&IntScanPred::Range { lo: *lo, hi: *hi }),
            FactKeyPred::KeySet(set) => {
                let test = |v: i64| set.contains(v);
                f(&IntScanPred::Test(&test))
            }
        }
    }
}

/// Tuning knobs for the invisible join, beyond the Figure 7 configuration:
/// used by the ablation study that isolates between-predicate rewriting
/// ("this performance difference is largely due to the between-predicate
/// rewriting optimization", Section 6.3.2).
#[derive(Debug, Clone, Copy)]
pub struct InvisibleOptions {
    /// Attempt between-predicate rewriting (default). When false, phase 1
    /// always builds a key hash set — the "another way of thinking about a
    /// column-oriented semijoin" baseline of Section 5.4.2.
    pub between_rewriting: bool,
}

impl Default for InvisibleOptions {
    fn default() -> Self {
        InvisibleOptions { between_rewriting: true }
    }
}

/// Phase 1 for one dimension: evaluate its predicates and rewrite to a fact
/// key predicate. Returns `None` when the dimension has no predicates.
pub fn phase1_key_pred(
    db: &CStoreDb,
    q: &SsbQuery,
    dim: Dim,
    cfg: EngineConfig,
    io: &IoSession,
) -> Option<FactKeyPred> {
    phase1_key_pred_opts(db, q, dim, cfg, InvisibleOptions::default(), io)
}

/// [`phase1_key_pred`] with explicit [`InvisibleOptions`].
pub fn phase1_key_pred_opts(
    db: &CStoreDb,
    q: &SsbQuery,
    dim: Dim,
    cfg: EngineConfig,
    opts: InvisibleOptions,
    io: &IoSession,
) -> Option<FactKeyPred> {
    let preds = q.dim_predicates_on(dim);
    if preds.is_empty() {
        return None;
    }
    let store = db.dim(dim);
    let mut dpos: Option<PosList> = None;
    for p in &preds {
        let col = store.store.column(p.column);
        let pl = scan_pred(col, &p.pred, cfg.block_iteration, io);
        dpos = Some(match dpos {
            None => pl,
            Some(acc) => acc.intersect(&pl),
        });
    }
    let dpos = dpos.expect("at least one predicate");
    // Between-predicate rewriting: the *runtime* contiguity check the paper
    // describes ("the code that evaluates predicates against the dimension
    // table is capable of detecting whether the result set is contiguous").
    let key_pred = if opts.between_rewriting && !dpos.is_empty() && dpos.is_contiguous() {
        if store.dense_keys {
            // Keys are positions.
            FactKeyPred::Between(dpos.first().unwrap() as i64, dpos.last().unwrap() as i64)
        } else {
            // DATE: keys ascend with position, so a contiguous position run
            // is a contiguous key range; fetch the two boundary keys.
            let keycol = store.store.column(dim.key_column());
            let bounds = PosList::Explicit {
                positions: if dpos.first() == dpos.last() {
                    vec![dpos.first().unwrap()]
                } else {
                    vec![dpos.first().unwrap(), dpos.last().unwrap()]
                },
                universe: dpos.universe(),
            };
            let vals = gather_ints(keycol, &bounds, io);
            FactKeyPred::Between(vals[0], *vals.last().unwrap())
        }
    } else {
        // General case: collect matching keys into a hash set ("the hash
        // table should easily fit in memory since dimension tables are
        // typically small and the table contains only keys").
        let keycol = store.store.column(dim.key_column());
        let keys = gather_ints(keycol, &dpos, io);
        FactKeyPred::KeySet(IntHashSet::from_keys(keys))
    };
    Some(key_pred)
}

/// Phase 2: apply one key predicate to its fact FK column.
pub fn phase2_probe(
    db: &CStoreDb,
    dim: Dim,
    key_pred: &FactKeyPred,
    cfg: EngineConfig,
    io: &IoSession,
) -> PosList {
    let col = db.fact.column(dim.fact_fk_column());
    key_pred.with_scan_pred(|pred| scan_int(col, pred, cfg.block_iteration, io))
}

/// Execute `q` with the invisible join (default options).
pub(crate) fn execute(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    io: &IoSession,
) -> QueryOutput {
    execute_opts(db, q, cfg, InvisibleOptions::default(), io)
}

/// Execute `q` with explicit [`InvisibleOptions`].
pub(crate) fn execute_opts(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    opts: InvisibleOptions,
    io: &IoSession,
) -> QueryOutput {
    let n = db.fact_rows() as u32;

    // Phases 1+2 per restricted dimension, intersecting position lists.
    let mut pos: Option<PosList> = None;
    for dim in q.restricted_dims() {
        let key_pred =
            phase1_key_pred_opts(db, q, dim, cfg, opts, io).expect("restricted dim has predicates");
        let pl = phase2_probe(db, dim, &key_pred, cfg, io);
        pos = Some(match pos {
            None => pl,
            Some(acc) => acc.intersect(&pl),
        });
    }
    // Fact measure predicates (flight 1) are ordinary column predicates,
    // applied alongside the rewritten join predicates.
    for p in &q.fact_predicates {
        let col = db.fact.column(p.column);
        let pl = scan_pred(col, &p.pred, cfg.block_iteration, io);
        pos = Some(match pos {
            None => pl,
            Some(acc) => acc.intersect(&pl),
        });
    }
    let pos = pos.unwrap_or_else(|| PosList::all(n));

    // Phase 3: dimension attribute extraction at the final position list —
    // as codes when every group column has a code space (see
    // [`AggStrategy`]), so no strings are materialized per row.
    let strat = AggStrategy::for_query(db, q);
    let mut group_cols: Vec<GroupData> = Vec::with_capacity(q.group_by.len());
    let mut fk_cache: std::collections::HashMap<Dim, Vec<u32>> = std::collections::HashMap::new();
    for (gi, g) in q.group_by.iter().enumerate() {
        let dim = g.dim;
        fk_cache.entry(dim).or_insert_with(|| {
            let fk_col = db.fact.column(dim.fact_fk_column());
            let fks = gather_ints(fk_col, &pos, io);
            let dim_positions: Vec<u32> = if db.dim(dim).dense_keys {
                // Reassigned keys: FK value == dimension row position.
                fks.into_iter().map(|k| k as u32).collect()
            } else {
                // DATE: non-dense keys — perform the join via a key→position
                // hash table built from the dimension key column.
                let keycol = db.dim(dim).store.column(dim.key_column());
                keycol.charge_scan(io);
                let keys = keycol.column.as_int().decode();
                let map =
                    IntHashMap::from_pairs(keys.iter().enumerate().map(|(p, &k)| (k, p as u32)));
                fks.into_iter().map(|k| map.get(k).expect("fact FK must join DATE")).collect()
            };
            dim_positions
        });
        let dim_positions = &fk_cache[&dim];
        let col = db.dim(dim).store.column(g.column);
        group_cols.push(strat.extract_group_at(gi, col, dim_positions, io));
    }

    // Measures at the final positions; aggregate on group ids.
    let measure_cols: Vec<Vec<i64>> = q
        .aggregate
        .fact_columns()
        .iter()
        .map(|c| gather_ints(db.fact.column(c), &pos, io))
        .collect();
    let mut partial = strat.new_partial();
    partial.add_rows(q, &group_cols, &measure_cols, pos.count() as usize);
    strat.finish(partial, q)
}

/// Execute `q` with the invisible join across `par.threads` morsel workers.
///
/// Phase 1 (dimension predicate → key predicate) stays on the coordinator —
/// dimension tables are small and its charges must precede the fact probes,
/// exactly as in [`execute`]. Phases 2 and 3 run as one pipelined fan-out:
/// each morsel probes every foreign-key predicate over its slice of the fact
/// position space, applies the fact predicates, extracts group and measure
/// values at its surviving positions, and partially aggregates. The
/// coordinator replays per-morsel I/O logs and merges partial aggregates in
/// morsel order, making both the result and the accounting byte-identical
/// to the serial path.
pub(crate) fn execute_par(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    par: Parallelism,
    io: &IoSession,
) -> QueryOutput {
    if par.is_serial() {
        return execute(db, q, cfg, io);
    }
    let n = db.fact_rows() as u32;

    // Phase 1 (serial): dimension predicates rewritten to fact key
    // predicates, charged on the main session like the serial plan.
    let key_preds: Vec<(Dim, FactKeyPred)> = q
        .restricted_dims()
        .into_iter()
        .map(|dim| {
            let kp = phase1_key_pred(db, q, dim, cfg, io).expect("restricted dim has predicates");
            (dim, kp)
        })
        .collect();

    // Non-dense grouped dimensions (DATE) need a key → position join table;
    // the serial plan builds it once per dimension inside phase 3. Build it
    // up front so every morsel can share it read-only.
    let group_dims: Vec<Dim> = {
        let mut dims: Vec<Dim> = Vec::new();
        for g in &q.group_by {
            if !dims.contains(&g.dim) {
                dims.push(g.dim);
            }
        }
        dims
    };
    let mut join_maps: std::collections::HashMap<Dim, IntHashMap> =
        std::collections::HashMap::new();
    for &dim in &group_dims {
        if !db.dim(dim).dense_keys {
            let keycol = db.dim(dim).store.column(dim.key_column());
            keycol.charge_scan(io);
            let keys = keycol.column.as_int().decode();
            join_maps.insert(
                dim,
                IntHashMap::from_pairs(keys.iter().enumerate().map(|(p, &k)| (k, p as u32))),
            );
        }
    }

    // The aggregation strategy is derived from column-header metadata only
    // (no charges) and shared read-only, so every morsel extracts codes in
    // the same global code spaces.
    let strat = AggStrategy::for_query(db, q);

    let pool = io.pool().clone();
    let results = run_morsels(n, par, |_, range| {
        let rio = IoSession::recording(pool.clone());

        // Phase 2 over this morsel: every key predicate and fact predicate,
        // intersected into the morsel's surviving positions.
        let mut pos: Option<Vec<u32>> = None;
        for (dim, key_pred) in &key_preds {
            let col = db.fact.column(dim.fact_fk_column());
            let frag = key_pred.with_scan_pred(|pred| {
                scan_int_range(col, range.start, range.end, pred, cfg.block_iteration, &rio)
            });
            pos = Some(match pos {
                None => frag,
                Some(acc) => intersect_ascending(&acc, &frag),
            });
        }
        for p in &q.fact_predicates {
            let col = db.fact.column(p.column);
            let frag =
                scan_pred_range(col, range.start, range.end, &p.pred, cfg.block_iteration, &rio);
            pos = Some(match pos {
                None => frag,
                Some(acc) => intersect_ascending(&acc, &frag),
            });
        }
        let pos = PosList::explicit(pos.unwrap_or_else(|| range.collect()), n);

        // Phase 3 over this morsel: minimal out-of-order extraction at the
        // surviving positions, then partial aggregation on group ids.
        let mut group_cols: Vec<GroupData> = Vec::with_capacity(q.group_by.len());
        let mut fk_cache: std::collections::HashMap<Dim, Vec<u32>> =
            std::collections::HashMap::new();
        for (gi, g) in q.group_by.iter().enumerate() {
            let dim = g.dim;
            fk_cache.entry(dim).or_insert_with(|| {
                let fk_col = db.fact.column(dim.fact_fk_column());
                let fks = gather_ints(fk_col, &pos, &rio);
                if db.dim(dim).dense_keys {
                    fks.into_iter().map(|k| k as u32).collect()
                } else {
                    let map = &join_maps[&dim];
                    fks.into_iter().map(|k| map.get(k).expect("fact FK must join DATE")).collect()
                }
            });
            let dim_positions = &fk_cache[&dim];
            let col = db.dim(dim).store.column(g.column);
            group_cols.push(strat.extract_group_at(gi, col, dim_positions, &rio));
        }

        let measure_cols: Vec<Vec<i64>> = q
            .aggregate
            .fact_columns()
            .iter()
            .map(|c| gather_ints(db.fact.column(c), &pos, &rio))
            .collect();
        let mut partial = strat.new_partial();
        partial.add_rows(q, &group_cols, &measure_cols, pos.count() as usize);
        (rio.take_log(), partial)
    });

    // Deterministic merge: partial aggregates fold in morsel order, and the
    // per-morsel I/O logs replay op-major, reconstructing the serial plan's
    // charge order (see `IoSession::replay_interleaved`).
    let mut merged = strat.new_partial();
    let mut logs = Vec::with_capacity(results.len());
    for (log, partial) in results {
        logs.push(log);
        merged.merge(partial);
    }
    io.replay_interleaved(&logs);
    strat.finish(merged, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::{all_queries, query};
    use cvr_data::reference;
    use std::sync::Arc;

    fn db() -> CStoreDb {
        CStoreDb::build(Arc::new(SsbConfig { sf: 0.002, seed: 17 }.generate()), true)
    }

    #[test]
    fn matches_reference_on_all_queries() {
        let db = db();
        let io = IoSession::unmetered();
        for q in all_queries() {
            let expected = reference::evaluate(&db.tables, &q);
            let got = execute(&db, &q, EngineConfig::FULL, &io);
            assert_eq!(got, expected, "invisible join disagrees on {}", q.id);
        }
    }

    #[test]
    fn region_predicate_rewrites_to_between() {
        let db = db();
        let io = IoSession::unmetered();
        // Q3.1: c_region = 'ASIA' — hierarchy-sorted customer ⇒ contiguous.
        let kp = phase1_key_pred(&db, &query(3, 1), Dim::Customer, EngineConfig::FULL, &io)
            .expect("customer restricted");
        assert_eq!(kp.kind(), "between");
    }

    #[test]
    fn city_in_set_falls_back_to_hash() {
        let db = db();
        let io = IoSession::unmetered();
        // Q3.3: c_city IN ('UNITED KI1','UNITED KI5') — two disjoint ranges.
        let kp = phase1_key_pred(&db, &query(3, 3), Dim::Customer, EngineConfig::FULL, &io)
            .expect("customer restricted");
        // With a large enough dimension both cities exist and are disjoint;
        // at tiny scales one may be absent (still correct either way).
        assert!(kp.kind() == "hash-set" || kp.kind() == "between");
    }

    #[test]
    fn date_year_rewrites_to_datekey_between() {
        let db = db();
        let io = IoSession::unmetered();
        let kp = phase1_key_pred(&db, &query(1, 1), Dim::Date, EngineConfig::FULL, &io)
            .expect("date restricted");
        match kp {
            FactKeyPred::Between(lo, hi) => {
                assert_eq!(lo, 19930101);
                assert_eq!(hi, 19931231);
            }
            FactKeyPred::KeySet(_) => panic!("year predicate must rewrite to between"),
        }
    }

    #[test]
    fn mfgr_in_set_is_contiguous_after_sorting() {
        let db = db();
        let io = IoSession::unmetered();
        // Q4.1: p_mfgr IN ('MFGR#1','MFGR#2') — adjacent under mfgr-sorted
        // parts, so the runtime detector still finds a contiguous range.
        let kp = phase1_key_pred(&db, &query(4, 1), Dim::Part, EngineConfig::FULL, &io)
            .expect("part restricted");
        assert_eq!(kp.kind(), "between");
    }

    #[test]
    fn block_and_tuple_modes_agree() {
        let db = db();
        let io = IoSession::unmetered();
        let tuple_cfg = EngineConfig::parse("TICL");
        for q in all_queries() {
            assert_eq!(
                execute(&db, &q, EngineConfig::FULL, &io),
                execute(&db, &q, tuple_cfg, &io),
                "{}",
                q.id
            );
        }
    }

    #[test]
    fn uncompressed_db_agrees() {
        let tables = Arc::new(SsbConfig { sf: 0.002, seed: 17 }.generate());
        let comp = CStoreDb::build(tables.clone(), true);
        let plain = CStoreDb::build(tables, false);
        let io = IoSession::unmetered();
        let cfg_c = EngineConfig::parse("tICL");
        let cfg_p = EngineConfig::parse("tIcL");
        for q in all_queries() {
            assert_eq!(execute(&comp, &q, cfg_c, &io), execute(&plain, &q, cfg_p, &io), "{}", q.id);
        }
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::{all_queries, query};
    use std::sync::Arc;

    #[test]
    fn disabling_rewriting_preserves_results() {
        let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.002, seed: 61 }.generate()), true);
        let io = IoSession::unmetered();
        let no_rewrite = InvisibleOptions { between_rewriting: false };
        for q in all_queries() {
            assert_eq!(
                execute(&db, &q, EngineConfig::FULL, &io),
                execute_opts(&db, &q, EngineConfig::FULL, no_rewrite, &io),
                "{}",
                q.id
            );
        }
    }

    #[test]
    fn disabling_rewriting_forces_hash_sets() {
        let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.002, seed: 61 }.generate()), true);
        let io = IoSession::unmetered();
        let no_rewrite = InvisibleOptions { between_rewriting: false };
        let q = query(3, 1); // region predicates: rewritable when enabled
        let with = phase1_key_pred(&db, &q, Dim::Customer, EngineConfig::FULL, &io).unwrap();
        let without =
            phase1_key_pred_opts(&db, &q, Dim::Customer, EngineConfig::FULL, no_rewrite, &io)
                .unwrap();
        assert_eq!(with.kind(), "between");
        assert_eq!(without.kind(), "hash-set");
    }
}
