//! The invisible join (Section 5.4) — the paper's new operator.
//!
//! A late-materialized star join that "rewrites joins into predicates on the
//! foreign key columns in the fact table", executed in three phases:
//!
//! 1. **Dimension predicate → key predicate.** Each dimension's predicates
//!    run over its (sorted, compressed) columns, producing a position list.
//!    If the matching positions are contiguous, *between-predicate
//!    rewriting* (Section 5.4.2) turns the join into a `lo <= fk <= hi`
//!    range test; otherwise the matching keys go into a hash set — "in
//!    which case a hash join is simulated".
//! 2. **Fact foreign-key probes.** Each key predicate is applied to its FK
//!    column like any other column predicate (RLE-direct where the column
//!    is sorted), and the per-dimension position lists are intersected into
//!    the final fact position list `P`.
//! 3. **Minimal out-of-order extraction.** Only now, with all predicates
//!    applied, are dimension attributes fetched: dense reassigned keys make
//!    the FK value *be* the dimension row position ("a fast array
//!    look-up"); DATE's non-dense `yyyymmdd` keys take the hash-join
//!    fallback the paper describes.

use crate::agg::{AggStrategy, GroupData};
use crate::config::EngineConfig;
use crate::ctx::{QueryCtx, QueryError};
use crate::extract::gather_ints;
use crate::morsel::{grid, intersect_ascending, try_run_morsels, Parallelism};
use crate::poslist::PosList;
use crate::projection::CStoreDb;
use crate::scan::{scan_int, scan_int_range, scan_pred, scan_pred_range, IntScanPred};
use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_data::schema::Dim;
use cvr_index::hashidx::{IntHashMap, IntHashSet};
use cvr_storage::io::{IoLog, IoSession, IoStats};
use std::collections::HashMap;
use std::time::Duration;

/// The rewritten join predicate applied to a fact FK column in phase 2.
pub enum FactKeyPred {
    /// `lo <= fk <= hi` — the between-predicate rewriting fast path.
    Between(i64, i64),
    /// Hash-set membership — the general fallback.
    KeySet(IntHashSet),
}

impl FactKeyPred {
    /// Human-readable tag, used by plan-inspection tests and examples.
    pub fn kind(&self) -> &'static str {
        match self {
            FactKeyPred::Between(..) => "between",
            FactKeyPred::KeySet(..) => "hash-set",
        }
    }

    /// Run `f` with the scan-layer form of this key predicate:
    /// between-rewritten joins become interval predicates
    /// (SWAR-kernel-eligible on packed FK columns); hash sets stay opaque
    /// per-value tests.
    fn with_scan_pred<R>(&self, f: impl FnOnce(&IntScanPred<'_>) -> R) -> R {
        match self {
            FactKeyPred::Between(lo, hi) => f(&IntScanPred::Range { lo: *lo, hi: *hi }),
            FactKeyPred::KeySet(set) => {
                let test = |v: i64| set.contains(v);
                f(&IntScanPred::Test(&test))
            }
        }
    }
}

/// Tuning knobs for the invisible join, beyond the Figure 7 configuration:
/// used by the ablation study that isolates between-predicate rewriting
/// ("this performance difference is largely due to the between-predicate
/// rewriting optimization", Section 6.3.2).
#[derive(Debug, Clone, Copy)]
pub struct InvisibleOptions {
    /// Attempt between-predicate rewriting (default). When false, phase 1
    /// always builds a key hash set — the "another way of thinking about a
    /// column-oriented semijoin" baseline of Section 5.4.2.
    pub between_rewriting: bool,
}

impl Default for InvisibleOptions {
    fn default() -> Self {
        InvisibleOptions { between_rewriting: true }
    }
}

/// Phase 1 for one dimension: evaluate its predicates and rewrite to a fact
/// key predicate. Returns `None` when the dimension has no predicates.
pub fn phase1_key_pred(
    db: &CStoreDb,
    q: &SsbQuery,
    dim: Dim,
    cfg: EngineConfig,
    io: &IoSession,
) -> Option<FactKeyPred> {
    phase1_key_pred_opts(db, q, dim, cfg, InvisibleOptions::default(), io)
}

/// [`phase1_key_pred`] with explicit [`InvisibleOptions`].
pub fn phase1_key_pred_opts(
    db: &CStoreDb,
    q: &SsbQuery,
    dim: Dim,
    cfg: EngineConfig,
    opts: InvisibleOptions,
    io: &IoSession,
) -> Option<FactKeyPred> {
    let preds = q.dim_predicates_on(dim);
    if preds.is_empty() {
        return None;
    }
    let store = db.dim(dim);
    let mut dpos: Option<PosList> = None;
    for p in &preds {
        let col = store.store.column(p.column);
        let pl = scan_pred(col, &p.pred, cfg.block_iteration, io);
        dpos = Some(match dpos {
            None => pl,
            Some(acc) => acc.intersect(&pl),
        });
    }
    let dpos = dpos.expect("at least one predicate");
    // Between-predicate rewriting: the *runtime* contiguity check the paper
    // describes ("the code that evaluates predicates against the dimension
    // table is capable of detecting whether the result set is contiguous").
    let key_pred = if opts.between_rewriting && !dpos.is_empty() && dpos.is_contiguous() {
        if store.dense_keys {
            // Keys are positions.
            FactKeyPred::Between(dpos.first().unwrap() as i64, dpos.last().unwrap() as i64)
        } else {
            // DATE: keys ascend with position, so a contiguous position run
            // is a contiguous key range; fetch the two boundary keys.
            let keycol = store.store.column(dim.key_column());
            let bounds = PosList::Explicit {
                positions: if dpos.first() == dpos.last() {
                    vec![dpos.first().unwrap()]
                } else {
                    vec![dpos.first().unwrap(), dpos.last().unwrap()]
                },
                universe: dpos.universe(),
            };
            let vals = gather_ints(keycol, &bounds, io);
            FactKeyPred::Between(vals[0], *vals.last().unwrap())
        }
    } else {
        // General case: collect matching keys into a hash set ("the hash
        // table should easily fit in memory since dimension tables are
        // typically small and the table contains only keys").
        let keycol = store.store.column(dim.key_column());
        let keys = gather_ints(keycol, &dpos, io);
        FactKeyPred::KeySet(IntHashSet::from_keys(keys))
    };
    Some(key_pred)
}

/// Phase 2: apply one key predicate to its fact FK column.
pub fn phase2_probe(
    db: &CStoreDb,
    dim: Dim,
    key_pred: &FactKeyPred,
    cfg: EngineConfig,
    io: &IoSession,
) -> PosList {
    let col = db.fact.column(dim.fact_fk_column());
    key_pred.with_scan_pred(|pred| scan_int(col, pred, cfg.block_iteration, io))
}

/// A reusable record of the *filter* half (phases 1+2) of one invisible-join
/// execution: the exact I/O charges those phases made, in order, plus the
/// surviving fact positions. [`execute_warm`] replays the charges and skips
/// straight to phase 3, producing output and accounting byte-identical to a
/// cold run at a fraction of the work. A capture is only valid for the same
/// store contents, query filter, engine config, fact order, and — for
/// parallel executions — the same morsel grid; callers key their caches
/// accordingly and [`execute_warm`] re-checks the grid shape.
#[derive(Debug, Clone)]
pub struct FilterCapture {
    /// Coordinator-side step logs in charge order: serial captures hold
    /// phase 1 and phase 2 alternating per restricted dimension, then the
    /// fact-predicate scans; parallel captures hold phase 1 only.
    coordinator_logs: Vec<IoLog>,
    /// Per-morsel phase-2 logs (parallel captures only), replayed op-major
    /// exactly like a cold run.
    morsel_logs: Vec<IoLog>,
    /// The surviving fact positions.
    positions: CapturedPositions,
}

/// How the surviving positions were recorded — mirrors the execution shape.
#[derive(Debug, Clone)]
enum CapturedPositions {
    /// One global position list (serial execution).
    Serial(PosList),
    /// Ascending absolute-position fragments, one per morsel (parallel
    /// execution); reusable only on an identical morsel grid.
    Morsels(Vec<Vec<u32>>),
}

impl FilterCapture {
    /// Fact rows surviving the filter.
    pub fn survivors(&self) -> u64 {
        match &self.positions {
            CapturedPositions::Serial(p) => p.count() as u64,
            CapturedPositions::Morsels(f) => f.iter().map(|v| v.len() as u64).sum(),
        }
    }

    /// Approximate heap footprint, for cache budget accounting.
    pub fn approx_bytes(&self) -> usize {
        let logs = self.coordinator_logs.iter().chain(self.morsel_logs.iter());
        let log_bytes: usize = logs.map(|l| l.entries().len() * 12 + l.num_ops() * 8 + 64).sum();
        let pos_bytes = match &self.positions {
            CapturedPositions::Serial(p) => p.count() as usize * 4 + 32,
            CapturedPositions::Morsels(f) => f.iter().map(|v| v.len() * 4 + 32).sum(),
        };
        log_bytes + pos_bytes + std::mem::size_of::<FilterCapture>()
    }
}

/// Run one charging step. When `capture` is live the step runs against a
/// fresh recording session whose log is immediately replayed onto `io`
/// (charge-identical to running live — replay re-issues the same
/// `read_page` calls in the same order) and then retained for later warm
/// replays.
fn charge_step<R>(
    io: &IoSession,
    capture: &mut Option<&mut Vec<IoLog>>,
    f: impl FnOnce(&IoSession) -> R,
) -> R {
    match capture {
        None => f(io),
        Some(logs) => {
            let rio = IoSession::recording(io.pool().clone());
            let out = f(&rio);
            let log = rio.take_log();
            io.replay(&log);
            logs.push(log);
            out
        }
    }
}

/// Phases 1+2 of the serial plan: per restricted dimension, rewrite its
/// predicates to a fact key predicate and probe the FK column, intersecting
/// position lists; then apply the fact measure predicates (flight 1) like
/// any other column predicate. Each charging step is optionally captured.
fn filter_serial(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    opts: InvisibleOptions,
    io: &IoSession,
    capture: &mut Option<&mut Vec<IoLog>>,
    ctx: &QueryCtx,
) -> Result<PosList, QueryError> {
    let n = db.fact_rows() as u32;
    let mut pos: Option<PosList> = None;
    for dim in q.restricted_dims() {
        ctx.check()?;
        let mut span = ctx.span("probe", dim.fact_fk_column(), io);
        let key_pred = charge_step(io, capture, |s| {
            phase1_key_pred_opts(db, q, dim, cfg, opts, s).expect("restricted dim has predicates")
        });
        let pl = charge_step(io, capture, |s| phase2_probe(db, dim, &key_pred, cfg, s));
        span.rows(pl.count() as u64);
        pos = Some(match pos {
            None => pl,
            Some(acc) => acc.intersect(&pl),
        });
    }
    for p in &q.fact_predicates {
        ctx.check()?;
        let mut span = ctx.span("scan", p.column, io);
        let col = db.fact.column(p.column);
        let pl = charge_step(io, capture, |s| scan_pred(col, &p.pred, cfg.block_iteration, s));
        span.rows(pl.count() as u64);
        pos = Some(match pos {
            None => pl,
            Some(acc) => acc.intersect(&pl),
        });
    }
    let pos = pos.unwrap_or_else(|| PosList::all(n));
    // Account the surviving position list — the filter's materialized
    // intermediate (upper bound for range/bitmap representations).
    ctx.charge(pos.count() as usize * 4)?;
    Ok(pos)
}

/// Key → position join tables for non-dense grouped dimensions (DATE),
/// charged on `io`. The serial plan builds these lazily inside phase 3;
/// parallel and warm executions build them up front so morsels share them
/// read-only.
fn build_join_maps(
    db: &CStoreDb,
    q: &SsbQuery,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<HashMap<Dim, IntHashMap>, QueryError> {
    let mut group_dims: Vec<Dim> = Vec::new();
    for g in &q.group_by {
        if !group_dims.contains(&g.dim) {
            group_dims.push(g.dim);
        }
    }
    let mut join_maps: HashMap<Dim, IntHashMap> = HashMap::new();
    for &dim in &group_dims {
        if !db.dim(dim).dense_keys {
            ctx.check()?;
            let keycol = db.dim(dim).store.column(dim.key_column());
            keycol.charge_scan(io);
            let keys = keycol.column.as_int().decode();
            ctx.charge(keys.len() * 12)?; // decoded keys + hash-table entries
            join_maps.insert(
                dim,
                IntHashMap::from_pairs(keys.iter().enumerate().map(|(p, &k)| (k, p as u32))),
            );
        }
    }
    Ok(join_maps)
}

/// Phase 3 over one position list: minimal out-of-order extraction of group
/// and measure values at the surviving positions, partially aggregated on
/// group ids. With `join_maps: Some(..)` (parallel / warm executions) the
/// prebuilt key→position tables are shared; with `None` (serial) the DATE
/// join table is built here, charging the key column — exactly the lazy
/// behavior the serial plan always had.
fn phase3_partial(
    db: &CStoreDb,
    q: &SsbQuery,
    strat: &AggStrategy,
    join_maps: Option<&HashMap<Dim, IntHashMap>>,
    pos: &PosList,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<crate::agg::AggPartial, QueryError> {
    ctx.check()?;
    // Account the gathered group/measure arrays this phase materializes.
    let width = q.group_by.len() + q.aggregate.fact_columns().len();
    ctx.charge((pos.count() as usize).saturating_mul(8 * width.max(1)))?;
    let mut group_cols: Vec<GroupData> = Vec::with_capacity(q.group_by.len());
    let mut fk_cache: HashMap<Dim, Vec<u32>> = HashMap::new();
    for (gi, g) in q.group_by.iter().enumerate() {
        let dim = g.dim;
        fk_cache.entry(dim).or_insert_with(|| {
            let fk_col = db.fact.column(dim.fact_fk_column());
            let fks = gather_ints(fk_col, pos, io);
            if db.dim(dim).dense_keys {
                // Reassigned keys: FK value == dimension row position.
                fks.into_iter().map(|k| k as u32).collect()
            } else if let Some(maps) = join_maps {
                let map = &maps[&dim];
                fks.into_iter().map(|k| map.get(k).expect("fact FK must join DATE")).collect()
            } else {
                // DATE: non-dense keys — perform the join via a key→position
                // hash table built from the dimension key column.
                let keycol = db.dim(dim).store.column(dim.key_column());
                keycol.charge_scan(io);
                let keys = keycol.column.as_int().decode();
                let map =
                    IntHashMap::from_pairs(keys.iter().enumerate().map(|(p, &k)| (k, p as u32)));
                fks.into_iter().map(|k| map.get(k).expect("fact FK must join DATE")).collect()
            }
        });
        let dim_positions = &fk_cache[&dim];
        let col = db.dim(dim).store.column(g.column);
        group_cols.push(strat.extract_group_at(gi, col, dim_positions, io));
    }
    let measure_cols: Vec<Vec<i64>> = q
        .aggregate
        .fact_columns()
        .iter()
        .map(|c| gather_ints(db.fact.column(c), pos, io))
        .collect();
    let mut partial = strat.new_partial();
    partial.add_rows(q, &group_cols, &measure_cols, pos.count() as usize);
    Ok(partial)
}

/// Execute `q` with the invisible join (infallible test shorthand).
#[cfg(test)]
pub(crate) fn execute(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    io: &IoSession,
) -> QueryOutput {
    execute_opts(db, q, cfg, InvisibleOptions::default(), io)
}

/// Execute `q` with explicit [`InvisibleOptions`].
pub(crate) fn execute_opts(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    opts: InvisibleOptions,
    io: &IoSession,
) -> QueryOutput {
    try_execute_opts(db, q, cfg, opts, io, &QueryCtx::unbounded())
        .unwrap_or_else(|e| std::panic::panic_any(e))
}

/// Execute `q` with the invisible join (default options), honouring `ctx`.
pub(crate) fn try_execute(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<QueryOutput, QueryError> {
    try_execute_opts(db, q, cfg, InvisibleOptions::default(), io, ctx)
}

/// Fallible, lifecycle-aware form of [`execute_opts`]: checks `ctx` between
/// filter steps and phases, charging materialized intermediates against its
/// memory budget.
pub(crate) fn try_execute_opts(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    opts: InvisibleOptions,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<QueryOutput, QueryError> {
    // Phases 1+2 per restricted dimension, then fact predicates.
    let pos = filter_serial(db, q, cfg, opts, io, &mut None, ctx)?;
    // Phase 3: dimension attribute extraction at the final position list —
    // as codes when every group column has a code space (see
    // [`AggStrategy`]), so no strings are materialized per row.
    let strat = AggStrategy::for_query(db, q);
    let mut span = ctx.span("extract-aggregate", "", io);
    let partial = phase3_partial(db, q, &strat, None, &pos, io, ctx)?;
    let out = strat.finish(partial, q);
    span.rows(out.len() as u64);
    Ok(out)
}

/// Parallel invisible join with an unbounded lifecycle (test shorthand).
#[cfg(test)]
pub(crate) fn execute_par(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    par: Parallelism,
    io: &IoSession,
) -> QueryOutput {
    try_execute_par(db, q, cfg, par, io, &QueryCtx::unbounded())
        .unwrap_or_else(|e| std::panic::panic_any(e))
}

/// Execute `q` with the invisible join across `par.threads` morsel workers.
///
/// Phase 1 (dimension predicate → key predicate) stays on the coordinator —
/// dimension tables are small and its charges must precede the fact probes,
/// exactly as in [`try_execute`]. Phases 2 and 3 run as one pipelined fan-out:
/// each morsel probes every foreign-key predicate over its slice of the fact
/// position space, applies the fact predicates, extracts group and measure
/// values at its surviving positions, and partially aggregates. The
/// coordinator replays per-morsel I/O logs and merges partial aggregates in
/// morsel order, making both the result and the accounting byte-identical
/// to the serial path. Workers poll `ctx` at morsel boundaries and the
/// whole fan-out aborts on the first failure.
pub(crate) fn try_execute_par(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    par: Parallelism,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<QueryOutput, QueryError> {
    if par.is_serial() {
        return try_execute(db, q, cfg, io, ctx);
    }
    Ok(execute_par_impl(db, q, cfg, par, io, false, ctx)?.0)
}

/// The parallel plan, optionally capturing its filter phases. Each morsel
/// charges phase 2 and phase 3 into *separate* recording sessions; because
/// every morsel of one query runs the same structural op sequence, replaying
/// the phase-2 logs op-major and then the phase-3 logs op-major reconstructs
/// exactly the charge order of a single combined interleave — and lets a
/// warm execution replay the filter logs alone.
fn execute_par_impl(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    par: Parallelism,
    io: &IoSession,
    capturing: bool,
    ctx: &QueryCtx,
) -> Result<(QueryOutput, Option<FilterCapture>), QueryError> {
    let n = db.fact_rows() as u32;

    // Phase 1 (serial): dimension predicates rewritten to fact key
    // predicates, charged on the main session like the serial plan.
    let mut coordinator_logs: Vec<IoLog> = Vec::new();
    let key_preds: Vec<(Dim, FactKeyPred)> = {
        let mut cap = if capturing { Some(&mut coordinator_logs) } else { None };
        let mut preds = Vec::new();
        for dim in q.restricted_dims() {
            ctx.check()?;
            let kp = charge_step(io, &mut cap, |s| {
                phase1_key_pred(db, q, dim, cfg, s).expect("restricted dim has predicates")
            });
            preds.push((dim, kp));
        }
        preds
    };

    // Non-dense grouped dimensions (DATE) need a key → position join table;
    // the serial plan builds it once per dimension inside phase 3. Build it
    // up front so every morsel can share it read-only. Never captured: it
    // depends on the group-by, not the filter, and is rebuilt live (with
    // identical charges) on warm executions.
    let join_maps = build_join_maps(db, q, io, ctx)?;

    // The aggregation strategy is derived from column-header metadata only
    // (no charges) and shared read-only, so every morsel extracts codes in
    // the same global code spaces.
    let strat = AggStrategy::for_query(db, q);

    // Per-operator output tallies for tracing: one slot per key predicate
    // then per fact predicate. Each morsel's fragment count for an operator
    // sums (over morsels) to exactly the serial plan's per-operator output
    // cardinality, so EXPLAIN ANALYZE reports identical actuals at any
    // thread count. Allocated only when a tracer is attached.
    let tallies: Option<Vec<std::sync::atomic::AtomicU64>> = ctx.traced().then(|| {
        (0..key_preds.len() + q.fact_predicates.len())
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect()
    });
    let tally = |slot: usize, rows: usize| {
        if let Some(t) = &tallies {
            t[slot].fetch_add(rows as u64, std::sync::atomic::Ordering::Relaxed);
        }
    };

    // The fan-out fuses phases 2 and 3, so per-operator wall/I/O cannot be
    // separated; the span carries the combined measurement plus the
    // per-worker breakdown, and the per-operator row tallies become leaf
    // records under it once the morsels have merged.
    let mut span = ctx.span("extract-aggregate", "", io);

    let pool = io.pool().clone();
    let results = try_run_morsels(n, par, ctx, |_, range| {
        // Phase 2 over this morsel: every key predicate and fact predicate,
        // intersected into the morsel's surviving positions.
        let rio2 = IoSession::recording(pool.clone());
        let mut pos: Option<Vec<u32>> = None;
        for (slot, (dim, key_pred)) in key_preds.iter().enumerate() {
            let col = db.fact.column(dim.fact_fk_column());
            let frag = key_pred.with_scan_pred(|pred| {
                scan_int_range(col, range.start, range.end, pred, cfg.block_iteration, &rio2)
            });
            tally(slot, frag.len());
            pos = Some(match pos {
                None => frag,
                Some(acc) => intersect_ascending(&acc, &frag),
            });
        }
        for (slot, p) in q.fact_predicates.iter().enumerate() {
            let col = db.fact.column(p.column);
            let frag =
                scan_pred_range(col, range.start, range.end, &p.pred, cfg.block_iteration, &rio2);
            tally(key_preds.len() + slot, frag.len());
            pos = Some(match pos {
                None => frag,
                Some(acc) => intersect_ascending(&acc, &frag),
            });
        }
        let pos_vec = pos.unwrap_or_else(|| range.collect());
        ctx.charge(pos_vec.len() * 4)?; // this morsel's surviving positions
        let frag = capturing.then(|| pos_vec.clone());
        let pos = PosList::explicit(pos_vec, n);

        // Phase 3 over this morsel: minimal out-of-order extraction at the
        // surviving positions, then partial aggregation on group ids.
        let rio3 = IoSession::recording(pool.clone());
        let partial = phase3_partial(db, q, &strat, Some(&join_maps), &pos, &rio3, ctx)?;
        Ok((rio2.take_log(), rio3.take_log(), frag, partial))
    })?;

    // Deterministic merge: partial aggregates fold in morsel order, and the
    // per-morsel I/O logs replay op-major — phase 2 then phase 3 —
    // reconstructing the serial plan's charge order (see
    // `IoSession::replay_interleaved`).
    let mut merged = strat.new_partial();
    let mut logs2 = Vec::with_capacity(results.len());
    let mut logs3 = Vec::with_capacity(results.len());
    let mut frags = Vec::new();
    for (l2, l3, frag, partial) in results {
        logs2.push(l2);
        logs3.push(l3);
        if let Some(f) = frag {
            frags.push(f);
        }
        merged.merge(partial);
    }
    io.replay_interleaved(&logs2);
    io.replay_interleaved(&logs3);
    let out = strat.finish(merged, q);
    span.rows(out.len() as u64);
    drop(span);
    if let (Some(tracer), Some(tallies)) = (ctx.tracer(), &tallies) {
        use std::sync::atomic::Ordering;
        let mut slot = 0;
        for (dim, _) in &key_preds {
            let rows = tallies[slot].load(Ordering::Relaxed);
            tracer.leaf(
                "probe",
                dim.fact_fk_column(),
                Some(rows),
                Duration::ZERO,
                IoStats::default(),
            );
            slot += 1;
        }
        for p in &q.fact_predicates {
            let rows = tallies[slot].load(Ordering::Relaxed);
            tracer.leaf("scan", p.column, Some(rows), Duration::ZERO, IoStats::default());
            slot += 1;
        }
    }
    let capture = capturing.then_some(FilterCapture {
        coordinator_logs,
        morsel_logs: logs2,
        positions: CapturedPositions::Morsels(frags),
    });
    Ok((out, capture))
}

/// Cold capture with an unbounded lifecycle (test shorthand).
#[cfg(test)]
pub(crate) fn execute_capture(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    par: Parallelism,
    io: &IoSession,
) -> (QueryOutput, FilterCapture) {
    try_execute_capture(db, q, cfg, par, io, &QueryCtx::unbounded())
        .unwrap_or_else(|e| std::panic::panic_any(e))
}

/// Execute `q` cold (default options) and capture its filter phases for
/// later [`try_execute_warm`] reuse. Charges on `io` are byte-identical to
/// [`try_execute_par`] / [`try_execute`] at the same `par`.
pub(crate) fn try_execute_capture(
    db: &CStoreDb,
    q: &SsbQuery,
    cfg: EngineConfig,
    par: Parallelism,
    io: &IoSession,
    ctx: &QueryCtx,
) -> Result<(QueryOutput, FilterCapture), QueryError> {
    if par.is_serial() {
        let mut logs: Vec<IoLog> = Vec::new();
        let pos =
            filter_serial(db, q, cfg, InvisibleOptions::default(), io, &mut Some(&mut logs), ctx)?;
        let strat = AggStrategy::for_query(db, q);
        let mut span = ctx.span("extract-aggregate", "", io);
        let partial = phase3_partial(db, q, &strat, None, &pos, io, ctx)?;
        let out = strat.finish(partial, q);
        span.rows(out.len() as u64);
        drop(span);
        let capture = FilterCapture {
            coordinator_logs: logs,
            morsel_logs: Vec::new(),
            positions: CapturedPositions::Serial(pos),
        };
        Ok((out, capture))
    } else {
        let (out, capture) = execute_par_impl(db, q, cfg, par, io, true, ctx)?;
        Ok((out, capture.expect("parallel capture requested")))
    }
}

/// Warm re-execution with an unbounded lifecycle (test shorthand).
#[cfg(test)]
pub(crate) fn execute_warm(
    db: &CStoreDb,
    q: &SsbQuery,
    par: Parallelism,
    io: &IoSession,
    capture: &FilterCapture,
) -> Option<QueryOutput> {
    try_execute_warm(db, q, par, io, capture, &QueryCtx::unbounded())
        .unwrap_or_else(|e| std::panic::panic_any(e))
}

/// Execute `q` warm: replay the captured filter charges, then run phase 3
/// live over the captured positions. Output and accounting are
/// byte-identical to a cold execution at the same `par`. The outer `Err`
/// is a lifecycle abort; the inner `None` is a capture-shape mismatch
/// (serial capture vs parallel run or vice versa, or a different morsel
/// grid) — the caller falls back to a cold execution.
pub(crate) fn try_execute_warm(
    db: &CStoreDb,
    q: &SsbQuery,
    par: Parallelism,
    io: &IoSession,
    capture: &FilterCapture,
    ctx: &QueryCtx,
) -> Result<Option<QueryOutput>, QueryError> {
    let n = db.fact_rows() as u32;
    if par.is_serial() {
        let CapturedPositions::Serial(pos) = &capture.positions else {
            return Ok(None);
        };
        {
            let mut replay = ctx.span("filter-replay", "cached filter charges", io);
            for log in &capture.coordinator_logs {
                io.replay(log);
            }
            replay.rows(pos.count() as u64);
        }
        let strat = AggStrategy::for_query(db, q);
        let mut span = ctx.span("extract-aggregate", "", io);
        let partial = phase3_partial(db, q, &strat, None, pos, io, ctx)?;
        let out = strat.finish(partial, q);
        span.rows(out.len() as u64);
        drop(span);
        Ok(Some(out))
    } else {
        let CapturedPositions::Morsels(frags) = &capture.positions else {
            return Ok(None);
        };
        let (_, count) = grid(n, par);
        if frags.len() != count {
            return Ok(None);
        }
        // Replay phases 1 and 2 from the capture; rebuild the join tables
        // live between them, exactly where the cold plan charges them.
        let mut replay = ctx.span("filter-replay", "cached filter charges", io);
        for log in &capture.coordinator_logs {
            io.replay(log);
        }
        let join_maps = build_join_maps(db, q, io, ctx)?;
        io.replay_interleaved(&capture.morsel_logs);
        replay.rows(frags.iter().map(Vec::len).sum::<usize>() as u64);
        drop(replay);
        // Phase 3 live, over the same morsel grid and the captured
        // surviving positions.
        let strat = AggStrategy::for_query(db, q);
        let mut span = ctx.span("extract-aggregate", "", io);
        let pool = io.pool().clone();
        let results = try_run_morsels(n, par, ctx, |i, _range| {
            let rio = IoSession::recording(pool.clone());
            let pos = PosList::explicit(frags[i].clone(), n);
            let partial = phase3_partial(db, q, &strat, Some(&join_maps), &pos, &rio, ctx)?;
            Ok((rio.take_log(), partial))
        })?;
        let mut merged = strat.new_partial();
        let mut logs = Vec::with_capacity(results.len());
        for (log, partial) in results {
            logs.push(log);
            merged.merge(partial);
        }
        io.replay_interleaved(&logs);
        let out = strat.finish(merged, q);
        span.rows(out.len() as u64);
        drop(span);
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::{all_queries, query};
    use cvr_data::reference;
    use std::sync::Arc;

    fn db() -> CStoreDb {
        CStoreDb::build(Arc::new(SsbConfig { sf: 0.002, seed: 17 }.generate()), true)
    }

    #[test]
    fn matches_reference_on_all_queries() {
        let db = db();
        let io = IoSession::unmetered();
        for q in all_queries() {
            let expected = reference::evaluate(&db.tables, &q);
            let got = execute(&db, &q, EngineConfig::FULL, &io);
            assert_eq!(got, expected, "invisible join disagrees on {}", q.id);
        }
    }

    #[test]
    fn region_predicate_rewrites_to_between() {
        let db = db();
        let io = IoSession::unmetered();
        // Q3.1: c_region = 'ASIA' — hierarchy-sorted customer ⇒ contiguous.
        let kp = phase1_key_pred(&db, &query(3, 1), Dim::Customer, EngineConfig::FULL, &io)
            .expect("customer restricted");
        assert_eq!(kp.kind(), "between");
    }

    #[test]
    fn city_in_set_falls_back_to_hash() {
        let db = db();
        let io = IoSession::unmetered();
        // Q3.3: c_city IN ('UNITED KI1','UNITED KI5') — two disjoint ranges.
        let kp = phase1_key_pred(&db, &query(3, 3), Dim::Customer, EngineConfig::FULL, &io)
            .expect("customer restricted");
        // With a large enough dimension both cities exist and are disjoint;
        // at tiny scales one may be absent (still correct either way).
        assert!(kp.kind() == "hash-set" || kp.kind() == "between");
    }

    #[test]
    fn date_year_rewrites_to_datekey_between() {
        let db = db();
        let io = IoSession::unmetered();
        let kp = phase1_key_pred(&db, &query(1, 1), Dim::Date, EngineConfig::FULL, &io)
            .expect("date restricted");
        match kp {
            FactKeyPred::Between(lo, hi) => {
                assert_eq!(lo, 19930101);
                assert_eq!(hi, 19931231);
            }
            FactKeyPred::KeySet(_) => panic!("year predicate must rewrite to between"),
        }
    }

    #[test]
    fn mfgr_in_set_is_contiguous_after_sorting() {
        let db = db();
        let io = IoSession::unmetered();
        // Q4.1: p_mfgr IN ('MFGR#1','MFGR#2') — adjacent under mfgr-sorted
        // parts, so the runtime detector still finds a contiguous range.
        let kp = phase1_key_pred(&db, &query(4, 1), Dim::Part, EngineConfig::FULL, &io)
            .expect("part restricted");
        assert_eq!(kp.kind(), "between");
    }

    #[test]
    fn block_and_tuple_modes_agree() {
        let db = db();
        let io = IoSession::unmetered();
        let tuple_cfg = EngineConfig::parse("TICL");
        for q in all_queries() {
            assert_eq!(
                execute(&db, &q, EngineConfig::FULL, &io),
                execute(&db, &q, tuple_cfg, &io),
                "{}",
                q.id
            );
        }
    }

    #[test]
    fn warm_executions_are_byte_identical_to_cold() {
        use cvr_storage::io::BufferPool;
        let db = db();
        for par in [Parallelism::serial(), Parallelism { threads: 4, morsel_rows: 512 }] {
            for q in all_queries() {
                let cold_io = IoSession::new(BufferPool::unbounded());
                let cold = if par.is_serial() {
                    execute(&db, &q, EngineConfig::FULL, &cold_io)
                } else {
                    execute_par(&db, &q, EngineConfig::FULL, par, &cold_io)
                };
                let cap_io = IoSession::new(BufferPool::unbounded());
                let (captured, capture) =
                    execute_capture(&db, &q, EngineConfig::FULL, par, &cap_io);
                assert_eq!(captured, cold, "capture changed the answer on {}", q.id);
                assert_eq!(cap_io.stats(), cold_io.stats(), "capture charges on {}", q.id);
                let warm_io = IoSession::new(BufferPool::unbounded());
                let warm =
                    execute_warm(&db, &q, par, &warm_io, &capture).expect("matching capture shape");
                assert_eq!(warm, cold, "warm answer on {}", q.id);
                assert_eq!(warm_io.stats(), cold_io.stats(), "warm charges on {}", q.id);
                assert!(capture.approx_bytes() > 0);
            }
        }
    }

    #[test]
    fn warm_rejects_mismatched_shapes() {
        let db = db();
        let io = IoSession::unmetered();
        let q = query(3, 1);
        let par = Parallelism { threads: 4, morsel_rows: 512 };
        let (_, serial_cap) =
            execute_capture(&db, &q, EngineConfig::FULL, Parallelism::serial(), &io);
        let (_, par_cap) = execute_capture(&db, &q, EngineConfig::FULL, par, &io);
        assert!(execute_warm(&db, &q, par, &io, &serial_cap).is_none());
        assert!(execute_warm(&db, &q, Parallelism::serial(), &io, &par_cap).is_none());
        // A different grid (different morsel size) is rejected too.
        let other = Parallelism { threads: 4, morsel_rows: 1024 };
        if crate::morsel::grid(db.fact_rows() as u32, other).1
            != crate::morsel::grid(db.fact_rows() as u32, par).1
        {
            assert!(execute_warm(&db, &q, other, &io, &par_cap).is_none());
        }
    }

    #[test]
    fn uncompressed_db_agrees() {
        let tables = Arc::new(SsbConfig { sf: 0.002, seed: 17 }.generate());
        let comp = CStoreDb::build(tables.clone(), true);
        let plain = CStoreDb::build(tables, false);
        let io = IoSession::unmetered();
        let cfg_c = EngineConfig::parse("tICL");
        let cfg_p = EngineConfig::parse("tIcL");
        for q in all_queries() {
            assert_eq!(execute(&comp, &q, cfg_c, &io), execute(&plain, &q, cfg_p, &io), "{}", q.id);
        }
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::{all_queries, query};
    use std::sync::Arc;

    #[test]
    fn disabling_rewriting_preserves_results() {
        let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.002, seed: 61 }.generate()), true);
        let io = IoSession::unmetered();
        let no_rewrite = InvisibleOptions { between_rewriting: false };
        for q in all_queries() {
            assert_eq!(
                execute(&db, &q, EngineConfig::FULL, &io),
                execute_opts(&db, &q, EngineConfig::FULL, no_rewrite, &io),
                "{}",
                q.id
            );
        }
    }

    #[test]
    fn disabling_rewriting_forces_hash_sets() {
        let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.002, seed: 61 }.generate()), true);
        let io = IoSession::unmetered();
        let no_rewrite = InvisibleOptions { between_rewriting: false };
        let q = query(3, 1); // region predicates: rewritable when enabled
        let with = phase1_key_pred(&db, &q, Dim::Customer, EngineConfig::FULL, &io).unwrap();
        let without =
            phase1_key_pred_opts(&db, &q, Dim::Customer, EngineConfig::FULL, no_rewrite, &io)
                .unwrap();
        assert_eq!(with.kind(), "between");
        assert_eq!(without.kind(), "hash-set");
    }
}
