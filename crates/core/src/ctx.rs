//! Query lifecycle control: cooperative cancellation, deadlines, and memory
//! budgets, plus the typed error every abort path funnels into.
//!
//! A [`QueryCtx`] is a cheaply clonable handle threaded from the session
//! (or the server's CANCEL registry) down through the scheduler and every
//! pipeline. Workers poll it at **morsel boundaries** — [`QueryCtx::check`]
//! is an atomic load plus, when a deadline is set, one clock read — and
//! abort by returning a [`QueryError`] instead of partial results.
//!
//! Memory accounting is deliberately approximate: pipelines charge their
//! *materialized intermediates* (position lists, decoded columns, gathered
//! group/measure arrays) at phase boundaries via [`QueryCtx::charge`], not
//! every allocation. The budget bounds the dominant terms; it is an
//! overload-protection rail, not an allocator.
//!
//! [`QueryError`] is the single abort vocabulary across the stack. Wire
//! codes live in the 100+ range (parse errors use 1–5, contained panics 99)
//! so a client can classify without string matching; [`QueryError::retryable`]
//! marks the transient subset (shed, injected/transient I/O) a client may
//! retry with backoff.

use crate::trace::{Span, Tracer};
use cvr_storage::io::IoSession;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Typed reason a query aborted before producing rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The client (or server shutdown) cancelled the query.
    Cancelled,
    /// The query's deadline expired (in the queue or mid-execution).
    DeadlineExceeded {
        /// Time spent before the deadline fired.
        elapsed_ms: u64,
    },
    /// A memory charge would exceed the query's byte budget.
    MemoryBudgetExceeded {
        /// Bytes accounted when the budget tripped.
        used: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The scheduler refused admission under overload; retryable.
    Shed {
        /// Human-readable admission verdict.
        reason: String,
    },
    /// A storage I/O failure (in this simulated stack: an injected page-read
    /// fault); retryable.
    Io {
        /// Description of the failed operation.
        detail: String,
    },
    /// On-disk snapshot data failed checksum or codec validation; not
    /// retryable — the bytes will not get better. Corrupt data is never
    /// partially decoded.
    Corrupt {
        /// What failed to validate.
        detail: String,
    },
}

impl QueryError {
    /// Wire code for [`QueryError::Cancelled`].
    pub const CODE_CANCELLED: u16 = 100;
    /// Wire code for [`QueryError::DeadlineExceeded`].
    pub const CODE_DEADLINE: u16 = 101;
    /// Wire code for [`QueryError::MemoryBudgetExceeded`].
    pub const CODE_MEMORY: u16 = 102;
    /// Wire code for [`QueryError::Shed`].
    pub const CODE_SHED: u16 = 103;
    /// Wire code for [`QueryError::Io`].
    pub const CODE_IO: u16 = 104;
    /// Wire code for [`QueryError::Corrupt`].
    pub const CODE_CORRUPT: u16 = 105;

    /// The stable wire code carried in an ERROR frame.
    pub fn code(&self) -> u16 {
        match self {
            QueryError::Cancelled => Self::CODE_CANCELLED,
            QueryError::DeadlineExceeded { .. } => Self::CODE_DEADLINE,
            QueryError::MemoryBudgetExceeded { .. } => Self::CODE_MEMORY,
            QueryError::Shed { .. } => Self::CODE_SHED,
            QueryError::Io { .. } => Self::CODE_IO,
            QueryError::Corrupt { .. } => Self::CODE_CORRUPT,
        }
    }

    /// Whether a client may transparently retry (with backoff).
    pub fn retryable(&self) -> bool {
        matches!(self, QueryError::Shed { .. } | QueryError::Io { .. })
    }

    /// Code-level retryability, for clients that only see the wire.
    pub fn retryable_code(code: u16) -> bool {
        code == Self::CODE_SHED || code == Self::CODE_IO
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::DeadlineExceeded { elapsed_ms } => {
                write!(f, "deadline exceeded after {elapsed_ms} ms")
            }
            QueryError::MemoryBudgetExceeded { used, budget } => {
                write!(f, "memory budget exceeded: ~{used} bytes charged, budget {budget}")
            }
            QueryError::Shed { reason } => write!(f, "query shed: {reason}"),
            QueryError::Io { detail } => write!(f, "I/O error: {detail}"),
            QueryError::Corrupt { detail } => write!(f, "corrupt store: {detail}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[derive(Debug)]
struct CtxInner {
    cancelled: AtomicBool,
    start: Instant,
    deadline: Option<Instant>,
    mem_used: AtomicUsize,
    mem_budget: usize,
    /// Execution tracer, when this query is being observed. Set at most
    /// once, before execution; the disabled path costs one `OnceLock` load.
    tracer: OnceLock<Arc<Tracer>>,
}

/// Shared per-query control block; see the module docs. Clones share state.
#[derive(Debug, Clone)]
pub struct QueryCtx {
    inner: Arc<CtxInner>,
}

impl Default for QueryCtx {
    fn default() -> QueryCtx {
        QueryCtx::unbounded()
    }
}

impl QueryCtx {
    /// A context that never cancels, never expires, and never trips the
    /// memory budget — the infallible legacy paths run under this.
    pub fn unbounded() -> QueryCtx {
        QueryCtx::with_limits(None, None)
    }

    /// A context with an optional deadline (from now) and an optional
    /// memory budget in bytes.
    pub fn with_limits(deadline: Option<Duration>, mem_budget: Option<usize>) -> QueryCtx {
        let start = Instant::now();
        QueryCtx {
            inner: Arc::new(CtxInner {
                cancelled: AtomicBool::new(false),
                start,
                deadline: deadline.map(|d| start + d),
                mem_used: AtomicUsize::new(0),
                mem_budget: mem_budget.unwrap_or(usize::MAX),
                tracer: OnceLock::new(),
            }),
        }
    }

    /// Attach an execution tracer; engines will open spans on it. At most
    /// one tracer per context — later attaches are ignored.
    pub fn attach_tracer(&self, tracer: Arc<Tracer>) {
        let _ = self.inner.tracer.set(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.inner.tracer.get()
    }

    /// Whether a tracer is attached (engines use this to skip building
    /// span detail strings).
    pub fn traced(&self) -> bool {
        self.inner.tracer.get().is_some()
    }

    /// Open a span over `io`, measuring wall time and the session's
    /// [`IoStats`](cvr_storage::io::IoStats) delta until the guard drops.
    /// Returns a free no-op guard when no tracer is attached.
    pub fn span<'a>(&self, op: &str, detail: &str, io: &'a IoSession) -> Span<'a> {
        match self.inner.tracer.get() {
            Some(tracer) => Span::active(tracer.clone(), op, detail, io),
            None => Span::disabled(),
        }
    }

    /// Request cooperative cancellation; workers observe it at the next
    /// morsel boundary. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Time remaining until the deadline; `None` when no deadline is set.
    /// Returns `Duration::ZERO` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The morsel-boundary poll: `Err` once cancelled or past deadline.
    pub fn check(&self) -> Result<(), QueryError> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(QueryError::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(QueryError::DeadlineExceeded {
                    elapsed_ms: self.inner.start.elapsed().as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Account `bytes` of materialized intermediate state against the
    /// budget; `Err` when the running total exceeds it.
    pub fn charge(&self, bytes: usize) -> Result<(), QueryError> {
        let used = self.inner.mem_used.fetch_add(bytes, Ordering::Relaxed).saturating_add(bytes);
        if used > self.inner.mem_budget {
            return Err(QueryError::MemoryBudgetExceeded { used, budget: self.inner.mem_budget });
        }
        Ok(())
    }

    /// Bytes charged so far.
    pub fn mem_used(&self) -> usize {
        self.inner.mem_used.load(Ordering::Relaxed)
    }
}

thread_local! {
    /// Contexts adopted for *intra-scan* cancellation polling on this
    /// thread. Morsel workers push the query's context here so the scan
    /// drivers — which take no context parameter — can still observe
    /// cancellation inside a single oversized morsel. A stack (not a slot)
    /// so nested executions compose.
    static SCAN_WATCH: std::cell::RefCell<Vec<QueryCtx>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII guard for a scan-watch adoption; see [`watch_scans`].
pub struct ScanWatch {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScanWatch {
    fn drop(&mut self) {
        SCAN_WATCH.with(|w| {
            w.borrow_mut().pop();
        });
    }
}

/// Adopt `ctx` for intra-scan polling on the current thread until the
/// returned guard drops. While active, scan drivers chunk long ranges and
/// call [`poll_scan_watch`] between chunks, bounding cancellation latency
/// even when a single morsel covers millions of rows.
pub fn watch_scans(ctx: &QueryCtx) -> ScanWatch {
    SCAN_WATCH.with(|w| w.borrow_mut().push(ctx.clone()));
    ScanWatch { _not_send: std::marker::PhantomData }
}

/// Whether a scan watch is active on this thread (scan drivers use this to
/// skip chunking entirely on unwatched paths).
pub fn scan_watch_active() -> bool {
    SCAN_WATCH.with(|w| !w.borrow().is_empty())
}

/// Poll the innermost watched context. On cancellation or deadline expiry
/// this panics with the [`QueryError`] as payload — the same transport the
/// storage fault hooks use — which the morsel boundary (or
/// [`catch_injected`]) converts back into a typed error. No-op when no
/// watch is active.
pub fn poll_scan_watch() {
    let err = SCAN_WATCH.with(|w| w.borrow().last().and_then(|ctx| ctx.check().err()));
    if let Some(err) = err {
        std::panic::panic_any(err);
    }
}

/// Run `f`, containing panics that are really transported [`QueryError`]s:
/// an [`InjectedFault`](cvr_storage::fault::InjectedFault) payload (raised
/// at the storage choke point, below any `Result` plumbing) becomes
/// [`QueryError::Io`], and a `QueryError` payload (raised by an infallible
/// wrapper) becomes itself. Any other panic is a real bug and resumes
/// unwinding.
pub fn catch_injected<R>(f: impl FnOnce() -> R) -> Result<R, QueryError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => Err(error_from_panic(payload)),
    }
}

/// Downcast a panic payload into the [`QueryError`] it transports, resuming
/// the unwind if it is not one of ours.
pub fn error_from_panic(payload: Box<dyn std::any::Any + Send>) -> QueryError {
    match payload.downcast::<cvr_storage::fault::InjectedFault>() {
        Ok(fault) => QueryError::Io { detail: fault.0 },
        Err(payload) => match payload.downcast::<QueryError>() {
            Ok(err) => *err,
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_observes_cancellation_and_deadlines() {
        let ctx = QueryCtx::unbounded();
        assert!(ctx.check().is_ok());
        ctx.cancel();
        assert_eq!(ctx.check(), Err(QueryError::Cancelled));

        let ctx = QueryCtx::with_limits(Some(Duration::ZERO), None);
        assert!(matches!(ctx.check(), Err(QueryError::DeadlineExceeded { .. })));
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn charges_accumulate_and_trip_the_budget() {
        let ctx = QueryCtx::with_limits(None, Some(100));
        assert!(ctx.charge(60).is_ok());
        assert!(ctx.charge(40).is_ok());
        assert_eq!(ctx.mem_used(), 100);
        let err = ctx.charge(1).unwrap_err();
        assert!(matches!(err, QueryError::MemoryBudgetExceeded { used: 101, budget: 100 }));
        assert_eq!(err.code(), QueryError::CODE_MEMORY);
    }

    #[test]
    fn clones_share_one_control_block() {
        let ctx = QueryCtx::unbounded();
        let peer = ctx.clone();
        peer.cancel();
        assert!(ctx.is_cancelled());
    }

    #[test]
    fn injected_faults_become_io_errors_and_real_panics_resume() {
        let got = catch_injected(|| {
            std::panic::panic_any(cvr_storage::fault::InjectedFault("page 7".into()))
        });
        assert_eq!(got, Err(QueryError::Io { detail: "page 7".into() }));

        let got = catch_injected(|| std::panic::panic_any(QueryError::Cancelled));
        assert_eq!(got, Err(QueryError::Cancelled));

        let real = std::panic::catch_unwind(|| {
            let _ = catch_injected(|| panic!("genuine bug"));
        });
        assert!(real.is_err(), "foreign panics must resume unwinding");
    }

    #[test]
    fn scan_watch_polls_the_adopted_context() {
        assert!(!scan_watch_active());
        poll_scan_watch(); // no-op without a watch
        let ctx = QueryCtx::unbounded();
        {
            let _watch = watch_scans(&ctx);
            assert!(scan_watch_active());
            poll_scan_watch(); // healthy context: no panic
            ctx.cancel();
            let got = catch_injected(poll_scan_watch);
            assert_eq!(got, Err(QueryError::Cancelled));
        }
        assert!(!scan_watch_active());
    }

    #[test]
    fn wire_codes_and_retryability_are_stable() {
        assert_eq!(QueryError::Cancelled.code(), 100);
        assert_eq!(QueryError::DeadlineExceeded { elapsed_ms: 1 }.code(), 101);
        assert_eq!(QueryError::Shed { reason: "q".into() }.code(), 103);
        assert_eq!(QueryError::Io { detail: "x".into() }.code(), 104);
        assert_eq!(QueryError::Corrupt { detail: "c".into() }.code(), 105);
        assert!(QueryError::Shed { reason: "q".into() }.retryable());
        assert!(QueryError::retryable_code(104));
        assert!(!QueryError::retryable_code(100));
        assert!(!QueryError::retryable_code(105));
        assert!(!QueryError::Cancelled.retryable());
        assert!(!QueryError::Corrupt { detail: "c".into() }.retryable());
    }
}
