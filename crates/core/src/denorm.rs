//! Denormalized (pre-joined) fact tables — the Figure 8 experiment.
//!
//! Section 6.3.3 widens the fact table so "instead of containing a foreign
//! key into the dimension table, the fact table contains all of the values
//! found in the dimension table repeated for each fact table record", then
//! compares three compression levels:
//!
//! * **PJ, No C** — dimension strings inlined unmodified and stored plain;
//! * **PJ, Int C** — strings "dictionary encoded into integers before
//!   denormalization" (codes stored as plain integers, predicates become
//!   integer comparisons);
//! * **PJ, Max C** — full C-Store compression on the widened table (RLE on
//!   the sorted prefix, bit-packed dictionaries elsewhere).
//!
//! Queries run join-free: every dimension predicate becomes a direct
//! predicate on a denormalized column and group-by attributes are read
//! straight from the fact table — exactly why the paper expected
//! denormalization to win, and the baseline invisible join mostly still
//! beats it.

use crate::agg::{aggregate_columns, AggPartial, CodeDecoder, CodeGrouper, GroupData, GroupLayout};
use crate::config::EngineConfig;
use crate::ctx::{QueryCtx, QueryError};
use crate::extract::{gather_codes, gather_ints, gather_values, CodeSpace};
use crate::poslist::PosList;
use crate::projection::{sort_permutation, FACT_SORT};
use crate::scan::{scan_int_where, scan_pred};
use cvr_data::gen::SsbTables;
use cvr_data::queries::{all_queries, Pred, SsbQuery};
use cvr_data::result::QueryOutput;
use cvr_data::schema::{ColumnDef, Dim, TableSchema};
use cvr_data::table::{ColumnData, TableData};
use cvr_data::value::{DataType, Value};
use cvr_storage::column::{ColumnStore, EncodingChoice};
use cvr_storage::io::IoSession;
use std::collections::HashMap;
use std::sync::Arc;

/// The three denormalized variants of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DenormVariant {
    /// "PJ, No C": strings inlined, no compression.
    NoCompression,
    /// "PJ, Int C": strings dictionary-encoded into plain integers.
    IntCompression,
    /// "PJ, Max C": full compression.
    MaxCompression,
}

impl DenormVariant {
    /// Figure 8 label.
    pub fn label(self) -> &'static str {
        match self {
            DenormVariant::NoCompression => "PJ, No C",
            DenormVariant::IntCompression => "PJ, Int C",
            DenormVariant::MaxCompression => "PJ, Max C",
        }
    }
}

/// A pre-joined fact table at one compression level.
pub struct DenormDb {
    /// Original logical tables.
    pub tables: Arc<SsbTables>,
    /// Which variant this is.
    pub variant: DenormVariant,
    store: ColumnStore,
    rows: usize,
    /// For [`DenormVariant::IntCompression`]: per-column sorted dictionaries
    /// used to translate string predicates into code predicates and decode
    /// group outputs.
    dicts: HashMap<&'static str, Vec<Box<str>>>,
}

/// Dimension columns inlined into the denormalized table (everything the
/// workload touches).
fn inlined_dim_columns() -> Vec<(Dim, &'static str)> {
    let mut cols = Vec::new();
    for q in all_queries() {
        for p in &q.dim_predicates {
            if !cols.contains(&(p.dim, p.column)) {
                cols.push((p.dim, p.column));
            }
        }
        for g in &q.group_by {
            if !cols.contains(&(g.dim, g.column)) {
                cols.push((g.dim, g.column));
            }
        }
    }
    cols
}

impl DenormDb {
    /// Build the denormalized table for `variant`.
    pub fn build(tables: Arc<SsbTables>, variant: DenormVariant) -> DenormDb {
        let fact = &tables.lineorder;
        let n = fact.num_rows();

        // Measure + fact predicate columns every query might need.
        let fact_cols: Vec<&'static str> = vec![
            "lo_quantity",
            "lo_extendedprice",
            "lo_discount",
            "lo_revenue",
            "lo_supplycost",
            "lo_orderdate",
        ];

        let mut defs: Vec<ColumnDef> = Vec::new();
        let mut cols: Vec<ColumnData> = Vec::new();
        for c in &fact_cols {
            defs.push(ColumnDef { name: c, dtype: DataType::Int });
            cols.push(fact.column(c).clone());
        }
        // Inline dimension attributes per fact row.
        for (dim, col) in inlined_dim_columns() {
            let dim_table = tables.dim(dim);
            let keys = dim_table.column(dim.key_column()).ints();
            let key_to_row: HashMap<i64, usize> =
                keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
            let fks = fact.column(dim.fact_fk_column()).ints();
            let src = dim_table.column(col);
            let dtype = src.dtype();
            let data = match src {
                ColumnData::Int(v) => {
                    ColumnData::Int(fks.iter().map(|k| v[key_to_row[k]]).collect())
                }
                ColumnData::Str(v) => {
                    ColumnData::Str(fks.iter().map(|k| v[key_to_row[k]].clone()).collect())
                }
            };
            defs.push(ColumnDef { name: col, dtype });
            cols.push(data);
        }
        let mut table = TableData::new(TableSchema { name: "denorm", columns: defs }, cols);

        // Same sort order as the baseline projection so MaxC's RLE
        // opportunities match.
        let perm = sort_permutation(&table, &FACT_SORT[..]);
        table = table.permuted(&perm);

        let mut dicts = HashMap::new();
        let (store, rows) = match variant {
            DenormVariant::NoCompression => {
                (ColumnStore::from_table(&table, EncodingChoice::Plain), n)
            }
            DenormVariant::MaxCompression => {
                (ColumnStore::from_table(&table, EncodingChoice::Auto), n)
            }
            DenormVariant::IntCompression => {
                // Replace every string column with its sorted-dictionary
                // codes stored as *plain* integers.
                let mut defs2 = Vec::new();
                let mut cols2 = Vec::new();
                for (def, col) in table.schema.columns.iter().zip(&table.columns) {
                    match col {
                        ColumnData::Int(v) => {
                            defs2.push(def.clone());
                            cols2.push(ColumnData::Int(v.clone()));
                        }
                        ColumnData::Str(v) => {
                            let mut dict: Vec<Box<str>> =
                                v.iter().map(|s| s.clone().into()).collect();
                            dict.sort_unstable();
                            dict.dedup();
                            let codes: Vec<i64> = v
                                .iter()
                                .map(|s| dict.binary_search_by(|d| (**d).cmp(s)).unwrap() as i64)
                                .collect();
                            dicts.insert(def.name, dict);
                            defs2.push(ColumnDef { name: def.name, dtype: DataType::Int });
                            cols2.push(ColumnData::Int(codes));
                        }
                    }
                }
                let t2 = TableData::new(TableSchema { name: "denorm", columns: defs2 }, cols2);
                (ColumnStore::from_table(&t2, EncodingChoice::Plain), n)
            }
        };
        DenormDb { tables, variant, store, rows, dicts }
    }

    /// Total stored bytes.
    pub fn bytes(&self) -> u64 {
        self.store.bytes()
    }

    /// Translate a string predicate into code space for `column`
    /// (IntCompression only). Returns `None` when no code matches.
    fn code_pred(&self, column: &'static str, pred: &Pred) -> Option<(i64, i64, Vec<bool>)> {
        let dict = &self.dicts[column];
        let matches: Vec<bool> = dict.iter().map(|d| pred.matches_str(d)).collect();
        let lo = matches.iter().position(|&m| m)? as i64;
        let hi = matches.iter().rposition(|&m| m).unwrap() as i64;
        Some((lo, hi, matches))
    }

    /// Execute `q` join-free over the denormalized table.
    pub fn execute(&self, q: &SsbQuery, cfg: EngineConfig, io: &IoSession) -> QueryOutput {
        self.try_execute(q, cfg, io, &QueryCtx::unbounded())
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`DenormDb::execute`]: checks `ctx` between predicate scans
    /// and charges the position list plus the gathered group/measure arrays
    /// against its memory budget.
    pub fn try_execute(
        &self,
        q: &SsbQuery,
        cfg: EngineConfig,
        io: &IoSession,
        ctx: &QueryCtx,
    ) -> Result<QueryOutput, QueryError> {
        let n = self.rows as u32;
        let mut pos: Option<PosList> = None;
        let and_with = |pl: PosList, pos: &mut Option<PosList>| {
            *pos = Some(match pos.take() {
                None => pl,
                Some(acc) => acc.intersect(&pl),
            });
        };

        // Fact predicates.
        for p in &q.fact_predicates {
            ctx.check()?;
            let mut span = ctx.span("scan", p.column, io);
            let pl = scan_pred(self.store.column(p.column), &p.pred, cfg.block_iteration, io);
            span.rows(pl.count() as u64);
            and_with(pl, &mut pos);
        }
        // Dimension predicates, now direct column predicates.
        for p in &q.dim_predicates {
            ctx.check()?;
            let mut span = ctx.span("scan", p.column, io);
            let col = self.store.column(p.column);
            let pl = if self.variant == DenormVariant::IntCompression
                && self.dicts.contains_key(p.column)
            {
                match self.code_pred(p.column, &p.pred) {
                    None => PosList::empty(n),
                    Some((lo, hi, matches)) => {
                        if matches[lo as usize..=hi as usize].iter().all(|&m| m) {
                            scan_int_where(
                                col,
                                move |v| v >= lo && v <= hi,
                                cfg.block_iteration,
                                io,
                            )
                        } else {
                            scan_int_where(
                                col,
                                move |v| matches[v as usize],
                                cfg.block_iteration,
                                io,
                            )
                        }
                    }
                }
            } else {
                scan_pred(col, &p.pred, cfg.block_iteration, io)
            };
            span.rows(pl.count() as u64);
            and_with(pl, &mut pos);
        }
        let pos = pos.unwrap_or_else(|| PosList::all(n));
        let mut agg_span = ctx.span("extract-aggregate", "", io);
        // The gathers below materialize one value per passing row per group
        // column and measure; charge them up front, before allocating.
        let width = (q.group_by.len() + q.aggregate.fact_columns().len()).max(1);
        ctx.charge((pos.count() as usize).saturating_mul(8 * width))?;

        // Group columns + measures straight off the fact table. Dictionary
        // and integer-code columns aggregate at the code level (decoding
        // through the denormalization dictionaries once per group at
        // finish); plain inlined strings (PJ, No C) fall back to the
        // interned-dictionary path inside [`aggregate_columns`].
        let mut code_plan: Option<Vec<(CodeSpace, CodeDecoder)>> =
            (!crate::agg::value_keyed_forced()).then(Vec::new);
        for g in &q.group_by {
            let col = self.store.column(g.column);
            match (CodeSpace::of(col), code_plan.as_mut()) {
                (Some(space), Some(plan)) => {
                    let decoder = match self.dicts.get(g.column) {
                        // "PJ, Int C": the column stores dictionary codes as
                        // plain integers; codes decode through the dict.
                        Some(dict) => {
                            let CodeSpace::Int { reference, domain } = space else {
                                unreachable!("dict-translated columns are integers")
                            };
                            CodeDecoder::Values(
                                (reference..reference + domain as i64)
                                    .map(|c| Value::Str(dict[c as usize].clone()))
                                    .collect(),
                            )
                        }
                        None => space.decoder(col),
                    };
                    plan.push((space, decoder));
                }
                _ => code_plan = None,
            }
        }
        // Compose the layout *before* charging any gathers, so an overflow
        // fallback never double-reads the group columns.
        let layout = code_plan.and_then(|plan| {
            let (spaces, cols): (Vec<CodeSpace>, Vec<(u64, CodeDecoder)>) =
                plan.into_iter().map(|(s, d)| (s, (s.domain(), d))).unzip();
            GroupLayout::try_new(cols).map(|layout| (layout, spaces))
        });
        match layout {
            Some((layout, spaces)) => {
                let group: Vec<GroupData> = spaces
                    .iter()
                    .zip(&q.group_by)
                    .map(|(space, g)| {
                        GroupData::Codes(gather_codes(space, self.store.column(g.column), &pos, io))
                    })
                    .collect();
                let measures: Vec<Vec<i64>> = q
                    .aggregate
                    .fact_columns()
                    .iter()
                    .map(|c| gather_ints(self.store.column(c), &pos, io))
                    .collect();
                let mut partial = AggPartial::Code(CodeGrouper::for_layout(&layout));
                partial.add_rows(q, &group, &measures, pos.count() as usize);
                let out = match partial {
                    AggPartial::Code(g) => g.finish(&layout, q),
                    AggPartial::Value(_) => unreachable!("partial built as code-level"),
                };
                agg_span.rows(out.len() as u64);
                Ok(out)
            }
            None => {
                let group_cols: Vec<Vec<Value>> = q
                    .group_by
                    .iter()
                    .map(|g| {
                        let vals = gather_values(self.store.column(g.column), &pos, io);
                        // "PJ, Int C" group columns hold dictionary codes;
                        // translate back to strings here too, so the
                        // CVR_AGG=value ablation stays byte-identical.
                        if self.variant == DenormVariant::IntCompression {
                            if let Some(dict) = self.dicts.get(g.column) {
                                return vals
                                    .into_iter()
                                    .map(|v| Value::Str(dict[v.as_int() as usize].clone()))
                                    .collect();
                            }
                        }
                        vals
                    })
                    .collect();
                let measures: Vec<Vec<i64>> = q
                    .aggregate
                    .fact_columns()
                    .iter()
                    .map(|c| gather_ints(self.store.column(c), &pos, io))
                    .collect();
                let mut inputs = vec![0i64; measures.len()];
                let terms: Vec<i64> = (0..pos.count() as usize)
                    .map(|i| {
                        for (j, m) in measures.iter().enumerate() {
                            inputs[j] = m[i];
                        }
                        q.aggregate.term(&inputs)
                    })
                    .collect();
                let out = aggregate_columns(q, &group_cols, &terms);
                agg_span.rows(out.len() as u64);
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::reference;

    fn tables() -> Arc<SsbTables> {
        Arc::new(SsbConfig { sf: 0.002, seed: 47 }.generate())
    }

    #[test]
    fn all_variants_match_reference() {
        let t = tables();
        let io = IoSession::unmetered();
        for variant in [
            DenormVariant::NoCompression,
            DenormVariant::IntCompression,
            DenormVariant::MaxCompression,
        ] {
            let db = DenormDb::build(t.clone(), variant);
            for q in all_queries() {
                let expected = reference::evaluate(&t, &q);
                assert_eq!(
                    db.execute(&q, EngineConfig::FULL, &io),
                    expected,
                    "{} disagrees on {}",
                    variant.label(),
                    q.id
                );
            }
        }
    }

    #[test]
    fn size_ordering_noc_largest() {
        let t = tables();
        let noc = DenormDb::build(t.clone(), DenormVariant::NoCompression);
        let intc = DenormDb::build(t.clone(), DenormVariant::IntCompression);
        let maxc = DenormDb::build(t.clone(), DenormVariant::MaxCompression);
        assert!(noc.bytes() > intc.bytes(), "string inlining must be largest");
        assert!(intc.bytes() > maxc.bytes(), "full compression must be smallest");
    }

    #[test]
    fn denorm_wider_than_normalized_fact() {
        let t = tables();
        let noc = DenormDb::build(t.clone(), DenormVariant::NoCompression);
        let base = crate::projection::CStoreDb::build(t, false);
        assert!(noc.bytes() > base.fact_bytes());
    }
}
