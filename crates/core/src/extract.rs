//! Positional value extraction — the materialization half of late
//! materialization.
//!
//! Once predicates have produced a position list, the surviving plan needs
//! actual values: measure columns at fact positions (ascending — cheap,
//! page-local) and dimension attributes at foreign-key-derived positions
//! (arbitrary order — the "out-of-order extraction" cost the invisible join
//! is designed to minimize, Section 5.4).

use crate::poslist::PosList;
use cvr_data::value::Value;
use cvr_storage::column::StoredColumn;
use cvr_storage::encode::{Column, IntColumn, StrColumn};
use cvr_storage::io::IoSession;

/// Gather integer values at the (ascending) positions of `pos`.
///
/// RLE columns are walked run-by-run with a cursor (positions are ascending,
/// so this is O(positions + runs) without decompressing).
pub fn gather_ints(col: &StoredColumn, pos: &PosList, io: &IoSession) -> Vec<i64> {
    col.charge_gather(pos.iter(), io);
    let int = col.column.as_int();
    let mut out = Vec::with_capacity(pos.count() as usize);
    match int {
        IntColumn::Plain { values, .. } => {
            for p in pos.iter() {
                out.push(values[p as usize]);
            }
        }
        IntColumn::Rle { runs, .. } => {
            let mut run = 0usize;
            for p in pos.iter() {
                while runs[run].start + runs[run].len <= p {
                    run += 1;
                }
                out.push(runs[run].value);
            }
        }
        IntColumn::Packed { reference, packed } => {
            for p in pos.iter() {
                out.push(reference + packed.get(p) as i64);
            }
        }
    }
    out
}

/// Gather string values (as [`Value`]s) at ascending positions.
pub fn gather_strs(col: &StoredColumn, pos: &PosList, io: &IoSession) -> Vec<Value> {
    col.charge_gather(pos.iter(), io);
    match col.column.as_str() {
        StrColumn::Plain { values, .. } => {
            pos.iter().map(|p| Value::Str(values[p as usize].clone())).collect()
        }
        StrColumn::Dict { dict, codes } => {
            pos.iter().map(|p| Value::Str(dict[codes.get(p) as usize].clone())).collect()
        }
    }
}

/// Gather any column at ascending positions as [`Value`]s.
pub fn gather_values(col: &StoredColumn, pos: &PosList, io: &IoSession) -> Vec<Value> {
    match &col.column {
        Column::Int(_) => gather_ints(col, pos, io).into_iter().map(Value::Int).collect(),
        Column::Str(_) => gather_strs(col, pos, io),
    }
}

/// Extract values at *arbitrary-order* positions (dimension lookups keyed by
/// fact order). Charges a positional gather in the given order — page
/// re-touches resolve through the buffer pool, but the access pattern is
/// honest.
pub fn extract_at(col: &StoredColumn, positions: &[u32], io: &IoSession) -> Vec<Value> {
    col.charge_gather(positions.iter().copied(), io);
    let mut out = Vec::with_capacity(positions.len());
    match &col.column {
        Column::Int(int) => match int {
            IntColumn::Plain { values, .. } => {
                for &p in positions {
                    out.push(Value::Int(values[p as usize]));
                }
            }
            IntColumn::Rle { .. } => {
                for &p in positions {
                    out.push(Value::Int(int.value_at(p)));
                }
            }
            IntColumn::Packed { reference, packed } => {
                for &p in positions {
                    out.push(Value::Int(reference + packed.get(p) as i64));
                }
            }
        },
        Column::Str(s) => match s {
            StrColumn::Plain { values, .. } => {
                for &p in positions {
                    out.push(Value::Str(values[p as usize].clone()));
                }
            }
            StrColumn::Dict { dict, codes } => {
                for &p in positions {
                    out.push(Value::Str(dict[codes.get(p) as usize].clone()));
                }
            }
        },
    }
    out
}

/// Decode an entire column to owned [`Value`]s (early materialization /
/// tuple construction). Charges a full scan.
pub fn decode_all(col: &StoredColumn, io: &IoSession) -> Vec<Value> {
    col.charge_scan(io);
    match &col.column {
        Column::Int(int) => int.decode().into_iter().map(Value::Int).collect(),
        Column::Str(s) => s.decode().into_iter().map(Value::Str).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_storage::encode::{IntColumn, StrColumn};

    fn rle_col() -> StoredColumn {
        let mut values = Vec::new();
        for v in 0..20i64 {
            values.extend(std::iter::repeat_n(v * 10, 7));
        }
        StoredColumn::new("c", Column::Int(IntColumn::rle(&values)))
    }

    #[test]
    fn gather_ints_plain_and_rle_agree() {
        let mut values = Vec::new();
        for v in 0..20i64 {
            values.extend(std::iter::repeat_n(v * 10, 7));
        }
        let plain = StoredColumn::new("c", Column::Int(IntColumn::plain(values)));
        let rle = rle_col();
        let pos = PosList::Explicit { positions: vec![0, 6, 7, 69, 139], universe: 140 };
        let io = IoSession::unmetered();
        assert_eq!(gather_ints(&plain, &pos, &io), gather_ints(&rle, &pos, &io));
        assert_eq!(gather_ints(&rle, &pos, &io), vec![0, 0, 10, 90, 190]);
    }

    #[test]
    fn gather_over_range() {
        let col = rle_col();
        let io = IoSession::unmetered();
        let pos = PosList::Range { start: 5, end: 9, universe: 140 };
        assert_eq!(gather_ints(&col, &pos, &io), vec![0, 0, 10, 10]);
    }

    #[test]
    fn gather_strs_dict_and_plain_agree() {
        let values: Vec<String> = (0..100).map(|i| format!("v{}", i % 9)).collect();
        let plain = StoredColumn::new("c", Column::Str(StrColumn::plain(values.clone())));
        let dict = StoredColumn::new("c", Column::Str(StrColumn::dict(&values)));
        let pos = PosList::Explicit { positions: vec![0, 8, 9, 99], universe: 100 };
        let io = IoSession::unmetered();
        assert_eq!(gather_strs(&plain, &pos, &io), gather_strs(&dict, &pos, &io));
    }

    #[test]
    fn extract_at_arbitrary_order() {
        let col = rle_col();
        let io = IoSession::unmetered();
        let got = extract_at(&col, &[139, 0, 70], &io);
        assert_eq!(got, vec![Value::Int(190), Value::Int(0), Value::Int(100)]);
    }

    #[test]
    fn decode_all_round_trips() {
        let col = rle_col();
        let io = IoSession::unmetered();
        let vals = decode_all(&col, &io);
        assert_eq!(vals.len(), 140);
        assert_eq!(vals[0], Value::Int(0));
        assert_eq!(vals[139], Value::Int(190));
        assert_eq!(io.stats().bytes_read, col.bytes());
    }
}
