//! Positional value extraction — the materialization half of late
//! materialization.
//!
//! Once predicates have produced a position list, the surviving plan needs
//! actual values: measure columns at fact positions (ascending — cheap,
//! page-local) and dimension attributes at foreign-key-derived positions
//! (arbitrary order — the "out-of-order extraction" cost the invisible join
//! is designed to minimize, Section 5.4).

use crate::agg::CodeDecoder;
use crate::poslist::PosList;
use cvr_data::value::Value;
use cvr_storage::column::StoredColumn;
use cvr_storage::encode::{Column, IntColumn, Run, StrColumn};
use cvr_storage::io::IoSession;

/// A memoized cursor over an RLE run directory for arbitrary-order
/// position lookups. Fact-ordered dimension probes hit the same run in
/// bursts (fact rows sharing a foreign key cluster), so remembering the
/// last-hit run and checking it (and its successor) before binary-searching
/// turns the common case into O(1).
struct RunCursor<'a> {
    runs: &'a [Run],
    last: usize,
}

impl<'a> RunCursor<'a> {
    fn new(runs: &'a [Run]) -> RunCursor<'a> {
        RunCursor { runs, last: 0 }
    }

    #[inline]
    fn value_at(&mut self, col: &IntColumn, p: u32) -> i64 {
        let r = &self.runs[self.last];
        if p < r.start || p >= r.start + r.len {
            let next = self.last + 1;
            self.last = match self.runs.get(next) {
                Some(n) if p >= n.start && p < n.start + n.len => next,
                _ => col.run_containing(p),
            };
        }
        self.runs[self.last].value
    }
}

/// Gather integer values at the (ascending) positions of `pos`.
///
/// RLE columns are walked run-by-run with a cursor (positions are ascending,
/// so this is O(positions + runs) without decompressing).
pub fn gather_ints(col: &StoredColumn, pos: &PosList, io: &IoSession) -> Vec<i64> {
    col.charge_gather(pos.iter(), io);
    let int = col.column.as_int();
    let mut out = Vec::with_capacity(pos.count() as usize);
    match int {
        IntColumn::Plain { values, .. } => {
            for p in pos.iter() {
                out.push(values[p as usize]);
            }
        }
        IntColumn::Rle { runs, .. } => {
            let mut run = 0usize;
            for p in pos.iter() {
                while runs[run].start + runs[run].len <= p {
                    run += 1;
                }
                out.push(runs[run].value);
            }
        }
        IntColumn::Packed { reference, packed } => {
            for p in pos.iter() {
                out.push(reference + packed.get(p) as i64);
            }
        }
    }
    out
}

/// Gather string values (as [`Value`]s) at ascending positions.
pub fn gather_strs(col: &StoredColumn, pos: &PosList, io: &IoSession) -> Vec<Value> {
    col.charge_gather(pos.iter(), io);
    match col.column.as_str() {
        StrColumn::Plain { values, .. } => {
            pos.iter().map(|p| Value::Str(values[p as usize].clone())).collect()
        }
        StrColumn::Dict { dict, codes } => {
            pos.iter().map(|p| Value::Str(dict[codes.get(p) as usize].clone())).collect()
        }
    }
}

/// Gather any column at ascending positions as [`Value`]s.
pub fn gather_values(col: &StoredColumn, pos: &PosList, io: &IoSession) -> Vec<Value> {
    match &col.column {
        Column::Int(_) => gather_ints(col, pos, io).into_iter().map(Value::Int).collect(),
        Column::Str(_) => gather_strs(col, pos, io),
    }
}

/// Extract values at *arbitrary-order* positions (dimension lookups keyed by
/// fact order). Charges a positional gather in the given order — page
/// re-touches resolve through the buffer pool, but the access pattern is
/// honest.
pub fn extract_at(col: &StoredColumn, positions: &[u32], io: &IoSession) -> Vec<Value> {
    col.charge_gather(positions.iter().copied(), io);
    let mut out = Vec::with_capacity(positions.len());
    match &col.column {
        Column::Int(int) => match int {
            IntColumn::Plain { values, .. } => {
                for &p in positions {
                    out.push(Value::Int(values[p as usize]));
                }
            }
            IntColumn::Rle { runs, .. } => {
                // An empty run directory with non-empty positions panics
                // inside the cursor, at the fault site, like the binary
                // search it replaced.
                let mut cursor = RunCursor::new(runs);
                for &p in positions {
                    out.push(Value::Int(cursor.value_at(int, p)));
                }
            }
            IntColumn::Packed { reference, packed } => {
                for &p in positions {
                    out.push(Value::Int(reference + packed.get(p) as i64));
                }
            }
        },
        Column::Str(s) => match s {
            StrColumn::Plain { values, .. } => {
                for &p in positions {
                    out.push(Value::Str(values[p as usize].clone()));
                }
            }
            StrColumn::Dict { dict, codes } => {
                for &p in positions {
                    out.push(Value::Str(dict[codes.get(p) as usize].clone()));
                }
            }
        },
    }
    out
}

/// The code space of a stored column — how positions map to dense `u32`
/// codes and how codes decode back to [`Value`]s. This is the extraction
/// half of code-level aggregation: group columns are read as codes (no
/// string materialization, no per-row clones) and decoded once per group at
/// finish.
///
/// Derived purely from column-header metadata
/// ([`IntColumn::code_bounds`], the dictionary length), so every morsel
/// derives the *same* space and codes stay globally consistent. Plain
/// string columns have no global code assignment and return `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeSpace {
    /// Integer column: `code = value - reference`, `code < domain`.
    Int {
        /// The column minimum (frame of reference).
        reference: i64,
        /// One past the largest code.
        domain: u64,
    },
    /// Dictionary string column: codes are the dictionary codes.
    Dict {
        /// Number of dictionary entries.
        domain: u64,
    },
}

impl CodeSpace {
    /// The code space of `col`, when it has one.
    pub fn of(col: &StoredColumn) -> Option<CodeSpace> {
        match &col.column {
            Column::Int(_) => col
                .int_code_bounds()
                .map(|(reference, domain)| CodeSpace::Int { reference, domain }),
            Column::Str(s @ StrColumn::Dict { .. }) => {
                Some(CodeSpace::Dict { domain: s.dict_parts().0.len() as u64 })
            }
            Column::Str(StrColumn::Plain { .. }) => None,
        }
    }

    /// Number of distinct codes (`codes < domain`).
    pub fn domain(&self) -> u64 {
        match self {
            CodeSpace::Int { domain, .. } | CodeSpace::Dict { domain } => *domain,
        }
    }

    /// The finish-time decoder for this space over `col`. Dictionary
    /// entries are cloned once per *distinct value* here — never per row.
    pub fn decoder(&self, col: &StoredColumn) -> CodeDecoder {
        match self {
            CodeSpace::Int { reference, .. } => CodeDecoder::IntOffset(*reference),
            CodeSpace::Dict { .. } => {
                let (dict, _) = col.column.as_str().dict_parts();
                CodeDecoder::Values(dict.iter().map(|s| Value::Str(s.clone())).collect())
            }
        }
    }
}

/// Extract codes at *arbitrary-order* positions — the code-level
/// counterpart of [`extract_at`], charging the identical positional gather.
/// `space` must be [`CodeSpace::of`] this column.
pub fn extract_codes_at(
    space: &CodeSpace,
    col: &StoredColumn,
    positions: &[u32],
    io: &IoSession,
) -> Vec<u32> {
    col.charge_gather(positions.iter().copied(), io);
    let mut out = Vec::with_capacity(positions.len());
    match (&col.column, space) {
        (Column::Int(int), CodeSpace::Int { reference, .. }) => match int {
            IntColumn::Plain { values, .. } => {
                for &p in positions {
                    out.push((values[p as usize] - reference) as u32);
                }
            }
            IntColumn::Rle { runs, .. } => {
                let mut cursor = RunCursor::new(runs);
                for &p in positions {
                    out.push((cursor.value_at(int, p) - reference) as u32);
                }
            }
            // `code_bounds` reference for packed columns is the frame of
            // reference itself, so the stored delta *is* the code.
            IntColumn::Packed { packed, .. } => {
                for &p in positions {
                    out.push(packed.get(p) as u32);
                }
            }
        },
        (Column::Str(s @ StrColumn::Dict { .. }), CodeSpace::Dict { .. }) => {
            for &p in positions {
                out.push(s.code_at(p));
            }
        }
        _ => panic!("code space does not match column encoding"),
    }
    out
}

/// Gather codes at the *ascending* positions of `pos` — the code-level
/// counterpart of [`gather_values`], charging the identical gather. RLE
/// columns are walked run-by-run with a cursor, like [`gather_ints`].
pub fn gather_codes(
    space: &CodeSpace,
    col: &StoredColumn,
    pos: &PosList,
    io: &IoSession,
) -> Vec<u32> {
    col.charge_gather(pos.iter(), io);
    let mut out = Vec::with_capacity(pos.count() as usize);
    match (&col.column, space) {
        (Column::Int(int), CodeSpace::Int { reference, .. }) => match int {
            IntColumn::Plain { values, .. } => {
                for p in pos.iter() {
                    out.push((values[p as usize] - reference) as u32);
                }
            }
            IntColumn::Rle { runs, .. } => {
                let mut run = 0usize;
                for p in pos.iter() {
                    while runs[run].start + runs[run].len <= p {
                        run += 1;
                    }
                    out.push((runs[run].value - reference) as u32);
                }
            }
            IntColumn::Packed { packed, .. } => {
                for p in pos.iter() {
                    out.push(packed.get(p) as u32);
                }
            }
        },
        (Column::Str(s @ StrColumn::Dict { .. }), CodeSpace::Dict { .. }) => {
            for p in pos.iter() {
                out.push(s.code_at(p));
            }
        }
        _ => panic!("code space does not match column encoding"),
    }
    out
}

/// Decode an entire column to owned [`Value`]s (early materialization /
/// tuple construction). Charges a full scan.
pub fn decode_all(col: &StoredColumn, io: &IoSession) -> Vec<Value> {
    col.charge_scan(io);
    match &col.column {
        Column::Int(int) => int.decode().into_iter().map(Value::Int).collect(),
        Column::Str(s) => s.decode().into_iter().map(Value::Str).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_storage::encode::{IntColumn, StrColumn};

    fn rle_col() -> StoredColumn {
        let mut values = Vec::new();
        for v in 0..20i64 {
            values.extend(std::iter::repeat_n(v * 10, 7));
        }
        StoredColumn::new("c", Column::Int(IntColumn::rle(&values)))
    }

    #[test]
    fn gather_ints_plain_and_rle_agree() {
        let mut values = Vec::new();
        for v in 0..20i64 {
            values.extend(std::iter::repeat_n(v * 10, 7));
        }
        let plain = StoredColumn::new("c", Column::Int(IntColumn::plain(values)));
        let rle = rle_col();
        let pos = PosList::Explicit { positions: vec![0, 6, 7, 69, 139], universe: 140 };
        let io = IoSession::unmetered();
        assert_eq!(gather_ints(&plain, &pos, &io), gather_ints(&rle, &pos, &io));
        assert_eq!(gather_ints(&rle, &pos, &io), vec![0, 0, 10, 90, 190]);
    }

    #[test]
    fn gather_over_range() {
        let col = rle_col();
        let io = IoSession::unmetered();
        let pos = PosList::Range { start: 5, end: 9, universe: 140 };
        assert_eq!(gather_ints(&col, &pos, &io), vec![0, 0, 10, 10]);
    }

    #[test]
    fn gather_strs_dict_and_plain_agree() {
        let values: Vec<String> = (0..100).map(|i| format!("v{}", i % 9)).collect();
        let plain = StoredColumn::new("c", Column::Str(StrColumn::plain(values.clone())));
        let dict = StoredColumn::new("c", Column::Str(StrColumn::dict(&values)));
        let pos = PosList::Explicit { positions: vec![0, 8, 9, 99], universe: 100 };
        let io = IoSession::unmetered();
        assert_eq!(gather_strs(&plain, &pos, &io), gather_strs(&dict, &pos, &io));
    }

    #[test]
    fn extract_at_arbitrary_order() {
        let col = rle_col();
        let io = IoSession::unmetered();
        let got = extract_at(&col, &[139, 0, 70], &io);
        assert_eq!(got, vec![Value::Int(190), Value::Int(0), Value::Int(100)]);
    }

    #[test]
    fn extract_at_memoized_rle_handles_all_access_patterns() {
        let col = rle_col();
        let io = IoSession::unmetered();
        // Bursty (same run), forward-adjacent, and random back-jumps: the
        // memoized cursor must agree with per-position binary search.
        let patterns: [&[u32]; 3] =
            [&[0, 1, 2, 3, 4], &[0, 7, 14, 21, 28], &[139, 0, 70, 69, 70, 1, 138]];
        for positions in patterns {
            let got = extract_at(&col, positions, &io);
            let want: Vec<Value> =
                positions.iter().map(|&p| Value::Int(col.column.as_int().value_at(p))).collect();
            assert_eq!(got, want, "{positions:?}");
        }
    }

    #[test]
    fn code_space_per_encoding() {
        let rle = rle_col();
        let space = CodeSpace::of(&rle).expect("rle ints have a code space");
        assert_eq!(space, CodeSpace::Int { reference: 0, domain: 191 });
        let vals: Vec<String> = (0..100).map(|i| format!("v{}", i % 9)).collect();
        let dict = StoredColumn::new("c", Column::Str(StrColumn::dict(&vals)));
        assert_eq!(CodeSpace::of(&dict), Some(CodeSpace::Dict { domain: 9 }));
        let plain = StoredColumn::new("c", Column::Str(StrColumn::plain(vals)));
        assert_eq!(CodeSpace::of(&plain), None, "plain strings have no global codes");
    }

    #[test]
    fn codes_decode_back_to_extracted_values() {
        let vals: Vec<String> = (0..100).map(|i| format!("v{}", i % 9)).collect();
        let cols = [
            rle_col(),
            StoredColumn::new(
                "p",
                Column::Int(
                    IntColumn::packed(&(0..140).map(|i| 1992 + i % 7).collect::<Vec<_>>()).unwrap(),
                ),
            ),
            StoredColumn::new("s", Column::Str(StrColumn::dict(&vals))),
        ];
        let io = IoSession::unmetered();
        let positions = [99u32, 0, 63, 64, 65, 7, 99];
        for col in &cols {
            let space = CodeSpace::of(col).expect("code space");
            let decoder = space.decoder(col);
            let codes = extract_codes_at(&space, col, &positions, &io);
            let want = extract_at(col, &positions, &io);
            let got: Vec<Value> = codes
                .iter()
                .map(|&c| {
                    assert!((c as u64) < space.domain());
                    match &decoder {
                        crate::agg::CodeDecoder::IntOffset(r) => Value::Int(r + c as i64),
                        crate::agg::CodeDecoder::Values(v) => v[c as usize].clone(),
                    }
                })
                .collect();
            assert_eq!(got, want, "{}", col.name);
        }
    }

    #[test]
    fn gather_codes_matches_extract_codes_and_charges_identically() {
        let col = rle_col();
        let space = CodeSpace::of(&col).unwrap();
        let positions = vec![0u32, 6, 7, 69, 139];
        let pos = PosList::Explicit { positions: positions.clone(), universe: 140 };
        let a = IoSession::unmetered();
        let gathered = gather_codes(&space, &col, &pos, &a);
        let b = IoSession::unmetered();
        let extracted = extract_codes_at(&space, &col, &positions, &b);
        assert_eq!(gathered, extracted);
        assert_eq!(a.stats().bytes_read, b.stats().bytes_read);
        // And the charge equals the Value-materializing gather's.
        let c = IoSession::unmetered();
        gather_ints(&col, &pos, &c);
        assert_eq!(a.stats().bytes_read, c.stats().bytes_read);
        assert_eq!(a.stats().pages_read, c.stats().pages_read);
    }

    #[test]
    fn decode_all_round_trips() {
        let col = rle_col();
        let io = IoSession::unmetered();
        let vals = decode_all(&col, &io);
        assert_eq!(vals.len(), 140);
        assert_eq!(vals[0], Value::Int(0));
        assert_eq!(vals[139], Value::Int(190));
        assert_eq!(io.stats().bytes_read, col.bytes());
    }
}
