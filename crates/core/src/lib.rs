//! # cvr-core — a C-Store-style column engine and the invisible join
//!
//! The paper's primary contribution, reproduced as a library:
//!
//! * [`projection`] — sorted projections with dictionary key reassignment
//!   (dense dimension keys; `yyyymmdd` DATE keys kept non-dense on purpose);
//! * [`scan`] / [`extract`] — predicate application and positional
//!   extraction over compressed columns, each with block (word-parallel
//!   kernels) and `get_next` (tuple-at-a-time) interfaces;
//! * [`kernels`] — branchless SWAR comparison kernels over truly
//!   bit-packed columns, emitting 64-bit selection masks;
//! * [`poslist`] — range / bitmap / explicit position lists with
//!   representation-preserving intersection;
//! * [`invisible`] — the **invisible join** with runtime between-predicate
//!   rewriting (Section 5.4);
//! * [`lmjoin`] — the classic late-materialized join it is compared against;
//! * [`em`] — early materialization (row-style execution over constructed
//!   tuples);
//! * [`row_mv`] — rows stored in a single string column ("CS (Row-MV)",
//!   Figure 5);
//! * [`denorm`] — pre-joined fact tables at three compression levels
//!   (Figure 8);
//! * [`config`] / [`engine`] — the four Figure 7 knobs (`tICL` … `Ticl`) and
//!   the dispatching facade;
//! * [`morsel`] — morsel-driven parallel execution: the fact position space
//!   is split into morsels claimed by scoped worker threads, with partial
//!   aggregates and per-morsel I/O logs merged deterministically in morsel
//!   order ([`Parallelism`] / `CVR_THREADS` select the thread count);
//! * [`sched`] — the process-wide query scheduler: admission control plus
//!   fair worker-lease sharing across concurrent morsel fan-outs
//!   (`CVR_SCHED_WORKERS` / `CVR_SCHED_QUERIES`), with queue-depth and
//!   deadline-aware load shedding (`CVR_SCHED_QUEUE_MAX`);
//! * [`ctx`] — the query lifecycle control block ([`QueryCtx`]: cooperative
//!   cancellation, deadlines, memory budgets) and the typed [`QueryError`]
//!   every abort path funnels into;
//! * [`trace`] — per-query execution tracing: a span tree of operator
//!   actuals (wall time, rows, I/O deltas, per-worker fan-out breakdowns),
//!   attached through [`QueryCtx`] with near-zero cost when disabled —
//!   the substrate for the server's `EXPLAIN ANALYZE`.
//!
//! ```
//! use cvr_core::{ColumnEngine, EngineConfig};
//! use cvr_data::{gen::SsbConfig, queries};
//! use cvr_storage::io::IoSession;
//! use std::sync::Arc;
//!
//! let tables = Arc::new(SsbConfig::with_scale(0.0005).generate());
//! let engine = ColumnEngine::new(tables);
//! let io = IoSession::unmetered();
//! let full = engine.execute(&queries::query(3, 1), EngineConfig::FULL, &io);
//! let stripped = engine.execute(&queries::query(3, 1), EngineConfig::STRIPPED, &io);
//! assert_eq!(full, stripped); // same answer, very different cost
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod config;
pub mod ctx;
pub mod denorm;
pub mod em;
pub mod engine;
pub mod extract;
pub mod invisible;
pub mod kernels;
pub mod lmjoin;
pub mod morsel;
pub mod poslist;
pub mod projection;
pub mod row_mv;
pub mod scan;
pub mod sched;
pub mod trace;

pub use config::EngineConfig;
pub use ctx::{QueryCtx, QueryError};
pub use denorm::{DenormDb, DenormVariant};
pub use engine::ColumnEngine;
pub use invisible::FilterCapture;
pub use morsel::Parallelism;
pub use poslist::PosList;
pub use projection::CStoreDb;
pub use row_mv::RowMvDb;
pub use sched::{QueryPermit, SchedStats, Scheduler, WorkerLease};
pub use trace::{Span, SpanRecord, Tracer};
