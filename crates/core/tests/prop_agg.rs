//! Property tests for code-level aggregation: the [`CodeGrouper`] over a
//! [`GroupLayout`] must be byte-identical to the scalar [`Grouper`]
//! reference across NDV regimes — single-group columns, the 63/64/65
//! bitmap-word boundaries of the direct accumulator, large domains that
//! overflow into the `u64`-keyed hash kernel, and multi-column radix
//! products that push a per-column-small key set over
//! [`DIRECT_GROUPS_LIMIT`] — plus arbitrary morsel-style merge splits.

use cvr_core::agg::{
    aggregate_columns, CodeDecoder, CodeGrouper, GroupLayout, Grouper, DIRECT_GROUPS_LIMIT,
};
use cvr_data::queries::query;
use cvr_data::value::Value;
use proptest::prelude::*;

/// Domains covering every accumulator regime: NDV 1, the bitmap word
/// boundaries of the direct accumulator, mid-size direct domains, and a
/// domain past the direct limit (hash kernel).
fn domain_from(sel: u8) -> u64 {
    match sel % 6 {
        0 => 1,
        1 => 63,
        2 => 64,
        3 => 65,
        4 => 2 + (sel as u64 * 7) % 198,
        _ => DIRECT_GROUPS_LIMIT + 7,
    }
}

/// One row of raw code entropy (reduced into each column's domain) plus a
/// term.
type RawRow = ((u64, u64, u64), i64);

/// 1–3 group columns (domain selectors) plus per-row raw rows.
fn grouped_rows() -> impl Strategy<Value = (Vec<u8>, Vec<RawRow>)> {
    (
        prop::collection::vec(0u8..255, 1..4),
        prop::collection::vec(
            ((0u64..1 << 62, 0u64..1 << 62, 0u64..1 << 62), -1000i64..1000),
            0..200,
        ),
    )
}

fn codes_for(domains: &[u64], raw: &(u64, u64, u64)) -> Vec<u64> {
    [raw.0, raw.1, raw.2].iter().zip(domains).map(|(&r, &d)| r % d).collect()
}

fn layout_for(domains: &[u64]) -> GroupLayout {
    // IntOffset decoders with distinct references so columns are
    // distinguishable in the decoded keys.
    GroupLayout::try_new(
        domains
            .iter()
            .enumerate()
            .map(|(c, &d)| (d, CodeDecoder::IntOffset(c as i64 * 10)))
            .collect(),
    )
    .expect("test domains compose")
}

fn decoded_key(codes: &[u64]) -> Vec<Value> {
    codes.iter().enumerate().map(|(c, &code)| Value::Int(c as i64 * 10 + code as i64)).collect()
}

proptest! {
    #[test]
    fn code_grouper_matches_reference_across_ndv_regimes(
        (sels, rows) in grouped_rows()
    ) {
        let domains: Vec<u64> = sels.iter().map(|&s| domain_from(s)).collect();
        let layout = layout_for(&domains);
        let q = query(2, 1);
        let mut code = CodeGrouper::for_layout(&layout);
        let mut reference = Grouper::new();
        for (raw, term) in &rows {
            let codes = codes_for(&domains, raw);
            let mut id = 0u64;
            for (c, &code_c) in codes.iter().enumerate() {
                id = id * code.radix(c) + code_c;
            }
            code.add(id, *term);
            reference.add(decoded_key(&codes), *term);
        }
        prop_assert_eq!(code.len(), reference.len());
        prop_assert_eq!(code.finish(&layout, &q), reference.finish(&q));
    }

    #[test]
    fn merge_splits_match_single_pass(
        (sels, rows) in grouped_rows(),
        chunk in 1usize..64,
    ) {
        let domains: Vec<u64> = sels.iter().map(|&s| domain_from(s)).collect();
        let layout = layout_for(&domains);
        let q = query(2, 1);
        let compose = |g: &CodeGrouper, codes: &[u64]| {
            codes.iter().enumerate().fold(0u64, |id, (c, &code_c)| id * g.radix(c) + code_c)
        };
        let mut whole = CodeGrouper::for_layout(&layout);
        for (raw, term) in &rows {
            let id = compose(&whole, &codes_for(&domains, raw));
            whole.add(id, *term);
        }
        // Morsel-style: per-chunk partials merged in chunk order.
        let mut merged = CodeGrouper::for_layout(&layout);
        for part_rows in rows.chunks(chunk) {
            let mut part = CodeGrouper::for_layout(&layout);
            for (raw, term) in part_rows {
                let id = compose(&part, &codes_for(&domains, raw));
                part.add(id, *term);
            }
            merged.merge(part);
        }
        prop_assert_eq!(merged.finish(&layout, &q), whole.finish(&layout, &q));
    }

    #[test]
    fn aggregate_columns_matches_reference(
        rows in prop::collection::vec((0u8..5, 0u8..7, -1000i64..1000), 0..120)
    ) {
        // Two group columns (one int-flavored, one string-flavored) through
        // the interned-dictionary path vs the per-row clone reference.
        let col_a: Vec<Value> = rows.iter().map(|(a, _, _)| Value::Int(*a as i64)).collect();
        let col_b: Vec<Value> = rows.iter().map(|(_, b, _)| Value::str(format!("g{b}"))).collect();
        let terms: Vec<i64> = rows.iter().map(|(_, _, t)| *t).collect();
        let q = query(2, 1);
        let mut reference = Grouper::new();
        for (i, &term) in terms.iter().enumerate() {
            reference.add(vec![col_a[i].clone(), col_b[i].clone()], term);
        }
        let got = aggregate_columns(&q, &[col_a, col_b], &terms);
        prop_assert_eq!(got, reference.finish(&q));
    }
}

#[test]
fn multi_column_radix_overflow_lands_in_hash_path() {
    // Each column individually fits the direct accumulator, but the radix
    // product overflows DIRECT_GROUPS_LIMIT — the layout must switch to the
    // hash kernel and still agree with the reference.
    let domains = [1000u64, 1000, 7];
    let layout = layout_for(&domains);
    assert!(layout.total_domain() > DIRECT_GROUPS_LIMIT);
    assert!(!layout.is_direct());
    let q = query(3, 2);
    let mut code = CodeGrouper::for_layout(&layout);
    let mut reference = Grouper::new();
    for i in 0..5000u64 {
        let codes = [(i * 37) % 1000, (i * 91) % 1000, i % 7];
        let mut id = 0u64;
        for (c, &code_c) in codes.iter().enumerate() {
            id = id * code.radix(c) + code_c;
        }
        code.add(id, i as i64 % 97 - 48);
        reference.add(decoded_key(&codes), i as i64 % 97 - 48);
    }
    assert_eq!(code.finish(&layout, &q), reference.finish(&q));
}

#[test]
fn u64_radix_overflow_has_no_layout() {
    // Domains whose product overflows u64 composition cannot form a layout
    // at all; engines fall back to the Value-keyed reference.
    let cols: Vec<(u64, CodeDecoder)> =
        (0..3).map(|_| (u64::MAX / 3, CodeDecoder::IntOffset(0))).collect();
    assert!(GroupLayout::try_new(cols).is_none());
}
