//! Property tests for the column engine's building blocks: position-list
//! algebra across representations, scan/extraction equivalence across
//! encodings and iteration interfaces.

use cvr_core::extract::{extract_at, gather_ints};
use cvr_core::poslist::PosList;
use cvr_core::scan::{scan_int_where, scan_pred, scan_str_pred};
use cvr_data::queries::Pred;
use cvr_data::value::Value;
use cvr_index::bitmap::RidBitmap;
use cvr_storage::column::StoredColumn;
use cvr_storage::encode::{Column, IntColumn, StrColumn};
use cvr_storage::io::IoSession;
use proptest::prelude::*;
use std::collections::BTreeSet;

const UNIVERSE: u32 = 512;

/// Arbitrary position set + representation choice.
fn poslist_strategy() -> impl Strategy<Value = (BTreeSet<u32>, u8)> {
    (prop::collection::btree_set(0u32..UNIVERSE, 0..200), 0u8..3)
}

fn build(set: &BTreeSet<u32>, repr: u8) -> PosList {
    let positions: Vec<u32> = set.iter().copied().collect();
    match repr {
        0 => PosList::from_ascending(positions, UNIVERSE),
        1 => PosList::Bitmap(RidBitmap::from_rids(UNIVERSE, positions)),
        _ => PosList::Explicit { positions, universe: UNIVERSE },
    }
}

fn clustered_ints() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec((0i64..40, 1usize..12), 1..50)
        .prop_map(|runs| runs.into_iter().flat_map(|(v, n)| std::iter::repeat_n(v, n)).collect())
}

proptest! {
    #[test]
    fn poslist_intersection_matches_set_model((xs, rx) in poslist_strategy(), (ys, ry) in poslist_strategy()) {
        let a = build(&xs, rx);
        let b = build(&ys, ry);
        let expected: Vec<u32> = xs.intersection(&ys).copied().collect();
        prop_assert_eq!(a.intersect(&b).to_vec(), expected.clone());
        prop_assert_eq!(b.intersect(&a).to_vec(), expected);
    }

    #[test]
    fn poslist_accessors_agree((xs, repr) in poslist_strategy()) {
        let pl = build(&xs, repr);
        prop_assert_eq!(pl.count() as usize, xs.len());
        prop_assert_eq!(pl.first(), xs.iter().next().copied());
        prop_assert_eq!(pl.last(), xs.iter().next_back().copied());
        prop_assert_eq!(pl.to_vec(), xs.iter().copied().collect::<Vec<u32>>());
        let contiguous = xs.is_empty()
            || (*xs.iter().next_back().unwrap() - *xs.iter().next().unwrap() + 1) as usize
                == xs.len();
        prop_assert_eq!(pl.is_contiguous(), contiguous);
    }

    #[test]
    fn int_scans_agree_across_encodings_and_interfaces(
        values in clustered_ints(),
        lo in 0i64..40,
        span in 0i64..15,
    ) {
        let hi = lo + span;
        let io = IoSession::unmetered();
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| (lo..=hi).contains(*v))
            .map(|(i, _)| i as u32)
            .collect();
        let rle = StoredColumn::new("c", Column::Int(IntColumn::rle(&values)));
        let plain = StoredColumn::new("c", Column::Int(IntColumn::plain_fixed(values.clone())));
        for col in [&rle, &plain] {
            for block in [true, false] {
                let got = scan_int_where(col, |v| (lo..=hi).contains(&v), block, &io);
                prop_assert_eq!(got.to_vec(), expected.clone());
            }
        }
    }

    #[test]
    fn str_scans_agree_across_encodings(
        values in prop::collection::vec("[a-f]{1,3}", 1..150),
        needle in "[a-f]{1,3}",
    ) {
        let io = IoSession::unmetered();
        let pred = Pred::Eq(Value::str(needle.as_str()));
        let dict = StoredColumn::new("c", Column::Str(StrColumn::dict(&values)));
        let plain = StoredColumn::new("c", Column::Str(StrColumn::plain(values.clone())));
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == needle)
            .map(|(i, _)| i as u32)
            .collect();
        for col in [&dict, &plain] {
            for block in [true, false] {
                prop_assert_eq!(scan_str_pred(col, &pred, block, &io).to_vec(), expected.clone());
            }
        }
        // And through the generic entry point.
        prop_assert_eq!(scan_pred(&dict, &pred, true, &io).to_vec(), expected);
    }

    #[test]
    fn gather_matches_index_access(
        values in clustered_ints(),
        picks in prop::collection::btree_set(0usize..200, 0..40),
    ) {
        let n = values.len();
        let positions: Vec<u32> =
            picks.into_iter().filter(|&p| p < n).map(|p| p as u32).collect();
        let pl = PosList::from_ascending(positions.clone(), n as u32);
        let io = IoSession::unmetered();
        let expected: Vec<i64> = positions.iter().map(|&p| values[p as usize]).collect();
        let rle = StoredColumn::new("c", Column::Int(IntColumn::rle(&values)));
        let plain = StoredColumn::new("c", Column::Int(IntColumn::plain(values.clone())));
        prop_assert_eq!(gather_ints(&rle, &pl, &io), expected.clone());
        prop_assert_eq!(gather_ints(&plain, &pl, &io), expected);
    }

    #[test]
    fn extract_at_handles_any_order(
        values in clustered_ints(),
        order in prop::collection::vec(0usize..200, 0..40),
    ) {
        let n = values.len();
        let positions: Vec<u32> =
            order.into_iter().filter(|&p| p < n).map(|p| p as u32).collect();
        let io = IoSession::unmetered();
        let col = StoredColumn::new("c", Column::Int(IntColumn::rle(&values)));
        let got = extract_at(&col, &positions, &io);
        let expected: Vec<Value> =
            positions.iter().map(|&p| Value::Int(values[p as usize])).collect();
        prop_assert_eq!(got, expected);
    }
}
