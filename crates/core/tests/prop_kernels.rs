//! Property tests for the word-parallel scan kernels: every kernel must be
//! position-for-position equivalent to its scalar loop — across random
//! value widths, predicates, selectivities, and universes that straddle the
//! 64-value mask-word boundary (63/64/65) — and the bulk accumulator paths
//! must finish to the same representation-level verdicts as per-position
//! pushes.

use cvr_core::kernels::{self, scalar, CmpOp};
use cvr_core::scan::{
    scan_int, scan_int_range, scan_int_where, scan_pred, scan_str_pred, IntScanPred, PosAccumulator,
};
use cvr_data::queries::Pred;
use cvr_data::value::Value;
use cvr_storage::column::StoredColumn;
use cvr_storage::encode::{Column, IntColumn, StrColumn};
use cvr_storage::io::IoSession;
use cvr_storage::packed::PackedInts;
use proptest::prelude::*;

/// Lengths that straddle mask-word and packed-word boundaries.
fn boundary_len() -> impl Strategy<Value = usize> {
    (0usize..10).prop_map(|i| [1usize, 9, 63, 64, 65, 127, 128, 129, 200, 321][i])
}

/// A packed array of `len` codes at `value_bits`, deterministic in `seed`.
fn packed_codes(value_bits: u8, len: usize, seed: u64) -> (Vec<u64>, PackedInts) {
    let max = (1u64 << value_bits) - 1;
    let codes: Vec<u64> = (0..len as u64)
        .map(|i| seed.wrapping_mul(i.wrapping_add(1)).wrapping_mul(2_654_435_761) % (max + 1))
        .collect();
    let p = PackedInts::pack(value_bits, codes.iter().copied());
    (codes, p)
}

proptest! {
    #[test]
    fn packed_cmp_kernel_matches_scalar(
        value_bits in 1u8..25,
        len in boundary_len(),
        seed in any::<u64>(),
        op_kind in 0u8..4,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let max = (1u64 << value_bits) - 1;
        let (_, p) = packed_codes(value_bits, len, seed);
        // Predicate constants biased into (and slightly beyond) the code
        // domain so every selectivity regime appears.
        let (a, b) = (a % (max + 2), b % (max + 2));
        let op = match op_kind {
            0 => CmpOp::Eq(a),
            1 => CmpOp::Le(a),
            2 => CmpOp::Lt(a),
            _ => CmpOp::Range(a.min(b), a.max(b)),
        };
        let (start, end) = (seed as u32 % len as u32, len as u32);
        let mut got = Vec::new();
        kernels::packed_cmp_masks(&p, start, end, op, |base, mut m| {
            while m != 0 {
                got.push(base + m.trailing_zeros());
                m &= m - 1;
            }
        });
        prop_assert_eq!(got, scalar::packed_cmp_positions(&p, start, end, op));
    }

    #[test]
    fn packed_test_kernel_matches_scalar(
        value_bits in 1u8..25,
        len in boundary_len(),
        seed in any::<u64>(),
        modulus in 2u64..7,
    ) {
        let (_, p) = packed_codes(value_bits, len, seed);
        let test = |c: u64| c % modulus == 0;
        let start = seed as u32 % len as u32;
        let mut got = Vec::new();
        kernels::packed_test_masks(&p, start, len as u32, test, |base, mut m| {
            while m != 0 {
                got.push(base + m.trailing_zeros());
                m &= m - 1;
            }
        });
        prop_assert_eq!(got, scalar::packed_test_positions(&p, start, len as u32, test));
    }

    #[test]
    fn slice_cmp_kernel_matches_scalar(
        values in prop::collection::vec(-1000i64..1000, 1..200),
        lo in -1100i64..1100,
        span in 0i64..500,
    ) {
        let hi = lo + span;
        let mut got = Vec::new();
        kernels::slice_cmp_masks(&values, 7, lo, hi, |base, mut m| {
            while m != 0 {
                got.push(base + m.trailing_zeros());
                m &= m - 1;
            }
        });
        prop_assert_eq!(got, scalar::slice_cmp_positions(&values, 7, lo, hi));
    }

    #[test]
    fn packed_column_scan_matches_plain_column_scan(
        reference in -5000i64..5000,
        deltas in prop::collection::vec(0i64..3000, 1..300),
        lo in -6000i64..9000,
        span in 0i64..4000,
        block in any::<bool>(),
    ) {
        // The full scan path: a packed column and a plain column holding
        // the same values must produce identical PosLists for interval and
        // opaque predicates, under both iteration interfaces.
        let values: Vec<i64> = deltas.iter().map(|&d| reference + d).collect();
        let packed = StoredColumn::new(
            "p",
            Column::Int(IntColumn::packed(&values).expect("small deltas pack")),
        );
        let plain = StoredColumn::new("q", Column::Int(IntColumn::plain(values.clone())));
        let io = IoSession::unmetered();
        let hi = lo + span;
        let range = IntScanPred::Range { lo, hi };
        prop_assert_eq!(
            scan_int(&packed, &range, block, &io).to_vec(),
            scan_int(&plain, &range, block, &io).to_vec()
        );
        let test = |v: i64| v % 5 == 0;
        prop_assert_eq!(
            scan_int_where(&packed, test, block, &io).to_vec(),
            scan_int_where(&plain, test, block, &io).to_vec()
        );
        // Morsel fragments tile to the full scan.
        let n = values.len() as u32;
        let cut = n / 3;
        let mut tiled = scan_int_range(&packed, 0, cut, &range, block, &io);
        tiled.extend(scan_int_range(&packed, cut, n, &range, block, &io));
        prop_assert_eq!(tiled, scan_int(&packed, &range, block, &io).to_vec());
    }

    #[test]
    fn dict_scan_matches_plain_string_scan(
        cardinality in 1usize..40,
        len in boundary_len(),
        seed in any::<u64>(),
        pred_kind in 0u8..3,
        a in 0usize..45,
        b in 0usize..45,
    ) {
        let values: Vec<String> = (0..len as u64)
            .map(|i| format!("V{:02}", seed.wrapping_mul(i.wrapping_add(3)) % cardinality as u64))
            .collect();
        let name = |i: usize| format!("V{:02}", i % cardinality);
        let pred = match pred_kind {
            // Contiguous in the sorted dictionary → range-kernel path.
            0 => Pred::Between(Value::str(name(a.min(b)).as_str()), Value::str(name(a.max(b)).as_str())),
            1 => Pred::Eq(Value::str(name(a).as_str())),
            // Possibly disjoint → table path.
            _ => Pred::InSet(vec![Value::str(name(a).as_str()), Value::str(name(b).as_str())]),
        };
        let dict = StoredColumn::new("d", Column::Str(StrColumn::dict(&values)));
        let plain = StoredColumn::new("s", Column::Str(StrColumn::plain(values)));
        let io = IoSession::unmetered();
        for block in [true, false] {
            prop_assert_eq!(
                scan_str_pred(&dict, &pred, block, &io).to_vec(),
                scan_str_pred(&plain, &pred, block, &io).to_vec()
            );
        }
    }

    #[test]
    fn int_pred_compilation_preserves_semantics(
        values in prop::collection::vec(-300i64..300, 1..200),
        pred_kind in 0u8..4,
        a in -350i64..350,
        b in -350i64..350,
        c in -350i64..350,
    ) {
        // scan_pred (which compiles Eq/Between/Lt/InSet to intervals when
        // possible) must agree with the uncompiled matches_int closure.
        let pred = match pred_kind {
            0 => Pred::Eq(Value::Int(a)),
            1 => Pred::Between(Value::Int(a.min(b)), Value::Int(a.max(b))),
            2 => Pred::Lt(Value::Int(a)),
            _ => Pred::InSet(vec![Value::Int(a), Value::Int(b), Value::Int(c)]),
        };
        for compress in [true, false] {
            let col = StoredColumn::new(
                "c",
                Column::Int(if compress {
                    IntColumn::auto(values.clone())
                } else {
                    IntColumn::plain(values.clone())
                }),
            );
            let io = IoSession::unmetered();
            for block in [true, false] {
                prop_assert_eq!(
                    scan_pred(&col, &pred, block, &io).to_vec(),
                    scan_int_where(&col, |v| pred.matches_int(v), block, &io).to_vec(),
                    "compress={} block={}", compress, block
                );
            }
        }
    }

    #[test]
    fn accumulator_masks_equal_per_position_pushes(
        universe_sel in 0usize..3,
        masks in prop::collection::vec(any::<u64>(), 1..6),
        offset in 0u32..64,
    ) {
        // Feed the same positions through push_mask and through per-bit
        // push; the finished PosLists must be identical in content AND
        // contiguity verdict, at universes straddling word boundaries.
        let universe = [383u32, 384, 449][universe_sel];
        let mut bulk = PosAccumulator::new(universe);
        let mut bits = PosAccumulator::new(universe);
        for (k, &mask) in masks.iter().enumerate() {
            let base = offset + k as u32 * 64;
            if base + 64 > universe {
                break;
            }
            bulk.push_mask(base, mask);
            for j in 0..64 {
                if mask & (1u64 << j) != 0 {
                    bits.push(base + j);
                }
            }
        }
        let (a, b) = (bulk.finish(), bits.finish());
        prop_assert_eq!(a.to_vec(), b.to_vec());
        prop_assert_eq!(a.is_contiguous(), b.is_contiguous());
    }

    #[test]
    fn accumulator_ranges_equal_per_position_pushes(
        ranges in prop::collection::vec((0u32..500, 0u32..80), 1..8),
    ) {
        // Ascending, possibly-adjacent ranges through the O(words) bulk
        // path vs per-position pushes.
        let mut sorted: Vec<(u32, u32)> =
            ranges.iter().map(|&(s, l)| (s, (s + l).min(500))).collect();
        sorted.sort_unstable();
        let mut bulk = PosAccumulator::new(500);
        let mut bits = PosAccumulator::new(500);
        let mut cursor = 0u32;
        for (s, e) in sorted {
            let s = s.max(cursor);
            if s >= e {
                continue;
            }
            bulk.push_range(s, e);
            for p in s..e {
                bits.push(p);
            }
            cursor = e;
        }
        let (a, b) = (bulk.finish(), bits.finish());
        prop_assert_eq!(a.to_vec(), b.to_vec());
        prop_assert_eq!(a.is_contiguous(), b.is_contiguous());
    }
}
