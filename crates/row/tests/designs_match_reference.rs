//! Every row-store physical design must produce identical results to the
//! brute-force reference evaluator, for all thirteen SSBM queries.

use cvr_data::gen::SsbConfig;
use cvr_data::queries::all_queries;
use cvr_data::reference;
use cvr_row::designs::{RowDb, RowDesign};
use cvr_storage::io::{BufferPool, IoSession, PAGE_SIZE};
use std::sync::Arc;

fn check_design(design: RowDesign) {
    let tables = Arc::new(SsbConfig { sf: 0.002, seed: 31 }.generate());
    let db = RowDb::build(tables.clone(), design);
    let io = IoSession::unmetered();
    for q in all_queries() {
        let expected = reference::evaluate(&tables, &q);
        let got = db.execute(&q, &io);
        assert_eq!(got, expected, "{} disagrees on {}", design.label(), q.id);
    }
}

#[test]
fn traditional_matches_reference() {
    check_design(RowDesign::Traditional);
}

#[test]
fn traditional_bitmap_matches_reference() {
    check_design(RowDesign::TraditionalBitmap);
}

#[test]
fn materialized_views_match_reference() {
    check_design(RowDesign::MaterializedViews);
}

#[test]
fn vertical_partitioning_matches_reference() {
    check_design(RowDesign::VerticalPartitioning);
}

#[test]
fn index_only_matches_reference() {
    check_design(RowDesign::IndexOnly);
}

#[test]
fn results_stable_under_small_buffer_pool() {
    // A bounded pool changes I/O accounting, never results.
    let tables = Arc::new(SsbConfig { sf: 0.001, seed: 5 }.generate());
    let db = RowDb::build(tables.clone(), RowDesign::Traditional);
    let small = IoSession::new(BufferPool::new(4 * PAGE_SIZE));
    let big = IoSession::unmetered();
    for q in all_queries() {
        assert_eq!(db.execute(&q, &small), db.execute(&q, &big), "{}", q.id);
    }
    assert!(small.stats().pages_read >= big.stats().pages_read);
}

#[test]
fn io_ordering_mv_below_traditional() {
    // The MV design's whole advantage is bytes: it must read less than the
    // traditional design for every query.
    let tables = Arc::new(SsbConfig { sf: 0.002, seed: 31 }.generate());
    let t = RowDb::build(tables.clone(), RowDesign::Traditional);
    let mv = RowDb::build(tables.clone(), RowDesign::MaterializedViews);
    for q in all_queries() {
        let io_t = IoSession::new(BufferPool::new(8 * PAGE_SIZE));
        t.execute(&q, &io_t);
        let io_mv = IoSession::new(BufferPool::new(8 * PAGE_SIZE));
        mv.execute(&q, &io_mv);
        assert!(
            io_mv.stats().bytes_read <= io_t.stats().bytes_read,
            "{}: MV read {} vs T {}",
            q.id,
            io_mv.stats().bytes_read,
            io_t.stats().bytes_read
        );
    }
}
