//! Unit tests for the Volcano operators, on hand-checkable inputs.

use crate::ops::*;
use crate::tuple::{OpSchema, Tuple};
use cvr_data::queries::Pred;
use cvr_data::schema::{ColumnDef, TableSchema};
use cvr_data::table::{ColumnData, TableData};
use cvr_data::value::{DataType, Value};
use cvr_index::btree::{ikey, BPlusTree};
use cvr_storage::heap::HeapFile;
use cvr_storage::io::IoSession;

fn vals(schema: &[&str], rows: Vec<Vec<i64>>) -> BoxedOp<'static> {
    let tuples: Vec<Tuple> =
        rows.into_iter().map(|r| r.into_iter().map(Value::Int).collect()).collect();
    Box::new(ValuesOp::new(OpSchema::new(schema.iter().copied()), tuples))
}

fn ints(op: BoxedOp<'_>) -> Vec<Vec<i64>> {
    drain(op).into_iter().map(|t| t.into_iter().map(|v| v.as_int()).collect()).collect()
}

#[test]
fn filter_keeps_matching_tuples() {
    let child = vals(&["a"], vec![vec![1], vec![5], vec![3]]);
    let f = Filter::new(child, "a", Pred::Between(Value::Int(2), Value::Int(4)));
    assert_eq!(ints(Box::new(f)), vec![vec![3]]);
}

#[test]
fn project_subsets_and_reorders() {
    let child = vals(&["a", "b"], vec![vec![1, 10], vec![2, 20]]);
    let p = Project::new(child, &["b", "a"]);
    assert_eq!(ints(Box::new(p)), vec![vec![10, 1], vec![20, 2]]);
}

#[test]
fn hash_join_inner_semantics() {
    let probe = vals(&["k", "x"], vec![vec![1, 100], vec![2, 200], vec![3, 300], vec![2, 201]]);
    let build = vals(&["k2", "y"], vec![vec![2, 7], vec![3, 8], vec![9, 9]]);
    let j = HashJoin::new(probe, build, "k", "k2", false);
    let mut got = ints(Box::new(j));
    got.sort();
    assert_eq!(got, vec![vec![2, 200, 2, 7], vec![2, 201, 2, 7], vec![3, 300, 3, 8]]);
}

#[test]
fn hash_join_duplicate_build_keys() {
    let probe = vals(&["k"], vec![vec![5]]);
    let build = vals(&["k2", "tag"], vec![vec![5, 1], vec![5, 2], vec![5, 3]]);
    let j = HashJoin::new(probe, build, "k", "k2", false);
    let mut got = ints(Box::new(j));
    got.sort();
    assert_eq!(got.len(), 3, "all build matches must be emitted");
    assert_eq!(got[0], vec![5, 5, 1]);
}

#[test]
fn hash_join_with_bloom_same_result() {
    let rows: Vec<Vec<i64>> = (0..500).map(|i| vec![i % 50, i]).collect();
    let build_rows: Vec<Vec<i64>> = (0..10).map(|i| vec![i * 5, i]).collect();
    let a = HashJoin::new(
        vals(&["k", "x"], rows.clone()),
        vals(&["k2", "y"], build_rows.clone()),
        "k",
        "k2",
        false,
    );
    let b = HashJoin::new(vals(&["k", "x"], rows), vals(&["k2", "y"], build_rows), "k", "k2", true);
    let mut xs = ints(Box::new(a));
    let mut ys = ints(Box::new(b));
    xs.sort();
    ys.sort();
    assert_eq!(xs, ys);
}

#[test]
fn merge_join_on_sorted_inputs() {
    let left = vals(&["k", "x"], vec![vec![1, 10], vec![2, 20], vec![2, 21], vec![4, 40]]);
    let right = vals(&["k2", "y"], vec![vec![2, 5], vec![3, 6], vec![4, 7]]);
    let j = MergeJoin::new(left, right, "k", "k2");
    let mut got = ints(Box::new(j));
    got.sort();
    assert_eq!(got, vec![vec![2, 20, 2, 5], vec![2, 21, 2, 5], vec![4, 40, 4, 7]]);
}

#[test]
fn sort_op_orders_by_key_prefix() {
    let child = vals(&["a", "b"], vec![vec![2, 1], vec![1, 9], vec![2, 0], vec![1, 3]]);
    let s = SortOp::new(child, &["a", "b"]);
    assert_eq!(ints(Box::new(s)), vec![vec![1, 3], vec![1, 9], vec![2, 0], vec![2, 1]]);
}

#[test]
fn hash_agg_groups_and_sums() {
    let child = vals(&["g", "v"], vec![vec![1, 10], vec![2, 5], vec![1, 7], vec![2, 5]]);
    let agg = HashAgg::sum_of(child, &["g"], "v");
    assert_eq!(ints(Box::new(agg)), vec![vec![1, 17], vec![2, 10]]);
}

#[test]
fn hash_agg_scalar_group() {
    let child = vals(&["v"], vec![vec![4], vec![6]]);
    let agg = HashAgg::sum_of(child, &[], "v");
    assert_eq!(ints(Box::new(agg)), vec![vec![10]]);
}

#[test]
fn hash_agg_custom_term() {
    let child = vals(&["a", "b"], vec![vec![3, 4], vec![5, 6]]);
    let agg = HashAgg::new(child, &[], |t| t[0].as_int() * t[1].as_int());
    assert_eq!(ints(Box::new(agg)), vec![vec![42]]);
}

#[test]
fn chain_concatenates_in_order() {
    let a = vals(&["x"], vec![vec![1], vec![2]]);
    let b = vals(&["x"], vec![vec![3]]);
    let c = ChainOp::new(vec![a, b]);
    assert_eq!(ints(Box::new(c)), vec![vec![1], vec![2], vec![3]]);
}

#[test]
#[should_panic(expected = "agree on schema")]
fn chain_rejects_mismatched_schemas() {
    let a = vals(&["x"], vec![]);
    let b = vals(&["y"], vec![]);
    ChainOp::new(vec![a, b]);
}

#[test]
fn seq_scan_with_pushed_predicates() {
    let table = TableData::new(
        TableSchema {
            name: "t",
            columns: vec![
                ColumnDef { name: "a", dtype: DataType::Int },
                ColumnDef { name: "s", dtype: DataType::Str },
                ColumnDef { name: "b", dtype: DataType::Int },
            ],
        },
        vec![
            ColumnData::Int((0..100).collect()),
            ColumnData::Str((0..100).map(|i| format!("tag{}", i % 3)).collect()),
            ColumnData::Int((0..100).map(|i| i * 2).collect()),
        ],
    );
    let heap = HeapFile::build(&table);
    let io = IoSession::unmetered();
    let cols = ["a", "s", "b"];
    let scan = SeqScan::new(&heap, &cols, &["b", "a"], &io)
        .with_predicate(&cols, "a", Pred::Lt(Value::Int(10)))
        .with_predicate(&cols, "s", Pred::Eq(Value::str("tag1")));
    let got = ints(Box::new(scan));
    // a in {1,4,7} (a % 3 == 1 and a < 10); output is (b, a) = (2a, a).
    assert_eq!(got, vec![vec![2, 1], vec![8, 4], vec![14, 7]]);
}

#[test]
fn index_scans_yield_keys_and_rids() {
    let entries: Vec<_> = (0..50i64).map(|i| (ikey(i % 10), i as u32)).collect();
    let tree = BPlusTree::bulk_load(entries);
    let io = IoSession::unmetered();
    let full = IndexFullScanOp::new(&tree, &["v"], "rid", &io);
    let rows = drain(Box::new(full));
    assert_eq!(rows.len(), 50);
    assert_eq!(rows[0].len(), 2, "(key, rid)");
    let range = IndexRangeScanOp::new(
        &tree,
        &["v"],
        "rid",
        &Pred::Between(Value::Int(3), Value::Int(4)),
        &io,
    );
    let rows = drain(Box::new(range));
    assert_eq!(rows.len(), 10); // values 3 and 4, five rids each
    assert!(rows.iter().all(|t| (3..=4).contains(&t[0].as_int())));
}

#[test]
fn bitmap_fetch_projects_requested_rids() {
    let table = TableData::new(
        TableSchema { name: "t", columns: vec![ColumnDef { name: "a", dtype: DataType::Int }] },
        vec![ColumnData::Int((0..100).map(|i| i * 3).collect())],
    );
    let heap = HeapFile::build(&table);
    let io = IoSession::unmetered();
    let fetch = BitmapFetch::new(&heap, &["a"], &["a"], vec![0, 10, 99], &io);
    assert_eq!(ints(Box::new(fetch)), vec![vec![0], vec![30], vec![297]]);
}
