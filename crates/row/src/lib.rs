//! # cvr-row — a System-X-style row-store engine
//!
//! The "commercial row-store under a variety of different configurations"
//! side of the study. This crate implements:
//!
//! * a Volcano-style **tuple-at-a-time executor** ([`ops`]) — scans, filters,
//!   hash/merge joins (with optional Bloom pre-filtering), sorts, grouped
//!   aggregation — all moving one heap-allocated tuple per virtual call,
//!   which is precisely the interface cost Section 5.3 charges row-stores
//!   for;
//! * the **five physical designs** of Section 4 ([`designs`]): traditional
//!   (orderdate-partitioned), traditional biased to bitmap plans,
//!   per-flight materialized views, full vertical partitioning, and
//!   index-only plans — each with hand-built plans following the shapes the
//!   paper dissects in Section 6.2.1.
//!
//! The engine is honest about its pathologies on purpose: the point of the
//! reproduction is that *even with column-oriented physical designs*, a row
//! executor pays tuple headers, record-id joins, and per-tuple interface
//! costs that a column engine does not.
//!
//! ```
//! use cvr_data::{gen::SsbConfig, queries};
//! use cvr_row::designs::{RowDb, RowDesign};
//! use cvr_storage::io::IoSession;
//! use std::sync::Arc;
//!
//! let tables = Arc::new(SsbConfig::with_scale(0.0005).generate());
//! let db = RowDb::build(tables, RowDesign::Traditional);
//! let io = IoSession::unmetered();
//! let out = db.execute(&queries::query(1, 1), &io);
//! assert_eq!(out.rows.len(), 1); // scalar revenue-gain aggregate
//! ```

#![warn(missing_docs)]

pub mod designs;
pub mod ops;
#[cfg(test)]
mod ops_tests;
pub mod tuple;

pub use designs::{RowDb, RowDesign};
pub use ops::{BoxedOp, RowOp};
pub use tuple::{OpSchema, Tuple};
