//! Runtime tuples and operator schemas for the Volcano engine.
//!
//! A [`Tuple`] is a heap-allocated vector of [`Value`]s — one allocation per
//! row, passed operator-to-operator through virtual `next()` calls. That is
//! deliberate: the paper's Section 5.3 attributes much of the row-store's CPU
//! cost to exactly this tuple-at-a-time interface, and this engine exists to
//! exhibit row-store behaviour, not to beat it.

use cvr_data::value::Value;

/// A materialized row flowing between operators.
pub type Tuple = Vec<Value>;

/// Names of the columns an operator produces, in output order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSchema {
    cols: Vec<String>,
}

impl OpSchema {
    /// Schema from column names.
    pub fn new<S: Into<String>>(cols: impl IntoIterator<Item = S>) -> OpSchema {
        OpSchema { cols: cols.into_iter().map(Into::into).collect() }
    }

    /// Index of `name`, panicking when absent (plan-construction bug).
    pub fn idx(&self, name: &str) -> usize {
        self.cols
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("operator schema {:?} has no column {name}", self.cols))
    }

    /// Index of `name`, or `None`.
    pub fn try_idx(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == name)
    }

    /// Column names.
    pub fn cols(&self) -> &[String] {
        &self.cols
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// New schema = `self` ++ `other` (hash-join output shape).
    pub fn concat(&self, other: &OpSchema) -> OpSchema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        OpSchema { cols }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_lookup() {
        let s = OpSchema::new(["a", "b", "c"]);
        assert_eq!(s.idx("b"), 1);
        assert_eq!(s.try_idx("z"), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn idx_panics_on_missing() {
        OpSchema::new(["a"]).idx("b");
    }

    #[test]
    fn concat_schemas() {
        let s = OpSchema::new(["a"]).concat(&OpSchema::new(["b", "c"]));
        assert_eq!(s.cols(), &["a".to_string(), "b".into(), "c".into()]);
    }
}
