//! Vertical partitioning with **super tuples** — the extension experiment.
//!
//! The paper's related work (Halverson et al. \[13\]) proposes "super tuples"
//! that avoid "duplicating header information and batch many tuples
//! together in a block", and its conclusion names "reduced tuple overhead"
//! and "virtual record-ids" as exactly the changes a row-store would need
//! to make column-oriented physical designs viable. This module implements
//! that proposal on top of the VP design:
//!
//! * each column table stores *just the values*, packed into pages with one
//!   header per page instead of 16 bytes of header+position per value;
//! * record-ids are **virtual** — a value's position in the file — so the
//!   position column disappears entirely;
//! * the executor is still the Volcano row engine: scans materialize
//!   `(pos, value)` tuples one at a time and everything above (hash joins
//!   on positions, aggregation) is unchanged from the VP plans.
//!
//! The result isolates *storage overhead* from *executor architecture*:
//! super-tuple VP reads ~4 bytes/value like a column store, but still pays
//! row-store execution. Run `cargo run -p cvr-bench --bin super_tuples`
//! to see how far that closes the gap (and what remains).

use std::collections::HashMap;
use std::sync::Arc;

use crate::designs::common::{aggregate_and_finish, dim_needed_columns, join_order};
use crate::ops::{BoxedOp, HashJoin, Project, RowOp};
use crate::tuple::{OpSchema, Tuple};
use cvr_data::gen::SsbTables;
use cvr_data::queries::{Pred, SsbQuery};
use cvr_data::result::QueryOutput;
use cvr_data::schema::Dim;
use cvr_data::table::ColumnData;
use cvr_data::value::Value;
use cvr_storage::column::StoredColumn;
use cvr_storage::encode::{Column, IntColumn, StrColumn};
use cvr_storage::io::IoSession;

/// Key for a dimension column table.
type DimCol = (Dim, &'static str);

/// A super-tuple column table: packed values, virtual positions.
pub struct SuperColumn {
    store: StoredColumn,
}

impl SuperColumn {
    fn build(name: &'static str, data: &ColumnData) -> SuperColumn {
        // Fixed-width plain packing: 4-byte ints / length-prefixed strings —
        // one page header per 32 KB, no per-tuple headers, no positions.
        let column = match data {
            ColumnData::Int(v) => Column::Int(IntColumn::plain_fixed(v.clone())),
            ColumnData::Str(v) => Column::Str(StrColumn::plain(v.clone())),
        };
        SuperColumn { store: StoredColumn::new(name, column) }
    }

    /// Bytes on disk.
    pub fn bytes(&self) -> u64 {
        self.store.bytes()
    }

    /// Volcano scan producing `(pos, value)` tuples, with an optional
    /// pushed-down predicate. Positions are virtual (the value's ordinal).
    fn scan<'a>(&'a self, name: &str, pred: Option<Pred>, io: &'a IoSession) -> SuperTupleScan<'a> {
        self.store.charge_scan(io);
        SuperTupleScan {
            column: &self.store,
            schema: OpSchema::new(["pos".to_string(), name.to_string()]),
            cursor: 0,
            pred,
        }
    }
}

/// Tuple-at-a-time scan over a super-tuple column.
pub struct SuperTupleScan<'a> {
    column: &'a StoredColumn,
    schema: OpSchema,
    cursor: u32,
    pred: Option<Pred>,
}

impl RowOp for SuperTupleScan<'_> {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        let n = self.column.column.len() as u32;
        while self.cursor < n {
            let pos = self.cursor;
            self.cursor += 1;
            let value = match &self.column.column {
                Column::Int(c) => Value::Int(c.value_at(pos)),
                Column::Str(c) => Value::str(c.value_at(pos)),
            };
            if let Some(p) = &self.pred {
                if !p.matches(&value) {
                    continue;
                }
            }
            return Some(vec![Value::Int(pos as i64), value]);
        }
        None
    }
}

/// The super-tuple VP design: packed value files for every column.
pub struct SuperVpDb {
    tables: Arc<SsbTables>,
    fact_cols: HashMap<&'static str, SuperColumn>,
    dim_cols: HashMap<DimCol, SuperColumn>,
}

impl SuperVpDb {
    /// Build packed column tables for every table.
    pub fn build(tables: Arc<SsbTables>) -> SuperVpDb {
        let mut fact_cols = HashMap::new();
        for def in &tables.schema.lineorder.columns {
            fact_cols
                .insert(def.name, SuperColumn::build(def.name, tables.lineorder.column(def.name)));
        }
        let mut dim_cols = HashMap::new();
        for &d in &Dim::ALL {
            let table = tables.dim(d);
            for def in &tables.schema.dim(d).columns {
                dim_cols
                    .insert((d, def.name), SuperColumn::build(def.name, table.column(def.name)));
            }
        }
        SuperVpDb { tables, fact_cols, dim_cols }
    }

    /// Bytes of one fact column table.
    pub fn fact_column_bytes(&self, column: &str) -> u64 {
        self.fact_cols[column].bytes()
    }

    /// Total bytes of all fact column tables.
    pub fn fact_bytes(&self) -> u64 {
        self.fact_cols.values().map(SuperColumn::bytes).sum()
    }

    fn fact_col_scan<'a>(&'a self, column: &'static str, io: &'a IoSession) -> BoxedOp<'a> {
        Box::new(self.fact_cols[column].scan(column, None, io))
    }

    /// Filtered dimension sub-plan producing `[key, groupcols...]` — same
    /// shape as the VP plan, over packed columns.
    fn dim_plan<'a>(&'a self, q: &SsbQuery, dim: Dim, io: &'a IoSession) -> BoxedOp<'a> {
        let needed = dim_needed_columns(q, dim);
        let preds = q.dim_predicates_on(dim);
        let first: &'static str = preds.first().map(|p| p.column).unwrap_or(needed[0]);
        let first_pred = preds.iter().find(|p| p.column == first).map(|p| p.pred.clone());
        let mut plan: BoxedOp<'a> =
            Box::new(self.dim_cols[&(dim, first)].scan(first, first_pred, io));
        for p in &preds {
            if p.column == first {
                continue;
            }
            let scan = self.dim_cols[&(dim, p.column)].scan(p.column, Some(p.pred.clone()), io);
            plan = Box::new(HashJoin::new(plan, Box::new(scan), "pos", "pos", false));
        }
        for &col in &needed {
            if plan.schema().try_idx(col).is_some() {
                continue;
            }
            let scan = self.dim_cols[&(dim, col)].scan(col, None, io);
            plan = Box::new(HashJoin::new(plan, Box::new(scan), "pos", "pos", false));
        }
        Box::new(Project::new(plan, &needed))
    }

    /// Execute `q` with the VP plan shape over super-tuple storage.
    pub fn execute(&self, q: &SsbQuery, io: &IoSession) -> QueryOutput {
        let order = join_order(&self.tables, q);
        let mut pipeline: Option<BoxedOp<'_>> = None;
        let mut joined_dims: Vec<Dim> = Vec::new();
        for &dim in &order {
            if q.dim_predicates_on(dim).is_empty() {
                continue;
            }
            let fk_scan = self.fact_col_scan(dim.fact_fk_column(), io);
            let branch: BoxedOp<'_> = Box::new(HashJoin::new(
                fk_scan,
                self.dim_plan(q, dim, io),
                dim.fact_fk_column(),
                dim.key_column(),
                false,
            ));
            pipeline = Some(match pipeline {
                None => branch,
                Some(p) => Box::new(HashJoin::new(p, branch, "pos", "pos", false)),
            });
            joined_dims.push(dim);
        }
        for p in &q.fact_predicates {
            let scan: BoxedOp<'_> =
                Box::new(self.fact_cols[p.column].scan(p.column, Some(p.pred.clone()), io));
            pipeline = Some(match pipeline {
                None => scan,
                Some(pl) => Box::new(HashJoin::new(pl, scan, "pos", "pos", false)),
            });
        }
        let mut pipeline = pipeline.expect("every SSBM query restricts something");
        for &dim in &order {
            if joined_dims.contains(&dim) {
                continue;
            }
            let fk_scan = self.fact_col_scan(dim.fact_fk_column(), io);
            pipeline = Box::new(HashJoin::new(pipeline, fk_scan, "pos", "pos", false));
            pipeline = Box::new(HashJoin::new(
                pipeline,
                self.dim_plan(q, dim, io),
                dim.fact_fk_column(),
                dim.key_column(),
                false,
            ));
        }
        for col in q.aggregate.fact_columns() {
            if pipeline.schema().try_idx(col).is_some() {
                continue;
            }
            let scan = self.fact_col_scan(col, io);
            pipeline = Box::new(HashJoin::new(pipeline, scan, "pos", "pos", false));
        }
        aggregate_and_finish(q, pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::vp::VpDb;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::all_queries;
    use cvr_data::reference;

    fn tables() -> Arc<SsbTables> {
        Arc::new(SsbConfig { sf: 0.002, seed: 67 }.generate())
    }

    #[test]
    fn matches_reference_on_all_queries() {
        let t = tables();
        let db = SuperVpDb::build(t.clone());
        let io = IoSession::unmetered();
        for q in all_queries() {
            let expected = reference::evaluate(&t, &q);
            assert_eq!(db.execute(&q, &io), expected, "SuperVP on {}", q.id);
        }
    }

    #[test]
    fn super_tuples_shrink_vp_by_4x() {
        let t = tables();
        let vp = VpDb::build(t.clone());
        let sup = SuperVpDb::build(t.clone());
        // 16 B/row (header + position + value) vs 4 B/value.
        let ratio =
            vp.fact_column_bytes("lo_revenue") as f64 / sup.fact_column_bytes("lo_revenue") as f64;
        assert!((3.5..=4.5).contains(&ratio), "expected ~4x shrink, got {ratio:.2}");
    }

    #[test]
    fn super_vp_reads_fewer_bytes_than_vp() {
        let t = tables();
        let vp = VpDb::build(t.clone());
        let sup = SuperVpDb::build(t.clone());
        for q in all_queries() {
            let io_vp = IoSession::unmetered();
            vp.execute(&q, &io_vp);
            let io_sup = IoSession::unmetered();
            sup.execute(&q, &io_sup);
            assert!(
                io_sup.stats().bytes_read < io_vp.stats().bytes_read,
                "{}: super {} vs vp {}",
                q.id,
                io_sup.stats().bytes_read,
                io_vp.stats().bytes_read
            );
        }
    }
}
