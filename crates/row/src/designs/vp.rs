//! The fully-vertically-partitioned design (Figure 6 `VP`).
//!
//! Every column of every relation becomes a two-column table
//! `(pos, value)` — the "integer position column" scheme of Section 4. The
//! row format's 8-byte tuple header plus the 4-byte position make a 16-byte
//! footprint per integer value, which is exactly the overhead arithmetic the
//! paper uses to show why VP scans four columns in the time the traditional
//! design scans all seventeen.
//!
//! Plans follow Section 6.2.1's dissected Q2.1 plan: each restricted
//! dimension filters its (tiny, also vertically partitioned) dimension
//! columns; the fact FK column is hash-joined against that; branch results
//! are hash-joined on `pos`; measure columns are picked up last by further
//! `pos` joins. System X "chose to use hash joins" throughout — so do we.

use std::collections::HashMap;
use std::sync::Arc;

use crate::designs::common::{aggregate_and_finish, dim_needed_columns, join_order};
use crate::ops::{BoxedOp, HashJoin, Project, SeqScan};
use cvr_data::gen::SsbTables;
use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_data::schema::{ColumnDef, Dim, TableSchema};
use cvr_data::table::{ColumnData, TableData};
use cvr_data::value::DataType;
use cvr_storage::heap::HeapFile;
use cvr_storage::io::IoSession;

/// Key for a dimension column table.
type DimCol = (Dim, &'static str);

/// The VP design: one `(pos, value)` heap per column.
pub struct VpDb {
    tables: Arc<SsbTables>,
    fact_cols: HashMap<&'static str, HeapFile>,
    dim_cols: HashMap<DimCol, HeapFile>,
}

/// Build a two-column `(pos, value)` table for one source column.
fn column_table(name: &'static str, data: &ColumnData) -> HeapFile {
    let n = data.len();
    let schema = TableSchema {
        name: "vp",
        columns: vec![
            ColumnDef { name: "pos", dtype: DataType::Int },
            ColumnDef { name, dtype: data.dtype() },
        ],
    };
    let pos = ColumnData::Int((0..n as i64).collect());
    HeapFile::build(&TableData::new(schema, vec![pos, data.clone()]))
}

impl VpDb {
    /// Vertically partition every table.
    pub fn build(tables: Arc<SsbTables>) -> VpDb {
        let mut fact_cols = HashMap::new();
        for def in &tables.schema.lineorder.columns {
            fact_cols.insert(def.name, column_table(def.name, tables.lineorder.column(def.name)));
        }
        let mut dim_cols = HashMap::new();
        for &d in &Dim::ALL {
            let table = tables.dim(d);
            for def in &tables.schema.dim(d).columns {
                dim_cols.insert((d, def.name), column_table(def.name, table.column(def.name)));
            }
        }
        VpDb { tables, fact_cols, dim_cols }
    }

    /// Bytes of one fact column table (Section 6.2 size accounting).
    pub fn fact_column_bytes(&self, column: &str) -> u64 {
        self.fact_cols[column].bytes()
    }

    /// Total bytes of all fact column tables.
    pub fn fact_bytes(&self) -> u64 {
        self.fact_cols.values().map(HeapFile::bytes).sum()
    }

    /// Scan one fact column table → tuples `(pos, col)`.
    fn fact_col_scan<'a>(&'a self, column: &'static str, io: &'a IoSession) -> BoxedOp<'a> {
        let heap = &self.fact_cols[column];
        Box::new(SeqScan::new(heap, &["pos", column], &["pos", column], io))
    }

    /// Filtered dimension sub-plan producing `[key, groupcols...]`.
    ///
    /// Dimension columns are joined back together on their `pos` column —
    /// the same tuple-reconstruction cost the fact table pays, just at
    /// dimension scale.
    fn dim_plan<'a>(&'a self, q: &SsbQuery, dim: Dim, io: &'a IoSession) -> BoxedOp<'a> {
        let needed = dim_needed_columns(q, dim);
        let preds = q.dim_predicates_on(dim);
        // Start from the first predicate column (filter early), else the key.
        let first: &'static str = preds.first().map(|p| p.column).unwrap_or(needed[0]);
        let heap = &self.dim_cols[&(dim, first)];
        let mut plan: BoxedOp<'a> = {
            let mut scan = SeqScan::new(heap, &["pos", first], &["pos", first], io);
            for p in &preds {
                if p.column == first {
                    scan = scan.with_predicate(&["pos", first], p.column, p.pred.clone());
                }
            }
            Box::new(scan)
        };
        // Remaining predicate columns.
        for p in &preds {
            if p.column == first {
                continue;
            }
            let heap = &self.dim_cols[&(dim, p.column)];
            let scan = SeqScan::new(heap, &["pos", p.column], &["pos", p.column], io)
                .with_predicate(&["pos", p.column], p.column, p.pred.clone());
            plan = Box::new(HashJoin::new(plan, Box::new(scan), "pos", "pos", false));
        }
        // Needed output columns not yet present.
        for &col in &needed {
            if plan.schema().try_idx(col).is_some() {
                continue;
            }
            let heap = &self.dim_cols[&(dim, col)];
            let scan = SeqScan::new(heap, &["pos", col], &["pos", col], io);
            plan = Box::new(HashJoin::new(plan, Box::new(scan), "pos", "pos", false));
        }
        Box::new(Project::new(plan, &needed))
    }

    /// Execute `q`.
    pub fn execute(&self, q: &SsbQuery, io: &IoSession) -> QueryOutput {
        // Branches: per restricted dim, FK column ⋈ filtered dimension; per
        // fact predicate, a filtered column scan.
        let order = join_order(&self.tables, q);
        let mut pipeline: Option<BoxedOp<'_>> = None;
        let mut joined_dims: Vec<Dim> = Vec::new();
        for &dim in &order {
            if q.dim_predicates_on(dim).is_empty() {
                continue; // group-only dims handled after intersection
            }
            let fk_scan = self.fact_col_scan(dim.fact_fk_column(), io);
            let branch: BoxedOp<'_> = Box::new(HashJoin::new(
                fk_scan,
                self.dim_plan(q, dim, io),
                dim.fact_fk_column(),
                dim.key_column(),
                false,
            ));
            pipeline = Some(match pipeline {
                None => branch,
                // Intersect branches on fact position.
                Some(p) => Box::new(HashJoin::new(p, branch, "pos", "pos", false)),
            });
            joined_dims.push(dim);
        }
        // Fact measure predicates (flight 1): filtered column scans.
        for p in &q.fact_predicates {
            let heap = &self.fact_cols[p.column];
            let scan: BoxedOp<'_> = Box::new(
                SeqScan::new(heap, &["pos", p.column], &["pos", p.column], io).with_predicate(
                    &["pos", p.column],
                    p.column,
                    p.pred.clone(),
                ),
            );
            pipeline = Some(match pipeline {
                None => scan,
                Some(pl) => Box::new(HashJoin::new(pl, scan, "pos", "pos", false)),
            });
        }
        let mut pipeline = pipeline.expect("every SSBM query restricts something");
        // Group-only dimensions: FK column joined by pos, then the dim.
        for &dim in &order {
            if joined_dims.contains(&dim) {
                continue;
            }
            let fk_scan = self.fact_col_scan(dim.fact_fk_column(), io);
            pipeline = Box::new(HashJoin::new(pipeline, fk_scan, "pos", "pos", false));
            pipeline = Box::new(HashJoin::new(
                pipeline,
                self.dim_plan(q, dim, io),
                dim.fact_fk_column(),
                dim.key_column(),
                false,
            ));
        }
        // Measure columns not yet in the pipeline.
        for col in q.aggregate.fact_columns() {
            if pipeline.schema().try_idx(col).is_some() {
                continue;
            }
            let scan = self.fact_col_scan(col, io);
            pipeline = Box::new(HashJoin::new(pipeline, scan, "pos", "pos", false));
        }
        aggregate_and_finish(q, pipeline)
    }
}
