//! The five row-store physical designs of Section 4 / Figure 6.
//!
//! | Code  | Design                     | Type            |
//! |-------|----------------------------|-----------------|
//! | T     | traditional                | [`TraditionalDb`] (`execute`) |
//! | T(B)  | traditional, bitmap-biased | [`TraditionalDb`] (`execute_bitmap`) |
//! | MV    | materialized views         | [`MvDb`] |
//! | VP    | vertical partitioning      | [`VpDb`] |
//! | AI    | index-only ("all indexes") | [`AiDb`] |
//!
//! [`RowDesign`] + [`RowDb`] give the benchmark harness a uniform way to
//! build and run any of them.

pub mod ai;
pub mod common;
pub mod mv;
pub mod traditional;
pub mod vp;
pub mod vp_super;

pub use ai::{AiColumns, AiDb};
pub use mv::MvDb;
pub use traditional::{TraditionalDb, TraditionalOptions};
pub use vp::VpDb;
pub use vp_super::SuperVpDb;

use cvr_data::gen::SsbTables;
use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_storage::io::IoSession;
use std::sync::Arc;

/// The five design codes used in Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowDesign {
    /// `T` — traditional row tables, orderdate-partitioned.
    Traditional,
    /// `T(B)` — traditional with plans biased to bitmap access paths.
    TraditionalBitmap,
    /// `MV` — per-flight materialized views.
    MaterializedViews,
    /// `VP` — full vertical partitioning.
    VerticalPartitioning,
    /// `AI` — index-only plans.
    IndexOnly,
    /// `VP(S)` — vertical partitioning over super-tuple (packed, headerless)
    /// column files: the Section 7 row-store prescription. Not part of
    /// Figure 6 (hence absent from [`RowDesign::ALL`]), but part of the
    /// physical-design space the cost-based planner searches.
    SuperVp,
}

impl RowDesign {
    /// All designs, in Figure 6 column order.
    pub const ALL: [RowDesign; 5] = [
        RowDesign::Traditional,
        RowDesign::TraditionalBitmap,
        RowDesign::MaterializedViews,
        RowDesign::VerticalPartitioning,
        RowDesign::IndexOnly,
    ];

    /// The full searchable design space: Figure 6 plus the super-tuple VP
    /// extension. This is what the planner enumerates.
    pub const EXTENDED: [RowDesign; 6] = [
        RowDesign::Traditional,
        RowDesign::TraditionalBitmap,
        RowDesign::MaterializedViews,
        RowDesign::VerticalPartitioning,
        RowDesign::IndexOnly,
        RowDesign::SuperVp,
    ];

    /// The label used in Figure 6 (and `VP(S)` for the extension).
    pub fn label(self) -> &'static str {
        match self {
            RowDesign::Traditional => "T",
            RowDesign::TraditionalBitmap => "T(B)",
            RowDesign::MaterializedViews => "MV",
            RowDesign::VerticalPartitioning => "VP",
            RowDesign::IndexOnly => "AI",
            RowDesign::SuperVp => "VP(S)",
        }
    }
}

/// A built design, ready to execute queries.
pub enum RowDb {
    /// Traditional (serves both `T` and, when built with bitmap indexes,
    /// `T(B)`).
    Traditional(TraditionalDb),
    /// Bitmap-biased traditional.
    TraditionalBitmap(TraditionalDb),
    /// Materialized views.
    Mv(MvDb),
    /// Vertical partitioning.
    Vp(VpDb),
    /// Index-only.
    Ai(AiDb),
    /// Super-tuple vertical partitioning.
    SuperVp(SuperVpDb),
}

impl RowDb {
    /// Build `design` over `tables`.
    pub fn build(tables: Arc<SsbTables>, design: RowDesign) -> RowDb {
        match design {
            RowDesign::Traditional => RowDb::Traditional(TraditionalDb::build(
                tables,
                TraditionalOptions { partitioned: true, bitmap_indexes: false, use_bloom: true },
            )),
            RowDesign::TraditionalBitmap => RowDb::TraditionalBitmap(TraditionalDb::build(
                tables,
                TraditionalOptions { partitioned: true, bitmap_indexes: true, use_bloom: true },
            )),
            RowDesign::MaterializedViews => RowDb::Mv(MvDb::build(tables)),
            RowDesign::VerticalPartitioning => RowDb::Vp(VpDb::build(tables)),
            RowDesign::IndexOnly => RowDb::Ai(AiDb::build(tables, AiColumns::QueryNeeded)),
            RowDesign::SuperVp => RowDb::SuperVp(SuperVpDb::build(tables)),
        }
    }

    /// The design this database was built as.
    pub fn design(&self) -> RowDesign {
        match self {
            RowDb::Traditional(_) => RowDesign::Traditional,
            RowDb::TraditionalBitmap(_) => RowDesign::TraditionalBitmap,
            RowDb::Mv(_) => RowDesign::MaterializedViews,
            RowDb::Vp(_) => RowDesign::VerticalPartitioning,
            RowDb::Ai(_) => RowDesign::IndexOnly,
            RowDb::SuperVp(_) => RowDesign::SuperVp,
        }
    }

    /// Execute one benchmark query.
    pub fn execute(&self, q: &SsbQuery, io: &IoSession) -> QueryOutput {
        match self {
            RowDb::Traditional(db) => db.execute(q, io),
            RowDb::TraditionalBitmap(db) => db.execute_bitmap(q, io),
            RowDb::Mv(db) => db.execute(q, io),
            RowDb::Vp(db) => db.execute(q, io),
            RowDb::Ai(db) => db.execute(q, io),
            RowDb::SuperVp(db) => db.execute(q, io),
        }
    }

    /// Execute a *planner-chosen* plan: this design plus an explicit fact-
    /// predicate evaluation order (see `SsbQuery::with_fact_order`).
    ///
    /// Like the column engine's `execute_planned`, this is exactly
    /// "permute, then [`RowDb::execute`]", so a planned execution is
    /// byte-identical to running the hand-permuted query directly.
    pub fn execute_planned(
        &self,
        q: &SsbQuery,
        fact_order: &[usize],
        io: &IoSession,
    ) -> QueryOutput {
        self.execute(&q.with_fact_order(fact_order), io)
    }
}
