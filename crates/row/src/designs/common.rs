//! Shared planning helpers for the row-store designs.

use crate::ops::{drain, BoxedOp, HashAgg};
use cvr_data::gen::SsbTables;
use cvr_data::queries::{Pred, SsbQuery};
use cvr_data::result::QueryOutput;
use cvr_data::schema::Dim;
use cvr_data::table::ColumnData;

/// Fraction of dimension rows matching the query's predicates on `dim`
/// (an "optimizer statistic": computed from catalog data, charging no I/O).
pub fn dim_selectivity(tables: &SsbTables, q: &SsbQuery, dim: Dim) -> f64 {
    let preds = q.dim_predicates_on(dim);
    if preds.is_empty() {
        return 1.0;
    }
    let table = tables.dim(dim);
    let n = table.num_rows();
    if n == 0 {
        return 1.0;
    }
    let matches =
        (0..n).filter(|&i| preds.iter().all(|p| p.pred.matches(&table.value(i, p.column)))).count();
    matches as f64 / n as f64
}

/// Row indices of `dim` satisfying the query's predicates on it.
pub fn dim_matching_rows(tables: &SsbTables, q: &SsbQuery, dim: Dim) -> Vec<u32> {
    let preds = q.dim_predicates_on(dim);
    let table = tables.dim(dim);
    (0..table.num_rows() as u32)
        .filter(|&i| preds.iter().all(|p| p.pred.matches(&table.value(i as usize, p.column))))
        .collect()
}

/// Dimension keys satisfying the query's predicates on `dim`.
pub fn dim_matching_keys(tables: &SsbTables, q: &SsbQuery, dim: Dim) -> Vec<i64> {
    let table = tables.dim(dim);
    let keys = table.column(dim.key_column()).ints();
    dim_matching_rows(tables, q, dim).into_iter().map(|r| keys[r as usize]).collect()
}

/// The `orderdate`-partition years a query's date predicates allow, or
/// `None` when the query does not restrict the DATE dimension (scan all
/// partitions). Derived from the DATE dimension like a partition-pruning
/// optimizer would from its catalog.
pub fn qualifying_years(tables: &SsbTables, q: &SsbQuery) -> Option<Vec<i64>> {
    if q.dim_predicates_on(Dim::Date).is_empty() {
        return None;
    }
    let years = tables.date.column("d_year").ints();
    let mut out: Vec<i64> =
        dim_matching_rows(tables, q, Dim::Date).iter().map(|&r| years[r as usize]).collect();
    out.sort_unstable();
    out.dedup();
    Some(out)
}

/// Group-by column names of `q`, in declaration order (e.g. `d_year`).
pub fn group_col_names(q: &SsbQuery) -> Vec<&'static str> {
    q.group_by.iter().map(|g| g.column).collect()
}

/// Columns the plan must carry for dimension `dim`: its key plus any
/// group-by attributes the query takes from it.
pub fn dim_needed_columns(q: &SsbQuery, dim: Dim) -> Vec<&'static str> {
    let mut cols = vec![dim.key_column()];
    for g in &q.group_by {
        if g.dim == dim && !cols.contains(&g.column) {
            cols.push(g.column);
        }
    }
    cols
}

/// Dimensions the plan must join, most selective restriction first,
/// unrestricted (group-by-only) dimensions last.
pub fn join_order(tables: &SsbTables, q: &SsbQuery) -> Vec<Dim> {
    let mut dims: Vec<(Dim, f64)> =
        q.touched_dims().into_iter().map(|d| (d, dim_selectivity(tables, q, d))).collect();
    dims.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    dims.into_iter().map(|(d, _)| d).collect()
}

/// Build the aggregate term closure for `q` against `schema` (fact measure
/// columns must be present under their `lo_*` names).
pub fn agg_term<'a>(
    q: &SsbQuery,
    schema: &crate::tuple::OpSchema,
) -> impl Fn(&crate::tuple::Tuple) -> i64 + 'a {
    let agg = q.aggregate;
    let idx: Vec<usize> = agg.fact_columns().iter().map(|c| schema.idx(c)).collect();
    move |t| {
        let inputs: Vec<i64> = idx.iter().map(|&i| t[i].as_int()).collect();
        agg.term(&inputs)
    }
}

/// Cap a plan with grouped aggregation and normalize into a [`QueryOutput`].
pub fn aggregate_and_finish<'a>(q: &SsbQuery, child: BoxedOp<'a>) -> QueryOutput {
    let groups = group_col_names(q);
    let term = agg_term(q, child.schema());
    let agg = HashAgg::new(child, &groups, term);
    finish_from_agg(q, Box::new(agg))
}

/// Drain an aggregation operator (group cols ++ agg) into a [`QueryOutput`].
pub fn finish_from_agg<'a>(q: &SsbQuery, agg: BoxedOp<'a>) -> QueryOutput {
    let rows = drain(agg);
    if rows.is_empty() && q.group_by.is_empty() {
        // Scalar aggregate over zero rows: canonicalize as 0.
        return QueryOutput::scalar(0);
    }
    QueryOutput::new(
        rows.into_iter()
            .map(|mut t| {
                let sum = t.pop().expect("agg column").as_int();
                (t, sum)
            })
            .collect(),
    )
}

/// True when `pred` over the sorted `domain` selects a contiguous slice of
/// it (drives key-range vs per-key index access).
pub fn selects_contiguous(domain: &[i64], pred: &Pred) -> bool {
    let mut started = false;
    let mut ended = false;
    for &v in domain {
        let m = pred.matches_int(v);
        if m && ended {
            return false;
        }
        if m {
            started = true;
        } else if started {
            ended = true;
        }
    }
    true
}

/// Extract the integer column `name` from `data` (helper for builders).
pub fn int_col<'a>(data: &'a cvr_data::table::TableData, name: &str) -> &'a [i64] {
    match data.column(name) {
        ColumnData::Int(v) => v,
        ColumnData::Str(_) => panic!("{name} is not an int column"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::query;

    fn tables() -> SsbTables {
        SsbConfig { sf: 0.002, seed: 71 }.generate()
    }

    #[test]
    fn selectivity_bounds_and_ordering() {
        let t = tables();
        let q31 = query(3, 1); // c_region (1/5), s_region (1/5), d_year 92-97 (~6/7)
        let c = dim_selectivity(&t, &q31, Dim::Customer);
        let d = dim_selectivity(&t, &q31, Dim::Date);
        assert!(c > 0.05 && c < 0.5, "region selectivity ~0.2, got {c}");
        assert!(d > 0.7, "6-of-7-years selectivity, got {d}");
        // Unrestricted dimension has selectivity 1.
        assert_eq!(dim_selectivity(&t, &q31, Dim::Part), 1.0);
    }

    #[test]
    fn matching_keys_satisfy_predicates() {
        let t = tables();
        let q = query(2, 1); // p_category = MFGR#12
        let keys = dim_matching_keys(&t, &q, Dim::Part);
        assert!(!keys.is_empty());
        let cats = t.part.column("p_category").strs();
        let pkeys = t.part.column("p_partkey").ints();
        for k in keys {
            let row = pkeys.iter().position(|&p| p == k).unwrap();
            assert_eq!(cats[row], "MFGR#12");
        }
    }

    #[test]
    fn qualifying_years_prune_correctly() {
        let t = tables();
        assert_eq!(qualifying_years(&t, &query(1, 1)), Some(vec![1993]));
        assert_eq!(qualifying_years(&t, &query(1, 2)), Some(vec![1994]));
        let y31 = qualifying_years(&t, &query(3, 1)).unwrap();
        assert_eq!(y31, vec![1992, 1993, 1994, 1995, 1996, 1997]);
        // Q2.1 has no date restriction.
        assert_eq!(qualifying_years(&t, &query(2, 1)), None);
    }

    #[test]
    fn join_order_puts_most_selective_first() {
        let t = tables();
        let q = query(4, 3); // s_nation (1/25) tighter than c_region (1/5)
        let order = join_order(&t, &q);
        let s_pos = order.iter().position(|&d| d == Dim::Supplier).unwrap();
        let c_pos = order.iter().position(|&d| d == Dim::Customer).unwrap();
        assert!(s_pos < c_pos, "supplier restriction is more selective");
        // Unrestricted group-by dims come last.
        assert_eq!(order.len(), q.touched_dims().len());
    }

    #[test]
    fn dim_needed_columns_key_plus_groups() {
        let q = query(3, 1);
        assert_eq!(dim_needed_columns(&q, Dim::Customer), vec!["c_custkey", "c_nation"]);
        assert_eq!(dim_needed_columns(&q, Dim::Date), vec!["d_datekey", "d_year"]);
    }

    #[test]
    fn selects_contiguous_detection() {
        use cvr_data::queries::Pred;
        use cvr_data::value::Value;
        let domain = [1i64, 2, 3, 4, 5, 6];
        assert!(selects_contiguous(&domain, &Pred::Between(Value::Int(2), Value::Int(4))));
        assert!(selects_contiguous(&domain, &Pred::Eq(Value::Int(6))));
        assert!(!selects_contiguous(&domain, &Pred::InSet(vec![Value::Int(1), Value::Int(5)])));
        // Empty selection counts as contiguous.
        assert!(selects_contiguous(&domain, &Pred::Eq(Value::Int(99))));
    }

    #[test]
    fn group_names_match_query_order() {
        let q = query(4, 2);
        assert_eq!(group_col_names(&q), vec!["d_year", "s_nation", "p_category"]);
    }
}
