//! The "traditional" physical design (Figure 6 `T` and `T(B)`).
//!
//! One heap file per logical table; LINEORDER optionally partitioned
//! horizontally by `orderdate` year (the configuration the paper's DBA used
//! for the base case). The bitmap-biased variant additionally builds
//! B+Trees over the fact table's predicate-able columns and forces plans
//! through bitmap-index access paths — Section 6.2 reports this usually
//! hurts, and the mechanism (index-leaf reads plus random heap fetches
//! versus one sequential scan) is reproduced here.

use std::collections::HashMap;
use std::sync::Arc;

use crate::designs::common::{
    agg_term, aggregate_and_finish, dim_matching_keys, dim_needed_columns, dim_selectivity,
    finish_from_agg, group_col_names, int_col, join_order, qualifying_years,
};
use crate::ops::{
    range_scan_pred, BitmapFetch, BoxedOp, ChainOp, Filter, HashAgg, HashJoin, SeqScan,
};
use cvr_data::gen::SsbTables;
use cvr_data::queries::SsbQuery;
use cvr_data::result::QueryOutput;
use cvr_data::schema::Dim;
use cvr_data::value::Value;
use cvr_index::bitmap::RidBitmap;
use cvr_index::btree::BPlusTree;
use cvr_storage::heap::{HeapFile, PartitionedHeap};
use cvr_storage::io::IoSession;

/// Build options for [`TraditionalDb`].
#[derive(Debug, Clone, Copy)]
pub struct TraditionalOptions {
    /// Partition LINEORDER by `orderdate` year (the paper's base case).
    pub partitioned: bool,
    /// Build fact-column B+Trees enabling the bitmap-biased plans (`T(B)`).
    pub bitmap_indexes: bool,
    /// Let hash joins use Bloom-filter pre-filtering (System X star joins).
    pub use_bloom: bool,
}

impl Default for TraditionalOptions {
    fn default() -> Self {
        TraditionalOptions { partitioned: true, bitmap_indexes: false, use_bloom: true }
    }
}

/// Fact columns that bitmap plans may index. Public so cost models can
/// tell which fact predicates an index range scan can absorb — the rest
/// filter tuples only after the heap fetch.
pub const BITMAP_COLUMNS: [&str; 6] =
    ["lo_orderdate", "lo_custkey", "lo_suppkey", "lo_partkey", "lo_discount", "lo_quantity"];

/// The traditional design: heap per table (+ optional extras).
pub struct TraditionalDb {
    tables: Arc<SsbTables>,
    /// LINEORDER partitioned by year; `None` when built unpartitioned.
    fact_partitioned: Option<PartitionedHeap>,
    /// Whole LINEORDER heap; present when unpartitioned or bitmap-biased
    /// (bitmap rids address the unpartitioned heap).
    fact_whole: Option<HeapFile>,
    dims: HashMap<Dim, HeapFile>,
    fact_indexes: HashMap<&'static str, BPlusTree>,
    opts: TraditionalOptions,
}

impl TraditionalDb {
    /// Build the design over `tables`.
    pub fn build(tables: Arc<SsbTables>, opts: TraditionalOptions) -> TraditionalDb {
        let years = int_col(&tables.lineorder, "lo_orderdate")
            .iter()
            .map(|d| d / 10_000)
            .collect::<Vec<i64>>();
        let fact_partitioned =
            opts.partitioned.then(|| PartitionedHeap::build(&tables.lineorder, |i| years[i]));
        let fact_whole =
            (!opts.partitioned || opts.bitmap_indexes).then(|| HeapFile::build(&tables.lineorder));
        let dims = Dim::ALL.iter().map(|&d| (d, HeapFile::build(tables.dim(d)))).collect();
        let mut fact_indexes = HashMap::new();
        if opts.bitmap_indexes {
            for col in BITMAP_COLUMNS {
                let values = int_col(&tables.lineorder, col);
                let entries: Vec<(cvr_index::btree::Key, u32)> = values
                    .iter()
                    .enumerate()
                    .map(|(rid, &v)| (vec![Value::Int(v)], rid as u32))
                    .collect();
                fact_indexes.insert(col, BPlusTree::bulk_load(entries));
            }
        }
        TraditionalDb { tables, fact_partitioned, fact_whole, dims, fact_indexes, opts }
    }

    /// Total fact bytes on disk (for the Section 6.2 size table).
    pub fn fact_bytes(&self) -> u64 {
        self.fact_partitioned
            .as_ref()
            .map(PartitionedHeap::bytes)
            .or_else(|| self.fact_whole.as_ref().map(HeapFile::bytes))
            .unwrap_or(0)
    }

    /// Heap of dimension `d`.
    pub fn dim_heap(&self, d: Dim) -> &HeapFile {
        &self.dims[&d]
    }

    /// Source tables (for planners needing catalog statistics).
    pub fn tables(&self) -> &SsbTables {
        &self.tables
    }

    /// Build the fact-scan operator: partition-pruned chain or whole heap,
    /// with flight-1 predicates pushed into the scan.
    fn fact_scan<'a>(&'a self, q: &SsbQuery, io: &'a IoSession) -> BoxedOp<'a> {
        let fact_cols: Vec<&str> =
            self.tables.schema.lineorder.columns.iter().map(|c| c.name).collect();
        let needed = q.fact_columns();
        let make = |heap: &'a HeapFile| -> BoxedOp<'a> {
            let mut scan = SeqScan::new(heap, &fact_cols, &needed, io);
            for p in &q.fact_predicates {
                scan = scan.with_predicate(&fact_cols, p.column, p.pred.clone());
            }
            Box::new(scan)
        };
        match &self.fact_partitioned {
            Some(parts) => {
                let heaps = match qualifying_years(&self.tables, q) {
                    Some(years) => parts.select(move |y| years.contains(&y)),
                    None => parts.all(),
                };
                Box::new(ChainOp::new(heaps.into_iter().map(make).collect()))
            }
            None => make(self.fact_whole.as_ref().expect("unpartitioned heap")),
        }
    }

    /// A filtered dimension-table operator: sequential scan of the dim heap
    /// with predicates pushed down, projecting key + group columns.
    fn dim_build<'a>(&'a self, q: &SsbQuery, dim: Dim, io: &'a IoSession) -> BoxedOp<'a> {
        let heap = &self.dims[&dim];
        let schema = self.tables.schema.dim(dim);
        let cols: Vec<&str> = schema.columns.iter().map(|c| c.name).collect();
        let needed = dim_needed_columns(q, dim);
        let mut scan = SeqScan::new(heap, &cols, &needed, io);
        for p in q.dim_predicates_on(dim) {
            scan = scan.with_predicate(&cols, p.column, p.pred.clone());
        }
        Box::new(scan)
    }

    /// Execute `q` with the standard plan: pruned fact scan, hash joins in
    /// selectivity order, grouped aggregation.
    pub fn execute(&self, q: &SsbQuery, io: &IoSession) -> QueryOutput {
        let mut pipeline = self.fact_scan(q, io);
        for dim in join_order(&self.tables, q) {
            let build = self.dim_build(q, dim, io);
            let restricted = !q.dim_predicates_on(dim).is_empty();
            pipeline = Box::new(HashJoin::new(
                pipeline,
                build,
                dim.fact_fk_column(),
                dim.key_column(),
                self.opts.use_bloom && restricted,
            ));
        }
        aggregate_and_finish(q, pipeline)
    }

    /// Execute `q` with the bitmap-biased plan (`T(B)`).
    ///
    /// Every applicable predicate becomes a rid bitmap via B+Tree access —
    /// fact measure predicates through range scans, the DATE restriction
    /// through an `orderdate` key range, other dimension restrictions
    /// through per-key FK probes (skipped above a key-count threshold, as
    /// even a biased optimizer would) — then the bitmaps are ANDed and the
    /// surviving tuples fetched from the heap.
    pub fn execute_bitmap(&self, q: &SsbQuery, io: &IoSession) -> QueryOutput {
        assert!(self.opts.bitmap_indexes, "TraditionalDb was built without bitmap indexes");
        let heap = self.fact_whole.as_ref().expect("bitmap plans use the whole heap");
        let n = heap.num_rows() as u32;
        let mut bitmap = RidBitmap::full(n);
        let mut applied_dims: Vec<Dim> = Vec::new();
        let mut applied_fact: Vec<&str> = Vec::new();

        // Fact measure predicates via index range scans.
        for p in &q.fact_predicates {
            if let Some(tree) = self.fact_indexes.get(p.column) {
                let rids = range_scan_pred(tree, &p.pred, io);
                bitmap.and_with(&RidBitmap::from_rids(n, rids.into_iter().map(|(_, r)| r)));
                applied_fact.push(p.column);
            }
        }
        // Dimension restrictions via FK-index probes.
        for dim in q.restricted_dims() {
            let Some(tree) = self.fact_indexes.get(dim.fact_fk_column()) else { continue };
            let mut keys = dim_matching_keys(&self.tables, q, dim);
            if keys.is_empty() {
                bitmap = RidBitmap::new(n);
                applied_dims.push(dim);
                continue;
            }
            keys.sort_unstable();
            // Optimizer sanity threshold: probing tens of thousands of keys
            // would be slower than any alternative.
            if keys.len() > 2_000 {
                continue;
            }
            let contiguous = {
                let domain = int_col(self.tables.dim(dim), dim.key_column());
                let set: std::collections::HashSet<i64> = keys.iter().copied().collect();
                is_contiguous_in(domain, &set)
            };
            let mut dim_bitmap = RidBitmap::new(n);
            if contiguous {
                let lo = vec![Value::Int(*keys.first().unwrap())];
                let hi = vec![Value::Int(*keys.last().unwrap())];
                for (_, rid) in tree.range_scan(Some(&lo), Some(&hi), io) {
                    dim_bitmap.set(rid);
                }
            } else {
                for k in &keys {
                    for rid in tree.lookup(&vec![Value::Int(*k)], io) {
                        dim_bitmap.set(rid);
                    }
                }
            }
            bitmap.and_with(&dim_bitmap);
            applied_dims.push(dim);
        }

        // Fetch surviving tuples and finish with the standard joins.
        let fact_cols: Vec<&str> =
            self.tables.schema.lineorder.columns.iter().map(|c| c.name).collect();
        let needed = q.fact_columns();
        let mut pipeline: BoxedOp<'_> =
            Box::new(BitmapFetch::new(heap, &fact_cols, &needed, bitmap.to_vec(), io));
        for p in &q.fact_predicates {
            if !applied_fact.contains(&p.column) {
                pipeline = Box::new(Filter::new(pipeline, p.column, p.pred.clone()));
            }
        }
        for dim in join_order(&self.tables, q) {
            // Dimensions already applied through bitmaps still need joining
            // when they contribute group-by columns.
            let contributes_groups = q.group_by.iter().any(|g| g.dim == dim);
            let restricted = !q.dim_predicates_on(dim).is_empty();
            if applied_dims.contains(&dim) && !contributes_groups {
                continue;
            }
            let build = self.dim_build(q, dim, io);
            pipeline = Box::new(HashJoin::new(
                pipeline,
                build,
                dim.fact_fk_column(),
                dim.key_column(),
                self.opts.use_bloom && restricted,
            ));
        }
        let groups = group_col_names(q);
        let term = agg_term(q, pipeline.schema());
        let agg = HashAgg::new(pipeline, &groups, term);
        finish_from_agg(q, Box::new(agg))
    }

    /// Per-dimension restriction selectivity (exposed for plan debugging).
    pub fn selectivity(&self, q: &SsbQuery, dim: Dim) -> f64 {
        dim_selectivity(&self.tables, q, dim)
    }
}

/// True when `set` covers a contiguous slice of sorted `domain`.
fn is_contiguous_in(domain: &[i64], set: &std::collections::HashSet<i64>) -> bool {
    let mut started = false;
    let mut ended = false;
    for v in domain {
        let m = set.contains(v);
        if m && ended {
            return false;
        }
        if m {
            started = true;
        } else if started {
            ended = true;
        }
    }
    true
}
