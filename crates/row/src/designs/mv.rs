//! The materialized-view design (Figure 6 `MV`).
//!
//! One view per query flight, holding *exactly* the fact columns that
//! flight's queries need — "the optimal view for a given flight has only the
//! columns needed to answer queries in that flight. We do not pre-join
//! columns from different tables in these views" (Section 4). Views are
//! partitioned by `orderdate` year like the traditional design ("System X is
//! able to partition each materialized view optimally").
//!
//! Plans are the traditional plans with the scan retargeted at the view, so
//! the design's entire advantage is I/O: a flight-1 view row is ~24 bytes
//! against ~90 for the full 17-column tuple.

use std::collections::HashMap;
use std::sync::Arc;

use crate::designs::common::{
    aggregate_and_finish, dim_needed_columns, int_col, join_order, qualifying_years,
};
use crate::ops::{BoxedOp, ChainOp, HashJoin, SeqScan};
use cvr_data::gen::SsbTables;
use cvr_data::queries::{all_queries, SsbQuery};
use cvr_data::result::QueryOutput;
use cvr_data::schema::Dim;
use cvr_storage::heap::{HeapFile, PartitionedHeap};
use cvr_storage::io::IoSession;

/// One per-flight materialized view.
pub struct MaterializedView {
    /// Fact columns stored in the view.
    pub columns: Vec<&'static str>,
    /// The view's storage, partitioned by `orderdate` year.
    pub heap: PartitionedHeap,
}

/// The MV design: per-flight views plus the dimension heaps.
pub struct MvDb {
    tables: Arc<SsbTables>,
    /// Views indexed by flight number − 1.
    views: Vec<MaterializedView>,
    dims: HashMap<Dim, HeapFile>,
    use_bloom: bool,
}

impl MvDb {
    /// Build the per-flight views.
    pub fn build(tables: Arc<SsbTables>) -> MvDb {
        let years: Vec<i64> =
            int_col(&tables.lineorder, "lo_orderdate").iter().map(|d| d / 10_000).collect();
        let mut views = Vec::new();
        for flight in 1..=4u8 {
            // Union of the flight's queries' fact columns.
            let mut columns: Vec<&'static str> = Vec::new();
            for q in all_queries().iter().filter(|q| q.id.flight == flight) {
                for c in q.fact_columns() {
                    if !columns.contains(&c) {
                        columns.push(c);
                    }
                }
            }
            let projected = tables.lineorder.project(&columns);
            let heap = PartitionedHeap::build(&projected, |i| years[i]);
            views.push(MaterializedView { columns, heap });
        }
        let dims = Dim::ALL.iter().map(|&d| (d, HeapFile::build(tables.dim(d)))).collect();
        MvDb { tables, views, dims, use_bloom: true }
    }

    /// The view serving `flight` (1..=4).
    pub fn view(&self, flight: u8) -> &MaterializedView {
        &self.views[(flight - 1) as usize]
    }

    /// Total bytes across all views (Section 6.2 accounting).
    pub fn bytes(&self) -> u64 {
        self.views.iter().map(|v| v.heap.bytes()).sum()
    }

    /// Execute `q` against its flight's view.
    pub fn execute(&self, q: &SsbQuery, io: &IoSession) -> QueryOutput {
        let view = self.view(q.id.flight);
        let needed = q.fact_columns();
        fn make<'a>(
            heap: &'a HeapFile,
            view_cols: &[&'static str],
            needed: &[&'static str],
            q: &SsbQuery,
            io: &'a IoSession,
        ) -> BoxedOp<'a> {
            let mut scan = SeqScan::new(heap, view_cols, needed, io);
            for p in &q.fact_predicates {
                scan = scan.with_predicate(view_cols, p.column, p.pred.clone());
            }
            Box::new(scan)
        }
        let heaps = match qualifying_years(&self.tables, q) {
            Some(years) => view.heap.select(move |y| years.contains(&y)),
            None => view.heap.all(),
        };
        let mut pipeline: BoxedOp<'_> = Box::new(ChainOp::new(
            heaps.into_iter().map(|h| make(h, &view.columns, &needed, q, io)).collect(),
        ));
        for dim in join_order(&self.tables, q) {
            let restricted = !q.dim_predicates_on(dim).is_empty();
            let heap = &self.dims[&dim];
            let schema = self.tables.schema.dim(dim);
            let cols: Vec<&str> = schema.columns.iter().map(|c| c.name).collect();
            let needed_dim = dim_needed_columns(q, dim);
            let mut scan = SeqScan::new(heap, &cols, &needed_dim, io);
            for p in q.dim_predicates_on(dim) {
                scan = scan.with_predicate(&cols, p.column, p.pred.clone());
            }
            pipeline = Box::new(HashJoin::new(
                pipeline,
                Box::new(scan),
                dim.fact_fk_column(),
                dim.key_column(),
                self.use_bloom && restricted,
            ));
        }
        aggregate_and_finish(q, pipeline)
    }
}
