//! The index-only design (Figure 6 `AI`, "all indexes").
//!
//! Base relations stay row-oriented but every column gets an unclustered
//! B+Tree, and plans read `(value, record-id)` pairs from index leaves
//! without ever touching the heap (Section 4, "Index-only plans").
//! Dimension-table indexes are composite — `(column, primary key)` — the
//! paper's optimization for reaching join keys without heap access.
//!
//! The plans reproduce the pathology Section 6.2.1 dissects for Q2.1: the
//! needed fact columns are materialized by *full index scans* and glued
//! together with hash joins **on record-id before any dimension filtering**,
//! because "System X is unable to defer these joins until later in the plan
//! ... it cannot retain record-ids from the fact table after it has joined
//! with another table". Those giant rid joins are what make AI the slowest
//! design in Figure 6.

use std::collections::HashMap;
use std::sync::Arc;

use crate::designs::common::{aggregate_and_finish, join_order};
use crate::ops::{BoxedOp, HashJoin, IndexFullScanOp, IndexRangeScanOp, Project};
use cvr_data::gen::SsbTables;
use cvr_data::queries::{all_queries, SsbQuery};
use cvr_data::result::QueryOutput;
use cvr_data::schema::Dim;
use cvr_index::btree::{BPlusTree, Key};
use cvr_storage::io::IoSession;

/// Which columns to index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AiColumns {
    /// Only columns some benchmark query touches (fast builds).
    QueryNeeded,
    /// Every column of every table (the letter of the design).
    All,
}

/// The index-only design.
pub struct AiDb {
    tables: Arc<SsbTables>,
    /// Single-column indexes over fact columns: key = `(value)`.
    fact_idx: HashMap<&'static str, BPlusTree>,
    /// Composite indexes over dimension columns: key = `(value, pk)`.
    dim_idx: HashMap<(Dim, &'static str), BPlusTree>,
}

impl AiDb {
    /// Build indexes per `cols` policy.
    pub fn build(tables: Arc<SsbTables>, cols: AiColumns) -> AiDb {
        let (fact_cols, dim_cols) = match cols {
            AiColumns::All => {
                let f: Vec<&'static str> =
                    tables.schema.lineorder.columns.iter().map(|c| c.name).collect();
                let mut d: Vec<(Dim, &'static str)> = Vec::new();
                for &dim in &Dim::ALL {
                    for c in &tables.schema.dim(dim).columns {
                        d.push((dim, c.name));
                    }
                }
                (f, d)
            }
            AiColumns::QueryNeeded => needed_columns(),
        };
        let mut fact_idx = HashMap::new();
        for col in fact_cols {
            let data = tables.lineorder.column(col);
            let entries: Vec<(Key, u32)> =
                (0..data.len()).map(|rid| (vec![data.value(rid)], rid as u32)).collect();
            fact_idx.insert(col, BPlusTree::bulk_load(entries));
        }
        let mut dim_idx = HashMap::new();
        for (dim, col) in dim_cols {
            let table = tables.dim(dim);
            let keys = table.column(dim.key_column());
            let data = table.column(col);
            let entries: Vec<(Key, u32)> = (0..data.len())
                .map(|rid| (vec![data.value(rid), keys.value(rid)], rid as u32))
                .collect();
            dim_idx.insert((dim, col), BPlusTree::bulk_load(entries));
        }
        AiDb { tables, fact_idx, dim_idx }
    }

    /// Total index bytes (one page per node).
    pub fn bytes(&self) -> u64 {
        self.fact_idx.values().map(BPlusTree::bytes).sum::<u64>()
            + self.dim_idx.values().map(BPlusTree::bytes).sum::<u64>()
    }

    /// Execute `q` with an index-only plan.
    pub fn execute(&self, q: &SsbQuery, io: &IoSession) -> QueryOutput {
        // 1. Materialize every needed fact column from its index; range-scan
        //    the ones that carry predicates, full-scan the rest; hash join
        //    them together on rid *first* (the System X limitation).
        let fact_columns = q.fact_columns();
        let mut pipeline: Option<BoxedOp<'_>> = None;
        for (i, &col) in fact_columns.iter().enumerate() {
            let tree = &self.fact_idx[col];
            let rid_name = format!("rid#{i}");
            let pred = q.fact_predicates.iter().find(|p| p.column == col);
            let scan: BoxedOp<'_> = match pred {
                Some(p) => Box::new(IndexRangeScanOp::new(tree, &[col], &rid_name, &p.pred, io)),
                None => Box::new(IndexFullScanOp::new(tree, &[col], &rid_name, io)),
            };
            pipeline = Some(match pipeline {
                None => scan,
                Some(pl) => Box::new(HashJoin::new(pl, scan, "rid#0", &rid_name, false)),
            });
        }
        let mut pipeline = pipeline.expect("queries read fact columns");

        // 2. Dimension joins: composite (col, pk) indexes provide predicate
        //    evaluation and group columns without heap access; pieces of the
        //    same dimension are rid-joined, then the result joins the fact
        //    stream on fk = pk.
        for dim in join_order(&self.tables, q) {
            let build = self.dim_side(q, dim, io);
            pipeline = Box::new(HashJoin::new(
                pipeline,
                build,
                dim.fact_fk_column(),
                dim.key_column(),
                false,
            ));
        }
        aggregate_and_finish(q, pipeline)
    }

    /// Dimension-side sub-plan producing `[key, groupcols...]` from indexes
    /// only.
    ///
    /// Each index piece contributes `(column, pk, rid)`; pieces are
    /// rid-joined. The *first* piece's pk field carries the canonical key
    /// column name so the fact join can reference it directly.
    fn dim_side<'a>(&'a self, q: &SsbQuery, dim: Dim, io: &'a IoSession) -> BoxedOp<'a> {
        let preds = q.dim_predicates_on(dim);
        let group_cols: Vec<&'static str> =
            q.group_by.iter().filter(|g| g.dim == dim).map(|g| g.column).collect();

        let mut plan: Option<BoxedOp<'a>> = None;
        let mut covered: Vec<&'static str> = Vec::new();
        let mut piece = 0usize;
        let mut first_rid = String::new();
        // Predicate pieces first (range scans), then uncovered group pieces
        // (full scans).
        let pred_cols: Vec<&'static str> = preds.iter().map(|p| p.column).collect();
        let full_cols: Vec<&'static str> =
            group_cols.iter().filter(|c| !pred_cols.contains(c)).copied().collect();
        for &col in pred_cols.iter().chain(full_cols.iter()) {
            if covered.contains(&col) {
                continue;
            }
            let tree = &self.dim_idx[&(dim, col)];
            let pk_name =
                if piece == 0 { dim.key_column().to_string() } else { format!("pk#{piece}") };
            let rid_name = format!("drid#{piece}");
            let pred = preds.iter().find(|p| p.column == col);
            let scan: BoxedOp<'a> = match pred {
                Some(p) => Box::new(IndexRangeScanOp::new(
                    tree,
                    &[col, pk_name.as_str()],
                    &rid_name,
                    &p.pred,
                    io,
                )),
                None => {
                    Box::new(IndexFullScanOp::new(tree, &[col, pk_name.as_str()], &rid_name, io))
                }
            };
            plan = Some(match plan {
                None => {
                    first_rid = rid_name;
                    scan
                }
                Some(pl) => Box::new(HashJoin::new(pl, scan, &first_rid, &rid_name, false)),
            });
            covered.push(col);
            piece += 1;
        }
        let plan = plan.expect("dimension is touched, so it has at least one piece");
        // Expose the canonical key column plus group columns.
        let mut out_cols: Vec<&str> = vec![dim.key_column()];
        out_cols.extend(group_cols.iter().copied());
        Box::new(Project::new(plan, &out_cols))
    }
}

/// Columns any benchmark query touches (build-time savings).
fn needed_columns() -> (Vec<&'static str>, Vec<(Dim, &'static str)>) {
    let mut fact: Vec<&'static str> = Vec::new();
    let mut dims: Vec<(Dim, &'static str)> = Vec::new();
    for q in all_queries() {
        for c in q.fact_columns() {
            if !fact.contains(&c) {
                fact.push(c);
            }
        }
        for p in &q.dim_predicates {
            if !dims.contains(&(p.dim, p.column)) {
                dims.push((p.dim, p.column));
            }
        }
        for g in &q.group_by {
            if !dims.contains(&(g.dim, g.column)) {
                dims.push((g.dim, g.column));
            }
        }
    }
    (fact, dims)
}
