//! Volcano-style physical operators.
//!
//! Every operator implements [`RowOp`]: a virtual `next()` returning one
//! [`Tuple`] at a time ("Volcano-style per-tuple iterators" \[11\], as the
//! paper puts it). Plans are trees of boxed operators built by the design
//! planners in [`crate::designs`].
//!
//! I/O discipline: leaf operators ([`SeqScan`], [`IndexFullScanOp`],
//! [`IndexRangeScanOp`], [`BitmapFetch`]) charge page reads to the
//! [`IoSession`] they hold; interior operators are pure CPU.

use crate::tuple::{OpSchema, Tuple};
use cvr_data::queries::Pred;
use cvr_data::value::Value;
use cvr_index::bloom::BloomFilter;
use cvr_index::btree::{BPlusTree, Key};
use cvr_index::hashidx::IntHashMap;
use cvr_storage::heap::HeapFile;
use cvr_storage::io::IoSession;

/// The Volcano iterator interface.
pub trait RowOp {
    /// Output schema.
    fn schema(&self) -> &OpSchema;
    /// Produce the next tuple, or `None` at end-of-stream.
    fn next(&mut self) -> Option<Tuple>;
}

/// Boxed operator with the plan lifetime.
pub type BoxedOp<'a> = Box<dyn RowOp + 'a>;

/// Drain an operator into a vector (plan roots, build sides).
pub fn drain(mut op: BoxedOp<'_>) -> Vec<Tuple> {
    let mut out = Vec::new();
    while let Some(t) = op.next() {
        out.push(t);
    }
    out
}

// ---------------------------------------------------------------- SeqScan

/// Sequential heap scan projecting a subset of columns.
pub struct SeqScan<'a> {
    heap: &'a HeapFile,
    io: &'a IoSession,
    /// (source field index) per output column.
    projection: Vec<usize>,
    schema: OpSchema,
    cursor: u32,
    /// Optional residual predicates evaluated on the *source* field index
    /// during the scan (cheaper than a separate Filter op, the way a real
    /// scan node evaluates pushed-down predicates).
    residual: Vec<(usize, Pred)>,
    /// Scratch field-offset buffer: the record layout is walked once per
    /// tuple, then fields are decoded at known offsets.
    offsets: Vec<usize>,
}

impl<'a> SeqScan<'a> {
    /// Scan `heap`, producing `columns` (by heap schema name).
    pub fn new(
        heap: &'a HeapFile,
        table_cols: &[&str],
        columns: &[&str],
        io: &'a IoSession,
    ) -> SeqScan<'a> {
        let projection = columns
            .iter()
            .map(|c| {
                table_cols
                    .iter()
                    .position(|t| t == c)
                    .unwrap_or_else(|| panic!("heap has no column {c}"))
            })
            .collect();
        SeqScan {
            heap,
            io,
            projection,
            schema: OpSchema::new(columns.iter().copied()),
            cursor: 0,
            residual: Vec::new(),
            offsets: Vec::new(),
        }
    }

    /// Attach a pushed-down predicate on `column` (source-schema name).
    pub fn with_predicate(mut self, table_cols: &[&str], column: &str, pred: Pred) -> Self {
        let idx = table_cols.iter().position(|t| *t == column).expect("predicate column");
        self.residual.push((idx, pred));
        self
    }
}

impl RowOp for SeqScan<'_> {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        let types = self.heap.types();
        'rows: while (self.cursor as usize) < self.heap.num_rows() {
            let rid = self.cursor;
            self.cursor += 1;
            // `fetch` charges the containing page; consecutive rids hit the
            // buffer pool, so a full scan pays one read per page.
            let rec = self.heap.fetch(rid, self.io);
            rec.field_offsets(types, &mut self.offsets);
            for (idx, pred) in &self.residual {
                if !pred.matches(&rec.value_at(types[*idx], self.offsets[*idx])) {
                    continue 'rows;
                }
            }
            return Some(
                self.projection.iter().map(|&i| rec.value_at(types[i], self.offsets[i])).collect(),
            );
        }
        None
    }
}

// ------------------------------------------------------------- ChainOp

/// Concatenate several operators with identical schemas (partition scans).
pub struct ChainOp<'a> {
    parts: Vec<BoxedOp<'a>>,
    current: usize,
    schema: OpSchema,
}

impl<'a> ChainOp<'a> {
    /// Chain `parts` (must be non-empty and schema-identical).
    pub fn new(parts: Vec<BoxedOp<'a>>) -> ChainOp<'a> {
        assert!(!parts.is_empty(), "empty chain");
        let schema = parts[0].schema().clone();
        for p in &parts {
            assert_eq!(p.schema(), &schema, "chained operators must agree on schema");
        }
        ChainOp { parts, current: 0, schema }
    }
}

impl RowOp for ChainOp<'_> {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        while self.current < self.parts.len() {
            if let Some(t) = self.parts[self.current].next() {
                return Some(t);
            }
            self.current += 1;
        }
        None
    }
}

// ------------------------------------------------------------- Values

/// Emit pre-materialized tuples (filtered dimension tables, test inputs).
pub struct ValuesOp {
    rows: std::vec::IntoIter<Tuple>,
    schema: OpSchema,
}

impl ValuesOp {
    /// Wrap `rows` under `schema`.
    pub fn new(schema: OpSchema, rows: Vec<Tuple>) -> ValuesOp {
        ValuesOp { rows: rows.into_iter(), schema }
    }
}

impl RowOp for ValuesOp {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        self.rows.next()
    }
}

// ------------------------------------------------------------- Filter

/// Tuple-at-a-time predicate evaluation.
pub struct Filter<'a> {
    child: BoxedOp<'a>,
    col: usize,
    pred: Pred,
}

impl<'a> Filter<'a> {
    /// Filter `child` on `column` (child-schema name).
    pub fn new(child: BoxedOp<'a>, column: &str, pred: Pred) -> Filter<'a> {
        let col = child.schema().idx(column);
        Filter { child, col, pred }
    }
}

impl RowOp for Filter<'_> {
    fn schema(&self) -> &OpSchema {
        self.child.schema()
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            let t = self.child.next()?;
            if self.pred.matches(&t[self.col]) {
                return Some(t);
            }
        }
    }
}

// ------------------------------------------------------------- Project

/// Column subset / reorder.
pub struct Project<'a> {
    child: BoxedOp<'a>,
    indices: Vec<usize>,
    schema: OpSchema,
}

impl<'a> Project<'a> {
    /// Keep `columns` of `child`, in order.
    pub fn new(child: BoxedOp<'a>, columns: &[&str]) -> Project<'a> {
        let indices = columns.iter().map(|c| child.schema().idx(c)).collect();
        Project { child, indices, schema: OpSchema::new(columns.iter().copied()) }
    }
}

impl RowOp for Project<'_> {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        let t = self.child.next()?;
        Some(self.indices.iter().map(|&i| t[i].clone()).collect())
    }
}

// ------------------------------------------------------------- HashJoin

/// In-memory equi-join on integer keys: build side hashed, probe side
/// streamed. Integer keys cover every join in the study (dimension keys,
/// record-ids, positions).
pub struct HashJoin<'a> {
    probe: BoxedOp<'a>,
    probe_key: usize,
    /// key -> head index into `build_rows` chains.
    table: IntHashMap,
    build_rows: Vec<Tuple>,
    chain: Vec<u32>,
    bloom: Option<BloomFilter>,
    schema: OpSchema,
    /// Pending matches for the current probe tuple.
    pending: Option<(Tuple, u32)>,
}

/// `NONE` sentinel for chain termination.
const CHAIN_END: u32 = u32::MAX;

impl<'a> HashJoin<'a> {
    /// Join `probe` ⋈ `build` on `probe.probe_col == build.build_col`.
    /// Output schema: probe columns ++ build columns. When `use_bloom` a
    /// Bloom filter over build keys pre-filters probes (the System X star
    /// join feature).
    pub fn new(
        probe: BoxedOp<'a>,
        build: BoxedOp<'a>,
        probe_col: &str,
        build_col: &str,
        use_bloom: bool,
    ) -> HashJoin<'a> {
        let probe_key = probe.schema().idx(probe_col);
        let build_key = build.schema().idx(build_col);
        let schema = probe.schema().concat(build.schema());
        let build_rows = drain(build);
        let mut table = IntHashMap::with_capacity(build_rows.len());
        let mut chain = vec![CHAIN_END; build_rows.len()];
        let mut bloom = use_bloom.then(|| BloomFilter::new(build_rows.len().max(16), 0.01));
        for (i, row) in build_rows.iter().enumerate() {
            let k = row[build_key].as_int();
            if let Some(b) = bloom.as_mut() {
                b.insert(k);
            }
            // Prepend to the chain for key k.
            match table.get(k) {
                Some(head) => {
                    chain[i] = head;
                    // IntHashMap keeps first payload; emulate update via
                    // remove-free chaining: store newest head by reinserting
                    // under a fresh map. IntHashMap lacks update, so chain the
                    // other way: append at tail.
                    // (see set_head below)
                    table_set(&mut table, k, i as u32);
                }
                None => table.insert(k, i as u32),
            }
        }
        HashJoin { probe, probe_key, table, build_rows, chain, bloom, schema, pending: None }
    }
}

/// Replace the payload for `k` (IntHashMap::insert keeps the first payload,
/// so emulate an upsert by rebuilding the probe slot).
fn table_set(table: &mut IntHashMap, k: i64, v: u32) {
    table.upsert(k, v);
}

impl RowOp for HashJoin<'_> {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some((probe_tuple, head)) = self.pending.take() {
                let row = &self.build_rows[head as usize];
                let mut out = probe_tuple.clone();
                out.extend(row.iter().cloned());
                let next = self.chain[head as usize];
                if next != CHAIN_END {
                    self.pending = Some((probe_tuple, next));
                }
                return Some(out);
            }
            let t = self.probe.next()?;
            let k = t[self.probe_key].as_int();
            if let Some(b) = &self.bloom {
                if !b.may_contain(k) {
                    continue;
                }
            }
            if let Some(head) = self.table.get(k) {
                self.pending = Some((t, head));
            }
        }
    }
}

// ------------------------------------------------------------- MergeJoin

/// Merge join over inputs already sorted on their integer join keys.
/// (The paper notes System X could not exploit this for tuple
/// reconstruction; it is here for the ablation that shows what a "fast merge
/// join of sorted data" buys.)
pub struct MergeJoin {
    left: std::iter::Peekable<std::vec::IntoIter<Tuple>>,
    right: Vec<Tuple>,
    right_pos: usize,
    left_key: usize,
    right_key: usize,
    schema: OpSchema,
    pending: Vec<Tuple>,
}

impl MergeJoin {
    /// Join sorted `left` ⋈ sorted `right` on integer key equality.
    pub fn new(
        left: BoxedOp<'_>,
        right: BoxedOp<'_>,
        left_col: &str,
        right_col: &str,
    ) -> MergeJoin {
        let left_key = left.schema().idx(left_col);
        let right_key = right.schema().idx(right_col);
        let schema = left.schema().concat(right.schema());
        MergeJoin {
            left_key,
            right_key,
            schema,
            left: drain(left).into_iter().peekable(),
            right: drain(right),
            right_pos: 0,
            pending: Vec::new(),
        }
    }
}

impl RowOp for MergeJoin {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(t) = self.pending.pop() {
                return Some(t);
            }
            let l = self.left.next()?;
            let lk = l[self.left_key].as_int();
            while self.right_pos < self.right.len()
                && self.right[self.right_pos][self.right_key].as_int() < lk
            {
                self.right_pos += 1;
            }
            let mut i = self.right_pos;
            while i < self.right.len() && self.right[i][self.right_key].as_int() == lk {
                let mut out = l.clone();
                out.extend(self.right[i].iter().cloned());
                self.pending.push(out);
                i += 1;
            }
        }
    }
}

// ------------------------------------------------------------- Sort

/// Full sort on a prefix of columns (ascending).
pub struct SortOp<'a> {
    child: Option<BoxedOp<'a>>,
    sorted: std::vec::IntoIter<Tuple>,
    key_cols: Vec<usize>,
    schema: OpSchema,
    started: bool,
}

impl<'a> SortOp<'a> {
    /// Sort `child` by `columns` ascending.
    pub fn new(child: BoxedOp<'a>, columns: &[&str]) -> SortOp<'a> {
        let key_cols = columns.iter().map(|c| child.schema().idx(c)).collect();
        let schema = child.schema().clone();
        SortOp {
            child: Some(child),
            sorted: Vec::new().into_iter(),
            key_cols,
            schema,
            started: false,
        }
    }
}

impl RowOp for SortOp<'_> {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        if !self.started {
            self.started = true;
            let mut rows = drain(self.child.take().expect("sort child"));
            let keys = self.key_cols.clone();
            rows.sort_by(|a, b| {
                for &k in &keys {
                    match a[k].cmp(&b[k]) {
                        std::cmp::Ordering::Equal => continue,
                        o => return o,
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.sorted = rows.into_iter();
        }
        self.sorted.next()
    }
}

// ------------------------------------------------------------- HashAgg

/// Grouped integer-sum aggregation; the only aggregate shape SSBM needs.
pub struct HashAgg<'a> {
    child: Option<BoxedOp<'a>>,
    group_cols: Vec<usize>,
    /// Per-tuple aggregate term.
    term: Box<dyn Fn(&Tuple) -> i64 + 'a>,
    out: std::vec::IntoIter<Tuple>,
    schema: OpSchema,
    started: bool,
}

impl<'a> HashAgg<'a> {
    /// Group `child` by `group_columns`, summing `term(tuple)`. The output
    /// schema is `group_columns ++ ["agg"]`.
    pub fn new(
        child: BoxedOp<'a>,
        group_columns: &[&str],
        term: impl Fn(&Tuple) -> i64 + 'a,
    ) -> HashAgg<'a> {
        let group_cols: Vec<usize> = group_columns.iter().map(|c| child.schema().idx(c)).collect();
        let mut cols: Vec<String> = group_columns.iter().map(|c| c.to_string()).collect();
        cols.push("agg".to_string());
        HashAgg {
            child: Some(child),
            group_cols,
            term: Box::new(term),
            out: Vec::new().into_iter(),
            schema: OpSchema::new(cols),
            started: false,
        }
    }

    /// Convenience: sum of one integer column.
    pub fn sum_of(child: BoxedOp<'a>, group_columns: &[&str], value_column: &str) -> HashAgg<'a> {
        let idx = child.schema().idx(value_column);
        HashAgg::new(child, group_columns, move |t| t[idx].as_int())
    }
}

impl RowOp for HashAgg<'_> {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        if !self.started {
            self.started = true;
            let mut child = self.child.take().expect("agg child");
            let mut groups: std::collections::HashMap<Vec<Value>, i64> =
                std::collections::HashMap::new();
            while let Some(t) = child.next() {
                let key: Vec<Value> = self.group_cols.iter().map(|&i| t[i].clone()).collect();
                *groups.entry(key).or_insert(0) += (self.term)(&t);
            }
            let mut rows: Vec<Tuple> = groups
                .into_iter()
                .map(|(mut k, v)| {
                    k.push(Value::Int(v));
                    k
                })
                .collect();
            rows.sort();
            self.out = rows.into_iter();
        }
        self.out.next()
    }
}

// ----------------------------------------------------- Index scan ops

/// Full scan of a B+Tree: yields every `(key parts..., rid)` in key order.
pub struct IndexFullScanOp<'a> {
    iter: Box<dyn Iterator<Item = (&'a Key, u32)> + 'a>,
    schema: OpSchema,
}

impl<'a> IndexFullScanOp<'a> {
    /// Scan `tree`, naming its key parts `key_cols` and the rid column
    /// `rid_col`.
    pub fn new(
        tree: &'a BPlusTree,
        key_cols: &[&str],
        rid_col: &str,
        io: &'a IoSession,
    ) -> IndexFullScanOp<'a> {
        let mut cols: Vec<String> = key_cols.iter().map(|c| c.to_string()).collect();
        cols.push(rid_col.to_string());
        IndexFullScanOp { iter: Box::new(tree.full_scan(io)), schema: OpSchema::new(cols) }
    }
}

impl RowOp for IndexFullScanOp<'_> {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        let (key, rid) = self.iter.next()?;
        let mut t: Tuple = key.clone();
        t.push(Value::Int(rid as i64));
        Some(t)
    }
}

/// Range scan of a B+Tree under a [`Pred`] on the first key part.
pub struct IndexRangeScanOp {
    rows: std::vec::IntoIter<Tuple>,
    schema: OpSchema,
}

impl IndexRangeScanOp {
    /// Scan entries of `tree` whose leading key part satisfies `pred`.
    pub fn new(
        tree: &BPlusTree,
        key_cols: &[&str],
        rid_col: &str,
        pred: &Pred,
        io: &IoSession,
    ) -> IndexRangeScanOp {
        let mut cols: Vec<String> = key_cols.iter().map(|c| c.to_string()).collect();
        cols.push(rid_col.to_string());
        let entries = range_scan_pred(tree, pred, io);
        let rows = entries
            .into_iter()
            .map(|(key, rid)| {
                let mut t: Tuple = key;
                t.push(Value::Int(rid as i64));
                t
            })
            .collect::<Vec<_>>();
        IndexRangeScanOp { rows: rows.into_iter(), schema: OpSchema::new(cols) }
    }
}

/// Evaluate `pred` through index range scans (one per `InSet` member).
pub fn range_scan_pred(tree: &BPlusTree, pred: &Pred, io: &IoSession) -> Vec<(Key, u32)> {
    match pred {
        Pred::Eq(v) => tree.range_scan(Some(&vec![v.clone()]), Some(&vec![v.clone()]), io),
        Pred::Between(lo, hi) => {
            tree.range_scan(Some(&vec![lo.clone()]), Some(&vec![hi.clone()]), io)
        }
        Pred::Lt(v) => {
            let mut entries = tree.range_scan(None, Some(&vec![v.clone()]), io);
            entries.retain(|(k, _)| k[0] < *v);
            entries
        }
        Pred::InSet(vs) => {
            let mut out = Vec::new();
            for v in vs {
                out.extend(tree.range_scan(Some(&vec![v.clone()]), Some(&vec![v.clone()]), io));
            }
            out
        }
    }
}

impl RowOp for IndexRangeScanOp {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        self.rows.next()
    }
}

// ----------------------------------------------------- Bitmap fetch

/// Fetch heap tuples for a rid set (ascending), charging the distinct pages
/// touched — the heap side of a bitmap index plan.
pub struct BitmapFetch<'a> {
    heap: &'a HeapFile,
    io: &'a IoSession,
    rids: std::vec::IntoIter<u32>,
    projection: Vec<usize>,
    schema: OpSchema,
    offsets: Vec<usize>,
}

impl<'a> BitmapFetch<'a> {
    /// Fetch `rids` (must be ascending) from `heap`, projecting `columns`.
    pub fn new(
        heap: &'a HeapFile,
        table_cols: &[&str],
        columns: &[&str],
        rids: Vec<u32>,
        io: &'a IoSession,
    ) -> BitmapFetch<'a> {
        let projection = columns
            .iter()
            .map(|c| table_cols.iter().position(|t| t == c).expect("projection column"))
            .collect();
        BitmapFetch {
            heap,
            io,
            rids: rids.into_iter(),
            projection,
            schema: OpSchema::new(columns.iter().copied()),
            offsets: Vec::new(),
        }
    }
}

impl RowOp for BitmapFetch<'_> {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        let rid = self.rids.next()?;
        let rec = self.heap.fetch(rid, self.io);
        let types = self.heap.types();
        rec.field_offsets(types, &mut self.offsets);
        Some(self.projection.iter().map(|&i| rec.value_at(types[i], self.offsets[i])).collect())
    }
}
