//! End-to-end query benchmarks: one representative query per system class,
//! at a small scale factor suitable for statistically-stable Criterion runs.
//! (The `figure5..8` binaries regenerate the full paper tables; these
//! benches are for regression-tracking the engines themselves.)

use criterion::{criterion_group, criterion_main, Criterion};
use cvr_core::{ColumnEngine, DenormDb, DenormVariant, EngineConfig};
use cvr_data::gen::SsbConfig;
use cvr_data::queries::query;
use cvr_row::designs::{RowDb, RowDesign};
use cvr_storage::io::IoSession;
use std::hint::black_box;
use std::sync::Arc;

fn bench_q21_systems(c: &mut Criterion) {
    let tables = Arc::new(SsbConfig { sf: 0.005, seed: 1 }.generate());
    let q = query(2, 1);
    let io = IoSession::unmetered();

    let mut g = c.benchmark_group("q21_by_system");
    g.sample_size(20);

    let row_t = RowDb::build(tables.clone(), RowDesign::Traditional);
    g.bench_function("row_traditional", |b| b.iter(|| black_box(row_t.execute(&q, &io))));

    let row_mv = RowDb::build(tables.clone(), RowDesign::MaterializedViews);
    g.bench_function("row_mv", |b| b.iter(|| black_box(row_mv.execute(&q, &io))));

    let col = ColumnEngine::new(tables.clone());
    g.bench_function("column_full_tICL", |b| {
        b.iter(|| black_box(col.execute(&q, EngineConfig::FULL, &io)))
    });
    g.bench_function("column_stripped_Ticl", |b| {
        b.iter(|| black_box(col.execute(&q, EngineConfig::STRIPPED, &io)))
    });

    let denorm = DenormDb::build(tables.clone(), DenormVariant::MaxCompression);
    g.bench_function("denorm_max_c", |b| {
        b.iter(|| black_box(denorm.execute(&q, EngineConfig::FULL, &io)))
    });
    g.finish();
}

fn bench_flight1_compression(c: &mut Criterion) {
    // Flight 1 is where RLE on the sorted columns shines.
    let tables = Arc::new(SsbConfig { sf: 0.005, seed: 1 }.generate());
    let q = query(1, 1);
    let io = IoSession::unmetered();
    let col = ColumnEngine::new(tables);
    let mut g = c.benchmark_group("q11_compression");
    g.sample_size(20);
    g.bench_function("compressed_tICL", |b| {
        b.iter(|| black_box(col.execute(&q, EngineConfig::parse("tICL"), &io)))
    });
    g.bench_function("uncompressed_tIcL", |b| {
        b.iter(|| black_box(col.execute(&q, EngineConfig::parse("tIcL"), &io)))
    });
    g.finish();
}

fn bench_invisible_vs_lm(c: &mut Criterion) {
    let tables = Arc::new(SsbConfig { sf: 0.005, seed: 1 }.generate());
    let q = query(3, 1);
    let io = IoSession::unmetered();
    let col = ColumnEngine::new(tables);
    let mut g = c.benchmark_group("q31_join_strategy");
    g.sample_size(20);
    g.bench_function("invisible_join", |b| {
        b.iter(|| black_box(col.execute(&q, EngineConfig::parse("tICL"), &io)))
    });
    g.bench_function("late_materialized_join", |b| {
        b.iter(|| black_box(col.execute(&q, EngineConfig::parse("tiCL"), &io)))
    });
    g.finish();
}

criterion_group!(benches, bench_q21_systems, bench_flight1_compression, bench_invisible_vs_lm);
criterion_main!(benches);
