//! Component microbenchmarks for the paper's execution techniques:
//! direct operation on RLE vs decode-then-scan, block vs tuple iteration,
//! between-predicate vs hash-set probes (the invisible join's two key-test
//! paths), position-list intersection across representations, and the
//! B+Tree/hash substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cvr_core::poslist::PosList;
use cvr_core::scan::scan_int_where;
use cvr_data::gen::rng::SplitMix64;
use cvr_index::bitmap::RidBitmap;
use cvr_index::btree::{ikey, BPlusTree};
use cvr_index::hashidx::IntHashSet;
use cvr_storage::column::StoredColumn;
use cvr_storage::encode::{Column, IntColumn};
use cvr_storage::io::IoSession;
use std::hint::black_box;

const N: usize = 1_000_000;

fn sorted_values() -> Vec<i64> {
    (0..N as i64).map(|i| i / 400).collect()
}

fn random_values() -> Vec<i64> {
    let mut rng = SplitMix64::new(7);
    (0..N).map(|_| rng.int_range(0, 30_000)).collect()
}

fn bench_rle_direct_vs_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rle_direct_ops");
    let rle = StoredColumn::new("c", Column::Int(IntColumn::rle(&sorted_values())));
    let plain = StoredColumn::new("c", Column::Int(IntColumn::plain_fixed(sorted_values())));
    let io = IoSession::unmetered();
    g.bench_function("predicate_on_runs", |b| {
        b.iter(|| black_box(scan_int_where(&rle, |v| (100..=200).contains(&v), true, &io)))
    });
    g.bench_function("predicate_after_decode", |b| {
        b.iter(|| {
            let decoded = rle.column.as_int().decode();
            let hits = decoded.iter().filter(|&&v| (100..=200).contains(&v)).count();
            black_box(hits)
        })
    });
    g.bench_function("predicate_on_plain", |b| {
        b.iter(|| black_box(scan_int_where(&plain, |v| (100..=200).contains(&v), true, &io)))
    });
    g.finish();
}

fn bench_block_vs_tuple(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_vs_tuple_scan");
    let col = StoredColumn::new("c", Column::Int(IntColumn::plain_fixed(random_values())));
    let io = IoSession::unmetered();
    g.bench_function("block_as_array", |b| {
        b.iter(|| black_box(scan_int_where(&col, |v| v < 3_000, true, &io)))
    });
    g.bench_function("tuple_get_next", |b| {
        b.iter(|| black_box(scan_int_where(&col, |v| v < 3_000, false, &io)))
    });
    g.finish();
}

fn bench_between_vs_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("between_vs_hash_probe");
    let fks = random_values();
    // Same selected key set both ways: keys 1000..=4000.
    let set = IntHashSet::from_keys(1000..=4000);
    g.bench_function("between_predicate", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &v in &fks {
                if (1000..=4000).contains(&v) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("hash_set_probe", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &v in &fks {
                if set.contains(v) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_poslist_intersect(c: &mut Criterion) {
    let mut g = c.benchmark_group("poslist_intersect");
    let n = N as u32;
    let range_a = PosList::Range { start: 100_000, end: 700_000, universe: n };
    let range_b = PosList::Range { start: 300_000, end: 900_000, universe: n };
    let bm_a = PosList::Bitmap(RidBitmap::from_rids(n, (0..n).filter(|p| p % 3 == 0)));
    let bm_b = PosList::Bitmap(RidBitmap::from_rids(n, (0..n).filter(|p| p % 5 == 0)));
    let ex_a = PosList::Explicit { positions: (0..n).step_by(101).collect(), universe: n };
    let ex_b = PosList::Explicit { positions: (0..n).step_by(103).collect(), universe: n };
    g.bench_function("range_range", |b| b.iter(|| black_box(range_a.intersect(&range_b))));
    g.bench_function("bitmap_bitmap", |b| b.iter(|| black_box(bm_a.intersect(&bm_b))));
    g.bench_function("explicit_explicit", |b| b.iter(|| black_box(ex_a.intersect(&ex_b))));
    g.bench_function("range_bitmap", |b| b.iter(|| black_box(range_a.intersect(&bm_a))));
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    let entries: Vec<_> = (0..200_000i64).map(|i| (ikey(i), i as u32)).collect();
    let tree = BPlusTree::bulk_load(entries.clone());
    let io = IoSession::unmetered();
    g.bench_function("bulk_load_200k", |b| {
        b.iter_batched(|| entries.clone(), BPlusTree::bulk_load, BatchSize::LargeInput)
    });
    g.bench_function("point_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % 200_000;
            black_box(tree.lookup(&ikey(k), &io))
        })
    });
    g.bench_function("range_scan_1k", |b| {
        b.iter(|| black_box(tree.range_scan(Some(&ikey(50_000)), Some(&ikey(51_000)), &io)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rle_direct_vs_decode,
    bench_block_vs_tuple,
    bench_between_vs_hash,
    bench_poslist_intersect,
    bench_btree
);
criterion_main!(benches);
