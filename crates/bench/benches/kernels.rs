//! Scan-kernel microbenchmarks: scalar block iteration vs word-parallel
//! kernels, per encoding × selectivity.
//!
//! "Scalar" is the one-value-at-a-time block loop (unpack/load, compare,
//! push) — what the block-iteration paths did before the kernel layer;
//! "word" is the SWAR mask kernel feeding the bulk accumulator path. The
//! `kernels` binary measures the same matrix outside criterion and emits
//! `BENCH_kernels.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use cvr_bench::kernel_bench::{codes, slice_word_positions, word_positions};
use cvr_core::kernels::{scalar, CmpOp};
use cvr_storage::packed::PackedInts;
use std::hint::black_box;

const N: u32 = 1 << 20;

/// One packed encoding at three selectivities, scalar vs word.
fn bench_packed(c: &mut Criterion, bits: u8) {
    let p = PackedInts::pack(bits, codes(N, (1u64 << bits) - 1));
    let max = p.max_code();
    for (label, hi) in [("sel1pct", max / 100), ("sel20pct", max / 5), ("sel90pct", max * 9 / 10)] {
        let op = CmpOp::Le(hi);
        let mut g = c.benchmark_group(format!("packed_w{bits}_{label}"));
        g.bench_function("scalar", |b| {
            b.iter(|| black_box(scalar::packed_cmp_positions(&p, 0, p.len(), op)))
        });
        g.bench_function("word", |b| b.iter(|| black_box(word_positions(&p, op))));
        g.finish();
    }
}

fn bench_packed_kernels(c: &mut Criterion) {
    // Quantity-like narrow codes and FK-like wider codes.
    bench_packed(c, 6);
    bench_packed(c, 17);
}

fn bench_dict_kernels(c: &mut Criterion) {
    // 25-entry dictionary (city-like), predicate selecting a contiguous
    // code range — the hierarchy-predicate fast path — vs the scalar
    // matches[] table lookup the dict path used before.
    let card = 25u64;
    let p = PackedInts::pack(5, codes(N, card - 1));
    for (label, lo, hi) in [("sel4pct", 3u64, 3u64), ("sel40pct", 5, 14)] {
        let matches: Vec<bool> = (0..card).map(|c| (lo..=hi).contains(&c)).collect();
        let mut g = c.benchmark_group(format!("dict_card25_{label}"));
        g.bench_function("scalar_table", |b| {
            b.iter(|| {
                black_box(scalar::packed_test_positions(&p, 0, p.len(), |c| matches[c as usize]))
            })
        });
        g.bench_function("word_range", |b| {
            b.iter(|| black_box(word_positions(&p, CmpOp::Range(lo, hi))))
        });
        g.finish();
    }
}

fn bench_plain_slice_kernels(c: &mut Criterion) {
    let values: Vec<i64> =
        (0..N as i64).map(|i| (i.wrapping_mul(2_654_435_761)) % 30_000).collect();
    for (label, hi) in [("sel1pct", 300i64), ("sel50pct", 15_000)] {
        let mut g = c.benchmark_group(format!("plain_i64_{label}"));
        g.bench_function("scalar", |b| {
            b.iter(|| black_box(scalar::slice_cmp_positions(&values, 0, 0, hi)))
        });
        g.bench_function("word", |b| b.iter(|| black_box(slice_word_positions(&values, 0, hi))));
        g.finish();
    }
}

criterion_group!(benches, bench_packed_kernels, bench_dict_kernels, bench_plain_slice_kernels);
criterion_main!(benches);
