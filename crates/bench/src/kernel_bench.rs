//! Shared fixtures for the scan-kernel benchmarks: the `kernels` binary
//! (which emits `BENCH_kernels.json`) and the `kernels` criterion bench
//! measure the same matrix, so they must generate the same inputs and
//! collect kernel output the same way — these helpers are that single
//! definition.

use cvr_core::kernels::{self, CmpOp};
use cvr_storage::packed::PackedInts;

/// Deterministic pseudo-random codes in `[0, max]`.
pub fn codes(n: u32, max: u64) -> Vec<u64> {
    (0..n as u64).map(|i| i.wrapping_mul(2_654_435_761) % (max + 1)).collect()
}

/// Run the packed compare kernel over all of `p` and collect the emitted
/// masks into positions (the morsel-sink shape).
pub fn word_positions(p: &PackedInts, op: CmpOp) -> Vec<u32> {
    let mut out = Vec::new();
    kernels::packed_cmp_masks(p, 0, p.len(), op, |base, m| push_mask(&mut out, base, m));
    out
}

/// Run the plain-slice compare kernel and collect positions.
pub fn slice_word_positions(values: &[i64], lo: i64, hi: i64) -> Vec<u32> {
    let mut out = Vec::new();
    kernels::slice_cmp_masks(values, 0, lo, hi, |base, m| push_mask(&mut out, base, m));
    out
}

/// Append the set bits of one selection mask as positions.
pub fn push_mask(out: &mut Vec<u32>, base: u32, mut mask: u64) {
    while mask != 0 {
        out.push(base + mask.trailing_zeros());
        mask &= mask - 1;
    }
}
