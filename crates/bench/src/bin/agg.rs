//! Aggregation-tail benchmark: the code-level aggregator (group-id
//! composition over dictionary/FoR codes, direct or `u64`-hash
//! accumulation, decode-once-per-group finish) vs the Value-keyed reference
//! grouper (per-row key vector allocation + clones + `Vec<Value>` hashing),
//! printed as a table and emitted as `BENCH_agg.json` — the file
//! `cvr_plan::CpuRates::from_agg_bench_json` recalibrates the planner's
//! aggregation cost term from.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin agg -- \
//!     [--sf F] [--runs R] [--queries N] [--n N] [--min-speedup X] [--out PATH]
//! ```
//!
//! Two cell families:
//!
//! * **Query cells** — phase-3-shaped inputs from the real sf-scaled store:
//!   sampled fact positions, FK-derived dimension positions, then each tail
//!   timed end to end (value: `extract_at` + key-clone grouper; code:
//!   `extract_codes_at` + id composition). Q2.1/Q3.1 run at three sampled
//!   selectivities; every other grouped paper query at one.
//! * **Synthetic cells** — pure accumulation across group-count regimes
//!   (single group, direct two/three-column radix, hash fallback).
//!
//! Before timing, every paper query plus `--queries` generated ones execute
//! through the full engine twice — code-level and `CVR_AGG=value` — and
//! must be byte-identical (outputs *and* IoStats) to each other and to the
//! reference evaluator. The binary exits non-zero when identity fails or
//! when the best flight-2/3 query-cell speedup falls below `--min-speedup`
//! (default 3).

use cvr_core::agg::{CodeGrouper, GroupLayout, Grouper};
use cvr_core::extract::{extract_at, extract_codes_at, gather_ints, CodeSpace};
use cvr_core::morsel::Parallelism;
use cvr_core::poslist::PosList;
use cvr_core::{CStoreDb, ColumnEngine, DenormDb, DenormVariant, EngineConfig};
use cvr_data::gen::SsbConfig;
use cvr_data::queries::{all_queries, SsbQuery};
use cvr_data::reference;
use cvr_data::schema::Dim;
use cvr_data::value::Value;
use cvr_data::workload::WorkloadConfig;
use cvr_index::hashidx::IntHashMap;
use cvr_storage::io::IoSession;
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    sf: f64,
    runs: usize,
    queries: usize,
    n: u32,
    min_speedup: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        sf: 0.02,
        runs: 5,
        queries: 30,
        n: 1 << 18,
        min_speedup: 3.0,
        out: "BENCH_agg.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).unwrap_or_else(|| panic!("missing value for {}", argv[*i - 1])).clone()
        };
        match argv[i].as_str() {
            "--sf" => args.sf = take(&mut i).parse().expect("--sf takes a float"),
            "--runs" => args.runs = take(&mut i).parse().expect("--runs takes an int"),
            "--queries" => args.queries = take(&mut i).parse().expect("--queries takes an int"),
            "--n" => args.n = take(&mut i).parse().expect("--n takes an int"),
            "--min-speedup" => {
                args.min_speedup = take(&mut i).parse().expect("--min-speedup takes a float")
            }
            "--out" => args.out = take(&mut i),
            "--help" | "-h" => {
                eprintln!(
                    "usage: agg [--sf F] [--runs R] [--queries N] [--n N] \
                     [--min-speedup X] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
        i += 1;
    }
    args
}

/// One measured cell: both tails over the same rows.
struct Cell {
    cell: String,
    rows: usize,
    groups: usize,
    value_ns_per_row: f64,
    code_ns_per_row: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.value_ns_per_row / self.code_ns_per_row.max(1e-12)
    }
}

/// Best-of-`runs` wall time of `f`, in ns per row.
fn time_per_row(rows: usize, runs: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let groups = f();
        let dt = t.elapsed().as_secs_f64();
        black_box(groups);
        best = best.min(dt);
    }
    best * 1e9 / rows.max(1) as f64
}

/// Run `f` under the `CVR_AGG=value` ablation, restoring the (cleared)
/// default afterwards. The binary clears any preset `CVR_AGG` at startup,
/// so outside this window the engine always takes the code-level path.
fn with_value_ablation<R>(f: impl FnOnce() -> R) -> R {
    std::env::set_var("CVR_AGG", "value");
    let r = f();
    std::env::remove_var("CVR_AGG");
    r
}

/// Byte-identity gate: every query through the full engine — and the paper
/// queries additionally through all three denormalized variants —
/// code-level vs the `CVR_AGG=value` ablation vs the reference evaluator.
fn verify_byte_identity(engine: &ColumnEngine, queries: &[SsbQuery]) -> usize {
    let tables = engine.db(EngineConfig::FULL).tables.clone();
    let mut ok = 0usize;
    for q in queries {
        let expected = reference::evaluate(&tables, q);
        let code_io = IoSession::unmetered();
        let code = engine.execute_with(q, EngineConfig::FULL, Parallelism::serial(), &code_io);
        let value_io = IoSession::unmetered();
        let value = with_value_ablation(|| {
            engine.execute_with(q, EngineConfig::FULL, Parallelism::serial(), &value_io)
        });
        assert_eq!(code, expected, "{}: code-level output diverges from reference", q.id);
        assert_eq!(code, value, "{}: code-level vs Value-keyed outputs differ", q.id);
        let (a, b) = (code_io.stats(), value_io.stats());
        assert_eq!(
            (a.bytes_read, a.pages_read, a.seeks),
            (b.bytes_read, b.pages_read, b.seeks),
            "{}: aggregation strategy must not move a single I/O charge",
            q.id
        );
        ok += 1;
    }
    // Denormalized tables only inline the columns the paper workload
    // touches, so only the paper queries run here.
    for variant in
        [DenormVariant::NoCompression, DenormVariant::IntCompression, DenormVariant::MaxCompression]
    {
        let db = DenormDb::build(tables.clone(), variant);
        for q in all_queries() {
            let expected = reference::evaluate(&tables, &q);
            let code_io = IoSession::unmetered();
            let code = db.execute(&q, EngineConfig::FULL, &code_io);
            let value_io = IoSession::unmetered();
            let value = with_value_ablation(|| db.execute(&q, EngineConfig::FULL, &value_io));
            assert_eq!(code, expected, "{} {}: diverges from reference", variant.label(), q.id);
            assert_eq!(code, value, "{} {}: code vs Value-keyed differ", variant.label(), q.id);
            let (a, b) = (code_io.stats(), value_io.stats());
            assert_eq!(
                (a.bytes_read, a.pages_read, a.seeks),
                (b.bytes_read, b.pages_read, b.seeks),
                "{} {}: ablation moved an I/O charge",
                variant.label(),
                q.id
            );
        }
    }
    ok
}

/// Phase-3-shaped inputs for one grouped query at one sampling stride:
/// sampled fact positions, FK-derived dimension positions per group column,
/// and the per-row aggregate terms (shared by both tails).
struct QueryInputs {
    /// Per group column: arbitrary-order dimension positions.
    dim_positions: Vec<Vec<u32>>,
    terms: Vec<i64>,
}

fn query_inputs(db: &CStoreDb, q: &SsbQuery, stride: usize, io: &IoSession) -> QueryInputs {
    let n = db.fact_rows() as u32;
    let positions: Vec<u32> = (0..n).step_by(stride.max(1)).collect();
    let pos = PosList::explicit(positions, n);
    let mut fk_cache: std::collections::HashMap<Dim, Vec<u32>> = std::collections::HashMap::new();
    let mut dim_positions = Vec::with_capacity(q.group_by.len());
    for g in &q.group_by {
        let dim = g.dim;
        let cached = fk_cache.entry(dim).or_insert_with(|| {
            let fks = gather_ints(db.fact.column(dim.fact_fk_column()), &pos, io);
            if db.dim(dim).dense_keys {
                fks.into_iter().map(|k| k as u32).collect()
            } else {
                let keys = db.dim(dim).store.column(dim.key_column()).column.as_int().decode();
                let map =
                    IntHashMap::from_pairs(keys.iter().enumerate().map(|(p, &k)| (k, p as u32)));
                fks.into_iter().map(|k| map.get(k).expect("FK joins dim")).collect()
            }
        });
        dim_positions.push(cached.clone());
    }
    let measures: Vec<Vec<i64>> = q
        .aggregate
        .fact_columns()
        .iter()
        .map(|c| gather_ints(db.fact.column(c), &pos, io))
        .collect();
    let rows = pos.count() as usize;
    let mut inputs = vec![0i64; measures.len()];
    let terms: Vec<i64> = (0..rows)
        .map(|i| {
            for (j, m) in measures.iter().enumerate() {
                inputs[j] = m[i];
            }
            q.aggregate.term(&inputs)
        })
        .collect();
    QueryInputs { dim_positions, terms }
}

/// Time both aggregation tails for one grouped query at one stride.
fn measure_query(
    db: &CStoreDb,
    q: &SsbQuery,
    stride: usize,
    runs: usize,
    io: &IoSession,
) -> Option<Cell> {
    if q.group_by.is_empty() {
        return None;
    }
    let cols: Vec<_> = q.group_by.iter().map(|g| db.dim(g.dim).store.column(g.column)).collect();
    let spaces: Vec<CodeSpace> = cols.iter().map(|c| CodeSpace::of(c)).collect::<Option<_>>()?;
    let layout = GroupLayout::try_new(
        spaces.iter().zip(&cols).map(|(s, c)| (s.domain(), s.decoder(c))).collect(),
    )?;
    let inp = query_inputs(db, q, stride, io);
    let rows = inp.terms.len();

    // The pre-refactor tail: materialize Values per group column, then
    // clone a key vector per row into the Value-keyed grouper.
    let value_ns = time_per_row(rows, runs, || {
        let group_cols: Vec<Vec<Value>> = cols
            .iter()
            .zip(&inp.dim_positions)
            .map(|(col, dp)| extract_at(col, black_box(dp), io))
            .collect();
        let mut g = Grouper::new();
        for (i, &term) in inp.terms.iter().enumerate() {
            let key: Vec<Value> = group_cols.iter().map(|gc| gc[i].clone()).collect();
            g.add(key, term);
        }
        g.len()
    });
    // The code-level tail: extract codes, compose ids, accumulate.
    let mut groups = 0usize;
    let code_ns = time_per_row(rows, runs, || {
        let code_cols: Vec<Vec<u32>> = spaces
            .iter()
            .zip(&cols)
            .zip(&inp.dim_positions)
            .map(|((space, col), dp)| extract_codes_at(space, col, black_box(dp), io))
            .collect();
        let mut g = CodeGrouper::for_layout(&layout);
        for (i, &term) in inp.terms.iter().enumerate() {
            let mut id = 0u64;
            for (c, codes) in code_cols.iter().enumerate() {
                id = id * g.radix(c) + codes[i] as u64;
            }
            g.add(id, term);
        }
        groups = g.len();
        groups
    });
    Some(Cell {
        cell: format!("{}/s{stride}", q.id),
        rows,
        groups,
        value_ns_per_row: value_ns,
        code_ns_per_row: code_ns,
    })
}

/// Synthetic accumulation cells across group-count regimes: NDV 1, the
/// direct radix composites, and the `u64`-hash fallback.
fn measure_synthetic(n: u32, runs: usize, out: &mut Vec<Cell>) {
    use cvr_core::agg::CodeDecoder;
    let regimes: &[(&str, &[u64])] = &[
        ("syn/ndv1", &[1]),
        ("syn/direct-7x1000", &[7, 1000]),
        ("syn/direct-25x25x7", &[25, 25, 7]),
        ("syn/hash-250x250x7", &[250, 250, 7]),
    ];
    for (name, domains) in regimes {
        let layout =
            GroupLayout::try_new(domains.iter().map(|&d| (d, CodeDecoder::IntOffset(0))).collect())
                .expect("synthetic layout");
        // Seeded LCG codes + terms; Values pre-materialized for the
        // reference tail (its per-row clone cost is what we measure).
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let rows = n as usize;
        let mut code_cols: Vec<Vec<u32>> =
            domains.iter().map(|_| Vec::with_capacity(rows)).collect();
        let mut terms = Vec::with_capacity(rows);
        for _ in 0..rows {
            for (c, &d) in domains.iter().enumerate() {
                code_cols[c].push((next() % d) as u32);
            }
            terms.push((next() % 2000) as i64 - 1000);
        }
        let value_cols: Vec<Vec<Value>> = code_cols
            .iter()
            .map(|codes| codes.iter().map(|&c| Value::Int(c as i64)).collect())
            .collect();

        let value_ns = time_per_row(rows, runs, || {
            let mut g = Grouper::new();
            for (i, &term) in terms.iter().enumerate() {
                let key: Vec<Value> = value_cols.iter().map(|vc| vc[i].clone()).collect();
                g.add(key, term);
            }
            g.len()
        });
        let mut groups = 0usize;
        let code_ns = time_per_row(rows, runs, || {
            let mut g = CodeGrouper::for_layout(&layout);
            for (i, &term) in terms.iter().enumerate() {
                let mut id = 0u64;
                for (c, codes) in code_cols.iter().enumerate() {
                    id = id * g.radix(c) + codes[i] as u64;
                }
                g.add(id, term);
            }
            groups = g.len();
            groups
        });
        out.push(Cell {
            cell: name.to_string(),
            rows,
            groups,
            value_ns_per_row: value_ns,
            code_ns_per_row: code_ns,
        });
    }
}

fn main() {
    let args = parse_args();
    // This binary drives the CVR_AGG ablation itself; a preset value would
    // make the "code-level" runs silently value-keyed and the identity
    // gate vacuous.
    if std::env::var_os("CVR_AGG").is_some() {
        eprintln!("# clearing preset CVR_AGG: the agg bench toggles the ablation itself");
        std::env::remove_var("CVR_AGG");
    }
    let tables = Arc::new(SsbConfig { sf: args.sf, seed: 7 }.generate());
    eprintln!(
        "# agg bench over sf {} ({} fact rows), best of {} runs",
        args.sf,
        tables.lineorder.num_rows(),
        args.runs
    );
    let engine = ColumnEngine::new(tables.clone());
    let db = engine.db(EngineConfig::FULL);
    let io = IoSession::unmetered();

    // Byte-identity first: the speedup claim is only worth making if the
    // two tails are interchangeable.
    let mut queries = all_queries();
    queries.extend(WorkloadConfig { seed: 2026, count: args.queries }.generate());
    let verified = verify_byte_identity(&engine, &queries);
    eprintln!("# {verified} queries byte-identical (outputs + IoStats) across both tails");

    let mut cells = Vec::new();
    for q in all_queries() {
        if q.group_by.is_empty() {
            continue;
        }
        let strides: &[usize] = if (q.id.flight == 2 || q.id.flight == 3) && q.id.number == 1 {
            &[2, 8, 64]
        } else {
            &[8]
        };
        for &stride in strides {
            if let Some(cell) = measure_query(db, &q, stride, args.runs, &io) {
                cells.push(cell);
            } else {
                eprintln!("# skipping {}: a group column has no code space at this sf", q.id);
            }
        }
    }
    measure_synthetic(args.n, args.runs, &mut cells);

    println!("\nAggregation: Value-keyed grouper vs code-level group ids\n");
    println!(
        "{:<22} {:>9} {:>8} {:>13} {:>13} {:>9}",
        "cell", "rows", "groups", "value ns/row", "code ns/row", "speedup"
    );
    let mut json = String::from("{\n  \"bench\": \"agg\",\n");
    let _ = writeln!(json, "  \"sf\": {},", args.sf);
    let _ = writeln!(json, "  \"runs\": {},", args.runs);
    let _ = writeln!(json, "  \"byte_identical_queries\": {verified},");
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        println!(
            "{:<22} {:>9} {:>8} {:>13.2} {:>13.2} {:>8.2}x",
            c.cell,
            c.rows,
            c.groups,
            c.value_ns_per_row,
            c.code_ns_per_row,
            c.speedup()
        );
        let _ = write!(
            json,
            "    {{\"cell\": \"{}\", \"rows\": {}, \"groups\": {}, \
             \"value_ns_per_row\": {:.4}, \"code_ns_per_row\": {:.4}, \"speedup\": {:.3}}}",
            c.cell,
            c.rows,
            c.groups,
            c.value_ns_per_row,
            c.code_ns_per_row,
            c.speedup()
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    let flight23_best = cells
        .iter()
        .filter(|c| c.cell.starts_with("Q2.") || c.cell.starts_with("Q3."))
        .map(Cell::speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"flight23_best_speedup\": {flight23_best:.3}");
    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write BENCH_agg.json");
    eprintln!("\n# wrote {}", args.out);

    println!("\nbest flight-2/3 speedup: {flight23_best:.2}x (gate: >= {:.1}x)", args.min_speedup);
    if !flight23_best.is_finite() || flight23_best < args.min_speedup {
        eprintln!("FAIL: code-level aggregation below the {:.1}x gate", args.min_speedup);
        std::process::exit(1);
    }
}
