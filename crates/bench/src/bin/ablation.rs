//! Ablation: how much of the invisible join's advantage is
//! between-predicate rewriting?
//!
//! Section 6.3.2 claims the gap between the invisible join and the classic
//! late-materialized join "is largely due to the between-predicate
//! rewriting optimization". This binary isolates it with three runs:
//!
//! 1. invisible join with rewriting (the `tICL` baseline);
//! 2. invisible join with rewriting disabled (phase 1 always builds a key
//!    hash set — a column-oriented semijoin);
//! 3. the classic late-materialized join (`tiCL`).
//!
//! ```text
//! cargo run --release -p cvr-bench --bin ablation -- --sf 0.05
//! ```

use cvr_bench::{paper, Harness, HarnessArgs, Measurement};
use cvr_core::invisible::InvisibleOptions;
use cvr_core::morsel::Parallelism;
use cvr_core::{ColumnEngine, EngineConfig};

fn main() {
    let args = HarnessArgs::parse();
    let harness = Harness::new(args.clone());
    eprintln!("# building column engine (sf {}) ...", args.sf);
    let engine = ColumnEngine::new(harness.tables.clone());
    let cfg = EngineConfig::FULL;

    let with = InvisibleOptions { between_rewriting: true };
    let without = InvisibleOptions { between_rewriting: false };

    let a: Vec<Measurement> =
        harness.measure_series(|q, io| engine.execute_ablation(q, cfg, with, io));
    let b: Vec<Measurement> =
        harness.measure_series(|q, io| engine.execute_ablation(q, cfg, without, io));
    let lm = EngineConfig::parse("tiCL");
    let c: Vec<Measurement> =
        harness.measure_series(|q, io| engine.execute_with(q, lm, Parallelism::serial(), io));

    println!("\nAblation: between-predicate rewriting inside the invisible join (sf {})", args.sf);
    println!("=======================================================================\n");
    println!("{:<8}{:>14}{:>16}{:>14}", "query", "IJ+rewrite", "IJ hash-only", "LM join");
    let (mut sa, mut sb, mut sc) = (0.0, 0.0, 0.0);
    for i in 0..13 {
        let (x, y, z) = (a[i].seconds(), b[i].seconds(), c[i].seconds());
        sa += x;
        sb += y;
        sc += z;
        println!("Q{:<7}{x:>14.3}{y:>16.3}{z:>14.3}", paper::QUERY_LABELS[i]);
    }
    println!("{:<8}{:>14.3}{:>16.3}{:>14.3}", "AVG", sa / 13.0, sb / 13.0, sc / 13.0);
    println!(
        "\nrewriting buys {:.2}x within the invisible join; the remaining IJ-vs-LM\n\
         gap ({:.2}x) is deferred extraction (paper: the rewriting dominates).",
        sb / sa,
        sc / sb
    );
}
