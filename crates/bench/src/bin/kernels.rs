//! Scan-kernel benchmark: scalar block iteration vs word-parallel kernels
//! per encoding × selectivity, printed as a table and emitted as
//! `BENCH_kernels.json` — the start of the kernel-layer perf trajectory.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin kernels -- [--n N] [--runs R] [--out PATH]
//! ```
//!
//! Every cell is verified first (scalar and word paths must select the
//! same positions), then timed as best-of-`runs`. "Scalar" unpacks and
//! tests one value at a time — the block-iteration loop the scan layer
//! used before the kernel layer; "word" is the SWAR mask kernel feeding a
//! position vector through the bulk path.

use cvr_bench::kernel_bench::{codes, slice_word_positions, word_positions};
use cvr_core::kernels::{scalar, CmpOp};
use cvr_storage::packed::PackedInts;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Args {
    n: u32,
    runs: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args { n: 1 << 20, runs: 5, out: "BENCH_kernels.json".to_string() };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).unwrap_or_else(|| panic!("missing value for {}", argv[*i - 1])).clone()
        };
        match argv[i].as_str() {
            "--n" => args.n = take(&mut i).parse().expect("--n takes an int"),
            "--runs" => args.runs = take(&mut i).parse().expect("--runs takes an int"),
            "--out" => args.out = take(&mut i),
            "--help" | "-h" => {
                eprintln!("usage: kernels [--n N] [--runs R] [--out PATH]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
        i += 1;
    }
    args
}

/// One measured cell of the (kernel × encoding × selectivity) matrix.
struct Cell {
    kernel: &'static str,
    encoding: String,
    selectivity: f64,
    scalar_ns_per_value: f64,
    word_ns_per_value: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_value / self.word_ns_per_value.max(1e-12)
    }
}

/// Best-of-`runs` wall time of `f`, in ns per value.
fn time_per_value(n: u32, runs: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let count = f();
        let dt = t.elapsed().as_secs_f64();
        black_box(count);
        best = best.min(dt);
    }
    best * 1e9 / n as f64
}

/// Packed int column cells: the `lo <= v <= hi` join/measure predicates.
fn measure_packed(n: u32, runs: usize, bits: u8, out: &mut Vec<Cell>) {
    let p = PackedInts::pack(bits, codes(n, (1u64 << bits) - 1));
    let max = p.max_code();
    for frac in [0.01f64, 0.2, 0.9] {
        let hi = ((max as f64 * frac) as u64).min(max);
        let op = CmpOp::Le(hi);
        let expect = scalar::packed_cmp_positions(&p, 0, p.len(), op);
        assert_eq!(word_positions(&p, op), expect, "kernel/scalar divergence");
        let selectivity = expect.len() as f64 / n as f64;
        let scalar_ns = time_per_value(n, runs, || {
            scalar::packed_cmp_positions(black_box(&p), 0, p.len(), black_box(op)).len()
        });
        let word_ns =
            time_per_value(n, runs, || word_positions(black_box(&p), black_box(op)).len());
        out.push(Cell {
            kernel: "int_range",
            encoding: format!("packed_w{bits}"),
            selectivity,
            scalar_ns_per_value: scalar_ns,
            word_ns_per_value: word_ns,
        });
    }
}

/// Dictionary cells: hierarchy predicates over packed codes — scalar
/// `matches[]` table lookups vs the contiguous-range SWAR kernel.
fn measure_dict(n: u32, runs: usize, out: &mut Vec<Cell>) {
    let card = 25u64;
    let p = PackedInts::pack(5, codes(n, card - 1));
    for (lo, hi) in [(3u64, 3u64), (5, 14)] {
        let matches: Vec<bool> = (0..card).map(|c| (lo..=hi).contains(&c)).collect();
        let op = CmpOp::Range(lo, hi);
        let expect = scalar::packed_test_positions(&p, 0, p.len(), |c| matches[c as usize]);
        assert_eq!(word_positions(&p, op), expect, "dict kernel/scalar divergence");
        let selectivity = expect.len() as f64 / n as f64;
        let scalar_ns = time_per_value(n, runs, || {
            scalar::packed_test_positions(black_box(&p), 0, p.len(), |c| matches[c as usize]).len()
        });
        let word_ns =
            time_per_value(n, runs, || word_positions(black_box(&p), black_box(op)).len());
        out.push(Cell {
            kernel: "dict_pred",
            encoding: "dict_card25".to_string(),
            selectivity,
            scalar_ns_per_value: scalar_ns,
            word_ns_per_value: word_ns,
        });
    }
}

/// Plain `i64` slice cells: branchless mask construction vs push-per-match.
fn measure_plain(n: u32, runs: usize, out: &mut Vec<Cell>) {
    let values: Vec<i64> = (0..n as i64).map(|i| i.wrapping_mul(2_654_435_761) % 30_000).collect();
    for hi in [300i64, 15_000] {
        let expect = scalar::slice_cmp_positions(&values, 0, 0, hi);
        assert_eq!(slice_word_positions(&values, 0, hi), expect, "slice kernel/scalar divergence");
        let selectivity = expect.len() as f64 / n as f64;
        let scalar_ns = time_per_value(n, runs, || {
            scalar::slice_cmp_positions(black_box(&values), 0, 0, black_box(hi)).len()
        });
        let word_ns = time_per_value(n, runs, || {
            slice_word_positions(black_box(&values), 0, black_box(hi)).len()
        });
        out.push(Cell {
            kernel: "int_range",
            encoding: "plain_i64".to_string(),
            selectivity,
            scalar_ns_per_value: scalar_ns,
            word_ns_per_value: word_ns,
        });
    }
}

fn main() {
    let args = parse_args();
    let mut cells = Vec::new();
    eprintln!("# measuring kernels over n = {} values, best of {} runs", args.n, args.runs);
    measure_packed(args.n, args.runs, 6, &mut cells);
    measure_packed(args.n, args.runs, 17, &mut cells);
    measure_dict(args.n, args.runs, &mut cells);
    measure_plain(args.n, args.runs, &mut cells);

    println!("\nScan kernels: scalar block iteration vs word-parallel ({} values)\n", args.n);
    println!(
        "{:<12} {:<12} {:>12} {:>12} {:>12} {:>9}",
        "kernel", "encoding", "selectivity", "scalar ns/v", "word ns/v", "speedup"
    );
    let mut json = String::from("{\n  \"bench\": \"kernels\",\n");
    let _ = writeln!(json, "  \"n\": {},", args.n);
    let _ = writeln!(json, "  \"runs\": {},", args.runs);
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        println!(
            "{:<12} {:<12} {:>12.4} {:>12.3} {:>12.3} {:>8.2}x",
            c.kernel,
            c.encoding,
            c.selectivity,
            c.scalar_ns_per_value,
            c.word_ns_per_value,
            c.speedup()
        );
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"encoding\": \"{}\", \"selectivity\": {:.6}, \
             \"scalar_ns_per_value\": {:.4}, \"word_ns_per_value\": {:.4}, \"speedup\": {:.3}}}",
            c.kernel,
            c.encoding,
            c.selectivity,
            c.scalar_ns_per_value,
            c.word_ns_per_value,
            c.speedup()
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("write BENCH_kernels.json");
    eprintln!("\n# wrote {}", args.out);

    // The perf trajectory this bench exists to defend: word-parallel must
    // decisively beat scalar block iteration on the low-selectivity int
    // predicate and on the dictionary predicate.
    let gate = |kernel: &str| {
        cells
            .iter()
            .filter(|c| c.kernel == kernel && c.encoding != "plain_i64")
            .map(|c| c.speedup())
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let (int_best, dict_best) = (gate("int_range"), gate("dict_pred"));
    println!("\nbest packed int-range speedup: {int_best:.2}x; best dict speedup: {dict_best:.2}x");
    if int_best < 2.0 || dict_best < 2.0 {
        eprintln!("WARNING: word-parallel speedup below the 2x target on this machine");
    }
}
