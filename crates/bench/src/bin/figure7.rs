//! Figure 7: C-Store with optimizations successively removed
//! (tICL, TICL, tiCL, TiCL, ticL, TicL, Ticl).
//!
//! ```text
//! cargo run --release -p cvr-bench --bin figure7 -- --sf 0.05
//! ```

use cvr_bench::{paper, render_figure, Harness, HarnessArgs, Measurement};
use cvr_core::{ColumnEngine, EngineConfig};

fn main() {
    let args = HarnessArgs::parse();
    let harness = Harness::new(args.clone());
    eprintln!("# building column store (sf {}) ...", args.sf);
    let engine = ColumnEngine::new(harness.tables.clone());
    cvr_bench::maybe_explain(&args, &engine);

    let mut ours: Vec<(String, Vec<Measurement>)> = Vec::new();
    let par = args.parallelism();
    for cfg in EngineConfig::figure7() {
        eprintln!("# running {} ({} thread(s))", cfg.code(), par.threads);
        ours.push((
            cfg.code(),
            harness.measure_series(|q, io| engine.execute_with(q, cfg, par, io)),
        ));
    }

    println!(
        "{}",
        render_figure(
            "Figure 7: C-Store optimization removal study",
            &ours,
            &paper::figure7(),
            args.sf,
        )
    );
}
