//! Section 6.1's partitioning ablation: "partitioning gives System X a
//! factor of two advantage (though this varied by query)".
//!
//! ```text
//! cargo run --release -p cvr-bench --bin partitioning -- --sf 0.02
//! ```

use cvr_bench::{Harness, HarnessArgs, Measurement};
use cvr_row::designs::{TraditionalDb, TraditionalOptions};

fn main() {
    let args = HarnessArgs::parse();
    let harness = Harness::new(args.clone());
    eprintln!("# building partitioned + unpartitioned traditional designs ...");
    let part = TraditionalDb::build(
        harness.tables.clone(),
        TraditionalOptions { partitioned: true, bitmap_indexes: false, use_bloom: true },
    );
    let whole = TraditionalDb::build(
        harness.tables.clone(),
        TraditionalOptions { partitioned: false, bitmap_indexes: false, use_bloom: true },
    );

    let with: Vec<Measurement> = harness.measure_series(|q, io| part.execute(q, io));
    let without: Vec<Measurement> = harness.measure_series(|q, io| whole.execute(q, io));

    println!("\nSection 6.1: orderdate-year partitioning ablation (sf {})", args.sf);
    println!("==========================================================\n");
    println!("{:<8}{:>14}{:>16}{:>10}", "query", "partitioned", "unpartitioned", "speedup");
    let labels = cvr_bench::paper::QUERY_LABELS;
    let mut sums = (0.0, 0.0);
    for i in 0..13 {
        let (a, b) = (with[i].seconds(), without[i].seconds());
        sums.0 += a;
        sums.1 += b;
        println!("Q{:<7}{a:>14.3}{b:>16.3}{:>9.2}x", labels[i], b / a);
    }
    println!(
        "{:<8}{:>14.3}{:>16.3}{:>9.2}x   (paper: ~2x on average)",
        "AVG",
        sums.0 / 13.0,
        sums.1 / 13.0,
        sums.1 / sums.0
    );
}
