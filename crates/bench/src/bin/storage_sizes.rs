//! Section 6.2's storage-size arithmetic: per-column and whole-table bytes
//! under each physical layout, scaled up to the paper's SF 10 for
//! comparison against its quoted numbers (0.7-1.1 GB per VP column table,
//! 240 MB per C-Store int column, ~6 GB / ~4 GB traditional, 2.3 GB
//! compressed C-Store).
//!
//! ```text
//! cargo run --release -p cvr-bench --bin storage_sizes -- --sf 0.02
//! ```

use cvr_bench::HarnessArgs;
use cvr_core::CStoreDb;
use cvr_row::designs::{TraditionalDb, TraditionalOptions, VpDb};
use std::sync::Arc;

fn gb(bytes: u64, scale: f64) -> f64 {
    bytes as f64 * scale / (1024.0 * 1024.0 * 1024.0)
}

fn main() {
    let args = HarnessArgs::parse();
    let tables = args.tables();
    let scale_to_sf10 = 10.0 / args.sf;

    println!("\nSection 6.2: storage sizes (built at sf {}, scaled to SF 10)", args.sf);
    println!("=============================================================\n");

    let trad = TraditionalDb::build(
        tables.clone(),
        TraditionalOptions { partitioned: false, bitmap_indexes: false, use_bloom: false },
    );
    println!(
        "traditional lineorder heap: {:>7.2} GB   (paper: ~6 GB uncompressed)",
        gb(trad.fact_bytes(), scale_to_sf10)
    );

    let vp = VpDb::build(tables.clone());
    println!(
        "VP all 17 column tables:    {:>7.2} GB   (paper: 17 x 0.7-1.1 GB)",
        gb(vp.fact_bytes(), scale_to_sf10)
    );
    for col in ["lo_orderkey", "lo_quantity", "lo_revenue", "lo_orderdate"] {
        println!(
            "  VP column table {col:<16}: {:>6.2} GB   (paper: 0.7-1.1 GB each)",
            gb(vp.fact_column_bytes(col), scale_to_sf10)
        );
    }

    let cs_plain = CStoreDb::build(tables.clone(), false);
    let cs_comp = CStoreDb::build(Arc::clone(&tables), true);
    println!("C-Store fact uncompressed:  {:>7.2} GB", gb(cs_plain.fact_bytes(), scale_to_sf10));
    println!(
        "C-Store fact compressed:    {:>7.2} GB   (paper: 2.3 GB whole table)",
        gb(cs_comp.fact_bytes(), scale_to_sf10)
    );
    let int_col = cs_plain.fact.column("lo_revenue");
    println!(
        "C-Store single int column:  {:>7.3} GB   (paper: 240 MB = 0.234 GB)",
        gb(int_col.bytes(), scale_to_sf10)
    );
    let od = cs_comp.fact.column("lo_orderdate");
    println!(
        "C-Store RLE orderdate col:  {:>9.5} GB (paper: < 64 KB at SF 10)",
        gb(od.bytes(), scale_to_sf10)
    );
    println!(
        "\nper-row footprints: traditional {:.1} B/row, VP {:.1} B/row-per-column,\n\
         C-Store int column {:.1} B/value (paper: ~93 B, ~16 B, 4 B)",
        trad.fact_bytes() as f64 / tables.lineorder.num_rows() as f64,
        vp.fact_column_bytes("lo_revenue") as f64 / tables.lineorder.num_rows() as f64,
        int_col.bytes() as f64 / tables.lineorder.num_rows() as f64,
    );
}
