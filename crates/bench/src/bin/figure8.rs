//! Figure 8: invisible-join baseline vs denormalized (pre-joined) tables.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin figure8 -- --sf 0.05
//! ```

use cvr_bench::{paper, render_figure, Harness, HarnessArgs, Measurement};
use cvr_core::{ColumnEngine, DenormDb, DenormVariant, EngineConfig};

fn main() {
    let args = HarnessArgs::parse();
    let harness = Harness::new(args.clone());
    eprintln!("# building baseline + 3 denormalized variants (sf {}) ...", args.sf);
    let engine = ColumnEngine::new(harness.tables.clone());
    cvr_bench::maybe_explain(&args, &engine);

    let mut ours: Vec<(String, Vec<Measurement>)> = Vec::new();
    eprintln!("# Base (invisible join, {} thread(s))", args.threads);
    let par = args.parallelism();
    ours.push((
        "Base".into(),
        harness.measure_series(|q, io| engine.execute_with(q, EngineConfig::FULL, par, io)),
    ));
    for variant in
        [DenormVariant::NoCompression, DenormVariant::IntCompression, DenormVariant::MaxCompression]
    {
        eprintln!("# {}", variant.label());
        let db = DenormDb::build(harness.tables.clone(), variant);
        ours.push((
            variant.label().to_string(),
            harness.measure_series(|q, io| db.execute(q, EngineConfig::FULL, io)),
        ));
    }

    println!(
        "{}",
        render_figure(
            "Figure 8: Denormalization study (pre-joined fact table)",
            &ours,
            &paper::figure8(),
            args.sf,
        )
    );
}
