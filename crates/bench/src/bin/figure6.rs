//! Figure 6: row-store physical designs — T, T(B), MV, VP, AI.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin figure6 -- --sf 0.02
//! ```

use cvr_bench::{paper, render_figure, Harness, HarnessArgs, Measurement};
use cvr_row::designs::{RowDb, RowDesign};

fn main() {
    let args = HarnessArgs::parse();
    let harness = Harness::new(args.clone());

    if args.explain {
        // The planner's catalog is built from the column engine's storage;
        // only needed when explain output was requested.
        let engine = cvr_core::ColumnEngine::new(harness.tables.clone());
        cvr_bench::maybe_explain(&args, &engine);
    }

    let mut ours: Vec<(String, Vec<Measurement>)> = Vec::new();
    for design in RowDesign::ALL {
        eprintln!("# building + running {} (sf {})", design.label(), args.sf);
        let db = RowDb::build(harness.tables.clone(), design);
        ours.push((design.label().to_string(), harness.measure_series(|q, io| db.execute(q, io))));
    }

    println!(
        "{}",
        render_figure(
            "Figure 6: Row-store physical design variants",
            &ours,
            &paper::figure6(),
            args.sf,
        )
    );
}
