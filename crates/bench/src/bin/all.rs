//! Run every experiment in sequence (the full evaluation section).
//!
//! ```text
//! cargo run --release -p cvr-bench --bin all -- --sf 0.02
//! ```
//!
//! Equivalent to running `selectivity`, `storage_sizes`, `figure5`,
//! `figure6`, `figure7`, `figure8`, and `partitioning` back to back on one
//! generated database.

use cvr_bench::{paper, render_figure, Harness, HarnessArgs, Measurement};
use cvr_core::{ColumnEngine, DenormDb, DenormVariant, EngineConfig, RowMvDb};
use cvr_data::queries::all_queries;
use cvr_data::reference::measured_selectivity;
use cvr_row::designs::{RowDb, RowDesign};

fn main() {
    let args = HarnessArgs::parse();
    let harness = Harness::new(args.clone());
    let par = args.parallelism();

    // ---- Section 3: selectivities ----
    println!("\nSection 3: LINEORDER selectivities (sf {})", args.sf);
    println!("{:<8}{:>14}{:>14}", "query", "paper", "measured");
    for (q, label) in all_queries().iter().zip(paper::QUERY_LABELS) {
        let measured = measured_selectivity(&harness.tables, q);
        println!("Q{label:<7}{:>14.2e}{measured:>14.2e}", q.paper_selectivity);
    }

    // ---- Figure 5 ----
    eprintln!("# figure 5 ...");
    let rs = RowDb::build(harness.tables.clone(), RowDesign::Traditional);
    let rs_mv = RowDb::build(harness.tables.clone(), RowDesign::MaterializedViews);
    let cs = ColumnEngine::new(harness.tables.clone());
    let cs_row_mv = RowMvDb::build(harness.tables.clone());

    // ---- Planner explains (--explain) ----
    cvr_bench::maybe_explain(&args, &cs);
    let fig5: Vec<(String, Vec<Measurement>)> = vec![
        ("RS".into(), harness.measure_series(|q, io| rs.execute(q, io))),
        ("RS (MV)".into(), harness.measure_series(|q, io| rs_mv.execute(q, io))),
        (
            "CS".into(),
            harness.measure_series(|q, io| cs.execute_with(q, EngineConfig::FULL, par, io)),
        ),
        ("CS (Row-MV)".into(), harness.measure_series(|q, io| cs_row_mv.execute(q, io))),
    ];
    println!(
        "{}",
        render_figure("Figure 5: Baseline comparison", &fig5, &paper::figure5(), args.sf)
    );

    // ---- Figure 6 ----
    eprintln!("# figure 6 ...");
    let mut fig6: Vec<(String, Vec<Measurement>)> = Vec::new();
    for design in RowDesign::ALL {
        eprintln!("#   {}", design.label());
        let db = RowDb::build(harness.tables.clone(), design);
        fig6.push((design.label().to_string(), harness.measure_series(|q, io| db.execute(q, io))));
    }
    println!("{}", render_figure("Figure 6: Row-store designs", &fig6, &paper::figure6(), args.sf));

    // ---- Figure 7 ----
    eprintln!("# figure 7 ...");
    let mut fig7: Vec<(String, Vec<Measurement>)> = Vec::new();
    for cfg in EngineConfig::figure7() {
        fig7.push((cfg.code(), harness.measure_series(|q, io| cs.execute_with(q, cfg, par, io))));
    }
    println!(
        "{}",
        render_figure("Figure 7: Optimization removal", &fig7, &paper::figure7(), args.sf)
    );

    // ---- Figure 8 ----
    eprintln!("# figure 8 ...");
    let mut fig8: Vec<(String, Vec<Measurement>)> = Vec::new();
    fig8.push((
        "Base".into(),
        harness.measure_series(|q, io| cs.execute_with(q, EngineConfig::FULL, par, io)),
    ));
    for variant in
        [DenormVariant::NoCompression, DenormVariant::IntCompression, DenormVariant::MaxCompression]
    {
        let db = DenormDb::build(harness.tables.clone(), variant);
        fig8.push((
            variant.label().to_string(),
            harness.measure_series(|q, io| db.execute(q, EngineConfig::FULL, io)),
        ));
    }
    println!("{}", render_figure("Figure 8: Denormalization", &fig8, &paper::figure8(), args.sf));
}
