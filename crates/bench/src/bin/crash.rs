//! Durability harness: crash/torn-write/bit-flip trials against the
//! `cvr-storage::persist` snapshot protocol, plus a full restart check
//! through the server session's `CVR_DATA_DIR` auto-load path.
//!
//! Every trial starts from a directory holding one *clean* committed
//! generation, then attacks the next snapshot write with one fault class:
//!
//! * **torn** — every durable file write is cut short (the disk acked a
//!   partial write); the write path reports success, the loader's CRCs
//!   must refuse the generation and fall back.
//! * **flip** — one bit of every written image is flipped (silent media
//!   corruption); same contract.
//! * **fsync** — fsync reports failure; the write path must abort *before*
//!   the commit rename, leaving the previous generation intact.
//! * **crash:LABEL** — a sacrificial child process re-execs this binary and
//!   `std::process::abort()`s at a precise point in the snapshot protocol
//!   (`persist:pre-rename`, `persist:mid-segments`, `persist:pre-manifest`,
//!   `persist:pre-dirsync`, `persist:post-commit`).
//! * **kill** — a child process writes snapshots in a loop and receives a
//!   real `SIGKILL` mid-stream.
//!
//! After the attack the parent runs recovery (`persist::load_latest`),
//! builds a session over whatever loaded, and verifies all 13 paper
//! queries **byte-identical** — outputs and IoStats — against the
//! pre-crash reference. Gates (exit 1): every injected corruption detected
//! (typed error or previous-generation fallback), zero silently-wrong
//! answers, zero recovery failures, and a post-`kill -9` restart through
//! `CVR_DATA_DIR` auto-load that answers all 13 queries identically from a
//! *differently seeded* process. A watchdog exits 2 on hang. Writes
//! `BENCH_crash.json`.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin crash -- --sf 0.005
//! cargo run --release -p cvr-bench --bin crash -- --sf 0.005 --trials 80
//! ```

use cvr_bench::HarnessArgs;
use cvr_core::morsel::Parallelism;
use cvr_data::gen::{SsbConfig, SsbTables};
use cvr_data::queries::all_queries;
use cvr_server::Session;
use cvr_storage::fault::{self, FaultState};
use cvr_storage::io::IoStats;
use cvr_storage::persist::{self, crc64};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static DONE: AtomicBool = AtomicBool::new(false);

/// Crash-point labels inside the snapshot protocol, in write order.
const CRASH_LABELS: [&str; 5] = [
    "persist:pre-rename",
    "persist:mid-segments",
    "persist:pre-manifest",
    "persist:pre-dirsync",
    "persist:post-commit",
];

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Torn,
    Flip,
    Fsync,
    Crash(&'static str),
    Kill,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Torn => "torn",
            Kind::Flip => "flip",
            Kind::Fsync => "fsync",
            Kind::Crash(_) => "crash",
            Kind::Kill => "kill",
        }
    }
}

/// One query's byte-identity reference: output image and I/O accounting.
struct Reference {
    id: String,
    output: Vec<u8>,
    io: IoStats,
}

/// What one trial produced.
struct Outcome {
    /// The damaged/incomplete generation never served (fallback, typed
    /// error, or — `post-commit`/`kill` — there was nothing to detect).
    detected: bool,
    /// `load_latest` succeeded and all 13 queries matched the reference.
    recovered: bool,
    /// Recovery *answered* but diverged — the one unforgivable outcome.
    silent_wrong: bool,
    /// Newer generations the loader validated and skipped.
    fallbacks: u32,
    /// Faults the in-process fault state actually injected.
    injected: u64,
}

// ---------------------------------------------------------------------------
// Child roles (re-exec targets). The parent spawns `current_exe()` with
// `CVR_CRASH_ROLE` set; a child never parses harness flags.
// ---------------------------------------------------------------------------

fn child_env(name: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| panic!("child missing {name}"))
}

/// `CVR_CRASH_ROLE=snapshot`: write snapshots until done or killed.
/// `CVR_FAULT=crash:LABEL` (installed from the environment) turns a write
/// into an abort at that protocol point.
fn child_snapshot() -> ! {
    fault::install_from_env();
    let dir = PathBuf::from(child_env("CVR_CRASH_DIR"));
    let sf: f64 = child_env("CVR_CRASH_SF").parse().expect("CVR_CRASH_SF");
    let seed: u64 = child_env("CVR_CRASH_SEED").parse().expect("CVR_CRASH_SEED");
    let loops: usize =
        std::env::var("CVR_CRASH_LOOPS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let tables = SsbConfig { sf, seed }.generate();
    for _ in 0..loops {
        if let Err(e) = persist::write_snapshot(&dir, &tables) {
            eprintln!("child snapshot failed: {e}");
            std::process::exit(3);
        }
    }
    std::process::exit(0);
}

/// `CVR_CRASH_ROLE=verify`: a fresh process "restart". The session is built
/// over *differently seeded* generated tables, so matching answers prove the
/// `CVR_DATA_DIR` auto-load actually served the durable store.
fn child_verify() -> ! {
    let sf: f64 = child_env("CVR_CRASH_SF").parse().expect("CVR_CRASH_SF");
    let seed: u64 = child_env("CVR_CRASH_SEED").parse().expect("CVR_CRASH_SEED");
    let tables = Arc::new(SsbConfig { sf, seed: seed ^ 0xDEAD }.generate());
    let session = Session::with_cache_budget(tables, Parallelism::serial(), 0);
    println!("STORE_VERSION\t{}", session.store_version());
    for q in all_queries() {
        let r = session.run(&q);
        println!(
            "{}\t{:016x}\t{:016x}",
            q.id,
            crc64(&r.output.to_bytes()),
            crc64(format!("{:?}", r.io).as_bytes())
        );
    }
    std::process::exit(0);
}

fn spawn_child(
    role: &str,
    dir: &Path,
    sf: f64,
    seed: u64,
    extra: &[(&str, String)],
) -> std::process::Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.env("CVR_CRASH_ROLE", role)
        .env("CVR_CRASH_DIR", dir)
        .env("CVR_CRASH_SF", format!("{sf}"))
        .env("CVR_CRASH_SEED", format!("{seed}"))
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in extra {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn child")
}

// ---------------------------------------------------------------------------
// Parent harness.
// ---------------------------------------------------------------------------

/// Run the 13 paper queries over `tables` and compare against `reference`.
/// Returns the number of divergent queries (output bytes or IoStats).
fn verify_queries(tables: SsbTables, reference: &[Reference]) -> usize {
    let session = Session::with_cache_budget(Arc::new(tables), Parallelism::serial(), 0);
    all_queries()
        .iter()
        .zip(reference)
        .filter(|(q, want)| {
            let got = session.run(q);
            got.output.to_bytes() != want.output || got.io != want.io
        })
        .count()
}

#[allow(clippy::too_many_arguments)]
fn run_trial(
    i: usize,
    kind: Kind,
    base: &Path,
    tables: &SsbTables,
    reference: &[Reference],
    sf: f64,
    seed: u64,
) -> Outcome {
    let dir = base.join(format!("t{i:03}"));
    let _ = std::fs::remove_dir_all(&dir);
    let clean = persist::write_snapshot(&dir, tables).expect("clean snapshot");
    assert_eq!(clean.generation, 1, "trial dirs start fresh");

    let (mut write_err, mut crash_aborted) = (false, false);
    let injected: u64;
    match kind {
        Kind::Torn | Kind::Flip | Kind::Fsync => {
            let spec = format!("{}:1.0,seed:{}", kind.name(), 7000 + i);
            let state = FaultState::from_spec(&spec).expect("fault spec");
            let scope = fault::adopt(state.clone());
            write_err = persist::write_snapshot(&dir, tables).is_err();
            drop(scope);
            injected = state.injected_total();
        }
        Kind::Crash(label) => {
            let extra = [("CVR_FAULT", format!("crash:{label}"))];
            let status =
                spawn_child("snapshot", &dir, sf, seed, &extra).wait().expect("wait crash child");
            crash_aborted = !status.success();
            injected = u64::from(crash_aborted);
        }
        Kind::Kill => {
            let extra = [("CVR_CRASH_LOOPS", "64".to_string())];
            let mut child = spawn_child("snapshot", &dir, sf, seed, &extra);
            std::thread::sleep(Duration::from_millis(2 + (i as u64 * 5) % 29));
            let _ = child.kill();
            let _ = child.wait();
            injected = 1;
        }
    }

    let (recovered, silent_wrong, fallbacks, loaded_gen) = match persist::load_latest(&dir) {
        Ok((loaded, report)) => {
            let diverged = verify_queries(loaded, reference);
            (diverged == 0, diverged > 0, report.fallbacks, report.generation)
        }
        Err(e) => {
            // A clean generation 1 exists in every trial dir: failing to
            // load *anything* is a recovery failure, even though typed.
            eprintln!("trial {i} ({}): recovery failed: {e}", kind.name());
            (false, false, 0, 0)
        }
    };

    // "Detected" = the damaged or uncommitted generation never served.
    let detected = match kind {
        Kind::Torn | Kind::Flip => injected > 0 && loaded_gen == 1,
        Kind::Fsync => write_err && loaded_gen == 1,
        Kind::Crash("persist:post-commit") => crash_aborted && loaded_gen == 2 && recovered,
        // After the manifest rename the commit is visible on a live
        // filesystem; the pending dir-fsync only decides whether it survives
        // a real power loss. Either generation is a correct recovery.
        Kind::Crash("persist:pre-dirsync") => crash_aborted && loaded_gen >= 1 && recovered,
        Kind::Crash(_) => crash_aborted && loaded_gen == 1,
        Kind::Kill => recovered && !silent_wrong,
    };

    let _ = std::fs::remove_dir_all(&dir);
    Outcome { detected, recovered, silent_wrong, fallbacks, injected }
}

fn main() {
    match std::env::var("CVR_CRASH_ROLE").as_deref() {
        Ok("snapshot") => child_snapshot(),
        Ok("verify") => child_verify(),
        Ok(other) => panic!("unknown CVR_CRASH_ROLE {other:?}"),
        Err(_) => {}
    }

    let args = HarnessArgs::parse();
    let watchdog_secs = args.watchdog.max(1);
    std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(watchdog_secs);
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(250));
            if DONE.load(Ordering::Relaxed) {
                return;
            }
        }
        eprintln!("FAIL: watchdog fired after {watchdog_secs}s — the crash run hung");
        std::process::exit(2);
    });

    let wall_start = Instant::now();
    let (user_dir, base) = match &args.data_dir {
        Some(d) => (true, PathBuf::from(d)),
        None => (false, std::env::temp_dir().join(format!("cvr-crash-{}", std::process::id()))),
    };
    std::fs::create_dir_all(&base).expect("create data dir");

    eprintln!("# generating tables + serial reference (sf {}) ...", args.sf);
    let tables = SsbConfig { sf: args.sf, seed: args.seed }.generate();
    let reference: Vec<Reference> = {
        let session =
            Session::with_cache_budget(Arc::new(tables.clone()), Parallelism::serial(), 0);
        all_queries()
            .iter()
            .map(|q| {
                let r = session.run(q);
                Reference { id: q.id.to_string(), output: r.output.to_bytes(), io: r.io }
            })
            .collect()
    };

    // Trial plan: a repeating mix that keeps torn/flip (the pure-detection
    // classes) in the majority while cycling every crash label and landing
    // real SIGKILLs. The --trials floor for acceptance runs is 50.
    let mut kinds = Vec::with_capacity(args.trials);
    let mut label = 0usize;
    while kinds.len() < args.trials {
        for k in [
            Kind::Torn,
            Kind::Flip,
            Kind::Crash(CRASH_LABELS[label % CRASH_LABELS.len()]),
            Kind::Torn,
            Kind::Flip,
            Kind::Kill,
            Kind::Fsync,
        ] {
            if kinds.len() < args.trials {
                if matches!(k, Kind::Crash(_)) {
                    label += 1;
                }
                kinds.push(k);
            }
        }
    }

    let (mut detected, mut undetected, mut silent_wrong, mut recovery_failures) = (0, 0, 0, 0);
    let (mut fallback_loads, mut injected_total) = (0u64, 0u64);
    let mut per_kind: std::collections::BTreeMap<&str, (usize, usize)> = Default::default();
    for (i, kind) in kinds.iter().enumerate() {
        let o = run_trial(i, *kind, &base, &tables, &reference, args.sf, args.seed);
        let slot = per_kind.entry(kind.name()).or_default();
        slot.0 += 1;
        if o.detected {
            slot.1 += 1;
            detected += 1;
        } else {
            undetected += 1;
            eprintln!("FAIL: trial {i} ({}) corruption was not detected", kind.name());
        }
        silent_wrong += usize::from(o.silent_wrong);
        recovery_failures += usize::from(!o.recovered);
        fallback_loads += u64::from(o.fallbacks);
        injected_total += o.injected;
        if (i + 1) % 10 == 0 {
            eprintln!("# {}/{} trials ({detected} detected)", i + 1, kinds.len());
        }
    }

    // Generation hygiene: prune keeps the newest K generations loadable.
    let prune_dir = base.join("prune");
    let _ = std::fs::remove_dir_all(&prune_dir);
    for _ in 0..6 {
        persist::write_snapshot(&prune_dir, &tables).expect("prune snapshot");
    }
    persist::prune(&prune_dir, 3).expect("prune");
    let gens = persist::generations(&prune_dir).expect("generations");
    let prune_ok = gens == vec![4, 5, 6]
        && persist::load_latest(&prune_dir).map(|(_, r)| r.generation) == Ok(6);
    let _ = std::fs::remove_dir_all(&prune_dir);

    // Restart verification: SNAPSHOT through the session entry point, kill a
    // mid-write child on top, then a *fresh process* recovers via the
    // `CVR_DATA_DIR` auto-load and must answer all 13 queries identically —
    // its own generated tables are differently seeded on purpose.
    eprintln!("# restart verification through CVR_DATA_DIR auto-load ...");
    let e2e_dir = base.join("restart");
    let _ = std::fs::remove_dir_all(&e2e_dir);
    let session = Session::with_cache_budget(Arc::new(tables.clone()), Parallelism::serial(), 0);
    session.set_data_dir(Some(e2e_dir.clone()));
    session.query("SNAPSHOT").expect("session snapshot");
    let mut churn = spawn_child(
        "snapshot",
        &e2e_dir,
        args.sf,
        args.seed,
        &[("CVR_CRASH_LOOPS", "64".to_string())],
    );
    std::thread::sleep(Duration::from_millis(9));
    let _ = churn.kill();
    let _ = churn.wait();
    let out = spawn_child(
        "verify",
        &e2e_dir,
        args.sf,
        args.seed,
        &[("CVR_DATA_DIR", e2e_dir.display().to_string())],
    )
    .wait_with_output()
    .expect("verify child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut restart_matches = 0usize;
    let mut restart_version = 0u64;
    for line in stdout.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["STORE_VERSION", v] => restart_version = v.parse().unwrap_or(0),
            [id, out_crc, io_crc] => {
                if let Some(want) = reference.iter().find(|r| r.id == *id) {
                    let out_ok = format!("{:016x}", crc64(&want.output)) == *out_crc;
                    let io_ok =
                        format!("{:016x}", crc64(format!("{:?}", want.io).as_bytes())) == *io_crc;
                    restart_matches += usize::from(out_ok && io_ok);
                }
            }
            _ => {}
        }
    }
    let restart_ok =
        out.status.success() && restart_matches == reference.len() && restart_version > 0;
    let _ = std::fs::remove_dir_all(&e2e_dir);
    if !user_dir {
        let _ = std::fs::remove_dir_all(&base);
    }
    DONE.store(true, Ordering::Relaxed);
    let wall = wall_start.elapsed();

    println!("\nCrash harness (sf {})", args.sf);
    println!("========================\n");
    println!("trials:            {}", kinds.len());
    for (name, (total, det)) in &per_kind {
        println!("  {name:<8} {det}/{total} detected/recovered");
    }
    println!("faults injected:   {injected_total}");
    println!("fallback loads:    {fallback_loads}");
    println!("detected:          {detected}/{}", kinds.len());
    println!("silently wrong:    {silent_wrong}");
    println!("recovery failures: {recovery_failures}");
    println!("prune check:       {}", if prune_ok { "ok" } else { "FAILED" });
    println!(
        "restart check:     {} ({restart_matches}/{} queries, store version {restart_version})",
        if restart_ok { "ok" } else { "FAILED" },
        reference.len()
    );
    println!("wall:              {:.2}s", wall.as_secs_f64());

    let mut json = String::from("{\n  \"bench\": \"crash\",\n");
    let _ = writeln!(json, "  \"sf\": {},", args.sf);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"trials\": {},", kinds.len());
    for (name, (total, det)) in &per_kind {
        let _ = writeln!(json, "  \"trials_{name}\": {total},");
        let _ = writeln!(json, "  \"detected_{name}\": {det},");
    }
    let _ = writeln!(json, "  \"faults_injected\": {injected_total},");
    let _ = writeln!(json, "  \"fallback_loads\": {fallback_loads},");
    let _ = writeln!(json, "  \"detected\": {detected},");
    let _ = writeln!(json, "  \"undetected\": {undetected},");
    let _ = writeln!(json, "  \"silently_wrong\": {silent_wrong},");
    let _ = writeln!(json, "  \"recovery_failures\": {recovery_failures},");
    let _ = writeln!(json, "  \"prune_ok\": {prune_ok},");
    let _ = writeln!(json, "  \"restart_ok\": {restart_ok},");
    let _ = writeln!(json, "  \"restart_queries_matched\": {restart_matches},");
    let _ = writeln!(json, "  \"restart_store_version\": {restart_version},");
    let _ = writeln!(json, "  \"wall_seconds\": {:.6}", wall.as_secs_f64());
    json.push_str("}\n");
    std::fs::write("BENCH_crash.json", &json).expect("write BENCH_crash.json");
    eprintln!("\n# wrote BENCH_crash.json");

    let mut failed = false;
    if undetected > 0 {
        eprintln!("FAIL: {undetected} injected corruptions went undetected");
        failed = true;
    }
    if silent_wrong > 0 {
        eprintln!(
            "FAIL: {silent_wrong} recoveries answered silently wrong — the one forbidden outcome"
        );
        failed = true;
    }
    if recovery_failures > 0 {
        eprintln!("FAIL: {recovery_failures} trials failed to recover any generation");
        failed = true;
    }
    if !prune_ok {
        eprintln!("FAIL: prune left the directory unloadable or kept the wrong generations");
        failed = true;
    }
    if !restart_ok {
        eprintln!("FAIL: post-kill restart did not recover byte-identically via CVR_DATA_DIR");
        failed = true;
    }
    if kinds.len() < 50 {
        eprintln!("note: {} trials is below the 50-trial acceptance floor", kinds.len());
    }
    if failed {
        std::process::exit(1);
    }
}
