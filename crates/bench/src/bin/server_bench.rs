//! Closed-loop client harness against the `cvr-server` front door.
//!
//! Starts a real TCP server over a generated database, then drives it with
//! `--connections` concurrent closed-loop clients (each issues its next
//! statement as soon as the previous answer arrives — no think time), each
//! running `--statements` SQL statements drawn round-robin from the 13
//! paper queries plus a generated ad-hoc workload.
//!
//! Before the timed run, every distinct statement is executed once over a
//! single serial connection to record reference response frames; the
//! concurrent run then asserts every response is **byte-identical** to its
//! serial reference — the tentpole invariant ("N concurrent queries ≡ the
//! same N serial") enforced at the wire, not just in-process.
//!
//! Reports per-statement latency (p50 / p95 / p99 / max), aggregate QPS,
//! and writes `BENCH_server.json`.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin server_bench -- --sf 0.005
//! cargo run --release -p cvr-bench --bin server_bench -- --connections 16 --statements 200
//! ```

use cvr_bench::HarnessArgs;
use cvr_data::queries::all_queries;
use cvr_data::workload::WorkloadConfig;
use cvr_server::parser::render_sql;
use cvr_server::protocol::Response;
use cvr_server::{serve, Client, Session};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency at quantile `q` (0..=1) of a sorted sample.
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One client's closed loop: issue `statements` queries round-robin from
/// `sqls` (offset by the client index so connections interleave different
/// queries), assert byte-identity against the serial reference, and record
/// per-statement latency.
fn run_client(
    addr: SocketAddr,
    sqls: Arc<Vec<String>>,
    reference: Arc<HashMap<String, Vec<u8>>>,
    client_idx: usize,
    statements: usize,
) -> Vec<Duration> {
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(statements);
    for i in 0..statements {
        let sql = &sqls[(client_idx + i) % sqls.len()];
        let start = Instant::now();
        let response = client.query(sql).expect("query");
        latencies.push(start.elapsed());
        let bytes = response.encode();
        assert_eq!(
            &bytes,
            reference.get(sql).expect("reference response"),
            "connection {client_idx}: response to `{sql}` diverged from the serial reference"
        );
    }
    client.close().expect("close");
    latencies
}

fn main() {
    let args = HarnessArgs::parse();
    eprintln!("# generating tables + building session (sf {}) ...", args.sf);
    let session = Arc::new(Session::with_parallelism(args.tables(), args.parallelism()));
    let server = serve(session, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // Statement mix: the 13 paper queries + generated ad-hoc ones.
    let mut queries = all_queries();
    queries.extend(
        (WorkloadConfig { seed: args.seed ^ 0x5EBE, count: args.queries.min(255) }).generate(),
    );
    let sqls: Arc<Vec<String>> = Arc::new(queries.iter().map(render_sql).collect());
    eprintln!(
        "# {} distinct statements ({} paper + {} generated)",
        sqls.len(),
        13,
        sqls.len() - 13
    );

    // Serial reference pass: one connection, every statement once. These
    // are the bytes every concurrent response must match.
    let mut reference: HashMap<String, Vec<u8>> = HashMap::new();
    let mut serial_client = Client::connect(addr).expect("connect");
    let serial_start = Instant::now();
    for sql in sqls.iter() {
        let response = serial_client.query(sql).expect("serial query");
        if let Response::Error { code, message } = &response {
            panic!("serial reference failed ({code}): {message}\n  {sql}");
        }
        reference.insert(sql.clone(), response.encode());
    }
    let serial_elapsed = serial_start.elapsed();
    serial_client.close().expect("close");
    let reference = Arc::new(reference);
    eprintln!(
        "# serial reference: {} statements in {:.2}s",
        sqls.len(),
        serial_elapsed.as_secs_f64()
    );

    // Timed closed-loop run.
    let total_statements = args.connections * args.statements;
    eprintln!(
        "# closed loop: {} connections x {} statements ...",
        args.connections, args.statements
    );
    let wall_start = Instant::now();
    let workers: Vec<_> = (0..args.connections)
        .map(|c| {
            let (sqls, reference) = (sqls.clone(), reference.clone());
            let statements = args.statements;
            std::thread::Builder::new()
                .name(format!("bench-client-{c}"))
                .spawn(move || run_client(addr, sqls, reference, c, statements))
                .expect("spawn client")
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(total_statements);
    for w in workers {
        latencies.extend(w.join().expect("client thread"));
    }
    let wall = wall_start.elapsed();
    server.shutdown();

    latencies.sort();
    let (p50, p95, p99) =
        (quantile(&latencies, 0.50), quantile(&latencies, 0.95), quantile(&latencies, 0.99));
    let max = *latencies.last().expect("at least one statement");
    let qps = total_statements as f64 / wall.as_secs_f64();

    println!("\nServer closed-loop harness (sf {})", args.sf);
    println!("===================================\n");
    println!("connections:      {}", args.connections);
    println!("statements/conn:  {}", args.statements);
    println!("distinct queries: {}", sqls.len());
    println!("total statements: {total_statements}");
    println!("wall time:        {:.2}s", wall.as_secs_f64());
    println!("throughput:       {qps:.1} queries/s");
    println!("latency p50:      {:.3}ms", p50.as_secs_f64() * 1e3);
    println!("latency p95:      {:.3}ms", p95.as_secs_f64() * 1e3);
    println!("latency p99:      {:.3}ms", p99.as_secs_f64() * 1e3);
    println!("latency max:      {:.3}ms", max.as_secs_f64() * 1e3);
    println!(
        "\nbyte-identity: all {total_statements} concurrent responses matched the serial reference"
    );

    let mut json = String::from("{\n  \"bench\": \"server\",\n");
    let _ = writeln!(json, "  \"sf\": {},", args.sf);
    let _ = writeln!(json, "  \"connections\": {},", args.connections);
    let _ = writeln!(json, "  \"statements_per_connection\": {},", args.statements);
    let _ = writeln!(json, "  \"distinct_statements\": {},", sqls.len());
    let _ = writeln!(json, "  \"total_statements\": {total_statements},");
    let _ = writeln!(json, "  \"wall_seconds\": {:.6},", wall.as_secs_f64());
    let _ = writeln!(json, "  \"qps\": {qps:.2},");
    let _ = writeln!(json, "  \"p50_ms\": {:.4},", p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"p95_ms\": {:.4},", p95.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"p99_ms\": {:.4},", p99.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"max_ms\": {:.4},", max.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"byte_identical\": {total_statements}");
    json.push_str("}\n");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    eprintln!("\n# wrote BENCH_server.json");
}
