//! Closed-loop client harness against the `cvr-server` front door.
//!
//! Starts a real TCP server over a generated database, then drives it with
//! `--connections` concurrent closed-loop clients (each issues its next
//! statement as soon as the previous answer arrives — no think time), each
//! running `--statements` SQL statements drawn round-robin from the 13
//! paper queries plus a generated ad-hoc workload.
//!
//! The workload is deliberately *repeated*: every statement is issued many
//! times, so the session's result cache should absorb all but the first
//! execution of each distinct statement. The harness measures that
//! directly:
//!
//! 1. **Cold serial pass** — every distinct statement once over a single
//!    connection. Responses must report `cached = false`; their normalized
//!    frames become the byte-identity reference, and their latencies the
//!    cold baseline.
//! 2. **Warm serial pass** — every statement again on the same connection.
//!    Responses must report `cached = true` and be byte-identical (up to
//!    the `cached` flag) to the cold reference; their latencies are the
//!    warm baseline. `warm_speedup_p50 = cold p50 / warm p50`.
//! 3. **Concurrent closed loop** — the timed run. Every response is
//!    asserted byte-identical (normalized) to its reference, and the
//!    decoded `cached` flags yield the aggregate **hit-rate**, gated by
//!    `--min-hit-rate` (CI uses 0.9).
//!
//! Reports per-statement latency (p50 / p95 / p99 / max), aggregate QPS,
//! cold-vs-warm latency, hit-rate, and writes `BENCH_server.json`.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin server_bench -- --sf 0.005
//! cargo run --release -p cvr-bench --bin server_bench -- --connections 16 --min-hit-rate 0.9
//! ```

use cvr_bench::HarnessArgs;
use cvr_data::queries::all_queries;
use cvr_data::workload::WorkloadConfig;
use cvr_server::parser::render_sql;
use cvr_server::protocol::Response;
use cvr_server::{serve, Client, Session};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency at quantile `q` (0..=1) of a sorted sample.
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One client's closed loop: issue `statements` queries round-robin from
/// `sqls` (offset by the client index so connections interleave different
/// queries), assert byte-identity against the serial reference, and record
/// per-statement latency plus how many answers came from the result cache.
fn run_client(
    addr: SocketAddr,
    sqls: Arc<Vec<String>>,
    reference: Arc<HashMap<String, Vec<u8>>>,
    client_idx: usize,
    statements: usize,
) -> (Vec<Duration>, usize) {
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(statements);
    let mut hits = 0;
    for i in 0..statements {
        let sql = &sqls[(client_idx + i) % sqls.len()];
        let start = Instant::now();
        let response = client.query(sql).expect("query");
        latencies.push(start.elapsed());
        if let Response::Result(rs) = &response {
            hits += rs.cached as usize;
        }
        let bytes = response.normalized().encode();
        assert_eq!(
            &bytes,
            reference.get(sql).expect("reference response"),
            "connection {client_idx}: response to `{sql}` diverged from the serial reference"
        );
    }
    client.close().expect("close");
    (latencies, hits)
}

/// Run every statement once over `client`; returns per-statement latency
/// and the normalized response frame, panicking on ERROR responses and on
/// a `cached` flag that disagrees with `expect_cached`.
fn serial_pass(
    client: &mut Client,
    sqls: &[String],
    expect_cached: bool,
    label: &str,
) -> Vec<(Duration, Vec<u8>)> {
    sqls.iter()
        .map(|sql| {
            let start = Instant::now();
            let response = client.query(sql).expect("serial query");
            let elapsed = start.elapsed();
            match &response {
                Response::Error { code, message } => {
                    panic!("{label} pass failed ({code}): {message}\n  {sql}")
                }
                Response::Result(rs) => assert_eq!(
                    rs.cached, expect_cached,
                    "{label} pass: expected cached={expect_cached} for `{sql}`"
                ),
                _ => panic!("{label} pass: unexpected response to `{sql}`"),
            }
            (elapsed, response.normalized().encode())
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    eprintln!("# generating tables + building session (sf {}) ...", args.sf);
    let session = Arc::new(Session::with_parallelism(args.tables(), args.parallelism()));
    let server = serve(session, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // Statement mix: the 13 paper queries + generated ad-hoc ones.
    let mut queries = all_queries();
    queries.extend(
        (WorkloadConfig { seed: args.seed ^ 0x5EBE, count: args.queries.min(255) }).generate(),
    );
    // Dedupe (order-preserving): a generated query that renders to the same
    // SQL as an earlier one would otherwise hit the cache in the cold pass.
    let mut seen = std::collections::HashSet::new();
    let sqls: Arc<Vec<String>> =
        Arc::new(queries.iter().map(render_sql).filter(|s| seen.insert(s.clone())).collect());
    eprintln!(
        "# {} distinct statements ({} paper + {} generated)",
        sqls.len(),
        13,
        sqls.len() - 13
    );

    // Cold serial pass: one connection, every statement once — nothing in
    // the cache yet, so every response must be cold. These normalized
    // frames are the bytes every later response must match.
    let mut serial_client = Client::connect(addr).expect("connect");
    let cold_pass = serial_pass(&mut serial_client, &sqls, false, "cold");
    let mut cold_lat: Vec<Duration> = cold_pass.iter().map(|(d, _)| *d).collect();
    let reference: Arc<HashMap<String, Vec<u8>>> =
        Arc::new(sqls.iter().cloned().zip(cold_pass.into_iter().map(|(_, frame)| frame)).collect());
    cold_lat.sort();
    eprintln!("# cold serial pass: {} statements", sqls.len());

    // Warm serial pass: the same statements again on the same connection.
    // Every answer must now come from the result cache, byte-identical to
    // its cold reference up to the `cached` flag.
    let warm_pass = serial_pass(&mut serial_client, &sqls, true, "warm");
    let mut warm_lat = Vec::with_capacity(warm_pass.len());
    for (sql, (lat, frame)) in sqls.iter().zip(warm_pass) {
        warm_lat.push(lat);
        assert_eq!(&frame, reference.get(sql).unwrap(), "warm hit diverged: `{sql}`");
    }
    warm_lat.sort();
    serial_client.close().expect("close");
    eprintln!("# warm serial pass: {} statements, all cache hits", sqls.len());

    // Timed closed-loop run over the warmed cache.
    let total_statements = args.connections * args.statements;
    eprintln!(
        "# closed loop: {} connections x {} statements ...",
        args.connections, args.statements
    );
    let wall_start = Instant::now();
    let workers: Vec<_> = (0..args.connections)
        .map(|c| {
            let (sqls, reference) = (sqls.clone(), reference.clone());
            let statements = args.statements;
            std::thread::Builder::new()
                .name(format!("bench-client-{c}"))
                .spawn(move || run_client(addr, sqls, reference, c, statements))
                .expect("spawn client")
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(total_statements);
    let mut cache_hits = 0usize;
    for w in workers {
        let (lat, hits) = w.join().expect("client thread");
        latencies.extend(lat);
        cache_hits += hits;
    }
    let wall = wall_start.elapsed();

    // Scheduler and cache counters over the wire (the STATS frame): the
    // same numbers an operator would poll in production.
    let mut stats_client = Client::connect(addr).expect("connect for stats");
    let report = stats_client.stats().expect("stats frame");
    stats_client.close().expect("close");
    server.shutdown();

    latencies.sort();
    let (p50, p95, p99) =
        (quantile(&latencies, 0.50), quantile(&latencies, 0.95), quantile(&latencies, 0.99));
    let max = *latencies.last().expect("at least one statement");
    let qps = total_statements as f64 / wall.as_secs_f64();
    let hit_rate = cache_hits as f64 / total_statements as f64;
    let (cold_p50, cold_p99) = (quantile(&cold_lat, 0.50), quantile(&cold_lat, 0.99));
    let (warm_p50, warm_p99) = (quantile(&warm_lat, 0.50), quantile(&warm_lat, 0.99));
    let speedup_p50 = cold_p50.as_secs_f64() / warm_p50.as_secs_f64().max(1e-9);

    println!("\nServer closed-loop harness (sf {})", args.sf);
    println!("===================================\n");
    println!("connections:      {}", args.connections);
    println!("statements/conn:  {}", args.statements);
    println!("distinct queries: {}", sqls.len());
    println!("total statements: {total_statements}");
    println!("wall time:        {:.2}s", wall.as_secs_f64());
    println!("throughput:       {qps:.1} queries/s");
    println!("latency p50:      {:.3}ms", p50.as_secs_f64() * 1e3);
    println!("latency p95:      {:.3}ms", p95.as_secs_f64() * 1e3);
    println!("latency p99:      {:.3}ms", p99.as_secs_f64() * 1e3);
    println!("latency max:      {:.3}ms", max.as_secs_f64() * 1e3);
    println!("cold p50:         {:.3}ms", cold_p50.as_secs_f64() * 1e3);
    println!("warm p50:         {:.3}ms", warm_p50.as_secs_f64() * 1e3);
    println!("warm speedup p50: {speedup_p50:.1}x");
    println!("cache hit-rate:   {:.1}% ({cache_hits}/{total_statements})", hit_rate * 100.0);
    println!(
        "scheduler:        admitted {} queued {} shed {} throttled {}",
        report.sched.admitted, report.sched.queued, report.sched.shed, report.sched.throttled
    );
    if let Some(cache) = &report.cache {
        println!(
            "cache (server):   {} hits / {} misses, {} / {} bytes",
            cache.result_hits, cache.result_misses, cache.bytes, cache.budget
        );
    }
    println!(
        "\nbyte-identity: all {total_statements} concurrent responses matched the serial reference"
    );

    let mut json = String::from("{\n  \"bench\": \"server\",\n");
    let _ = writeln!(json, "  \"sf\": {},", args.sf);
    let _ = writeln!(json, "  \"connections\": {},", args.connections);
    let _ = writeln!(json, "  \"statements_per_connection\": {},", args.statements);
    let _ = writeln!(json, "  \"distinct_statements\": {},", sqls.len());
    let _ = writeln!(json, "  \"total_statements\": {total_statements},");
    let _ = writeln!(json, "  \"wall_seconds\": {:.6},", wall.as_secs_f64());
    let _ = writeln!(json, "  \"qps\": {qps:.2},");
    let _ = writeln!(json, "  \"p50_ms\": {:.4},", p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"p95_ms\": {:.4},", p95.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"p99_ms\": {:.4},", p99.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"max_ms\": {:.4},", max.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"cold_p50_ms\": {:.4},", cold_p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"cold_p99_ms\": {:.4},", cold_p99.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"warm_p50_ms\": {:.4},", warm_p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"warm_p99_ms\": {:.4},", warm_p99.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"warm_speedup_p50\": {speedup_p50:.2},");
    let _ = writeln!(json, "  \"cache_hit_rate\": {hit_rate:.4},");
    let _ = writeln!(json, "  \"sched_admitted\": {},", report.sched.admitted);
    let _ = writeln!(json, "  \"sched_shed\": {},", report.sched.shed);
    let _ = writeln!(json, "  \"sched_throttled\": {},", report.sched.throttled);
    let _ = writeln!(json, "  \"byte_identical\": {total_statements}");
    json.push_str("}\n");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    eprintln!("\n# wrote BENCH_server.json");

    if hit_rate < args.min_hit_rate {
        eprintln!(
            "FAIL: cache hit-rate {:.4} below the --min-hit-rate {:.4} gate",
            hit_rate, args.min_hit_rate
        );
        std::process::exit(1);
    }
}
