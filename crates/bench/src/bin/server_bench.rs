//! Closed-loop client harness against the `cvr-server` front door.
//!
//! Starts a real TCP server over a generated database, then drives it with
//! `--connections` concurrent closed-loop clients (each issues its next
//! statement as soon as the previous answer arrives — no think time), each
//! running `--statements` SQL statements drawn round-robin from the 13
//! paper queries plus a generated ad-hoc workload.
//!
//! The workload is deliberately *repeated*: every statement is issued many
//! times, so the session's result cache should absorb all but the first
//! execution of each distinct statement. The harness measures that
//! directly:
//!
//! 1. **Cold serial pass** — every distinct statement once over a single
//!    connection. Responses must report `cached = false`; their normalized
//!    frames become the byte-identity reference, and their latencies the
//!    cold baseline.
//! 2. **Warm serial pass** — every statement again on the same connection.
//!    Responses must report `cached = true` and be byte-identical (up to
//!    the `cached` flag) to the cold reference; their latencies are the
//!    warm baseline. `warm_speedup_p50 = cold p50 / warm p50`.
//! 3. **Concurrent closed loop** — the timed run. Every response is
//!    asserted byte-identical (normalized) to its reference, and the
//!    decoded `cached` flags yield the aggregate **hit-rate**, gated by
//!    `--min-hit-rate` (CI uses 0.9).
//!
//! Reports per-statement latency (p50 / p95 / p99 / max), aggregate QPS,
//! cold-vs-warm latency, hit-rate, and writes `BENCH_server.json`.
//!
//! `--trace-overhead` switches to the observability gate: the 13 paper
//! queries run over a *cache-disabled* session (every execution cold, so
//! the delta is operator-span bookkeeping, not cache plumbing) in
//! interleaved untraced/traced in-process passes; the median across
//! queries of per-query p50 ratios is gated by `--max-trace-overhead`
//! (CI uses 0.05) and written to `BENCH_obs.json`. A separate wire pass exercises the `TRACE` frame
//! end-to-end and reports — without gating — what shipping the rendered
//! span tree costs per statement (that cost is a payload feature paid
//! only by requests that set `FLAG_TRACE`, not recording overhead).
//! `--hold-ms N` keeps the server — and its Prometheus endpoint, when
//! `CVR_METRICS_ADDR` bound one — alive after the run so an external
//! prober can scrape it.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin server_bench -- --sf 0.005
//! cargo run --release -p cvr-bench --bin server_bench -- --connections 16 --min-hit-rate 0.9
//! cargo run --release -p cvr-bench --bin server_bench -- --trace-overhead --sf 0.005
//! ```

use cvr_bench::HarnessArgs;
use cvr_core::QueryCtx;
use cvr_data::queries::all_queries;
use cvr_data::workload::WorkloadConfig;
use cvr_obs::Histogram;
use cvr_server::parser::render_sql;
use cvr_server::protocol::Response;
use cvr_server::{serve, Client, Server, Session};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A latency histogram in the shared `cvr-obs` registry (so the series
/// also shows up on the metrics endpoint during `--hold-ms`). Geometric
/// buckets at 2% steps: the default 1–2–5 scale would quantize a 5%
/// overhead gate out of existence.
fn latency_hist(name: &str) -> Arc<Histogram> {
    cvr_obs::global().histogram(name, "server_bench latency series (us)", bounds())
}

/// The harness's shared bucket grid: 2% geometric steps from 1 µs to 120 s.
fn bounds() -> &'static [u64] {
    static BOUNDS: OnceLock<Vec<u64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b: Vec<u64> = Vec::new();
        let mut v = 1.0f64;
        while v < 120e6 {
            let u = v.round() as u64;
            if b.last() != Some(&u) {
                b.push(u);
            }
            v *= 1.02;
        }
        b
    })
}

/// Record a batch of wall-clock samples.
fn observe_all(hist: &Histogram, samples: &[Duration]) {
    for d in samples {
        hist.observe(d.as_micros() as u64);
    }
}

/// Latency at quantile `q` of a histogram series, as a `Duration`.
fn quantile(hist: &Histogram, q: f64) -> Duration {
    Duration::from_micros(hist.quantile(q))
}

/// Keep the server alive `ms` more milliseconds (printing where its
/// metrics endpoint is) so an external prober can scrape it.
fn hold(server: &Server, ms: u64) {
    if ms == 0 {
        return;
    }
    match server.metrics_addr() {
        Some(a) => println!("metrics endpoint: http://{a}/metrics"),
        None => println!("metrics endpoint: disabled (set CVR_METRICS_ADDR)"),
    }
    println!("holding for {ms} ms ...");
    let _ = std::io::stdout().flush();
    std::thread::sleep(Duration::from_millis(ms));
}

/// One client's closed loop: issue `statements` queries round-robin from
/// `sqls` (offset by the client index so connections interleave different
/// queries), assert byte-identity against the serial reference, and record
/// per-statement latency plus how many answers came from the result cache.
fn run_client(
    addr: SocketAddr,
    sqls: Arc<Vec<String>>,
    reference: Arc<HashMap<String, Vec<u8>>>,
    client_idx: usize,
    statements: usize,
) -> (Vec<Duration>, usize) {
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(statements);
    let mut hits = 0;
    for i in 0..statements {
        let sql = &sqls[(client_idx + i) % sqls.len()];
        let start = Instant::now();
        let response = client.query(sql).expect("query");
        latencies.push(start.elapsed());
        if let Response::Result(rs) = &response {
            hits += rs.cached as usize;
        }
        let bytes = response.normalized().encode();
        assert_eq!(
            &bytes,
            reference.get(sql).expect("reference response"),
            "connection {client_idx}: response to `{sql}` diverged from the serial reference"
        );
    }
    client.close().expect("close");
    (latencies, hits)
}

/// Run every statement once over `client`; returns per-statement latency
/// and the normalized response frame, panicking on ERROR responses and on
/// a `cached` flag that disagrees with `expect_cached`.
fn serial_pass(
    client: &mut Client,
    sqls: &[String],
    expect_cached: bool,
    label: &str,
) -> Vec<(Duration, Vec<u8>)> {
    sqls.iter()
        .map(|sql| {
            let start = Instant::now();
            let response = client.query(sql).expect("serial query");
            let elapsed = start.elapsed();
            match &response {
                Response::Error { code, message } => {
                    panic!("{label} pass failed ({code}): {message}\n  {sql}")
                }
                Response::Result(rs) => assert_eq!(
                    rs.cached, expect_cached,
                    "{label} pass: expected cached={expect_cached} for `{sql}`"
                ),
                _ => panic!("{label} pass: unexpected response to `{sql}`"),
            }
            (elapsed, response.normalized().encode())
        })
        .collect()
}

/// `--trace-overhead`: the observability gate. The 13 paper queries run
/// in-process over a cache-disabled session — every execution is cold, so
/// the measured delta is exactly operator-span bookkeeping (span
/// open/close, `IoStats` snapshots, per-morsel attribution), which is the
/// cost a deployment pays whenever tracing is on. Untraced and traced
/// executions interleave within each pass so thermal and frequency drift
/// bias neither series. A separate short wire pass then prices — without
/// gating — what `FLAG_TRACE` requests additionally pay to render and
/// ship the `TRACE` frame: a fixed per-statement payload cost that only
/// requests asking for the span tree incur, and that would drown the
/// sub-millisecond in-process signal if it were folded into the gate.
fn run_trace_overhead(args: &HarnessArgs) {
    eprintln!("# trace-overhead: generating tables + building session (sf {}) ...", args.sf);
    let session = Arc::new(Session::with_cache_budget(args.tables(), args.parallelism(), 0));
    let server = serve(session.clone(), "127.0.0.1:0").expect("bind");
    let queries = all_queries();

    let off = latency_hist("bench_trace_off_us");
    let on = latency_hist("bench_trace_on_us");
    // Per-query histograms on the same bucket grid (unregistered: they
    // exist for the gate statistic, not the scrape surface). The gate is
    // the *median across queries* of per-query p50 ratios: the pooled p50
    // sits on whichever query straddles the middle of a 0.2–4 ms latency
    // spread, so one query's single-bucket wobble swings the pooled ratio
    // by several percent, while the median-of-ratios needs half the
    // workload to wobble the same way before it moves.
    let per_query: Vec<(Histogram, Histogram)> =
        queries.iter().map(|_| (Histogram::new(bounds()), Histogram::new(bounds()))).collect();
    let runs = args.runs.max(5);
    eprintln!(
        "# {} statements x {} passes, untraced vs traced (in-process) ...",
        queries.len(),
        runs
    );
    // Warm-up pass (plans, pool, branch predictors), then the measured
    // passes.
    for q in &queries {
        session.run_ctx(q, &QueryCtx::unbounded()).expect("warm-up");
        session.run_traced(q, &QueryCtx::unbounded()).expect("warm-up traced");
    }
    // Alternate which side of the pair runs first each pass: the first
    // execution of a query warms exactly the pages the second then
    // touches, so a fixed order would systematically flatter whichever
    // series runs second.
    for pass in 0..runs {
        for (qi, q) in queries.iter().enumerate() {
            let mut plain = None;
            let mut traced = None;
            for side in 0..2 {
                if (pass + side) % 2 == 0 {
                    let start = Instant::now();
                    plain = Some(
                        session.run_ctx(q, &QueryCtx::unbounded()).expect("untraced execution"),
                    );
                    let us = start.elapsed().as_micros() as u64;
                    off.observe(us);
                    per_query[qi].0.observe(us);
                } else {
                    let start = Instant::now();
                    traced = Some(
                        session.run_traced(q, &QueryCtx::unbounded()).expect("traced execution"),
                    );
                    let us = start.elapsed().as_micros() as u64;
                    on.observe(us);
                    per_query[qi].1.observe(us);
                }
            }
            let plain = plain.expect("both sides ran");
            let (traced, root) = traced.expect("both sides ran");
            assert_eq!(
                traced.output.to_bytes(),
                plain.output.to_bytes(),
                "{}: tracing must not change the answer",
                q.id
            );
            assert!(root.is_some(), "{}: a traced execution records a root span", q.id);
        }
    }

    // Wire pass: exercise the TRACE frame end-to-end (FLAG_TRACE request,
    // mandatory second frame, non-empty payloads) and price the shipping
    // cost — informational, not gated.
    let wire_off = latency_hist("bench_wire_off_us");
    let wire_on = latency_hist("bench_wire_on_us");
    let mut client = Client::connect(server.addr()).expect("connect");
    let sqls: Vec<String> = queries.iter().map(render_sql).collect();
    for sql in &sqls {
        client.query_opts(sql, 0, 0).expect("wire warm-up");
        client.query_traced(sql, 0, 0).expect("wire warm-up traced");
    }
    for _ in 0..runs.min(5) {
        for sql in &sqls {
            let start = Instant::now();
            let plain = client.query_opts(sql, 0, 0).expect("untraced statement");
            wire_off.observe(start.elapsed().as_micros() as u64);
            assert!(matches!(plain, Response::Result(_)), "untraced `{sql}` must answer");

            let start = Instant::now();
            let (traced, trace) = client.query_traced(sql, 0, 0).expect("traced statement");
            wire_on.observe(start.elapsed().as_micros() as u64);
            assert!(matches!(traced, Response::Result(_)), "traced `{sql}` must answer");
            let (text, json) = trace.expect("a traced execution returns its span tree");
            assert!(!text.is_empty() && !json.is_empty(), "trace payload for `{sql}`");
        }
    }
    client.close().expect("close");

    let (off_p50, off_p99) = (quantile(&off, 0.50), quantile(&off, 0.99));
    let (on_p50, on_p99) = (quantile(&on, 0.50), quantile(&on, 0.99));
    let mut ratios: Vec<f64> = per_query
        .iter()
        .map(|(o, t)| t.quantile(0.50) as f64 / (o.quantile(0.50) as f64).max(1e-9) - 1.0)
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead = ratios[ratios.len() / 2];
    let (wire_off_p50, wire_on_p50) = (quantile(&wire_off, 0.50), quantile(&wire_on, 0.50));
    let frame_cost = wire_on_p50.saturating_sub(wire_off_p50);

    println!("\nTracing overhead (sf {}, cold executions)", args.sf);
    println!("=========================================\n");
    println!("samples/series:   {}", off.count());
    println!("untraced p50:     {:.3}ms", off_p50.as_secs_f64() * 1e3);
    println!("untraced p99:     {:.3}ms", off_p99.as_secs_f64() * 1e3);
    println!("traced p50:       {:.3}ms", on_p50.as_secs_f64() * 1e3);
    println!("traced p99:       {:.3}ms", on_p99.as_secs_f64() * 1e3);
    println!(
        "p50 overhead:     {:+.2}% (median of per-query p50 ratios; gate {:.0}%)",
        overhead * 100.0,
        args.max_trace_overhead * 100.0
    );
    println!(
        "TRACE frame cost: ~{:.3}ms/statement over the wire (payload, ungated)",
        frame_cost.as_secs_f64() * 1e3
    );

    let mut json = String::from("{\n  \"bench\": \"obs\",\n");
    let _ = writeln!(json, "  \"sf\": {},", args.sf);
    let _ = writeln!(json, "  \"statements\": {},", queries.len());
    let _ = writeln!(json, "  \"passes\": {runs},");
    let _ = writeln!(json, "  \"untraced_p50_ms\": {:.4},", off_p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"untraced_p99_ms\": {:.4},", off_p99.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"traced_p50_ms\": {:.4},", on_p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"traced_p99_ms\": {:.4},", on_p99.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"p50_overhead\": {overhead:.4},");
    let _ = writeln!(json, "  \"wire_untraced_p50_ms\": {:.4},", wire_off_p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"wire_traced_p50_ms\": {:.4},", wire_on_p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"trace_frame_cost_ms\": {:.4},", frame_cost.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"gate\": {:.4}", args.max_trace_overhead);
    json.push_str("}\n");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    eprintln!("\n# wrote BENCH_obs.json");

    hold(&server, args.hold_ms);
    server.shutdown();
    if overhead > args.max_trace_overhead {
        eprintln!(
            "FAIL: tracing p50 overhead {:.4} above the --max-trace-overhead {:.4} gate",
            overhead, args.max_trace_overhead
        );
        std::process::exit(1);
    }
}

fn main() {
    let args = HarnessArgs::parse();
    if args.trace_overhead {
        run_trace_overhead(&args);
        return;
    }
    eprintln!("# generating tables + building session (sf {}) ...", args.sf);
    let session = Arc::new(Session::with_parallelism(args.tables(), args.parallelism()));
    let server = serve(session, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // Statement mix: the 13 paper queries + generated ad-hoc ones.
    let mut queries = all_queries();
    queries.extend(
        (WorkloadConfig { seed: args.seed ^ 0x5EBE, count: args.queries.min(255) }).generate(),
    );
    // Dedupe (order-preserving): a generated query that renders to the same
    // SQL as an earlier one would otherwise hit the cache in the cold pass.
    let mut seen = std::collections::HashSet::new();
    let sqls: Arc<Vec<String>> =
        Arc::new(queries.iter().map(render_sql).filter(|s| seen.insert(s.clone())).collect());
    eprintln!(
        "# {} distinct statements ({} paper + {} generated)",
        sqls.len(),
        13,
        sqls.len() - 13
    );

    // Cold serial pass: one connection, every statement once — nothing in
    // the cache yet, so every response must be cold. These normalized
    // frames are the bytes every later response must match.
    let mut serial_client = Client::connect(addr).expect("connect");
    let cold_pass = serial_pass(&mut serial_client, &sqls, false, "cold");
    let cold_lat: Vec<Duration> = cold_pass.iter().map(|(d, _)| *d).collect();
    let reference: Arc<HashMap<String, Vec<u8>>> =
        Arc::new(sqls.iter().cloned().zip(cold_pass.into_iter().map(|(_, frame)| frame)).collect());
    eprintln!("# cold serial pass: {} statements", sqls.len());

    // Warm serial pass: the same statements again on the same connection.
    // Every answer must now come from the result cache, byte-identical to
    // its cold reference up to the `cached` flag.
    let warm_pass = serial_pass(&mut serial_client, &sqls, true, "warm");
    let mut warm_lat = Vec::with_capacity(warm_pass.len());
    for (sql, (lat, frame)) in sqls.iter().zip(warm_pass) {
        warm_lat.push(lat);
        assert_eq!(&frame, reference.get(sql).unwrap(), "warm hit diverged: `{sql}`");
    }
    serial_client.close().expect("close");
    eprintln!("# warm serial pass: {} statements, all cache hits", sqls.len());

    // Timed closed-loop run over the warmed cache.
    let total_statements = args.connections * args.statements;
    eprintln!(
        "# closed loop: {} connections x {} statements ...",
        args.connections, args.statements
    );
    let wall_start = Instant::now();
    let workers: Vec<_> = (0..args.connections)
        .map(|c| {
            let (sqls, reference) = (sqls.clone(), reference.clone());
            let statements = args.statements;
            std::thread::Builder::new()
                .name(format!("bench-client-{c}"))
                .spawn(move || run_client(addr, sqls, reference, c, statements))
                .expect("spawn client")
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(total_statements);
    let mut cache_hits = 0usize;
    for w in workers {
        let (lat, hits) = w.join().expect("client thread");
        latencies.extend(lat);
        cache_hits += hits;
    }
    let wall = wall_start.elapsed();

    // Scheduler and cache counters over the wire (the STATS frame): the
    // same numbers an operator would poll in production.
    let mut stats_client = Client::connect(addr).expect("connect for stats");
    let report = stats_client.stats().expect("stats frame");
    stats_client.close().expect("close");
    hold(&server, args.hold_ms);
    server.shutdown();

    // Percentiles come from the shared `cvr-obs` histogram — the same
    // estimator the server's own `cvr_query_latency_us` series uses — so
    // the harness and the STATS/metrics surfaces can never disagree on
    // methodology.
    let loop_hist = latency_hist("bench_closed_loop_us");
    let cold_hist = latency_hist("bench_cold_us");
    let warm_hist = latency_hist("bench_warm_us");
    observe_all(&loop_hist, &latencies);
    observe_all(&cold_hist, &cold_lat);
    observe_all(&warm_hist, &warm_lat);
    let (p50, p95, p99) =
        (quantile(&loop_hist, 0.50), quantile(&loop_hist, 0.95), quantile(&loop_hist, 0.99));
    let max = *latencies.iter().max().expect("at least one statement");
    let qps = total_statements as f64 / wall.as_secs_f64();
    let hit_rate = cache_hits as f64 / total_statements as f64;
    let (cold_p50, cold_p99) = (quantile(&cold_hist, 0.50), quantile(&cold_hist, 0.99));
    let (warm_p50, warm_p99) = (quantile(&warm_hist, 0.50), quantile(&warm_hist, 0.99));
    let speedup_p50 = cold_p50.as_secs_f64() / warm_p50.as_secs_f64().max(1e-9);

    println!("\nServer closed-loop harness (sf {})", args.sf);
    println!("===================================\n");
    println!("connections:      {}", args.connections);
    println!("statements/conn:  {}", args.statements);
    println!("distinct queries: {}", sqls.len());
    println!("total statements: {total_statements}");
    println!("wall time:        {:.2}s", wall.as_secs_f64());
    println!("throughput:       {qps:.1} queries/s");
    println!("latency p50:      {:.3}ms", p50.as_secs_f64() * 1e3);
    println!("latency p95:      {:.3}ms", p95.as_secs_f64() * 1e3);
    println!("latency p99:      {:.3}ms", p99.as_secs_f64() * 1e3);
    println!("latency max:      {:.3}ms", max.as_secs_f64() * 1e3);
    println!("cold p50:         {:.3}ms", cold_p50.as_secs_f64() * 1e3);
    println!("warm p50:         {:.3}ms", warm_p50.as_secs_f64() * 1e3);
    println!("warm speedup p50: {speedup_p50:.1}x");
    println!("cache hit-rate:   {:.1}% ({cache_hits}/{total_statements})", hit_rate * 100.0);
    println!(
        "scheduler:        admitted {} queued {} shed {} throttled {}",
        report.sched.admitted, report.sched.queued, report.sched.shed, report.sched.throttled
    );
    if let Some(cache) = &report.cache {
        println!(
            "cache (server):   {} hits / {} misses, {} / {} bytes",
            cache.result_hits, cache.result_misses, cache.bytes, cache.budget
        );
    }
    println!(
        "\nbyte-identity: all {total_statements} concurrent responses matched the serial reference"
    );

    let mut json = String::from("{\n  \"bench\": \"server\",\n");
    let _ = writeln!(json, "  \"sf\": {},", args.sf);
    let _ = writeln!(json, "  \"connections\": {},", args.connections);
    let _ = writeln!(json, "  \"statements_per_connection\": {},", args.statements);
    let _ = writeln!(json, "  \"distinct_statements\": {},", sqls.len());
    let _ = writeln!(json, "  \"total_statements\": {total_statements},");
    let _ = writeln!(json, "  \"wall_seconds\": {:.6},", wall.as_secs_f64());
    let _ = writeln!(json, "  \"qps\": {qps:.2},");
    let _ = writeln!(json, "  \"p50_ms\": {:.4},", p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"p95_ms\": {:.4},", p95.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"p99_ms\": {:.4},", p99.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"max_ms\": {:.4},", max.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"cold_p50_ms\": {:.4},", cold_p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"cold_p99_ms\": {:.4},", cold_p99.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"warm_p50_ms\": {:.4},", warm_p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"warm_p99_ms\": {:.4},", warm_p99.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"warm_speedup_p50\": {speedup_p50:.2},");
    let _ = writeln!(json, "  \"cache_hit_rate\": {hit_rate:.4},");
    let _ = writeln!(json, "  \"sched_admitted\": {},", report.sched.admitted);
    let _ = writeln!(json, "  \"sched_shed\": {},", report.sched.shed);
    let _ = writeln!(json, "  \"sched_throttled\": {},", report.sched.throttled);
    let _ = writeln!(json, "  \"byte_identical\": {total_statements}");
    json.push_str("}\n");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    eprintln!("\n# wrote BENCH_server.json");

    if hit_rate < args.min_hit_rate {
        eprintln!(
            "FAIL: cache hit-rate {:.4} below the --min-hit-rate {:.4} gate",
            hit_rate, args.min_hit_rate
        );
        std::process::exit(1);
    }
}
