//! Extension experiment: "super tuples" (Halverson et al. \[13\]) applied to
//! the vertical-partitioning design.
//!
//! The paper's conclusion lists "reduced tuple overhead" and "virtual
//! record-ids" among the row-store changes needed to make column-oriented
//! physical designs viable. Super-tuple VP stores each column as packed
//! values (4 B/int, no per-tuple headers, positions virtual) but keeps the
//! tuple-at-a-time row executor — so the comparison isolates storage
//! overhead from executor architecture:
//!
//! ```text
//! cargo run --release -p cvr-bench --bin super_tuples -- --sf 0.05
//! ```

use cvr_bench::{paper, Harness, HarnessArgs, Measurement};
use cvr_core::{ColumnEngine, EngineConfig};
use cvr_row::designs::{RowDb, RowDesign, SuperVpDb};

fn main() {
    let args = HarnessArgs::parse();
    let harness = Harness::new(args.clone());
    eprintln!("# building T, VP, super-VP, and the column store (sf {}) ...", args.sf);
    let t = RowDb::build(harness.tables.clone(), RowDesign::Traditional);
    let vp = RowDb::build(harness.tables.clone(), RowDesign::VerticalPartitioning);
    let sup = SuperVpDb::build(harness.tables.clone());
    let cs = ColumnEngine::new(harness.tables.clone());

    let mt: Vec<Measurement> = harness.measure_series(|q, io| t.execute(q, io));
    let mvp: Vec<Measurement> = harness.measure_series(|q, io| vp.execute(q, io));
    let msup: Vec<Measurement> = harness.measure_series(|q, io| sup.execute(q, io));
    let par = args.parallelism();
    let mcs: Vec<Measurement> =
        harness.measure_series(|q, io| cs.execute_with(q, EngineConfig::FULL, par, io));

    println!(
        "\nExtension: super-tuple VP vs plain VP vs traditional vs column store (sf {})",
        args.sf
    );
    println!("===========================================================================\n");
    println!("{:<8}{:>12}{:>12}{:>14}{:>12}", "query", "T", "VP", "super-VP", "CS (tICL)");
    let mut sums = [0.0f64; 4];
    for i in 0..13 {
        let row = [mt[i].seconds(), mvp[i].seconds(), msup[i].seconds(), mcs[i].seconds()];
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
        println!(
            "Q{:<7}{:>12.3}{:>12.3}{:>14.3}{:>12.3}",
            paper::QUERY_LABELS[i],
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }
    println!(
        "{:<8}{:>12.3}{:>12.3}{:>14.3}{:>12.3}",
        "AVG",
        sums[0] / 13.0,
        sums[1] / 13.0,
        sums[2] / 13.0,
        sums[3] / 13.0
    );
    println!(
        "\nsuper tuples close {:.0}% of the VP-vs-traditional gap on bytes alone,\n\
         but the column store stays {:.1}x ahead of super-VP: the rest of the\n\
         paper's Figure 7 stack (late materialization, direct operation on\n\
         compressed data, the invisible join) lives in the executor.",
        (1.0 - (sums[2] - sums[0]).max(0.0) / (sums[1] - sums[0]).max(1e-9)) * 100.0,
        sums[2] / sums[3]
    );
}
