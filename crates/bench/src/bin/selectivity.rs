//! Section 3's per-query LINEORDER selectivity table: paper vs measured vs
//! the planner's histogram-driven estimate.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin selectivity -- --sf 0.1
//! ```

use cvr_bench::{build_planner, paper, HarnessArgs};
use cvr_core::ColumnEngine;
use cvr_data::queries::all_queries;
use cvr_data::reference::measured_selectivity;

fn main() {
    let args = HarnessArgs::parse();
    let tables = args.tables();
    eprintln!("# building catalog statistics ...");
    let engine = ColumnEngine::new(tables.clone());
    let planner = build_planner(&args, &engine);
    println!("\nSection 3: LINEORDER selectivities (sf {})", args.sf);
    println!("==========================================\n");
    println!("{:<8}{:>14}{:>14}{:>14}{:>10}", "query", "paper", "measured", "estimate", "ratio");
    let rows = tables.lineorder.num_rows() as f64;
    for (q, label) in all_queries().iter().zip(paper::QUERY_LABELS) {
        let measured = measured_selectivity(&tables, q);
        let estimate = planner.estimate_selectivity(q);
        let ratio = if measured > 0.0 { measured / q.paper_selectivity } else { 0.0 };
        let note =
            if q.paper_selectivity * rows < 20.0 { "  (few expected rows at this sf)" } else { "" };
        println!(
            "Q{label:<7}{:>14.2e}{measured:>14.2e}{estimate:>14.2e}{ratio:>10.2}{note}",
            q.paper_selectivity
        );
    }
}
