//! Figure 5: baseline comparison — RS, RS (MV), CS, CS (Row-MV).
//!
//! ```text
//! cargo run --release -p cvr-bench --bin figure5 -- --sf 0.05
//! ```

use cvr_bench::{paper, render_figure, Harness, HarnessArgs, Measurement};
use cvr_core::{ColumnEngine, EngineConfig, RowMvDb};
use cvr_row::designs::{RowDb, RowDesign};

fn main() {
    let args = HarnessArgs::parse();
    let harness = Harness::new(args.clone());
    eprintln!("# building designs (sf {}) ...", args.sf);

    let rs = RowDb::build(harness.tables.clone(), RowDesign::Traditional);
    let rs_mv = RowDb::build(harness.tables.clone(), RowDesign::MaterializedViews);
    let cs = ColumnEngine::new(harness.tables.clone());
    cvr_bench::maybe_explain(&args, &cs);
    let cs_row_mv = RowMvDb::build(harness.tables.clone());

    let mut ours: Vec<(String, Vec<Measurement>)> = Vec::new();
    eprintln!("# RS (traditional row store)");
    ours.push(("RS".into(), harness.measure_series(|q, io| rs.execute(q, io))));
    eprintln!("# RS (MV)");
    ours.push(("RS (MV)".into(), harness.measure_series(|q, io| rs_mv.execute(q, io))));
    eprintln!("# CS (full C-Store: tICL, {} thread(s))", args.threads);
    let par = args.parallelism();
    ours.push((
        "CS".into(),
        harness.measure_series(|q, io| cs.execute_with(q, EngineConfig::FULL, par, io)),
    ));
    eprintln!("# CS (Row-MV)");
    ours.push(("CS (Row-MV)".into(), harness.measure_series(|q, io| cs_row_mv.execute(q, io))));

    println!(
        "{}",
        render_figure(
            "Figure 5: Baseline performance of C-Store and System X",
            &ours,
            &paper::figure5(),
            args.sf,
        )
    );
}
