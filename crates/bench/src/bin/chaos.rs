//! Fault-injection harness against the `cvr-server` front door.
//!
//! Starts a real TCP server over a generated database, computes a serial
//! byte-identity reference with faults disarmed, then arms the `--fault`
//! spec (injected page-read failures, worker panics, morsel stalls, frame
//! truncation) and drives the server with `--connections` concurrent
//! [`RetryClient`] workers. Three phases, four gates:
//!
//! 1. **Workload** — every statement must *eventually* (client retries plus
//!    a bounded harness-level retry for contained worker panics) produce a
//!    `RESULT` byte-identical to its reference. Gates: zero byte mismatches
//!    and availability ≥ `--min-availability`.
//! 2. **Cancel probes** — with every morsel stalled, `--cancels` queries
//!    are cancelled from a second connection; the time from the cancel
//!    being acknowledged to the runner receiving `ERROR 100` is the
//!    cancel-to-ERROR latency. Gate: p99 ≤ `--max-cancel-p99-ms` (when at
//!    least 10 probes yield a sample). A few `deadline_ms = 1` probes ride
//!    along and must come back as `ERROR 101`.
//! 3. **Recovery** — faults disarmed, every statement once more: all must
//!    answer byte-identically (the server took no lasting damage).
//!
//! A watchdog exits 2 when the whole run exceeds `--watchdog` seconds — a
//! hang is a gate failure, not a stuck CI job. Writes `BENCH_chaos.json`.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin chaos -- --sf 0.02
//! cargo run --release -p cvr-bench --bin chaos -- --sf 0.005 --fault io:0.05,panic:0.05
//! ```

use cvr_bench::HarnessArgs;
use cvr_core::morsel::Parallelism;
use cvr_core::QueryError;
use cvr_data::queries::all_queries;
use cvr_data::workload::WorkloadConfig;
use cvr_plan::PhysicalChoice;
use cvr_server::parser::render_sql;
use cvr_server::protocol::Response;
use cvr_server::{serve, Client, ClientConfig, RetryClient, Session};
use cvr_storage::fault::{self, InjectedFault};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Harness-level retries per statement on top of the client's own: worker
/// panics (code 99) are not client-retryable by design, but the harness
/// knows they are injected and bounded.
const OUTER_RETRIES: usize = 6;

static DONE: AtomicBool = AtomicBool::new(false);

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Silence the default panic hook for *injected* panics — with `panic:P`
/// armed, every contained worker crash would otherwise dump a backtrace.
fn install_quiet_panic_hook() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload.downcast_ref::<InjectedFault>().is_some()
            || payload.downcast_ref::<&str>().is_some_and(|s| s.contains("injected fault"))
            || payload.downcast_ref::<String>().is_some_and(|s| s.contains("injected fault"));
        if !injected {
            prev(info);
        }
    }));
}

/// One worker's share of the chaos workload. Returns
/// `(answered, mismatches, gave_up, injected_retries)`.
fn run_worker(
    addr: SocketAddr,
    sqls: Arc<Vec<String>>,
    reference: Arc<HashMap<String, Vec<u8>>>,
    worker_idx: usize,
    statements: usize,
) -> (usize, usize, usize, usize) {
    let mut client = RetryClient::new(addr, ClientConfig::default());
    let (mut answered, mut mismatches, mut gave_up, mut injected_retries) = (0, 0, 0, 0);
    for i in 0..statements {
        let sql = &sqls[(worker_idx + i) % sqls.len()];
        let mut ok = false;
        for _ in 0..=OUTER_RETRIES {
            match client.query(sql) {
                Ok(resp @ Response::Error { .. }) => {
                    // Contained worker panic (99) or a retryable error that
                    // outlived the client's own budget: both are injected
                    // and bounded — retry at the harness level.
                    let Response::Error { code, message } = &resp else { unreachable!() };
                    let injected = (*code == cvr_server::server::ERROR_CODE_PANIC
                        && message.contains("injected"))
                        || QueryError::retryable_code(*code);
                    assert!(injected, "unexpected error for `{sql}`: {code} {message}");
                    injected_retries += 1;
                }
                Ok(resp) => {
                    if resp.normalized().encode() == reference[sql] {
                        answered += 1;
                    } else {
                        mismatches += 1;
                    }
                    ok = true;
                    break;
                }
                Err(_) => injected_retries += 1, // transport failure past the client's budget
            }
        }
        if !ok {
            gave_up += 1;
        }
    }
    (answered, mismatches, gave_up, injected_retries)
}

fn main() {
    let args = HarnessArgs::parse();
    install_quiet_panic_hook();
    let watchdog_secs = args.watchdog.max(1);
    std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(watchdog_secs);
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(250));
            if DONE.load(Ordering::Relaxed) {
                return;
            }
        }
        eprintln!("FAIL: watchdog fired after {watchdog_secs}s — the chaos run hung");
        std::process::exit(2);
    });

    eprintln!("# generating tables + building session (sf {}) ...", args.sf);
    // Cache disabled and small morsels: every statement must *execute* (a
    // cache hit never reaches a fault site), and more morsel boundaries
    // mean more fault/cancellation windows.
    let tables = args.tables();
    let par = Parallelism { threads: args.threads.max(2), morsel_rows: 1024 };
    let session = Arc::new(Session::with_cache_budget(tables.clone(), par, 0));
    let server = serve(session.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // Statement mix: the 13 paper queries + generated ad-hoc ones.
    let mut queries = all_queries();
    queries.extend(
        (WorkloadConfig { seed: args.seed ^ 0xC4A0, count: args.queries.min(255) }).generate(),
    );
    let mut seen = std::collections::HashSet::new();
    let sqls: Arc<Vec<String>> =
        Arc::new(queries.iter().map(render_sql).filter(|s| seen.insert(s.clone())).collect());

    // Serial reference with faults disarmed: the bytes every later answer
    // must match.
    fault::install(None);
    let mut serial = Client::connect(addr).expect("connect");
    let reference: Arc<HashMap<String, Vec<u8>>> = Arc::new(
        sqls.iter()
            .map(|sql| {
                let resp = serial.query(sql).expect("reference query");
                assert!(matches!(resp, Response::Result(_)), "reference failed for `{sql}`");
                (sql.clone(), resp.normalized().encode())
            })
            .collect(),
    );
    eprintln!("# reference: {} distinct statements", sqls.len());

    // Phase 1: the faulted workload. Faults are armed per-session (every
    // statement adopts them, including frame writes); arming also runs the
    // multiplicative-semantics guardrail — an `io:P` whose expected fault
    // count over a full fact scan exceeds ~0.5 draws a `cvr-obs` warning,
    // since probabilities are per page touch, not per query.
    eprintln!(
        "# arming faults: {} ({} connections x {} statements)",
        args.fault, args.connections, args.statements
    );
    session.set_faults(Some(&args.fault)).expect("--fault spec");
    let wall_start = Instant::now();
    let workers: Vec<_> = (0..args.connections)
        .map(|w| {
            let (sqls, reference) = (sqls.clone(), reference.clone());
            let statements = args.statements;
            std::thread::Builder::new()
                .name(format!("chaos-client-{w}"))
                .spawn(move || run_worker(addr, sqls, reference, w, statements))
                .expect("spawn worker")
        })
        .collect();
    let (mut answered, mut mismatches, mut gave_up, mut injected_retries) = (0, 0, 0, 0);
    for w in workers {
        let (a, m, g, r) = w.join().expect("worker thread");
        answered += a;
        mismatches += m;
        gave_up += g;
        injected_retries += r;
    }
    let workload_wall = wall_start.elapsed();
    let total = args.connections * args.statements;
    let availability = answered as f64 / total as f64;
    eprintln!(
        "# workload: {answered}/{total} answered byte-identically ({injected_retries} retries, {gave_up} gave up, {mismatches} mismatches)"
    );

    // Phase 2: cancel probes under a deterministic stall — every morsel
    // sleeps, so the query is mid-run when the cancel lands and the
    // cancel-to-ERROR latency is dominated by the poll interval. The probe
    // server forces GIANT morsels (far past the 16 k default): without the
    // morsel-size cap and the in-scan cancellation polls, a single morsel
    // would run to completion and the cancel latency would be unbounded.
    const GIANT_MORSEL_ROWS: u32 = 1 << 22;
    session.set_faults(None).expect("disarm");
    let probe_par = Parallelism { threads: 2, morsel_rows: GIANT_MORSEL_ROWS };
    let probe_session = Arc::new(Session::with_cache_budget(tables.clone(), probe_par, 0));
    probe_session.set_faults(Some("stall:1.0:3")).expect("stall spec");
    let probe_server = serve(probe_session.clone(), "127.0.0.1:0").expect("bind probe");
    let probe_addr = probe_server.addr();
    let cancel_sql = {
        let q = all_queries()
            .into_iter()
            .find(|q| matches!(probe_session.explain(q).choice, PhysicalChoice::Column(_)))
            .expect("a column-plan paper query");
        render_sql(&q)
    };
    let mut cancel_lat: Vec<Duration> = Vec::new();
    let mut cancels_missed = 0usize;
    let mut canceller = Client::connect(probe_addr).expect("connect canceller");
    for probe in 0..args.cancels {
        let token = 0xCA0 + probe as u64 + 1;
        let sql = cancel_sql.clone();
        let runner = std::thread::spawn(move || {
            let mut client = Client::connect(probe_addr).expect("connect runner");
            let resp = client.query_opts(&sql, token, 0).expect("probe answers");
            (resp, Instant::now())
        });
        let mut found_at = None;
        while found_at.is_none() && !runner.is_finished() {
            if canceller.cancel(token).expect("cancel round-trip") {
                found_at = Some(Instant::now());
            }
        }
        let (resp, done_at) = runner.join().expect("runner thread");
        match (found_at, resp) {
            (Some(t0), Response::Error { code, .. }) if code == QueryError::CODE_CANCELLED => {
                cancel_lat.push(done_at.saturating_duration_since(t0));
            }
            // The query outran the cancel (or the cancel never found it):
            // not a failure, just no latency sample.
            _ => cancels_missed += 1,
        }
    }
    cancel_lat.sort();
    let (cancel_p50, cancel_p99) = (quantile(&cancel_lat, 0.50), quantile(&cancel_lat, 0.99));
    eprintln!(
        "# cancel probes: {}/{} sampled, p99 {:.1}ms",
        cancel_lat.len(),
        args.cancels,
        cancel_p99.as_secs_f64() * 1e3
    );

    // Deadline probes: a 1 ms deadline under the same stall must trip.
    let mut deadline_hits = 0usize;
    let deadline_probes = 8usize;
    for _ in 0..deadline_probes {
        match canceller.query_opts(&cancel_sql, 0, 1).expect("deadline probe") {
            Response::Error { code, .. } if code == QueryError::CODE_DEADLINE => deadline_hits += 1,
            _ => {}
        }
    }
    canceller.close().expect("close");
    probe_server.shutdown();

    // Phase 3: recovery — faults cleared, every statement byte-identical.
    session.set_faults(None).expect("disarm");
    let mut recovered = Client::connect(addr).expect("reconnect");
    for sql in sqls.iter() {
        let resp = recovered.query(sql).expect("recovery query");
        assert_eq!(
            resp.normalized().encode(),
            reference[sql],
            "post-chaos answer diverged for `{sql}`"
        );
    }
    let stats = recovered.stats().expect("stats frame");
    recovered.close().expect("close");
    eprintln!("# recovery: all {} statements byte-identical after disarm", sqls.len());
    server.shutdown();
    DONE.store(true, Ordering::Relaxed);

    println!("\nChaos harness (sf {})", args.sf);
    println!("========================\n");
    println!("fault spec:       {}", args.fault);
    println!("connections:      {}", args.connections);
    println!("statements/conn:  {}", args.statements);
    println!("total statements: {total}");
    println!("workload wall:    {:.2}s", workload_wall.as_secs_f64());
    println!("availability:     {:.4} ({answered}/{total})", availability);
    println!("byte mismatches:  {mismatches}");
    println!("gave up:          {gave_up}");
    println!("injected retries: {injected_retries}");
    println!(
        "cancel samples:   {}/{} ({cancels_missed} outran the cancel, {GIANT_MORSEL_ROWS}-row morsels forced)",
        cancel_lat.len(),
        args.cancels
    );
    println!("cancel p50:       {:.3}ms", cancel_p50.as_secs_f64() * 1e3);
    println!("cancel p99:       {:.3}ms", cancel_p99.as_secs_f64() * 1e3);
    println!("deadline hits:    {deadline_hits}/{deadline_probes}");
    println!(
        "scheduler:        admitted {} shed {} abandoned {} throttled {}",
        stats.sched.admitted, stats.sched.shed, stats.sched.abandoned, stats.sched.throttled
    );

    let mut json = String::from("{\n  \"bench\": \"chaos\",\n");
    let _ = writeln!(json, "  \"sf\": {},", args.sf);
    let _ = writeln!(json, "  \"fault\": \"{}\",", args.fault);
    let _ = writeln!(json, "  \"connections\": {},", args.connections);
    let _ = writeln!(json, "  \"statements_per_connection\": {},", args.statements);
    let _ = writeln!(json, "  \"total_statements\": {total},");
    let _ = writeln!(json, "  \"workload_wall_seconds\": {:.6},", workload_wall.as_secs_f64());
    let _ = writeln!(json, "  \"answered\": {answered},");
    let _ = writeln!(json, "  \"availability\": {availability:.6},");
    let _ = writeln!(json, "  \"byte_mismatches\": {mismatches},");
    let _ = writeln!(json, "  \"gave_up\": {gave_up},");
    let _ = writeln!(json, "  \"injected_retries\": {injected_retries},");
    let _ = writeln!(json, "  \"cancel_probes\": {},", args.cancels);
    let _ = writeln!(json, "  \"cancel_morsel_rows\": {GIANT_MORSEL_ROWS},");
    let _ = writeln!(json, "  \"cancel_samples\": {},", cancel_lat.len());
    let _ = writeln!(json, "  \"cancel_p50_ms\": {:.4},", cancel_p50.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"cancel_p99_ms\": {:.4},", cancel_p99.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"deadline_hits\": {deadline_hits},");
    let _ = writeln!(json, "  \"deadline_probes\": {deadline_probes},");
    let _ = writeln!(json, "  \"sched_admitted\": {},", stats.sched.admitted);
    let _ = writeln!(json, "  \"sched_shed\": {},", stats.sched.shed);
    let _ = writeln!(json, "  \"sched_abandoned\": {},", stats.sched.abandoned);
    let _ = writeln!(json, "  \"sched_throttled\": {}", stats.sched.throttled);
    json.push_str("}\n");
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    eprintln!("\n# wrote BENCH_chaos.json");

    let mut failed = false;
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} responses diverged from the serial reference");
        failed = true;
    }
    if availability < args.min_availability {
        eprintln!(
            "FAIL: availability {availability:.4} below the --min-availability {:.4} gate",
            args.min_availability
        );
        failed = true;
    }
    if cancel_lat.len() >= 10 && cancel_p99.as_secs_f64() * 1e3 > args.max_cancel_p99_ms {
        eprintln!(
            "FAIL: cancel p99 {:.1}ms above the --max-cancel-p99-ms {:.1} gate",
            cancel_p99.as_secs_f64() * 1e3,
            args.max_cancel_p99_ms
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
