//! Morsel-driven parallel scaling: the 13-query SSBM flight set at thread
//! counts from {1, 2, 4, 8} up to `max(--threads, 4)` (the sweep never
//! stops below 4, so the table is meaningful even on boxes whose default
//! thread count resolves to 1), with a differential check that every thread
//! count reproduces the `--threads 1` outputs and I/O stats exactly.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin scaling -- --sf 0.02
//! ```
//!
//! Two time columns are printed per thread count:
//!
//! * **cpu-crit** — critical-path CPU time: the serial coordinator portion
//!   plus, for each morsel fan-out, the busiest worker's *thread* CPU time.
//!   This is the quantity parallelism actually shrinks, and it is measurable
//!   even when the container pins fewer cores than there are workers (CI
//!   runners, throttled laptops) — wall-clock on such machines cannot drop
//!   below total work no matter how well the engine scales.
//! * **wall** — plain wall-clock, which tracks cpu-crit when the machine has
//!   at least as many idle cores as workers.
//!
//! Speedup is reported on cpu-crit. Outputs and merged I/O accounting are
//! byte-identical across thread counts by construction (per-morsel logs
//! replay in morsel order); the binary verifies both and fails loudly on any
//! divergence.

use cvr_bench::HarnessArgs;
use cvr_core::morsel::{profile, thread_cpu_time, Parallelism};
use cvr_core::{ColumnEngine, EngineConfig};
use cvr_data::queries::all_queries;
use cvr_data::result::QueryOutput;
use cvr_storage::io::{IoSession, IoStats};
use std::time::{Duration, Instant};

/// One thread count's measurement over the full flight set.
struct Sweep {
    threads: usize,
    cpu_crit: Duration,
    wall: Duration,
    outputs: Vec<QueryOutput>,
    io: Vec<IoStats>,
}

fn measure(engine: &ColumnEngine, args: &HarnessArgs, threads: usize) -> Sweep {
    let par = Parallelism::with_threads(threads);
    let queries = all_queries();
    let mut cpu_crit = Duration::ZERO;
    let mut wall = Duration::ZERO;
    let mut outputs = Vec::with_capacity(queries.len());
    let mut io_stats = Vec::with_capacity(queries.len());
    for q in &queries {
        // Warm-up run (not timed); a fresh unbounded pool per measured run
        // keeps the accounting deterministic and comparable across sweeps.
        engine.execute_with(q, EngineConfig::FULL, par, &IoSession::unmetered());
        let mut best_crit: Option<Duration> = None;
        let mut best_wall = Duration::MAX;
        let mut out = None;
        let mut stats = IoStats::default();
        for _ in 0..args.runs.max(1) {
            let io = IoSession::unmetered();
            profile::start();
            let coord_cpu0 = thread_cpu_time();
            let t0 = Instant::now();
            let result = engine.execute_with(q, EngineConfig::FULL, par, &io);
            let w = t0.elapsed();
            let coord_cpu = thread_cpu_time().saturating_sub(coord_cpu0);
            let report = profile::finish();
            let crit = report.critical_path(coord_cpu);
            if std::env::var_os("CVR_SCALING_DEBUG").is_some() {
                eprintln!(
                    "#   {} t={threads}: coord={:?} coord_busy={:?} work={:?} groups={:?}",
                    q.id,
                    coord_cpu,
                    report.coordinator_busy,
                    report.total_work(),
                    report.groups.iter().map(|g| g.len()).collect::<Vec<_>>(),
                );
            }
            if best_crit.is_none_or(|b| crit < b) {
                best_crit = Some(crit);
            }
            best_wall = best_wall.min(w);
            stats = io.stats();
            if let Some(prev) = &out {
                assert_eq!(prev, &result, "non-deterministic result for {} at t={threads}", q.id);
            }
            out = Some(result);
        }
        cpu_crit += best_crit.unwrap();
        wall += best_wall;
        outputs.push(out.unwrap());
        io_stats.push(stats);
    }
    Sweep { threads, cpu_crit, wall, outputs, io: io_stats }
}

fn main() {
    let args = HarnessArgs::parse();
    eprintln!("# building column store (sf {}) ...", args.sf);
    let engine = ColumnEngine::new(args.tables());

    let mut counts = vec![1usize, 2, 4, 8];
    if !counts.contains(&args.threads) {
        counts.push(args.threads);
    }
    counts.sort_unstable();
    counts.dedup();
    counts.retain(|&t| t <= args.threads.max(4));

    let sweeps: Vec<Sweep> = counts
        .iter()
        .map(|&t| {
            eprintln!("# running 13 queries at {t} thread(s)");
            measure(&engine, &args, t)
        })
        .collect();

    let base = &sweeps[0];
    println!("\nMorsel-driven scaling: 13-query SSBM flight set, sf {} (config tICL)", args.sf);
    println!("cpu-crit = serial coordinator time + busiest worker per fan-out (see --help)\n");
    println!(
        "{:>8} {:>12} {:>9} {:>12} {:>10} {:>10}",
        "threads", "cpu-crit ms", "speedup", "wall ms", "outputs", "io-stats"
    );
    for s in &sweeps {
        let outputs_ok = s.outputs == base.outputs;
        let io_ok = s.io.iter().zip(&base.io).all(|(a, b)| {
            (a.bytes_read, a.pages_read, a.seeks) == (b.bytes_read, b.pages_read, b.seeks)
        });
        println!(
            "{:>8} {:>12.2} {:>8.2}x {:>12.2} {:>10} {:>10}",
            s.threads,
            s.cpu_crit.as_secs_f64() * 1e3,
            base.cpu_crit.as_secs_f64() / s.cpu_crit.as_secs_f64().max(1e-12),
            s.wall.as_secs_f64() * 1e3,
            if outputs_ok { "identical" } else { "DIVERGED" },
            if io_ok { "identical" } else { "DIVERGED" },
        );
        assert!(outputs_ok, "outputs diverged from --threads 1 at t={}", s.threads);
        assert!(io_ok, "io stats diverged from --threads 1 at t={}", s.threads);
    }
}
