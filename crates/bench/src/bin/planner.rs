//! Planner regret: the cost-based planner's pick vs. the measured best
//! over the whole physical-design grid.
//!
//! For every query — the 13 paper queries plus `--queries` generated
//! ad-hoc ones (`cvr_data::workload`) — this binary:
//!
//! 1. asks `cvr-plan` for a plan (engine + configuration + fact-predicate
//!    order) from catalog statistics alone;
//! 2. measures **every** candidate in the planner's search space: the six
//!    column-engine configurations and each applicable row design;
//! 3. reports *regret* — the planner's measured modeled-seconds divided by
//!    the best measured cell — and verifies the planned execution is
//!    **byte-identical** (output rows and `IoStats`) to hand-running the
//!    same configuration with the same predicate order;
//! 4. emits `BENCH_planner.json` and exits nonzero when regret on any
//!    paper query exceeds `--max-regret` (default 1.5), the CI gate.
//!
//! ```text
//! cargo run --release -p cvr-bench --bin planner -- --sf 0.02
//! cargo run --release -p cvr-bench --bin planner -- --sf 0.02 --explain
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use cvr_bench::{build_planner, Harness, HarnessArgs, Measurement};
use cvr_core::ColumnEngine;
use cvr_data::queries::{all_queries, SsbQuery};
use cvr_data::result::QueryOutput;
use cvr_data::workload::WorkloadConfig;
use cvr_plan::{PhysicalChoice, Planner};
use cvr_row::designs::{RowDb, RowDesign};
use cvr_storage::io::{BufferPool, DiskModel, IoSession};
use std::time::Instant;

/// Measure `exec` with deterministic *first-touch* I/O: one warm-up (code
/// and allocator effects), then `runs` measured executions, each against a
/// fresh unbounded pool so every distinct page is charged exactly once and
/// no eviction history leaks from one grid cell into the next. Near the
/// capacity cliff of the small warm harness pool, measured cost is decided
/// by CLOCK eviction order — bimodal noise that would swamp regret ratios.
fn measure_cold(
    args: &HarnessArgs,
    disk: DiskModel,
    exec: impl Fn(&IoSession) -> QueryOutput,
) -> Measurement {
    let reference = exec(&IoSession::unmetered());
    let mut best: Option<Measurement> = None;
    for _ in 0..args.runs.max(1) {
        let io = IoSession::new(BufferPool::unbounded());
        let start = Instant::now();
        let out = exec(&io);
        let cpu = start.elapsed();
        assert_eq!(out, reference, "non-deterministic query result");
        let stats = io.stats();
        let m = Measurement {
            cpu,
            io: stats,
            modeled: cpu.mul_f64(args.cpu_scale) + disk.io_time(&stats),
        };
        best = Some(match best {
            Some(b) if b.modeled <= m.modeled => b,
            _ => m,
        });
    }
    best.unwrap()
}

/// One query's regret record.
struct Record {
    id: String,
    paper: bool,
    picked: String,
    est_seconds: f64,
    picked_seconds: f64,
    best: String,
    best_seconds: f64,
    /// What the cost model *estimated* for the measured-best cell — when
    /// regret is high and this is close to `est_seconds`, the model thinks
    /// the two cells tie and the tail is a coin-flip at the crossover, not
    /// a structural mis-model.
    est_best_seconds: f64,
    regret: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let harness = Harness::new(args.clone());
    let par = args.parallelism();
    eprintln!("# building column engine + catalog (sf {}) ...", args.sf);
    let engine = ColumnEngine::new(harness.tables.clone());
    let planner: Planner = build_planner(&args, &engine);

    let mut queries: Vec<(SsbQuery, bool)> = all_queries().into_iter().map(|q| (q, true)).collect();
    let workload = WorkloadConfig { seed: args.seed ^ 0xAD_0C, count: args.queries.min(255) };
    queries.extend(workload.generate().into_iter().map(|q| (q, false)));
    eprintln!("# 13 paper queries + {} generated", queries.len() - 13);

    // Row designs built lazily, shared across queries.
    let mut row_dbs: HashMap<RowDesign, RowDb> = HashMap::new();

    let mut records: Vec<Record> = Vec::new();
    let mut verified = 0usize;
    for (q, paper) in &queries {
        let plan = planner.plan(q);
        if args.explain {
            print!("{}", plan.render());
        }

        // Measure every candidate in the search space (keeping each cell's
        // cost-model estimate next to its measurement).
        let mut grid: Vec<(String, f64, Measurement)> = Vec::new();
        for cand in planner.candidates(q) {
            let m = match cand.choice {
                PhysicalChoice::Column(cfg) => {
                    measure_cold(&args, harness.disk(), |io| engine.execute_with(q, cfg, par, io))
                }
                PhysicalChoice::Row(design) => {
                    let db = row_dbs.entry(design).or_insert_with(|| {
                        eprintln!("#   building row design {} ...", design.label());
                        RowDb::build(harness.tables.clone(), design)
                    });
                    measure_cold(&args, harness.disk(), |io| db.execute(q, io))
                }
            };
            if std::env::var("CVR_PLANNER_DEBUG").is_ok() {
                eprintln!(
                    "# {} {:<8} est {:.4}s (cpu {:.4}s, {:.2} MB, {} seeks) measured {:.4}s (cpu {:.4}s, {})",
                    q.id,
                    cand.choice.label(),
                    cand.seconds,
                    cand.est.cpu_seconds,
                    cand.est.io_bytes as f64 / (1024.0 * 1024.0),
                    cand.est.seeks,
                    m.seconds(),
                    m.cpu.as_secs_f64(),
                    cvr_bench::fmt_io(&m.io)
                );
            }
            grid.push((cand.choice.label(), cand.seconds, m));
        }
        let (best, est_best_seconds, best_m) = grid
            .iter()
            .min_by(|a, b| a.2.seconds().partial_cmp(&b.2.seconds()).unwrap())
            .expect("grid is never empty")
            .clone();

        // The planner's own cell, measured through execute_planned (its
        // predicate order applied).
        let picked_m = match plan.choice {
            PhysicalChoice::Column(cfg) => measure_cold(&args, harness.disk(), |io| {
                engine.execute_planned(q, cfg, &plan.fact_order, par, io)
            }),
            PhysicalChoice::Row(design) => {
                let db = &row_dbs[&design];
                measure_cold(&args, harness.disk(), |io| {
                    db.execute_planned(q, &plan.fact_order, io)
                })
            }
        };

        // Byte-identity: the planned execution must equal hand-running the
        // same configuration with the same (hand-permuted) query — output
        // rows and I/O accounting both.
        let hand_q = q.with_fact_order(&plan.fact_order);
        let (planned_io, hand_io) = (IoSession::unmetered(), IoSession::unmetered());
        let (planned_out, hand_out) = match plan.choice {
            PhysicalChoice::Column(cfg) => (
                engine.execute_planned(q, cfg, &plan.fact_order, par, &planned_io),
                engine.execute_with(&hand_q, cfg, par, &hand_io),
            ),
            PhysicalChoice::Row(design) => {
                let db = &row_dbs[&design];
                (
                    db.execute_planned(q, &plan.fact_order, &planned_io),
                    db.execute(&hand_q, &hand_io),
                )
            }
        };
        assert_eq!(planned_out, hand_out, "{}: planned output differs from hand-picked", q.id);
        let (a, b) = (planned_io.stats(), hand_io.stats());
        assert_eq!(
            (a.bytes_read, a.pages_read, a.seeks),
            (b.bytes_read, b.pages_read, b.seeks),
            "{}: planned IoStats differ from hand-picked",
            q.id
        );
        verified += 1;

        records.push(Record {
            id: q.id.to_string(),
            paper: *paper,
            picked: plan.choice.label(),
            est_seconds: plan.seconds,
            picked_seconds: picked_m.seconds(),
            best,
            best_seconds: best_m.seconds(),
            est_best_seconds,
            regret: picked_m.seconds() / best_m.seconds().max(1e-12),
        });
    }

    // ---- Report ----
    println!("\nPlanner regret vs best-of-grid (sf {}, {} runs/cell)", args.sf, args.runs);
    println!("======================================================\n");
    println!(
        "{:<8}{:<10}{:>10}{:>12}{:<10}{:>12}{:>9}",
        "query", "picked", "est(s)", "measured(s)", "  best", "best(s)", "regret"
    );
    for r in &records {
        println!(
            "{:<8}{:<10}{:>10.4}{:>12.4}  {:<8}{:>12.4}{:>8.2}x",
            r.id, r.picked, r.est_seconds, r.picked_seconds, r.best, r.best_seconds, r.regret
        );
    }
    let summary = |paper: bool| {
        let rs: Vec<f64> = records.iter().filter(|r| r.paper == paper).map(|r| r.regret).collect();
        let mean = rs.iter().sum::<f64>() / rs.len().max(1) as f64;
        let max = rs.iter().cloned().fold(0.0f64, f64::max);
        (mean, max, rs.len())
    };
    let (paper_mean, paper_max, _) = summary(true);
    let (gen_mean, gen_max, gen_n) = summary(false);
    println!("\npaper queries:     mean regret {paper_mean:.2}x, max {paper_max:.2}x");
    if gen_n > 0 {
        println!(
            "generated queries: mean regret {gen_mean:.2}x, max {gen_max:.2}x ({gen_n} queries)"
        );
    }
    println!("byte-identity verified for {verified}/{} planned executions", records.len());

    // ---- BENCH_planner.json ----
    let mut json = String::from("{\n  \"bench\": \"planner\",\n");
    let _ = writeln!(json, "  \"sf\": {},", args.sf);
    let _ = writeln!(json, "  \"generated_queries\": {gen_n},");
    let _ = writeln!(json, "  \"paper_mean_regret\": {paper_mean:.4},");
    let _ = writeln!(json, "  \"paper_max_regret\": {paper_max:.4},");
    let _ = writeln!(json, "  \"generated_mean_regret\": {gen_mean:.4},");
    let _ = writeln!(json, "  \"generated_max_regret\": {gen_max:.4},");
    let _ = writeln!(json, "  \"byte_identical\": {verified},");
    // Only paper queries are gated; the generated tail is reported. The
    // historical worst (Q9.3, ~2.6x) was a column-vs-row:T(B) cell priced
    // against a fantasy executor. The model now mirrors the real one (see
    // `enumerate.rs`): only BITMAP_COLUMNS predicates enter the bitmap;
    // restricted dims with <= 2000 matching keys thin it through FK-index
    // probes priced as a Cardenas-Yao gather over the index's leaf pages
    // (one 32 KB page per node); the heap fetch gathers over the whole
    // orderkey-ordered file with a run credit for per-order restrictions
    // (lo_orderdate / lo_custkey) — per-line thinning (measures,
    // lo_partkey / lo_suppkey) breaks runs and pays per-seed seeks.
    json.push_str(
        "  \"notes\": \"Only paper queries are gated (--max-regret); the generated-query tail \
         is reported. row:T(B) is priced against the real executor: only indexed fact \
         predicates enter the bitmap, dim restrictions thin it via FK-index probes priced \
         as a leaf-page gather, and the heap fetch gathers over the whole orderkey-ordered \
         heap with a run credit for per-order (date/customer) restrictions only. This \
         fixed the historical Q9.3 regret tail (~2.6x from a ~10x overpriced fetch) \
         without underpricing probe-heavy bitmap plans.\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ =
            write!(
            json,
            "    {{\"query\": \"{}\", \"paper\": {}, \"picked\": \"{}\", \"est_seconds\": {:.6}, \
             \"measured_seconds\": {:.6}, \"best\": \"{}\", \"best_seconds\": {:.6}, \
             \"est_best_seconds\": {:.6}, \"regret\": {:.4}}}",
            r.id, r.paper, r.picked, r.est_seconds, r.picked_seconds, r.best, r.best_seconds,
            r.est_best_seconds, r.regret
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_planner.json", &json).expect("write BENCH_planner.json");
    eprintln!("\n# wrote BENCH_planner.json");

    // ---- Gate ----
    if paper_max > args.max_regret {
        eprintln!(
            "FAIL: paper-query regret {paper_max:.2}x exceeds --max-regret {:.2}x",
            args.max_regret
        );
        std::process::exit(1);
    }
    println!("\nOK: paper-query regret {paper_max:.2}x within the {:.2}x gate", args.max_regret);
}
