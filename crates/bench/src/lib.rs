//! # cvr-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section.
//! Each binary builds the physical designs it needs over a generated SSBM
//! database, runs the thirteen queries (one warm-up, `runs` measured
//! executions), and prints the paper's published numbers alongside the
//! measured ones.
//!
//! ## Cost model
//!
//! Each measured execution reports:
//! * **cpu** — wall-clock of the query execution (all in-memory compute);
//! * **io** — bytes/pages/seeks charged by the storage layer to the query's
//!   [`IoSession`];
//! * **model** — `cpu × cpu_scale + DiskModel::io_time(io)`: the simulated
//!   elapsed time on the paper's testbed. The disk side models the 200 MB/s
//!   4 ms-seek array; `cpu_scale` (default 5) re-balances modern per-byte
//!   CPU speed against the paper's 2.8 GHz 2006-era Pentium so the
//!   CPU-vs-I/O cost structure matches the paper's — without it, CPU-side
//!   optimizations (block iteration, between-predicate rewriting) would be
//!   invisible behind modeled I/O (DESIGN.md §4).
//!
//! Absolute seconds are not comparable to the paper (different scale
//! factor, different decade of hardware); the *ratios between systems* are
//! the reproduction target.
//!
//! ## Binaries
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `figure5` | Fig. 5 — RS / RS (MV) / CS / CS (Row-MV) |
//! | `figure6` | Fig. 6 — T / T(B) / MV / VP / AI |
//! | `figure7` | Fig. 7 — tICL … Ticl optimization removal |
//! | `figure8` | Fig. 8 — Base vs denormalized (No C / Int C / Max C) |
//! | `selectivity` | §3's per-query LINEORDER selectivities |
//! | `storage_sizes` | §6.2's storage-size arithmetic |
//! | `partitioning` | §6.1's partitioning factor-of-two claim |
//! | `ablation` | §6.3.2's between-predicate-rewriting attribution, isolated |
//! | `super_tuples` | §7's row-store prescription (Halverson et al.), implemented |
//! | `scaling` | morsel-driven parallelism: threads-vs-speedup over the 13 queries |
//! | `kernels` | scan kernels: scalar vs word-parallel per encoding × selectivity (emits `BENCH_kernels.json`) |
//! | `planner` | cost-based planner regret vs the measured best-of-grid, paper + generated queries (emits `BENCH_planner.json`) |
//! | `server_bench` | closed-loop TCP client harness against `cvr-server`: N connections, p50/p99 latency, QPS, concurrent-vs-serial byte-identity (emits `BENCH_server.json`) |
//! | `chaos` | fault-injection harness: drives the server with I/O faults, worker panics, stalls, and frame truncation armed; gates availability, byte-identity, cancel latency, and zero hangs (emits `BENCH_chaos.json`) |
//! | `crash` | durability harness: torn-write/bit-flip/fsync-failure/crash-point/`kill -9` trials against the snapshot protocol; gates 100% corruption detection, zero silently-wrong recoveries, and byte-identical post-restart answers (emits `BENCH_crash.json`) |
//! | `all` | the full evaluation in one run |
//!
//! ## Threads
//!
//! The column engine executes queries with morsel-driven parallelism
//! (`cvr_core::morsel`). Every binary accepts `--threads N`; unset, the
//! `CVR_THREADS` environment variable and then the machine's available
//! parallelism decide. The knob governs `ColumnEngine` executions only —
//! the row-store designs reproduce the paper's single-threaded System X and
//! always run serial — and `--threads 1` reproduces the paper's
//! single-threaded column-store measurements. Results and I/O accounting
//! are byte-identical at any thread count — only CPU time changes. The `scaling` binary sweeps thread
//! counts {1, 2, 4, 8} over the 13-query flight set and prints a
//! threads-vs-speedup table; because CI containers often pin a single core,
//! it reports **critical-path CPU time** (serial coordinator time plus the
//! busiest worker's CPU time per fan-out) next to wall-clock, and verifies
//! outputs and I/O stats against the `--threads 1` run.

#![warn(missing_docs)]

pub mod kernel_bench;
pub mod paper;

use cvr_core::morsel::Parallelism;
use cvr_data::gen::{SsbConfig, SsbTables};
use cvr_data::queries::{all_queries, SsbQuery};
use cvr_data::result::QueryOutput;
use cvr_storage::io::{BufferPool, DiskModel, IoSession, IoStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// SSBM scale factor (default 0.02 ⇒ 120 k fact rows).
    pub sf: f64,
    /// Generator seed.
    pub seed: u64,
    /// Measured runs per query (after one warm-up). The minimum is kept.
    pub runs: usize,
    /// Buffer-pool size as a fraction of the raw fact-table bytes
    /// (default 0.08, mirroring the paper's 500 MB pool vs ~6 GB table).
    pub pool_fraction: f64,
    /// Multiplier applied to measured CPU time in the modeled total
    /// (default 5.0: modern cores process these workloads roughly 5x
    /// faster per byte than the paper's 2.8 GHz Pentium D).
    pub cpu_scale: f64,
    /// Worker threads for the column engine's morsel-driven execution
    /// (default: `CVR_THREADS`, else available parallelism). The `scaling`
    /// binary sweeps thread counts from {1, 2, 4, 8} up to
    /// `max(threads, 4)` — it never sweeps below 4, so the scaling table
    /// stays meaningful even where the default resolves to 1.
    pub threads: usize,
    /// Print the cost-based planner's chosen plan and estimate breakdown
    /// per query alongside the measured numbers (`--explain`).
    pub explain: bool,
    /// Number of generated ad-hoc queries the `planner` binary adds to the
    /// 13 paper queries (`--queries`, default 30).
    pub queries: usize,
    /// Regret gate for the `planner` binary: fail when the planner's
    /// measured cost exceeds this multiple of the best-of-grid measured
    /// cost on any paper query (`--max-regret`, default 1.5).
    pub max_regret: f64,
    /// Concurrent client connections for the `server_bench` binary
    /// (`--connections`, default 8).
    pub connections: usize,
    /// SQL statements each `server_bench` connection issues
    /// (`--statements`, default 64).
    pub statements: usize,
    /// Cache hit-rate gate for the `server_bench` binary: fail when the
    /// concurrent repeated-workload run's result-cache hit-rate falls below
    /// this fraction (`--min-hit-rate`, default 0.0 ⇒ no gate).
    pub min_hit_rate: f64,
    /// Fault spec the `chaos` binary arms during its workload phase
    /// (`--fault`, [`cvr_storage::fault::FaultConfig::parse`] grammar).
    pub fault: String,
    /// Watchdog for the `chaos` binary: the process exits 2 when the run
    /// has not finished after this many seconds (`--watchdog`) — a hang is
    /// a gate failure, not a stuck CI job.
    pub watchdog: u64,
    /// Availability gate for the `chaos` binary: fail when fewer than this
    /// fraction of statements eventually produce a byte-identical answer
    /// (`--min-availability`, default 0.99).
    pub min_availability: f64,
    /// Cancel-latency gate for the `chaos` binary: fail when the p99 of
    /// cancel-to-ERROR latency exceeds this many milliseconds
    /// (`--max-cancel-p99-ms`, default 50; gated only when ≥ 10 probes
    /// produce a sample).
    pub max_cancel_p99_ms: f64,
    /// Cancel probes the `chaos` binary fires (`--cancels`, default 24).
    pub cancels: usize,
    /// `server_bench --trace-overhead`: measure per-statement latency with
    /// tracing off vs on over a cache-disabled session, write
    /// `BENCH_obs.json`, and gate the p50 overhead.
    pub trace_overhead: bool,
    /// Overhead gate for `--trace-overhead`: fail when traced p50 exceeds
    /// untraced p50 by more than this fraction (`--max-trace-overhead`,
    /// default 0.05).
    pub max_trace_overhead: f64,
    /// Keep the `server_bench` server (and its metrics endpoint, when
    /// `CVR_METRICS_ADDR` bound one) alive this many milliseconds after
    /// the run, so an external prober can scrape it (`--hold-ms`,
    /// default 0).
    pub hold_ms: u64,
    /// Injected-corruption trials for the `crash` binary (`--trials`,
    /// default 60; the acceptance floor is 50).
    pub trials: usize,
    /// Durable store directory for the `crash` binary (`--data-dir`;
    /// default: a fresh directory under the system temp dir).
    pub data_dir: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            sf: 0.02,
            seed: 0x55B0_2008,
            runs: 3,
            pool_fraction: 0.08,
            cpu_scale: 5.0,
            threads: Parallelism::from_env().threads,
            explain: false,
            queries: 30,
            max_regret: 1.5,
            connections: 8,
            statements: 64,
            min_hit_rate: 0.0,
            fault: "io:0.00001,panic:0.001,stall:0.1:2,trunc:0.02".to_string(),
            watchdog: 120,
            min_availability: 0.99,
            max_cancel_p99_ms: 50.0,
            cancels: 24,
            trace_overhead: false,
            max_trace_overhead: 0.05,
            hold_ms: 0,
            trials: 60,
            data_dir: None,
        }
    }
}

impl HarnessArgs {
    /// Parse `--sf`, `--seed`, `--runs`, `--pool-fraction` from the process
    /// arguments (tiny hand-rolled parser; unknown flags abort with usage).
    pub fn parse() -> HarnessArgs {
        let mut args = HarnessArgs::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let take = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).unwrap_or_else(|| panic!("missing value for {}", argv[*i - 1])).clone()
            };
            match argv[i].as_str() {
                "--sf" => args.sf = take(&mut i).parse().expect("--sf takes a float"),
                "--seed" => args.seed = take(&mut i).parse().expect("--seed takes an int"),
                "--runs" => args.runs = take(&mut i).parse().expect("--runs takes an int"),
                "--pool-fraction" => {
                    args.pool_fraction = take(&mut i).parse().expect("--pool-fraction float")
                }
                "--cpu-scale" => {
                    args.cpu_scale = take(&mut i).parse().expect("--cpu-scale takes a float")
                }
                "--threads" => {
                    args.threads =
                        take(&mut i).parse::<usize>().expect("--threads takes an int").max(1)
                }
                "--explain" => args.explain = true,
                "--queries" => args.queries = take(&mut i).parse().expect("--queries takes an int"),
                "--max-regret" => {
                    args.max_regret = take(&mut i).parse().expect("--max-regret takes a float")
                }
                "--connections" => {
                    args.connections =
                        take(&mut i).parse::<usize>().expect("--connections takes an int").max(1)
                }
                "--statements" => {
                    args.statements =
                        take(&mut i).parse::<usize>().expect("--statements takes an int").max(1)
                }
                "--min-hit-rate" => {
                    args.min_hit_rate = take(&mut i).parse().expect("--min-hit-rate takes a float")
                }
                "--fault" => args.fault = take(&mut i),
                "--watchdog" => {
                    args.watchdog = take(&mut i).parse().expect("--watchdog takes seconds")
                }
                "--min-availability" => {
                    args.min_availability =
                        take(&mut i).parse().expect("--min-availability takes a float")
                }
                "--max-cancel-p99-ms" => {
                    args.max_cancel_p99_ms =
                        take(&mut i).parse().expect("--max-cancel-p99-ms takes a float")
                }
                "--cancels" => args.cancels = take(&mut i).parse().expect("--cancels takes an int"),
                "--trace-overhead" => args.trace_overhead = true,
                "--max-trace-overhead" => {
                    args.max_trace_overhead =
                        take(&mut i).parse().expect("--max-trace-overhead takes a float")
                }
                "--hold-ms" => {
                    args.hold_ms = take(&mut i).parse().expect("--hold-ms takes milliseconds")
                }
                "--trials" => {
                    args.trials = take(&mut i).parse::<usize>().expect("--trials takes an int")
                }
                "--data-dir" => args.data_dir = Some(take(&mut i)),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--sf F] [--seed N] [--runs N] [--pool-fraction F] [--cpu-scale F] [--threads N]\n\
                         \x20      [--explain] [--queries N] [--max-regret F] [--connections N] [--statements N]\n\
                         \x20      [--min-hit-rate F] [--fault SPEC] [--watchdog SECS] [--min-availability F]\n\
                         \x20      [--max-cancel-p99-ms F] [--cancels N] [--trace-overhead]\n\
                         \x20      [--max-trace-overhead F] [--hold-ms MS] [--trials N] [--data-dir PATH]\n\
                         defaults: --sf 0.02 --runs 3 --pool-fraction 0.08 --cpu-scale 5.0 --threads CVR_THREADS|auto\n\
                         \x20         --queries 30 --max-regret 1.5 --connections 8 --statements 64 --min-hit-rate 0.0\n\
                         \x20         --fault io:0.00001,panic:0.001,stall:0.1:2,trunc:0.02 --watchdog 120\n\
                         \x20         --min-availability 0.99 --max-cancel-p99-ms 50 --cancels 24\n\
                         \x20         --max-trace-overhead 0.05 --hold-ms 0"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
            i += 1;
        }
        args
    }

    /// Generate the SSBM database for these options.
    pub fn tables(&self) -> Arc<SsbTables> {
        Arc::new(SsbConfig { sf: self.sf, seed: self.seed }.generate())
    }

    /// The [`Parallelism`] these options select.
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::with_threads(self.threads)
    }
}

/// One measured query execution.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall-clock CPU time of the fastest measured run.
    pub cpu: Duration,
    /// I/O charged during that run.
    pub io: IoStats,
    /// `cpu x cpu_scale + modeled I/O time`.
    pub modeled: Duration,
}

impl Measurement {
    /// Modeled seconds (the number printed in the figures).
    pub fn seconds(&self) -> f64 {
        self.modeled.as_secs_f64()
    }
}

/// A harness over one generated database: shared buffer pool + disk model.
pub struct Harness {
    /// The generated tables.
    pub tables: Arc<SsbTables>,
    /// Harness options.
    pub args: HarnessArgs,
    pool: Arc<BufferPool>,
    disk: DiskModel,
}

impl Harness {
    /// Build a harness; the buffer pool is sized from the raw fact bytes.
    pub fn new(args: HarnessArgs) -> Harness {
        let tables = args.tables();
        // Raw (uncompressed row) fact bytes ≈ rows × ~90 B.
        let raw_bytes = tables.lineorder.num_rows() as u64 * 90;
        let pool_bytes = ((raw_bytes as f64 * args.pool_fraction) as u64).max(1 << 20);
        Harness { tables, args, pool: BufferPool::new(pool_bytes), disk: DiskModel::default() }
    }

    /// The disk model used for `modeled` times.
    pub fn disk(&self) -> DiskModel {
        self.disk
    }

    /// Run `exec` for one query: one warm-up + `runs` measured executions;
    /// returns the best measurement and the query output (verified identical
    /// across runs).
    pub fn measure(&self, exec: impl Fn(&IoSession) -> QueryOutput) -> (Measurement, QueryOutput) {
        // Warm-up (also populates the buffer pool the way the paper's warm
        // runs do).
        let warm_io = IoSession::new(self.pool.clone());
        let reference = exec(&warm_io);

        let mut best: Option<Measurement> = None;
        for _ in 0..self.args.runs.max(1) {
            let io = IoSession::new(self.pool.clone());
            let start = Instant::now();
            let out = exec(&io);
            let cpu = start.elapsed();
            assert_eq!(out, reference, "non-deterministic query result");
            let stats = io.stats();
            let scaled_cpu = cpu.mul_f64(self.args.cpu_scale);
            let m = Measurement { cpu, io: stats, modeled: scaled_cpu + self.disk.io_time(&stats) };
            best = Some(match best {
                None => m,
                Some(b) if m.modeled < b.modeled => m,
                Some(b) => b,
            });
        }
        (best.unwrap(), reference)
    }

    /// Measure a full 13-query series; returns per-query measurements.
    pub fn measure_series(
        &self,
        exec: impl Fn(&SsbQuery, &IoSession) -> QueryOutput,
    ) -> Vec<Measurement> {
        all_queries().iter().map(|q| self.measure(|io| exec(q, io)).0).collect()
    }
}

/// Build a cost-based planner over `engine`, weighing CPU against modeled
/// I/O exactly the way this harness weighs measurements (`--cpu-scale`),
/// and recalibrating the kernel CPU rates from a `BENCH_kernels.json` and
/// the aggregation-tail rates from a `BENCH_agg.json` in the working
/// directory when they exist (the `kernels`/`agg` binaries' output on
/// *this* machine beats the built-in defaults).
pub fn build_planner(args: &HarnessArgs, engine: &cvr_core::ColumnEngine) -> cvr_plan::Planner {
    let mut rates = std::fs::read_to_string("BENCH_kernels.json")
        .ok()
        .and_then(|s| cvr_plan::CpuRates::from_kernel_bench_json(&s))
        .unwrap_or_default();
    // Compose the aggregation-tail calibration on top: each report file
    // moves only the rates it measures.
    if let Some(agg) = std::fs::read_to_string("BENCH_agg.json")
        .ok()
        .and_then(|s| cvr_plan::CpuRates::from_agg_bench_json(&s))
    {
        rates.agg_row = agg.agg_row;
        rates.agg_code_row = agg.agg_code_row;
    }
    // Plan for *cold* (first-touch) I/O: the planner binary measures every
    // cell against a fresh pool precisely so that costs are reproducible,
    // and near the capacity cliff of a small warm pool the measured cost is
    // decided by CLOCK eviction history — bimodal and unmodelable. (Set
    // `pool_bytes` on `CostParams` to plan for a warm harness instead.)
    let params = cvr_plan::CostParams {
        disk: DiskModel::default(),
        cpu_scale: args.cpu_scale,
        rates,
        pool_bytes: None,
    };
    cvr_plan::Planner::with_params(cvr_plan::Catalog::build(engine), params)
}

/// Print the planner's explain output for every query in `queries` (the
/// figure binaries call this under `--explain`).
pub fn print_explains(planner: &cvr_plan::Planner, queries: &[SsbQuery]) {
    println!("\nPlanner explain (estimated costs; see BENCH_planner.json for measured regret)");
    println!("----------------------------------------------------------------------------");
    for q in queries {
        print!("{}", planner.plan(q).render());
    }
}

/// The one-line `--explain` hook every figure binary calls after building
/// (or being handed) a column engine: under `--explain`, build the planner
/// and print each paper query's chosen plan and cost breakdown.
pub fn maybe_explain(args: &HarnessArgs, engine: &cvr_core::ColumnEngine) {
    if args.explain {
        print_explains(&build_planner(args, engine), &all_queries());
    }
}

/// Render a figure-style table: one row per system, one column per query
/// plus AVG; paper numbers interleaved for comparison.
pub fn render_figure(
    title: &str,
    ours: &[(String, Vec<Measurement>)],
    paper_series: &[paper::PaperSeries],
    sf: f64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.len()));
    let _ = writeln!(
        out,
        "modeled seconds at SF {sf} (scaled cpu + simulated 200 MB/s disk); paper ran SF 10\n"
    );
    let _ = write!(out, "{:<22}", "system");
    for q in paper::QUERY_LABELS {
        let _ = write!(out, "{q:>9}");
    }
    let _ = writeln!(out, "{:>9}", "AVG");
    for (label, series) in ours {
        let _ = write!(out, "{:<22}", format!("{label} (ours)"));
        let mut sum = 0.0;
        for m in series {
            let s = m.seconds();
            sum += s;
            let _ = write!(out, "{s:>9.3}");
        }
        let _ = writeln!(out, "{:>9.3}", sum / series.len() as f64);
        if let Some(p) = paper_series.iter().find(|p| p.label == label.as_str()) {
            let _ = write!(out, "{:<22}", format!("{label} (paper)"));
            for t in p.times {
                let _ = write!(out, "{t:>9.1}");
            }
            let _ = writeln!(out, "{:>9.1}", p.avg());
        }
    }
    // Normalized comparison: each system relative to the first row.
    if ours.len() > 1 && !ours[0].1.is_empty() {
        let _ = writeln!(out, "\naverage relative to {} (ours vs paper):", ours[0].0);
        let base_ours: f64 =
            ours[0].1.iter().map(Measurement::seconds).sum::<f64>() / ours[0].1.len() as f64;
        let base_paper =
            paper_series.iter().find(|p| p.label == ours[0].0).map(paper::PaperSeries::avg);
        for (label, series) in ours {
            let avg = series.iter().map(Measurement::seconds).sum::<f64>() / series.len() as f64;
            let ours_rel = avg / base_ours;
            let paper_rel =
                match (paper_series.iter().find(|p| p.label == label.as_str()), base_paper) {
                    (Some(p), Some(b)) => format!("{:.2}x", p.avg() / b),
                    _ => "-".to_string(),
                };
            let _ = writeln!(out, "  {label:<18} ours {ours_rel:>7.2}x   paper {paper_rel}");
        }
    }
    out
}

/// Format an [`IoStats`] snippet for verbose output.
pub fn fmt_io(io: &IoStats) -> String {
    format!(
        "{:.1} MB / {} pages / {} seeks",
        io.bytes_read as f64 / (1024.0 * 1024.0),
        io.pages_read,
        io.seeks
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::queries::query;
    use cvr_row::designs::{RowDb, RowDesign};

    #[test]
    fn harness_measures_deterministically() {
        let args = HarnessArgs { sf: 0.001, runs: 2, ..HarnessArgs::default() };
        let h = Harness::new(args);
        let db = RowDb::build(h.tables.clone(), RowDesign::Traditional);
        let q = query(1, 1);
        let (m, out) = h.measure(|io| db.execute(&q, io));
        assert!(m.modeled >= m.cpu);
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn render_contains_all_queries() {
        let args = HarnessArgs { sf: 0.001, runs: 1, ..HarnessArgs::default() };
        let h = Harness::new(args);
        let db = RowDb::build(h.tables.clone(), RowDesign::MaterializedViews);
        let series = h.measure_series(|q, io| db.execute(q, io));
        let s = render_figure("Test", &[("MV".to_string(), series)], &paper::figure6(), 0.001);
        for q in paper::QUERY_LABELS {
            assert!(s.contains(q));
        }
        assert!(s.contains("MV (ours)"));
        assert!(s.contains("MV (paper)"));
    }
}
