//! The published numbers from the paper's figures, embedded so every harness
//! binary can print "paper vs. ours" side by side.
//!
//! All values are seconds on the authors' testbed (2.8 GHz Pentium D,
//! 4-disk array, SSBM scale 10). Per-query orders follow the benchmark:
//! Q1.1 … Q4.3, then the average.

/// Query labels in figure order.
pub const QUERY_LABELS: [&str; 13] =
    ["1.1", "1.2", "1.3", "2.1", "2.2", "2.3", "3.1", "3.2", "3.3", "3.4", "4.1", "4.2", "4.3"];

/// One published series: label + 13 per-query seconds (average derivable).
pub struct PaperSeries {
    /// Row label as printed in the figure.
    pub label: &'static str,
    /// Seconds for Q1.1..Q4.3.
    pub times: [f64; 13],
}

impl PaperSeries {
    /// Average over the 13 queries.
    pub fn avg(&self) -> f64 {
        self.times.iter().sum::<f64>() / 13.0
    }
}

/// Figure 5: baseline comparison (RS, RS (MV), CS, CS (Row-MV)).
pub fn figure5() -> Vec<PaperSeries> {
    vec![
        PaperSeries {
            label: "RS",
            times: [2.7, 2.0, 1.5, 43.8, 44.1, 46.0, 43.0, 42.8, 31.2, 6.5, 44.4, 14.1, 12.2],
        },
        PaperSeries {
            label: "RS (MV)",
            times: [1.0, 1.0, 0.2, 15.5, 13.5, 11.8, 16.1, 6.9, 6.4, 3.0, 29.2, 22.4, 6.4],
        },
        PaperSeries {
            label: "CS",
            times: [0.4, 0.1, 0.1, 5.7, 4.2, 3.9, 11.0, 4.4, 7.6, 0.6, 8.2, 3.7, 2.6],
        },
        PaperSeries {
            label: "CS (Row-MV)",
            times: [16.0, 9.1, 8.4, 33.5, 23.5, 22.3, 48.5, 21.5, 17.6, 17.4, 48.6, 38.4, 32.1],
        },
    ]
}

/// Figure 6: the five row-store designs.
pub fn figure6() -> Vec<PaperSeries> {
    vec![
        PaperSeries {
            label: "T",
            times: [2.7, 2.0, 1.5, 43.8, 44.1, 46.0, 43.0, 42.8, 31.2, 6.5, 44.4, 14.1, 12.2],
        },
        PaperSeries {
            label: "T(B)",
            times: [9.9, 11.0, 1.5, 91.9, 78.4, 304.1, 91.4, 65.3, 31.2, 6.5, 94.4, 25.3, 21.2],
        },
        PaperSeries {
            label: "MV",
            times: [1.0, 1.0, 0.2, 15.5, 13.5, 11.8, 16.1, 6.9, 6.4, 3.0, 29.2, 22.4, 6.4],
        },
        PaperSeries {
            label: "VP",
            times: [
                69.7, 36.0, 36.0, 65.1, 48.8, 39.0, 139.1, 63.9, 48.2, 47.0, 208.6, 150.4, 86.3,
            ],
        },
        PaperSeries {
            label: "AI",
            times: [
                107.2, 50.8, 48.5, 359.8, 46.4, 43.9, 413.8, 40.7, 531.4, 65.5, 623.9, 280.1, 263.9,
            ],
        },
    ]
}

/// Figure 7: C-Store with optimizations successively removed.
pub fn figure7() -> Vec<PaperSeries> {
    vec![
        PaperSeries {
            label: "tICL",
            times: [0.4, 0.1, 0.1, 5.7, 4.2, 3.9, 11.0, 4.4, 7.6, 0.6, 8.2, 3.7, 2.6],
        },
        PaperSeries {
            label: "TICL",
            times: [0.4, 0.1, 0.1, 7.4, 6.7, 6.5, 17.3, 11.2, 12.6, 0.7, 10.7, 5.5, 4.3],
        },
        PaperSeries {
            label: "tiCL",
            times: [0.3, 0.1, 0.1, 13.6, 12.6, 12.2, 16.0, 9.0, 7.5, 0.6, 15.8, 5.5, 4.1],
        },
        PaperSeries {
            label: "TiCL",
            times: [0.4, 0.1, 0.1, 14.8, 13.8, 13.4, 21.4, 14.1, 12.6, 0.7, 17.0, 6.9, 5.4],
        },
        PaperSeries {
            label: "ticL",
            times: [3.8, 2.1, 2.1, 15.0, 13.9, 13.6, 31.9, 15.5, 13.5, 13.5, 30.1, 20.4, 15.8],
        },
        PaperSeries {
            label: "TicL",
            times: [7.1, 6.1, 6.0, 16.1, 14.9, 14.7, 31.9, 15.5, 13.6, 13.6, 30.0, 21.4, 16.9],
        },
        PaperSeries {
            label: "Ticl",
            times: [33.4, 28.2, 27.4, 40.5, 36.0, 35.0, 56.5, 34.0, 30.3, 30.2, 66.3, 60.8, 54.4],
        },
    ]
}

/// Figure 8: denormalization variants.
pub fn figure8() -> Vec<PaperSeries> {
    vec![
        PaperSeries {
            label: "Base",
            times: [0.4, 0.1, 0.1, 5.7, 4.2, 3.9, 11.0, 4.4, 7.6, 0.6, 8.2, 3.7, 2.6],
        },
        PaperSeries {
            label: "PJ, No C",
            times: [0.4, 0.1, 0.2, 32.9, 25.4, 12.1, 42.7, 43.1, 31.6, 28.4, 46.8, 9.3, 6.8],
        },
        PaperSeries {
            label: "PJ, Int C",
            times: [0.3, 0.1, 0.1, 11.8, 3.0, 2.6, 11.7, 8.3, 5.5, 4.1, 10.0, 2.2, 1.5],
        },
        PaperSeries {
            label: "PJ, Max C",
            times: [0.7, 0.2, 0.2, 6.1, 2.3, 1.9, 7.3, 3.6, 3.9, 3.2, 6.8, 1.8, 1.1],
        },
    ]
}

/// Section 3's LINEORDER selectivities.
pub fn selectivities() -> [f64; 13] {
    [
        1.9e-2, 6.5e-4, 7.5e-5, 8.0e-3, 1.6e-3, 2.0e-4, 3.4e-2, 1.4e-3, 5.5e-5, 7.6e-7, 1.6e-2,
        4.5e-3, 9.1e-5,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shapes() {
        assert_eq!(figure5().len(), 4);
        assert_eq!(figure6().len(), 5);
        assert_eq!(figure7().len(), 7);
        assert_eq!(figure8().len(), 4);
    }

    #[test]
    fn published_averages_match_figures() {
        // The paper prints AVG columns; our per-query data must reproduce
        // them to within rounding.
        let fig5 = figure5();
        for (series, avg) in fig5.iter().zip([25.7, 10.2, 4.0, 25.9]) {
            assert!((series.avg() - avg).abs() < 0.1, "{}: {}", series.label, series.avg());
        }
        let fig7 = figure7();
        for (series, avg) in fig7.iter().zip([4.0, 6.4, 7.5, 9.3, 14.7, 16.0, 41.0]) {
            assert!((series.avg() - avg).abs() < 0.1, "{}: {}", series.label, series.avg());
        }
        let fig6 = figure6();
        for (series, avg) in fig6.iter().zip([25.7, 64.0, 10.2, 79.9, 221.2]) {
            assert!((series.avg() - avg).abs() < 0.3, "{}: {}", series.label, series.avg());
        }
        let fig8 = figure8();
        for (series, avg) in fig8.iter().zip([4.0, 21.5, 4.7, 3.0]) {
            assert!((series.avg() - avg).abs() < 0.1, "{}: {}", series.label, series.avg());
        }
    }
}
