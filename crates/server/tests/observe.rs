//! Differential observability tests: tracing must *observe* execution, not
//! perturb it.
//!
//! The load-bearing assertions: for every paper query (the 13 span all
//! four plan shapes — invisible-join, late-materialized join,
//! early-materialized, denormalized) under serial and 4-way morsel
//! execution, a traced run is byte-identical — output bytes *and*
//! [`IoStats`] — to an untraced run; `EXPLAIN ANALYZE` reports actual row
//! counts that equal what plain execution returns; and the wire `TRACE`
//! frame carries the same spans without changing the `RESULT` frame.

use cvr_core::morsel::Parallelism;
use cvr_core::QueryCtx;
use cvr_data::gen::{SsbConfig, SsbTables};
use cvr_data::queries::all_queries;
use cvr_server::protocol::Response;
use cvr_server::session::QueryResponse;
use cvr_server::{parser, serve, Client, Session};
use std::sync::Arc;

fn tables() -> Arc<SsbTables> {
    Arc::new(SsbConfig::with_scale(0.001).generate())
}

/// Cache-disabled session: every run executes, so traced-vs-untraced
/// compares two real executions rather than a hit against a miss.
fn cold_session(par: Parallelism) -> Session {
    Session::with_cache_budget(tables(), par, 0)
}

/// Pull `"actual": {"rows": N` off the root tree node of an
/// `EXPLAIN ANALYZE` JSON payload.
fn root_actual_rows(json: &str) -> Option<u64> {
    let at = json.find("\"actual\": {\"rows\": ")?;
    let rest = &json[at + "\"actual\": {\"rows\": ".len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// Tracing is a pure observer: across every paper query and both
/// parallelism shapes, the traced run's output bytes and I/O accounting
/// equal the untraced run's, and the recorded root span agrees with the
/// output row count.
#[test]
fn traced_runs_are_byte_identical_to_untraced() {
    for par in [Parallelism::serial(), Parallelism { threads: 4, morsel_rows: 256 }] {
        let session = cold_session(par);
        for q in all_queries() {
            let plain = session.run_ctx(&q, &QueryCtx::unbounded()).expect("untraced");
            let (traced, root) = session.run_traced(&q, &QueryCtx::unbounded()).expect("traced");
            assert_eq!(
                traced.output.to_bytes(),
                plain.output.to_bytes(),
                "{} ({} threads): tracing must not change the answer",
                q.id,
                par.threads
            );
            assert_eq!(
                traced.io, plain.io,
                "{} ({} threads): tracing must not change I/O accounting",
                q.id, par.threads
            );
            assert_eq!(traced.plan, plain.plan, "{}: same plan either way", q.id);
            let root = root.expect("a traced execution records a root span");
            assert_eq!(
                root.rows_out,
                Some(traced.output.rows.len() as u64),
                "{}: the root span's row count is the result's",
                q.id
            );
            assert!(!root.flatten().is_empty());
        }
    }
}

/// `EXPLAIN ANALYZE` executes for real: its reported actual row count at
/// the plan root equals plain execution's, for every paper query, serial
/// and parallel — and every query gets an est-vs-actual tree, not a bare
/// estimate dump.
#[test]
fn explain_analyze_actuals_match_plain_execution() {
    for par in [Parallelism::serial(), Parallelism { threads: 4, morsel_rows: 256 }] {
        let session = cold_session(par);
        for q in all_queries() {
            let rows =
                session.run_ctx(&q, &QueryCtx::unbounded()).expect("plain").output.rows.len();
            let sql = format!("EXPLAIN ANALYZE {}", parser::render_sql(&q));
            let QueryResponse::Explain { text, json } = session.query(&sql).expect("analyze")
            else {
                panic!("{}: EXPLAIN ANALYZE must return an explain payload", q.id)
            };
            assert!(
                text.contains("(actual:"),
                "{}: the text tree must carry actuals:\n{text}",
                q.id
            );
            assert_eq!(
                root_actual_rows(&json),
                Some(rows as u64),
                "{} ({} threads): root actual rows vs plain execution\n{json}",
                q.id,
                par.threads
            );
            assert!(json.contains("\"trace\": {"), "{}: raw span tree attached", q.id);
        }
    }
}

/// `EXPLAIN ANALYZE` bypasses the result-cache *read* (a hit would leave
/// no operator actuals) but still feeds the cache: analyzing twice keeps
/// producing real actuals, and a plain repeat afterwards is a hit.
#[test]
fn explain_analyze_skips_cache_reads_but_still_writes() {
    let session = Session::with_cache_budget(tables(), Parallelism::serial(), 16 << 20);
    let q = &all_queries()[0];
    let sql = parser::render_sql(q);
    let analyze = format!("EXPLAIN ANALYZE {sql}");
    for round in 0..2 {
        let QueryResponse::Explain { text, .. } = session.query(&analyze).expect("analyze") else {
            panic!("expected explain payload")
        };
        assert!(
            text.contains("(actual:"),
            "round {round}: analyze must execute operators, not replay the cache:\n{text}"
        );
    }
    let QueryResponse::Rows(rows) = session.query(&sql).expect("plain") else {
        panic!("expected rows")
    };
    assert!(rows.cached, "the analyzed execution must have populated the cache");
}

/// Over the wire: a traced statement's `RESULT` frame is byte-identical to
/// an untraced one's, and the mandatory `TRACE` frame carries a non-empty
/// span tree in both encodings.
#[test]
fn wire_trace_frames_ride_along_without_changing_results() {
    let session = Arc::new(cold_session(Parallelism::serial()));
    let server = serve(session, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    for q in all_queries().iter().take(4) {
        let sql = parser::render_sql(q);
        let plain = client.query_opts(&sql, 0, 0).expect("untraced");
        let (traced, trace) = client.query_traced(&sql, 0, 0).expect("traced");
        assert_eq!(
            traced.normalized().encode(),
            plain.normalized().encode(),
            "{}: the RESULT frame must not depend on tracing",
            q.id
        );
        assert!(matches!(traced, Response::Result(_)));
        let (text, json) = trace.expect("an executed statement records spans");
        assert!(!text.is_empty(), "{}: text trace", q.id);
        assert!(json.starts_with('{'), "{}: json trace", q.id);
    }
    // A parse error still answers the TRACE frame (empty), keeping the
    // two-frames-per-request contract.
    let (err, trace) = client.query_traced("SELECT bogus FROM nowhere", 0, 0).expect("round trip");
    assert!(matches!(err, Response::Error { .. }));
    assert!(trace.is_none(), "no spans recorded for a statement that never executed");
    client.close().expect("close");
    server.shutdown();
}
