//! End-to-end tests of the front door: SQL in, bytes out.
//!
//! The load-bearing assertions: every paper query submitted as SQL —
//! in-process or over a TCP connection, serially or over 8 concurrent
//! connections — produces *byte-identical* output and [`IoStats`] to the
//! direct-descriptor path.

use cvr_data::gen::SsbConfig;
use cvr_data::queries::all_queries;
use cvr_data::workload::WorkloadConfig;
use cvr_server::protocol::Response;
use cvr_server::session::QueryResponse;
use cvr_server::{parser, serve, Client, Session};
use proptest::prelude::*;
use std::sync::Arc;

fn small_session() -> Arc<Session> {
    Arc::new(Session::new(Arc::new(SsbConfig::with_scale(0.001).generate())))
}

/// SQL-submitted paper queries are byte-identical to the direct-descriptor
/// path: same output bytes *and* same I/O accounting.
#[test]
fn sql_matches_descriptor_path_byte_for_byte() {
    let session = small_session();
    for q in all_queries() {
        let direct = session.run(&q);
        let QueryResponse::Rows(via_sql) = session.query(&parser::render_sql(&q)).unwrap() else {
            panic!("{}: expected rows", q.id)
        };
        assert_eq!(via_sql.query_id, q.id);
        assert_eq!(via_sql.plan, direct.plan, "{}", q.id);
        assert_eq!(via_sql.output.to_bytes(), direct.output.to_bytes(), "{}", q.id);
        assert_eq!(via_sql.io, direct.io, "{}: IoStats must match", q.id);
    }
}

/// The same holds for generated ad-hoc queries (flight 9 descriptors
/// re-entering as flight-0 SQL — different id, same plan and bytes).
#[test]
fn adhoc_sql_matches_descriptor_path() {
    let session = small_session();
    for q in (WorkloadConfig { seed: 7, count: 8 }).generate() {
        let direct = session.run(&q);
        let QueryResponse::Rows(via_sql) = session.query(&parser::render_sql(&q)).unwrap() else {
            panic!("{}: expected rows", q.id)
        };
        assert_eq!(via_sql.plan, direct.plan, "{}", q.id);
        assert_eq!(via_sql.output.to_bytes(), direct.output.to_bytes(), "{}", q.id);
        assert_eq!(via_sql.io, direct.io, "{}", q.id);
    }
}

/// N concurrent connections ≡ the same N serial: the encoded response
/// frames are byte-identical up to the `cached` flag (the serial reference
/// warms the cache, so later connections legitimately hit it).
#[test]
fn concurrent_connections_match_serial_byte_for_byte() {
    let session = small_session();
    let server = serve(session.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // Serial reference: one connection, all 13 queries in order.
    let statements: Vec<String> =
        all_queries().into_iter().map(|q| parser::render_sql(&q)).collect();
    let mut client = Client::connect(addr).expect("connect");
    let serial: Vec<Vec<u8>> = statements
        .iter()
        .map(|sql| client.query(sql).expect("query").normalized().encode())
        .collect();
    client.close().expect("close");

    // 8 concurrent connections, each running all 13 queries.
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let statements = statements.clone();
            std::thread::Builder::new()
                .name(format!("client-{w}"))
                .spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let got: Vec<Vec<u8>> = statements
                        .iter()
                        .map(|sql| client.query(sql).expect("query").normalized().encode())
                        .collect();
                    client.close().expect("close");
                    got
                })
                .expect("spawn")
        })
        .collect();
    for (w, worker) in workers.into_iter().enumerate() {
        let got = worker.join().expect("client thread");
        assert_eq!(got, serial, "connection {w} diverged from the serial reference");
    }
    server.shutdown();
}

/// Repeated statements come back from the result cache: the `cached` flag
/// flips, and nothing else in the frame changes.
#[test]
fn repeated_statements_hit_the_result_cache() {
    let session = small_session();
    let server = serve(session.clone(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let sql = parser::render_sql(&cvr_data::queries::query(2, 2));

    let cold = client.query(&sql).expect("cold");
    let Response::Result(cold_rs) = &cold else { panic!("expected RESULT") };
    assert!(!cold_rs.cached, "first execution must be cold");

    let warm = client.query(&sql).expect("warm");
    let Response::Result(warm_rs) = &warm else { panic!("expected RESULT") };
    assert!(warm_rs.cached, "repeat must be served from the cache");
    assert_eq!(
        warm.normalized().encode(),
        cold.normalized().encode(),
        "hit must be byte-identical"
    );

    let stats = session.cache_stats().expect("cache enabled");
    assert!(stats.result_hits >= 1, "{stats:?}");
    client.close().expect("close");
    server.shutdown();
}

/// A panic inside `Session::query` becomes a structured ERROR frame on a
/// connection that keeps serving — it must not unwind the connection
/// thread into an opaque EOF (and the shared session must stay healthy
/// for other queries, including after mutex poisoning).
#[test]
fn panics_become_error_frames_and_the_connection_survives() {
    let session = small_session();
    session.inject_panic_on("lo_quantity < 42");
    let server = serve(session.clone(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let healthy = parser::render_sql(&cvr_data::queries::query(1, 1));

    assert!(matches!(client.query(&healthy).expect("pre"), Response::Result(_)));
    let poisoned = "SELECT SUM(lo_revenue) FROM lineorder WHERE lo_quantity < 42";
    match client.query(poisoned).expect("panic must still produce a frame") {
        Response::Error { code, message } => {
            assert_eq!(code, cvr_server::server::ERROR_CODE_PANIC);
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("expected ERROR, got {other:?}"),
    }
    // Same connection, same shared session: still serving.
    assert!(matches!(client.query(&healthy).expect("post"), Response::Result(_)));
    client.close().expect("close");
    server.shutdown();
}

/// Errors and EXPLAIN travel the wire as typed frames.
#[test]
fn errors_and_explain_over_the_wire() {
    let session = small_session();
    let server = serve(session, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    match client.query("SELECT SUM(lo_revenue) FROM lineorder WHERE lo_color = 3").unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, 2);
            assert!(message.contains("lo_color"), "{message}");
        }
        other => panic!("expected ERROR, got {other:?}"),
    }

    let sql = format!("EXPLAIN {}", parser::render_sql(&cvr_data::queries::query(3, 2)));
    match client.query(&sql).unwrap() {
        Response::Explain { text, json } => {
            assert!(text.contains("plan="), "{text}");
            assert!(json.contains("\"plan\": "), "{json}");
            assert!(json.contains("\"est_seconds\": "), "{json}");
        }
        other => panic!("expected EXPLAIN, got {other:?}"),
    }

    match client.query("SELECT SUM(lo_revenue) FROM lineorder").unwrap() {
        Response::Result(rs) => {
            let out = rs.output().expect("decodable rows");
            assert_eq!(out.rows.len(), 1, "scalar aggregate");
        }
        other => panic!("expected RESULT, got {other:?}"),
    }
    client.close().expect("close");
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Render → parse is semantics-preserving for arbitrary generated
    /// workloads, not just the fixed seed the unit tests use.
    #[test]
    fn render_parse_round_trip_for_random_workloads(seed in any::<u64>()) {
        for q in (WorkloadConfig { seed, count: 16 }).generate() {
            let sql = parser::render_sql(&q);
            let back = parser::parse_query(&sql)
                .unwrap_or_else(|e| panic!("{e}\n  {sql}"));
            prop_assert_eq!(&back.dim_predicates, &q.dim_predicates, "{}", &sql);
            prop_assert_eq!(&back.fact_predicates, &q.fact_predicates, "{}", &sql);
            prop_assert_eq!(&back.group_by, &q.group_by, "{}", &sql);
            prop_assert_eq!(back.aggregate, q.aggregate, "{}", &sql);
        }
    }
}
