//! Fault-injection and lifecycle tests: the serving stack under induced
//! failure.
//!
//! The load-bearing assertions: every induced failure — injected I/O
//! faults, worker panics, cancellation, deadlines, memory budgets,
//! oversized frames — surfaces as a *typed* error on a still-usable
//! connection, and once the fault clears the very same query produces
//! bytes identical to the pre-fault reference. Nothing leaks: scheduler
//! gauges return to zero and aborted queries never populate the cache.
//!
//! Fault configuration is **per-session** ([`Session::set_faults`]): each
//! test arms its own session's handle, so the tests here run concurrently
//! without a global lock, and two tests injecting different faults never
//! see each other's — which is itself the isolation property under test.

use cvr_core::morsel::Parallelism;
use cvr_core::{QueryCtx, QueryError};
use cvr_data::gen::{SsbConfig, SsbTables};
use cvr_data::queries::{all_queries, query, SsbQuery};
use cvr_plan::PhysicalChoice;
use cvr_server::protocol::{read_frame, Response};
use cvr_server::{parser, serve, Client, ClientConfig, ClientError, Session};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn tables(scale: f64) -> Arc<SsbTables> {
    Arc::new(SsbConfig::with_scale(scale).generate())
}

/// A session that always executes (cache disabled) — the shape every
/// cancellation test needs, since a cache hit never reaches a morsel.
fn cold_session(tables: Arc<SsbTables>, par: Parallelism) -> Arc<Session> {
    Arc::new(Session::with_cache_budget(tables, par, 0))
}

/// The first paper query the planner sends to the column engine: the
/// engine with morsel boundaries (for stall/panic faults) and memory
/// charges (for budget tests).
fn column_plan_query(session: &Session) -> SsbQuery {
    all_queries()
        .into_iter()
        .find(|q| matches!(session.explain(q).choice, PhysicalChoice::Column(_)))
        .expect("some paper query must plan to the column engine")
}

/// Injected page-read faults surface as `QueryError::Io` in-process and as
/// `ERROR` code 104 on the wire; clearing the fault restores byte-identical
/// answers on the same connection.
#[test]
fn injected_io_faults_surface_as_typed_errors_then_clear() {
    let session = cold_session(tables(0.001), Parallelism::serial());
    let server = serve(session.clone(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let q = query(1, 1);
    let sql = parser::render_sql(&q);
    let reference = client.query(&sql).expect("reference").normalized().encode();

    session.set_faults(Some("io:1.0")).expect("valid spec");
    match session.run_ctx(&q, &QueryCtx::unbounded()) {
        Err(QueryError::Io { detail }) => assert!(detail.contains("injected"), "{detail}"),
        other => panic!("expected Err(Io), got {other:?}"),
    }
    match client.query(&sql).expect("a faulted query still answers") {
        Response::Error { code, message } => {
            assert_eq!(code, QueryError::CODE_IO);
            assert!(message.contains("injected"), "{message}");
        }
        other => panic!("expected ERROR, got {other:?}"),
    }

    session.set_faults(None).expect("disarm");
    let healthy = client.query(&sql).expect("recovered").normalized().encode();
    assert_eq!(healthy, reference, "post-fault bytes must match the pre-fault reference");
    client.close().expect("close");
    server.shutdown();
}

/// Fault handles are session-scoped: a session armed with a certain-fire
/// I/O fault never perturbs an unfaulted session running concurrently over
/// the same tables — the isolation that lets this whole binary run without
/// a global lock.
#[test]
fn fault_handles_do_not_leak_across_sessions() {
    let tables = tables(0.001);
    let faulted = cold_session(tables.clone(), Parallelism::serial());
    let clean = cold_session(tables, Parallelism::serial());
    let q = query(1, 1);
    let reference = clean.run(&q);

    faulted.set_faults(Some("io:1.0")).expect("valid spec");
    assert!(matches!(faulted.run_ctx(&q, &QueryCtx::unbounded()), Err(QueryError::Io { .. })));
    // The clean session, same thread, immediately after: unaffected.
    let out = clean.run_ctx(&q, &QueryCtx::unbounded()).expect("clean session unaffected");
    assert_eq!(out.output.to_bytes(), reference.output.to_bytes());
    assert_eq!(out.io, reference.io);

    // Invalid specs are rejected without disturbing the armed state.
    assert!(faulted.set_faults(Some("bogus:nan")).is_err());
    assert!(matches!(faulted.run_ctx(&q, &QueryCtx::unbounded()), Err(QueryError::Io { .. }),));
}

/// A worker panic inside the morsel pool is contained to an `ERROR` frame
/// (code 99) on a connection that keeps serving once the fault clears.
#[test]
fn worker_panics_in_the_morsel_pool_become_error_frames() {
    let par = Parallelism { threads: 2, morsel_rows: 256 };
    let session = cold_session(tables(0.001), par);
    let q = column_plan_query(&session);
    let sql = parser::render_sql(&q);
    let server = serve(session.clone(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let reference = client.query(&sql).expect("reference").normalized().encode();

    session.set_faults(Some("panic:1.0")).expect("valid spec");
    match client.query(&sql).expect("a crashed worker still produces a frame") {
        Response::Error { code, message } => {
            assert_eq!(code, cvr_server::server::ERROR_CODE_PANIC);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected ERROR, got {other:?}"),
    }

    session.set_faults(None).expect("disarm");
    let healthy = client.query(&sql).expect("recovered").normalized().encode();
    assert_eq!(healthy, reference, "the worker pool must survive a contained panic");
    client.close().expect("close");
    server.shutdown();
}

/// Cancelling a query mid-run yields `Err(Cancelled)`, releases its
/// scheduler permit, and never populates the result cache — the next
/// identical query executes cold and matches the reference byte-for-byte.
#[test]
fn cancel_mid_run_leaves_the_scheduler_and_cache_clean() {
    let par = Parallelism { threads: 2, morsel_rows: 256 };
    let tables = tables(0.002);
    let session = Arc::new(Session::with_cache_budget(tables.clone(), par, 16 << 20));
    // A column-plan query: the cancellation window needs morsel boundaries.
    let q = column_plan_query(&session);
    // Reference from a separate cache-disabled session over the same
    // tables, so the session under test keeps a cold cache.
    let reference = cold_session(tables, par).run(&q);

    // Stall every morsel so the query is guaranteed to still be running
    // when the cancel lands.
    session.set_faults(Some("stall:1.0:10")).expect("valid spec");
    let ctx = QueryCtx::unbounded();
    let outcome = std::thread::scope(|s| {
        let worker = s.spawn(|| session.run_ctx(&q, &ctx));
        std::thread::sleep(Duration::from_millis(30));
        ctx.cancel();
        worker.join().expect("query thread must not panic")
    });
    assert_eq!(outcome, Err(QueryError::Cancelled));

    let stats = session.scheduler().stats();
    assert_eq!(stats.active, 0, "the aborted query must release its permit: {stats:?}");
    assert_eq!(stats.queue_depth, 0, "nothing may be left queued: {stats:?}");

    session.set_faults(None).expect("disarm");
    let rerun = session.run_ctx(&q, &QueryCtx::unbounded()).expect("clean rerun");
    assert!(!rerun.cached, "the cancelled attempt must not have populated the cache");
    assert_eq!(rerun.output.to_bytes(), reference.output.to_bytes(), "bytes must match");
    assert_eq!(rerun.io, reference.io, "I/O accounting must match");
    let again = session.run_ctx(&q, &QueryCtx::unbounded()).expect("cached rerun");
    assert!(again.cached, "the successful rerun populates the cache as usual");
}

/// Deadlines and memory budgets abort with their own typed errors (and
/// stable wire codes), not a generic failure.
#[test]
fn deadlines_and_memory_budgets_abort_with_typed_errors() {
    let session = cold_session(tables(0.001), Parallelism::serial());
    let q = column_plan_query(&session);

    let expired = QueryCtx::with_limits(Some(Duration::ZERO), None);
    match session.run_ctx(&q, &expired) {
        Err(e @ QueryError::DeadlineExceeded { .. }) => {
            assert_eq!(e.code(), QueryError::CODE_DEADLINE)
        }
        other => panic!("expected Err(DeadlineExceeded), got {other:?}"),
    }

    let tiny = QueryCtx::with_limits(None, Some(1));
    match session.run_ctx(&q, &tiny) {
        Err(e @ QueryError::MemoryBudgetExceeded { .. }) => {
            assert_eq!(e.code(), QueryError::CODE_MEMORY);
            let QueryError::MemoryBudgetExceeded { used, budget } = e else { unreachable!() };
            assert_eq!(budget, 1);
            assert!(used > 1, "the tripping charge must be accounted: used {used}");
        }
        other => panic!("expected Err(MemoryBudgetExceeded), got {other:?}"),
    }

    // Neither abort may leave scheduler state behind.
    let stats = session.scheduler().stats();
    assert_eq!(stats.active, 0, "{stats:?}");
    assert_eq!(stats.queue_depth, 0, "{stats:?}");
}

/// Out-of-band CANCEL from a second connection aborts a stalled query on
/// the first: the runner gets `ERROR` code 100 and the server keeps
/// serving.
#[test]
fn wire_cancel_aborts_a_stalled_query() {
    let par = Parallelism { threads: 2, morsel_rows: 256 };
    let session = cold_session(tables(0.002), par);
    let q = column_plan_query(&session);
    let sql = parser::render_sql(&q);
    let server = serve(session.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    const TOKEN: u64 = 0xC0FFEE;

    session.set_faults(Some("stall:1.0:10")).expect("valid spec");
    let response = std::thread::scope(|s| {
        let runner = s.spawn(|| {
            let mut client = Client::connect(addr).expect("connect runner");
            let resp = client.query_opts(&sql, TOKEN, 0).expect("stalled query answers");
            client.close().expect("close");
            resp
        });
        let mut canceller = Client::connect(addr).expect("connect canceller");
        let mut found = false;
        for _ in 0..2000 {
            if canceller.cancel(TOKEN).expect("cancel round-trip") {
                found = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(found, "the in-flight query must be registered under its token");
        canceller.close().expect("close");
        runner.join().expect("runner thread")
    });
    match response {
        Response::Error { code, message } => {
            assert_eq!(code, QueryError::CODE_CANCELLED, "{message}");
        }
        other => panic!("expected ERROR(cancelled), got {other:?}"),
    }

    session.set_faults(None).expect("disarm");
    let mut client = Client::connect(addr).expect("reconnect");
    assert!(
        matches!(client.query(&sql).expect("healthy"), Response::Result(_)),
        "the server must keep serving after a wire cancel"
    );
    client.close().expect("close");
    server.shutdown();
}

/// The STATS frame reports live scheduler counters, cache counters, and
/// the process metrics registry.
#[test]
fn stats_frames_report_scheduler_and_cache_counters() {
    let tables = tables(0.001);
    let session = Arc::new(Session::with_cache_budget(tables, Parallelism::serial(), 16 << 20));
    let admitted_before = session.scheduler().stats().admitted;
    let server = serve(session, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let sql = parser::render_sql(&query(2, 2));

    assert!(matches!(client.query(&sql).expect("cold"), Response::Result(_)));
    let report = client.stats().expect("stats frame");
    assert!(report.sched.admitted > admitted_before, "{:?}", report.sched);
    assert_eq!(report.sched.active, 0, "{:?}", report.sched);
    let cache = report.cache.expect("cache enabled for this session");
    assert!(cache.result_misses >= 1, "{cache:?}");
    // The registry rides along: process-wide counters, sorted by name.
    // (Values are process-global, so only presence and monotonicity are
    // assertable here.)
    let metric = |report: &cvr_server::StatsReport, name: &str| {
        report.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    };
    let queries = metric(&report, "cvr_queries_total").expect("query counter exported");
    assert!(queries >= 1, "at least this test's query: {queries}");
    assert!(metric(&report, "cvr_query_latency_us_count").is_some(), "histogram exported");

    // A repeat is served from the cache: hits move, admissions may not
    // (the lookup happens before admission).
    assert!(matches!(client.query(&sql).expect("warm"), Response::Result(_)));
    let report2 = client.stats().expect("stats frame");
    assert!(report2.cache.expect("cache enabled").result_hits >= 1);
    assert!(metric(&report2, "cvr_queries_total").expect("still exported") > queries);
    client.close().expect("close");
    server.shutdown();
}

/// An oversized frame gets a structured `ERROR` (code 0) before the server
/// hangs up — never an opaque EOF, never an allocation.
#[test]
fn oversized_frames_get_a_structured_error_before_hangup() {
    let session = cold_session(tables(0.0005), Parallelism::serial());
    let server = serve(session, "127.0.0.1:0").expect("bind");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(&u32::MAX.to_le_bytes()).expect("length prefix");
    stream.flush().expect("flush");

    let frame = read_frame(&mut stream).expect("readable").expect("an error frame, not EOF");
    match Response::decode(&frame).expect("decodable") {
        Response::Error { code, message } => {
            assert_eq!(code, cvr_server::server::ERROR_CODE_MALFORMED);
            assert!(message.contains("exceeds"), "{message}");
        }
        other => panic!("expected ERROR, got {other:?}"),
    }
    assert!(
        read_frame(&mut stream).expect("clean close").is_none(),
        "the connection must close after a malformed frame"
    );
    server.shutdown();
}

/// A server that never answers trips the client's read timeout as a typed
/// error rather than blocking forever.
#[test]
fn client_read_timeout_surfaces_as_typed_timeout() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        // Accept and hold the socket without ever responding.
        let (stream, _) = listener.accept().expect("accept");
        std::thread::sleep(Duration::from_millis(200));
        drop(stream);
    });

    let cfg = ClientConfig { read_timeout: Duration::from_millis(50), ..Default::default() };
    let mut client = Client::connect_with(addr, &cfg).expect("connect");
    let err = client.query("SELECT SUM(lo_revenue) FROM lineorder").expect_err("must time out");
    assert!(
        matches!(err.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock),
        "{err:?}"
    );
    assert!(matches!(ClientError::from(err), ClientError::Timeout { op: "read" }));
    hold.join().expect("hold thread");
}
