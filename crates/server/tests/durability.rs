//! End-to-end durability: SNAPSHOT/RELOAD through the session and over
//! the wire, store-version cache invalidation, and corruption fallback.
//!
//! The load-bearing assertion for the serving layer: a reload **must**
//! invalidate the result cache and plan memo. Both are keyed by
//! `store_version`; if a reload failed to change the version, a warmed
//! cache would keep serving results computed against the old store with
//! `cached: true` — silently wrong the moment the store differs.

use cvr_data::gen::SsbConfig;
use cvr_data::queries::all_queries;
use cvr_server::protocol::Response;
use cvr_server::session::{QueryResponse, SessionError};
use cvr_server::{parser, serve, Client, Session};
use cvr_storage::persist;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cvr-durability-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn session_over(sf: f64, seed: u64, cache_bytes: usize) -> Session {
    let tables = Arc::new(SsbConfig { sf, seed }.generate());
    Session::with_cache_budget(tables, cvr_core::morsel::Parallelism::serial(), cache_bytes)
}

/// Reload swaps the store version, so every cached result and memoized
/// plan keyed against the old store becomes unreachable: the first run
/// after a reload must execute cold (`cached: false`), not serve a stale
/// hit — and must still be byte-identical, since the snapshot is lossless.
#[test]
fn reload_invalidates_result_cache_and_plan_memo() {
    let dir = temp_dir("invalidate");
    let session = session_over(0.0005, 11, 16 << 20);
    session.set_data_dir(Some(dir.clone()));
    assert_eq!(session.store_version(), 0, "generated store is version 0");

    let q = cvr_data::queries::query(2, 1);
    let cold = session.run(&q);
    assert!(!cold.cached);
    let warm = session.run(&q);
    assert!(warm.cached, "second run must hit the result cache");

    let snap = session.snapshot().expect("snapshot");
    assert_eq!(snap.generation, 1);
    assert_eq!(snap.store_version, 0, "SNAPSHOT must not bump the version");
    assert!(session.run(&q).cached, "snapshot must not disturb the cache");

    let info = session.reload().expect("reload");
    assert_eq!(info.generation, 1);
    assert_eq!(info.store_version, 1);
    assert_eq!(session.store_version(), 1);

    // The differential bite: a stale-keyed cache would answer this with
    // `cached: true` — the latent silent-wrongness this test pins down.
    let after = session.run(&q);
    assert!(!after.cached, "reload must invalidate the result cache");
    assert_eq!(after.output.to_bytes(), cold.output.to_bytes(), "lossless reload");
    assert_eq!(after.io, cold.io, "IoStats identical across reload");
    assert!(session.run(&q).cached, "the new version warms its own entries");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot written by one session restores byte-identically into a
/// session built over *different* tables: all 13 paper queries match the
/// origin session's outputs AND IoStats after the reload.
#[test]
fn reload_restores_all_paper_queries_byte_identically() {
    let dir = temp_dir("restore");
    let origin = session_over(0.0005, 21, 0);
    origin.set_data_dir(Some(dir.clone()));
    origin.snapshot().expect("snapshot");
    let reference: Vec<_> = all_queries().iter().map(|q| origin.run(q)).collect();

    // Different scale AND seed: every byte of this store differs.
    let other = session_over(0.001, 99, 0);
    other.set_data_dir(Some(dir.clone()));
    let q0 = &all_queries()[0];
    let foreign = other.run(q0);
    assert_ne!(
        foreign.output.to_bytes(),
        reference[0].output.to_bytes(),
        "precondition: the second session starts on different data"
    );

    let info = other.reload().expect("reload");
    assert_eq!(info.generation, 1);
    for (q, want) in all_queries().iter().zip(&reference) {
        let got = other.run(q);
        assert_eq!(got.output.to_bytes(), want.output.to_bytes(), "{}: output", q.id);
        assert_eq!(got.io, want.io, "{}: IoStats", q.id);
        assert_eq!(got.plan, want.plan, "{}: plan", q.id);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A damaged newest generation falls back to its predecessor; when every
/// generation is damaged, RELOAD fails typed with the corrupt-store code.
#[test]
fn corrupt_generations_fall_back_then_fail_typed() {
    let dir = temp_dir("corrupt");
    let session = session_over(0.0005, 31, 0);
    session.set_data_dir(Some(dir.clone()));
    session.snapshot().expect("gen 1");
    session.snapshot().expect("gen 2");

    // Flip one payload byte in every generation-2 segment file.
    let mut damaged = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.ends_with(".g2.seg") && damaged == 0 {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, bytes).unwrap();
            damaged += 1;
        }
    }
    assert_eq!(damaged, 1, "one generation-2 segment was damaged");

    let info = session.reload().expect("fallback reload");
    assert_eq!(info.generation, 1, "damaged gen 2 falls back to gen 1");
    assert_eq!(session.store_version(), 1);

    // Damage generation 1's manifest too: nothing valid remains.
    let manifest = dir.join(persist::manifest_name(1));
    let mut bytes = std::fs::read(&manifest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&manifest, bytes).unwrap();

    let err = match session.query("RELOAD") {
        Err(SessionError::Query(e)) => e,
        other => panic!("expected a typed query error, got {other:?}"),
    };
    assert_eq!(err.code(), cvr_core::QueryError::CODE_CORRUPT, "wire code 105");
    assert_eq!(session.store_version(), 1, "a failed reload leaves the store untouched");

    let _ = std::fs::remove_dir_all(&dir);
}

/// SNAPSHOT and RELOAD over TCP: the snapshot frame round-trips, and a
/// session with no data directory answers with a typed I/O error.
#[test]
fn snapshot_and_reload_over_the_wire() {
    let dir = temp_dir("wire");
    let session = Arc::new(session_over(0.0005, 41, 16 << 20));
    session.set_data_dir(Some(dir.clone()));
    let server = serve(session.clone(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let Response::Snapshot(snap) = client.query("SNAPSHOT").expect("snapshot") else {
        panic!("expected a snapshot frame")
    };
    assert_eq!(snap.generation, 1);
    assert_eq!(snap.store_version, 0);
    assert!(snap.segments > 0 && snap.bytes > 0);

    let Response::Snapshot(rel) = client.query("RELOAD;").expect("reload") else {
        panic!("expected a snapshot frame")
    };
    assert_eq!(rel.generation, 1);
    assert_eq!(rel.store_version, 1);

    // Queries still answer on the reloaded store, over the same connection.
    let sql = parser::render_sql(&all_queries()[0]);
    assert!(matches!(client.query(&sql), Ok(Response::Result(_))));
    client.close().expect("close");

    // No data directory: a typed error frame, not a hang-up.
    let bare = Arc::new(session_over(0.0005, 41, 0));
    let server2 = serve(bare, "127.0.0.1:0").expect("bind");
    let mut client2 = Client::connect(server2.addr()).expect("connect");
    let Response::Error { code, message } = client2.query("SNAPSHOT").expect("frame") else {
        panic!("expected an error frame")
    };
    assert_eq!(code, cvr_core::QueryError::CODE_IO);
    assert!(message.contains("no data directory"), "{message}");
    client2.close().expect("close");

    let _ = std::fs::remove_dir_all(&dir);
}

/// In-process `query()` surfaces the snapshot response variant too.
#[test]
fn session_query_returns_snapshot_response() {
    let dir = temp_dir("variant");
    let session = session_over(0.0005, 51, 0);
    session.set_data_dir(Some(dir.clone()));
    match session.query("SNAPSHOT").expect("snapshot") {
        QueryResponse::Snapshot(info) => {
            assert_eq!(info.generation, 1);
            assert_eq!(session.data_dir().as_deref(), Some(dir.as_path()));
        }
        other => panic!("expected snapshot response, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
