//! A threaded TCP accept loop multiplexing concurrent connections onto one
//! shared [`Session`].
//!
//! Deliberately boring: thread-per-connection over the blocking standard
//! library. The engines are CPU-bound and morsel-parallel internally; the
//! serving layer's job is isolation (one slow client never blocks another)
//! and determinism (each query gets its own `IoSession`, so answers don't
//! depend on interleaving). *Processing a Trillion Cells per Mouse Click*
//! credits exactly this serve-many-users shape — not a smarter scheduler —
//! for interactive analytics; the closed-loop harness in `cvr-bench`
//! measures it.

use crate::protocol::{read_frame, response_for, write_frame, Request, Response};
use crate::session::Session;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server: background accept thread plus shutdown handle.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
/// `session` until [`Server::shutdown`].
pub fn serve(session: Arc<Session>, addr: impl ToSocketAddrs) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let accept_thread = std::thread::Builder::new().name("cvr-accept".into()).spawn(move || {
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Responses are one small write each; without TCP_NODELAY the
            // reply sits in Nagle's buffer until the client's delayed ACK
            // (~40 ms per statement on loopback).
            let _ = stream.set_nodelay(true);
            let session = session.clone();
            let _ = std::thread::Builder::new()
                .name("cvr-conn".into())
                .spawn(move || serve_connection(&session, stream));
        }
    })?;
    Ok(Server { addr, shutdown, accept_thread: Some(accept_thread) })
}

impl Server {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread. Connections
    /// already being served finish their current request.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Error code for a query that panicked inside the engine — distinct from
/// every `ParseError::code` so clients can tell "your SQL is wrong" from
/// "the server hit a bug".
pub const ERROR_CODE_PANIC: u16 = 99;

/// Serve one connection: a loop of frame → request → response frame.
fn serve_connection(session: &Session, mut stream: TcpStream) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // client hung up
        };
        let response = match Request::decode(&payload) {
            Ok(Request::Close) => return,
            Ok(Request::Query(sql)) => answer_query(session, &sql),
            Err(e) => Response::Error { code: 0, message: format!("malformed request: {e}") },
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Answer one statement, containing panics: a panic inside `Session::query`
/// must surface as a structured `ERROR` frame on a still-usable connection,
/// not unwind the connection thread and drop the socket into an opaque EOF.
/// `Session` holds no lock-free invariants across a panic (its mutexes
/// recover from poisoning), so resuming after the unwind is sound.
fn answer_query(session: &Session, sql: &str) -> Response {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.query(sql))) {
        Ok(Ok(answer)) => response_for(&answer),
        Ok(Err(e)) => Response::Error { code: e.code(), message: e.to_string() },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Response::Error { code: ERROR_CODE_PANIC, message: format!("query panicked: {msg}") }
        }
    }
}
