//! A threaded TCP accept loop multiplexing concurrent connections onto one
//! shared [`Session`].
//!
//! Deliberately boring: thread-per-connection over the blocking standard
//! library. The engines are CPU-bound and morsel-parallel internally; the
//! serving layer's job is isolation (one slow client never blocks another)
//! and determinism (each query gets its own `IoSession`, so answers don't
//! depend on interleaving). *Processing a Trillion Cells per Mouse Click*
//! credits exactly this serve-many-users shape — not a smarter scheduler —
//! for interactive analytics; the closed-loop harness in `cvr-bench`
//! measures it.
//!
//! ## Lifecycle hardening
//!
//! Every statement executes under a [`QueryCtx`] assembled from the request
//! (`QUERY_OPTS` deadline) and process defaults (`CVR_QUERY_TIMEOUT_MS`,
//! `CVR_MEM_BUDGET`), and is tracked in a process-wide [`CancelRegistry`]
//! while it runs, so a *second* connection can abort it with a `CANCEL`
//! frame carrying the same token — the Postgres out-of-band shape. Typed
//! [`QueryError`]s reach the wire as structured `ERROR` frames with stable
//! codes; connection sockets carry read/write timeouts
//! (`CVR_CONN_READ_TIMEOUT_MS` / `CVR_CONN_WRITE_TIMEOUT_MS`); and shutdown
//! drains live connections for `CVR_DRAIN_MS` before cancelling whatever is
//! still running.

use crate::protocol::{
    read_frame, response_for, write_frame, Request, Response, StatsReport, FLAG_TRACE,
};
use crate::session::Session;
use cvr_core::{QueryCtx, QueryError, Tracer};
use cvr_storage::fault;
use std::collections::HashMap;
use std::io;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running server: background accept thread plus shutdown handle.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    live_conns: Arc<AtomicUsize>,
    registry: Arc<CancelRegistry>,
    /// Prometheus scrape endpoint, when `CVR_METRICS_ADDR` bound one.
    metrics_addr: Option<SocketAddr>,
    metrics_thread: Option<JoinHandle<()>>,
}

/// In-flight queries, keyed for out-of-band cancellation. Every executing
/// statement registers its [`QueryCtx`] here for the duration of the run;
/// `CANCEL <token>` flips the matching contexts' flags, and shutdown's
/// drain deadline flips all of them.
#[derive(Default)]
pub struct CancelRegistry {
    /// Internal registration id → (client token, context). The internal id
    /// keeps registrations unique even when a client reuses a token.
    live: Mutex<HashMap<u64, (u64, QueryCtx)>>,
    next_id: AtomicU64,
}

impl CancelRegistry {
    /// Track `ctx` under `token` until the returned guard drops.
    fn register(self: &Arc<Self>, token: u64, ctx: QueryCtx) -> Registration {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.live.lock().unwrap_or_else(PoisonError::into_inner).insert(id, (token, ctx));
        Registration { registry: self.clone(), id }
    }

    /// Cancel every live query registered under `token`. Token `0` is the
    /// "not cancellable" marker and never matches. Returns whether any
    /// query was found.
    pub fn cancel_token(&self, token: u64) -> bool {
        if token == 0 {
            return false;
        }
        let live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
        let mut found = false;
        for (t, ctx) in live.values() {
            if *t == token {
                ctx.cancel();
                found = true;
            }
        }
        found
    }

    /// Cancel everything still running (shutdown drain deadline).
    pub fn cancel_all(&self) {
        let live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
        for (_, ctx) in live.values() {
            ctx.cancel();
        }
    }

    fn len(&self) -> usize {
        self.live.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

/// RAII deregistration for one in-flight statement.
struct Registration {
    registry: Arc<CancelRegistry>,
    id: u64,
}

impl Drop for Registration {
    fn drop(&mut self) {
        self.registry.live.lock().unwrap_or_else(PoisonError::into_inner).remove(&self.id);
    }
}

/// Millisecond env knob: `None` when unset, unparsable, or `0`.
fn env_ms(var: &str) -> Option<Duration> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// Process-default query limits: deadline from `CVR_QUERY_TIMEOUT_MS`,
/// memory budget from `CVR_MEM_BUDGET` (bytes). Unset or `0` disables.
fn default_limits() -> (Option<Duration>, Option<usize>) {
    static LIMITS: OnceLock<(Option<Duration>, Option<usize>)> = OnceLock::new();
    *LIMITS.get_or_init(|| {
        let budget = std::env::var("CVR_MEM_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&b| b > 0);
        (env_ms("CVR_QUERY_TIMEOUT_MS"), budget)
    })
}

/// Connection socket timeouts: read (`CVR_CONN_READ_TIMEOUT_MS`, default
/// 30 s) and write (`CVR_CONN_WRITE_TIMEOUT_MS`, default 10 s); `0`
/// disables either.
fn conn_timeouts() -> (Option<Duration>, Option<Duration>) {
    static TIMEOUTS: OnceLock<(Option<Duration>, Option<Duration>)> = OnceLock::new();
    *TIMEOUTS.get_or_init(|| {
        let parse = |var: &str, default_ms: u64| match std::env::var(var) {
            Ok(v) => v.trim().parse::<u64>().ok().filter(|&ms| ms > 0).map(Duration::from_millis),
            Err(_) => Some(Duration::from_millis(default_ms)),
        };
        (parse("CVR_CONN_READ_TIMEOUT_MS", 30_000), parse("CVR_CONN_WRITE_TIMEOUT_MS", 10_000))
    })
}

/// `CVR_TRACE=1` attaches a tracer to *every* statement (read once). The
/// spans are recorded and dropped unless the request also asked for a
/// `TRACE` frame — forcing tracing exercises its cost (the overhead gate
/// in CI) without desynchronizing clients that expect one frame per
/// request.
fn trace_all() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("CVR_TRACE").is_ok_and(|v| v.trim() == "1"))
}

/// The [`QueryCtx`] for one statement: the request's deadline when it
/// carries one, the process default otherwise; the memory budget is always
/// the process default.
fn ctx_for(deadline_ms: u32) -> QueryCtx {
    let (default_deadline, budget) = default_limits();
    let deadline = if deadline_ms > 0 {
        Some(Duration::from_millis(deadline_ms as u64))
    } else {
        default_deadline
    };
    QueryCtx::with_limits(deadline, budget)
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
/// `session` until [`Server::shutdown`].
pub fn serve(session: Arc<Session>, addr: impl ToSocketAddrs) -> io::Result<Server> {
    serve_with_metrics(session, addr, std::env::var("CVR_METRICS_ADDR").ok().as_deref())
}

/// [`serve`] with an explicit metrics bind address instead of the
/// `CVR_METRICS_ADDR` environment knob (`None` disables the endpoint).
pub fn serve_with_metrics(
    session: Arc<Session>,
    addr: impl ToSocketAddrs,
    metrics_addr: Option<&str>,
) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = match metrics_addr {
        Some(m) => Some(spawn_metrics_endpoint(m, session.clone(), shutdown.clone())?),
        None => None,
    };
    let (metrics_addr, metrics_thread) = match metrics {
        Some((a, t)) => (Some(a), Some(t)),
        None => (None, None),
    };
    let live_conns = Arc::new(AtomicUsize::new(0));
    let registry = Arc::new(CancelRegistry::default());
    let flag = shutdown.clone();
    let conns = live_conns.clone();
    let reg = registry.clone();
    let accept_thread = std::thread::Builder::new().name("cvr-accept".into()).spawn(move || {
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Responses are one small write each; without TCP_NODELAY the
            // reply sits in Nagle's buffer until the client's delayed ACK
            // (~40 ms per statement on loopback).
            let _ = stream.set_nodelay(true);
            let (read_to, write_to) = conn_timeouts();
            let _ = stream.set_read_timeout(read_to);
            let _ = stream.set_write_timeout(write_to);
            let session = session.clone();
            let registry = reg.clone();
            // Count the connection *before* the thread exists, so a stop()
            // racing the spawn still sees it in the drain gauge.
            conns.fetch_add(1, Ordering::SeqCst);
            let gauge = conns.clone();
            let spawned = std::thread::Builder::new().name("cvr-conn".into()).spawn(move || {
                let _guard = ConnGuard(gauge);
                serve_connection(&session, &registry, stream);
            });
            if spawned.is_err() {
                conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    })?;
    Ok(Server {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        live_conns,
        registry,
        metrics_addr,
        metrics_thread,
    })
}

/// Bind the Prometheus scrape endpoint and serve it on a background
/// thread: a deliberately tiny HTTP/1.0 responder — `GET /metrics` answers
/// the registry's text exposition (plus scrape-time gauges), anything else
/// a 404. One request per connection, `Connection: close`.
fn spawn_metrics_endpoint(
    addr: &str,
    session: Arc<Session>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let thread = std::thread::Builder::new().name("cvr-metrics".into()).spawn(move || {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            let _ = answer_scrape(&session, &mut stream);
        }
    })?;
    Ok((addr, thread))
}

/// Read one HTTP request line and answer it.
fn answer_scrape(session: &Session, stream: &mut TcpStream) -> io::Result<()> {
    // Read until the end of the request head (or 4 KiB, whichever first);
    // only the request line matters.
    let mut buf = [0u8; 4096];
    let mut len = 0;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let line = head.lines().next().unwrap_or("");
    let ok = line.starts_with("GET /metrics ") || line == "GET /metrics";
    let (status, body) = if ok {
        ("200 OK", render_metrics(session))
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// The scrape body: refresh the point-in-time gauges from their sources,
/// then render the whole registry.
fn render_metrics(session: &Session) -> String {
    let sched = session.scheduler().stats();
    cvr_obs::gauge("cvr_sched_active", "Queries executing right now").set(sched.active);
    cvr_obs::gauge("cvr_sched_queue_depth", "Queries waiting for admission").set(sched.queue_depth);
    if let Some(cache) = session.cache_stats() {
        cvr_obs::gauge("cvr_cache_bytes", "Current cache footprint in bytes")
            .set(cache.bytes as u64);
        cvr_obs::gauge("cvr_cache_budget_bytes", "Configured cache byte budget")
            .set(cache.budget as u64);
    }
    cvr_obs::global().render_prometheus()
}

/// Decrements the live-connection gauge however the thread exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Server {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cancel registry (exposed for tests and diagnostics).
    pub fn registry(&self) -> &Arc<CancelRegistry> {
        &self.registry
    }

    /// The Prometheus scrape endpoint's bound address, when
    /// `CVR_METRICS_ADDR` (or [`serve_with_metrics`]) enabled one.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Stop accepting connections and join the accept thread, then drain:
    /// wait up to `CVR_DRAIN_MS` (default 5 s) for live connections to
    /// finish on their own; past the deadline, cancel every in-flight
    /// query and grant a short grace period for the cancellations to land.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accepts with throwaway connections.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(t) = self.metrics_thread.take() {
            let _ = t.join();
        }
        let drain = env_ms("CVR_DRAIN_MS").unwrap_or(Duration::from_secs(5));
        let deadline = Instant::now() + drain;
        while self.live_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        if self.live_conns.load(Ordering::SeqCst) > 0 {
            // Past the drain deadline: flip every live query's cancel flag
            // and give the workers a moment to reach a morsel boundary.
            self.registry.cancel_all();
            let grace = Instant::now() + Duration::from_secs(1);
            while self.registry.len() > 0 && Instant::now() < grace {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Error code for a query that panicked inside the engine — distinct from
/// every `ParseError::code` and every [`QueryError`] code, so clients can
/// tell "your SQL is wrong" from "your query was aborted" from "the server
/// hit a bug".
pub const ERROR_CODE_PANIC: u16 = 99;

/// Error code for a malformed or oversized frame (the connection closes
/// right after the error ships).
pub const ERROR_CODE_MALFORMED: u16 = 0;

/// Serve one connection: a loop of frame → request → response frame.
fn serve_connection(session: &Session, registry: &Arc<CancelRegistry>, mut stream: TcpStream) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean hang-up
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized frame: tell the client why before closing —
                // an opaque EOF here would look like a server crash.
                let resp = Response::Error {
                    code: ERROR_CODE_MALFORMED,
                    message: format!("malformed frame: {e}"),
                };
                let _ = write_frame(&mut stream, &resp.encode());
                return;
            }
            Err(_) => return, // read timeout or transport failure
        };
        let (response, trace) = match Request::decode(&payload) {
            Ok(Request::Close) => return,
            Ok(Request::Query(sql)) => answer_statement(session, registry, &sql, 0, 0, 0),
            Ok(Request::QueryOpts { token, deadline_ms, flags, sql }) => {
                answer_statement(session, registry, &sql, token, deadline_ms, flags)
            }
            Ok(Request::Cancel(token)) => {
                (Response::CancelAck { found: registry.cancel_token(token) }, None)
            }
            Ok(Request::Stats) => (
                Response::Stats(StatsReport {
                    sched: session.scheduler().stats(),
                    cache: session.cache_stats(),
                    metrics: cvr_obs::global().samples(),
                }),
                None,
            ),
            Err(e) => (
                Response::Error {
                    code: ERROR_CODE_MALFORMED,
                    message: format!("malformed request: {e}"),
                },
                None,
            ),
        };
        if let Response::Error { code, .. } = &response {
            cvr_obs::counter(
                &format!("cvr_server_errors_total{{code=\"{code}\"}}"),
                "Error responses by stable code",
            )
            .inc();
        }
        if send_response(session, &mut stream, &response).is_err() {
            return;
        }
        if let Some(trace) = trace {
            if send_response(session, &mut stream, &trace).is_err() {
                return;
            }
        }
    }
}

/// Execute one statement: build its [`QueryCtx`], attach a tracer when the
/// request (or `CVR_TRACE=1`) asked for one, register for cancellation,
/// run, and — iff the request set [`FLAG_TRACE`] — produce the `TRACE`
/// frame that follows the response (empty when nothing was recorded, so
/// the client always reads exactly two frames).
fn answer_statement(
    session: &Session,
    registry: &Arc<CancelRegistry>,
    sql: &str,
    token: u64,
    deadline_ms: u32,
    flags: u8,
) -> (Response, Option<Response>) {
    let want_frame = flags & FLAG_TRACE != 0;
    let ctx = ctx_for(deadline_ms);
    let tracer = (want_frame || trace_all()).then(Tracer::new);
    if let Some(t) = &tracer {
        ctx.attach_tracer(t.clone());
    }
    let _reg = registry.register(token, ctx.clone());
    let response = answer_query(session, sql, &ctx);
    // Always drain the tracer (a forced-trace run must not leak spans into
    // the next statement's ctx — each ctx is fresh, but the Arc is cheap
    // to drain regardless); ship it only when asked.
    let root = tracer.as_ref().and_then(|t| t.take_root());
    let trace = want_frame.then(|| match root {
        Some(r) => Response::Trace { text: r.render(0), json: r.to_json() },
        None => Response::Trace { text: String::new(), json: String::new() },
    });
    (response, trace)
}

/// Ship one response frame, honouring the frame-truncation fault: when the
/// fault fires, half the frame is written and the socket severed — the
/// client sees a mid-frame EOF, exactly what a crashed peer looks like.
/// The session's fault state is adopted for the duration of the write —
/// the connection thread holds no ambient fault scope of its own.
fn send_response(session: &Session, stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let _faults = fault::adopt_opt(session.faults());
    let payload = response.encode();
    if fault::take_frame_truncation() {
        let mut wire = Vec::with_capacity(4 + payload.len());
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        wire.truncate((4 + payload.len()) / 2);
        let _ = stream.write_all(&wire);
        let _ = stream.flush();
        let _ = stream.shutdown(Shutdown::Both);
        return Err(io::Error::new(io::ErrorKind::ConnectionAborted, "injected frame truncation"));
    }
    write_frame(stream, &payload)
}

/// Answer one statement, containing panics: a panic inside `Session::query`
/// must surface as a structured `ERROR` frame on a still-usable connection,
/// not unwind the connection thread and drop the socket into an opaque EOF.
/// `Session` holds no lock-free invariants across a panic (its mutexes
/// recover from poisoning), so resuming after the unwind is sound. Typed
/// lifecycle aborts and injected I/O faults carried in the panic payload
/// keep their stable codes; only genuinely unexpected payloads fall back to
/// [`ERROR_CODE_PANIC`].
fn answer_query(session: &Session, sql: &str, ctx: &QueryCtx) -> Response {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.query_ctx(sql, ctx))) {
        Ok(Ok(answer)) => response_for(&answer),
        Ok(Err(e)) => Response::Error { code: e.code(), message: e.to_string() },
        Err(panic) => {
            // Engine code entered through an infallible wrapper re-raises
            // lifecycle errors via panic_any; keep their codes stable.
            let panic = match panic.downcast::<QueryError>() {
                Ok(e) => {
                    return Response::Error { code: e.code(), message: e.to_string() };
                }
                Err(p) => p,
            };
            let panic = match panic.downcast::<fault::InjectedFault>() {
                Ok(f) => {
                    let e = QueryError::Io { detail: f.0.clone() };
                    return Response::Error { code: e.code(), message: e.to_string() };
                }
                Err(p) => p,
            };
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Response::Error { code: ERROR_CODE_PANIC, message: format!("query panicked: {msg}") }
        }
    }
}
